//! The controlled-channel attack, end to end: first against a vanilla
//! SGX enclave (the secret leaks), then against an Autarky enclave (the
//! attack is detected and nothing leaks).
//!
//! The victim renders secret text with the FreeType-style glyph renderer;
//! the attacker traces code-page accesses and matches glyph signatures —
//! Xu et al.'s published attack.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use autarky::os::{Attacker, Os};
use autarky::prelude::*;
use autarky::workloads::font::{glyph_code_pages, recover_text_from_trace, FontRenderer};
use autarky::workloads::EncHeap;
use autarky::{Profile, SystemBuilder};

const SECRET: &str = "meetmeatdawn";

fn victim_render(world: &mut World, heap: &mut EncHeap) -> Result<(), RtError> {
    let mut font = FontRenderer::new(world, heap, 32)?;
    font.render_text(world, heap, SECRET)
}

/// The attacker's oracle input: turn the fault trace (page numbers) into
/// code-region offsets.
fn trace_offsets(os: &Os, eid: EnclaveId, trace: &[Vpn]) -> Vec<u64> {
    let code_start = os.image(eid).expect("image").code_start().0;
    trace.iter().map(|vpn| vpn.0 - code_start).collect()
}

fn main() {
    let alphabet: Vec<char> = ('a'..='z').collect();

    // ------------------------------------------------------------
    // Round 1: vanilla SGX. The OS unmaps the renderer's code pages and
    // silently resumes after each fault — the enclave never notices.
    // ------------------------------------------------------------
    println!("=== Round 1: vanilla SGX enclave ===");
    let (mut world, mut heap) = SystemBuilder::new("victim-legacy", Profile::Unprotected)
        .epc_mib(4)
        .code_pages(24)
        .heap_pages(64)
        .build()
        .expect("system");
    let code_pages: Vec<Vpn> = world.image.code_range().collect();
    world
        .os
        .arm_fault_tracer(world.eid, code_pages.iter().copied())
        .expect("arm");
    victim_render(&mut world, &mut heap).expect("render succeeds — the victim suspects nothing");

    if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
        let offsets = trace_offsets(&world.os, world.eid, &t.trace);
        let recovered = recover_text_from_trace(&offsets, &alphabet);
        println!(
            "attacker's code-page trace: {} faults observed",
            t.trace.len()
        );
        println!("secret text   : {SECRET}");
        println!("RECOVERED text: {recovered}");
        assert_eq!(
            recovered, SECRET,
            "the published attack works on vanilla SGX"
        );
    }

    // ------------------------------------------------------------
    // Round 2: Autarky. Same attack; the fault reports are masked, the
    // pending-exception flag forces the trusted handler to run, and the
    // handler terminates the enclave on the first unexpected fault.
    // ------------------------------------------------------------
    println!("\n=== Round 2: Autarky self-paging enclave ===");
    let (mut world, mut heap) = SystemBuilder::new("victim-autarky", Profile::PinAll)
        .epc_mib(4)
        .code_pages(24)
        .heap_pages(64)
        .build()
        .expect("system");
    let code_pages: Vec<Vpn> = world.image.code_range().collect();
    world
        .os
        .arm_fault_tracer(world.eid, code_pages.iter().copied())
        .expect("arm");
    match victim_render(&mut world, &mut heap) {
        Err(RtError::AttackDetected { vpn, why }) => {
            println!("handler verdict: attack on {vpn} — {why}");
            println!("enclave terminated before rendering anything");
        }
        other => panic!("expected detection, got {other:?}"),
    }
    if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
        let offsets = trace_offsets(&world.os, world.eid, &t.trace);
        let recovered = recover_text_from_trace(&offsets, &alphabet);
        println!("attacker's attributable trace: {:?}", t.trace);
        println!("masked faults (enclave base only): {}", t.masked_faults);
        println!("RECOVERED text: {recovered:?} (nothing)");
        assert!(recovered.is_empty(), "Autarky leaks nothing attributable");
    }

    // Sanity: one glyph's signature so readers see what leaked in round 1.
    println!(
        "\n(for reference, glyph 'm' executes code pages {:?})",
        glyph_code_pages('m')
    );
}
