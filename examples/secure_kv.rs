//! A key-value store served from an enclave under the strongest policy:
//! cached ORAM (the paper's §5.2.2 scheme, evaluated in Figure 8).
//!
//! The adversary watching memory sees only uniformly random PathORAM
//! paths — zero correlation with which keys are hot.
//!
//! ```text
//! cargo run --release --example secure_kv
//! ```

use autarky::prelude::*;
use autarky::workloads::kvstore::{ItemClustering, KvStore};
use autarky::workloads::request::{KeyStream, Request, RequestSource, Response, Service};
use autarky::workloads::ycsb::{Distribution, KeyGenerator};
use autarky::{Profile, SystemBuilder};

fn main() {
    let (mut world, mut heap) = SystemBuilder::new(
        "secure-kv",
        Profile::CachedOram {
            capacity_pages: 2048,
            cache_pages: 256,
        },
    )
    .epc_mib(8)
    .heap_pages(64)
    .build()
    .expect("system");
    assert!(heap.is_oram(), "the builder returned the ORAM data path");

    let mut store =
        KvStore::new(&mut world, &mut heap, 1000, 512, ItemClustering::None).expect("store");
    store
        .load(&mut world, &mut heap, 1000)
        .expect("load 1000 items");
    println!(
        "loaded {} items of {} B over cached ORAM",
        store.len(),
        store.value_size()
    );

    // Serve a skewed workload from a pluggable request source (the same
    // interface the fleet load generator drives); verify every value.
    let mut source = KeyStream::new(
        KeyGenerator::new(1000, Distribution::Zipfian { theta: 0.99 }, 3),
        500,
    );
    let t0 = world.now();
    let mut requests = 0u64;
    while let Some(request) = source.next_request() {
        let response = store
            .serve(&mut world, &mut heap, &request)
            .expect("serve request");
        if let (Request::Get { key }, Response::Value(value)) = (&request, &response) {
            let value = value.as_deref().expect("loaded key present");
            assert_eq!(value, KvStore::value_for(*key, 512), "integrity holds");
        }
        requests += 1;
    }
    let cycles = world.now() - t0;
    println!(
        "served {requests} GETs at {:.0} req/s (simulated)",
        requests as f64 / (cycles as f64 / CLOCK_HZ as f64)
    );

    let stats = heap.oram_stats();
    println!(
        "ORAM: {} accesses, {} bucket reads, {} bucket writes, {:.1}% cache hit rate",
        stats.accesses(),
        stats.bucket_reads(),
        stats.bucket_writes(),
        100.0 * stats.cache_hits() as f64
            / (stats.cache_hits() + stats.cache_misses()).max(1) as f64,
    );
    println!("adversary's view: one uniformly random tree path per miss — no key correlation");
}
