//! A key-value store served from an enclave under the strongest policy:
//! cached ORAM (the paper's §5.2.2 scheme, evaluated in Figure 8).
//!
//! The adversary watching memory sees only uniformly random PathORAM
//! paths — zero correlation with which keys are hot.
//!
//! ```text
//! cargo run --release --example secure_kv
//! ```

use autarky::prelude::*;
use autarky::workloads::kvstore::{ItemClustering, KvStore};
use autarky::workloads::ycsb::{Distribution, KeyGenerator};
use autarky::{Profile, SystemBuilder};

fn main() {
    let (mut world, mut heap) = SystemBuilder::new(
        "secure-kv",
        Profile::CachedOram {
            capacity_pages: 2048,
            cache_pages: 256,
        },
    )
    .epc_mib(8)
    .heap_pages(64)
    .build()
    .expect("system");
    assert!(heap.is_oram(), "the builder returned the ORAM data path");

    let mut store =
        KvStore::new(&mut world, &mut heap, 1000, 512, ItemClustering::None).expect("store");
    store
        .load(&mut world, &mut heap, 1000)
        .expect("load 1000 items");
    println!(
        "loaded {} items of {} B over cached ORAM",
        store.len(),
        store.value_size()
    );

    // Serve a skewed workload; verify every value.
    let mut generator = KeyGenerator::new(1000, Distribution::Zipfian { theta: 0.99 }, 3);
    let t0 = world.now();
    let requests = 500;
    for _ in 0..requests {
        let key = generator.next_key();
        let value = store
            .get(&mut world, &mut heap, key)
            .expect("get")
            .expect("loaded key present");
        assert_eq!(value, KvStore::value_for(key, 512), "integrity holds");
    }
    let cycles = world.now() - t0;
    println!(
        "served {requests} GETs at {:.0} req/s (simulated)",
        requests as f64 / (cycles as f64 / CLOCK_HZ as f64)
    );

    let stats = heap.oram_stats();
    println!(
        "ORAM: {} accesses, {} bucket reads, {} bucket writes, {:.1}% cache hit rate",
        stats.accesses(),
        stats.bucket_reads(),
        stats.bucket_writes(),
        100.0 * stats.cache_hits() as f64
            / (stats.cache_hits() + stats.cache_misses()).max(1) as f64,
    );
    println!("adversary's view: one uniformly random tree path per miss — no key correlation");
}
