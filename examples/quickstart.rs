//! Quickstart: build a self-paging enclave, allocate memory, watch the
//! defense at work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use autarky::prelude::*;
use autarky::{Profile, SystemBuilder};

fn main() {
    // 1. Assemble a system: SGX machine + untrusted OS + trusted runtime,
    //    with the Autarky self-paging attribute and 10-page data clusters.
    let (mut world, mut heap) = SystemBuilder::new(
        "quickstart",
        Profile::Clusters {
            pages_per_cluster: 10,
        },
    )
    .epc_mib(8)
    .heap_pages(512)
    .budget_pages(256) // self-paging budget: evict beyond this
    .build()
    .expect("system assembles");
    println!(
        "enclave {} loaded, EPC = {} pages",
        world.eid,
        world.os.machine.epc_total_frames()
    );

    // 2. The self-paging attribute is part of the attested identity.
    let report = world
        .os
        .machine
        .ereport(world.eid, [0; 64])
        .expect("report");
    println!(
        "attested self_paging bit: {}",
        report.attributes.self_paging
    );

    // 3. Use enclave memory. Allocation, page faults, cluster fetches and
    //    evictions all happen behind these calls.
    let ptr = heap
        .alloc(&mut world, 300 * PAGE_SIZE)
        .expect("alloc 300 pages");
    for i in 0..300u64 {
        heap.write_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64), i * i)
            .expect("write");
    }
    let mut sum = 0u64;
    for i in 0..300u64 {
        sum += heap
            .read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64))
            .expect("read");
    }
    println!("checksum over 300 pages: {sum}");
    println!(
        "self-paging activity: {} faults handled, {} pages fetched, {} evicted",
        world.rt.stats.faults_handled, world.rt.stats.pages_fetched, world.rt.stats.pages_evicted
    );

    // 4. Now the OS turns hostile: it unmaps a *resident* enclave-managed
    //    page to trace accesses (the controlled-channel attack).
    let target = (0..300u64)
        .map(|i| Vpn((ptr.0 >> 12) + i))
        .find(|&vpn| world.rt.residency(vpn) == Some(true))
        .expect("some page is resident");
    world
        .os
        .arm_fault_tracer(world.eid, [target])
        .expect("arm attack");
    let outcome = world.rt.read(&mut world.os, target.base(), &mut [0u8; 8]);
    match outcome {
        Err(RtError::AttackDetected { vpn, why }) => {
            println!("ATTACK DETECTED on {vpn}: {why}");
            println!("enclave terminated: {}", world.rt.is_terminated());
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 5. The attacker's haul: nothing attributable.
    if let autarky::os::Attacker::FaultTracer(t) = &world.os.attacker {
        println!(
            "attacker's trace: {:?} ({} masked faults)",
            t.trace, t.masked_faults
        );
    }
}
