//! A multi-dictionary spell-checking server with application-defined page
//! clusters (the paper's §7.3 Hunspell scenario).
//!
//! Each dictionary's pages form one cluster: the OS can tell *which
//! language* is being used (cluster-level leak, acceptable) but never
//! *which word* is being checked (the attack of Xu et al.).
//!
//! ```text
//! cargo run --release --example spellcheck_server
//! ```

use autarky::prelude::*;
use autarky::workloads::request::{RequestSource, Response, Service, TextStream};
use autarky::workloads::spell::{synth_text, SpellServer};
use autarky::{Profile, SystemBuilder};

fn main() {
    let (mut world, mut heap) = SystemBuilder::new(
        "spellcheckd",
        Profile::Clusters {
            pages_per_cluster: 0,
        },
    )
    .epc_mib(8)
    .heap_pages(1024)
    .budget_pages(88) // too small for all dictionaries: paging!
    .build()
    .expect("system");

    // Load five dictionaries; each becomes one application-defined cluster.
    let langs = ["en", "de", "fr", "es", "it"];
    let mut server =
        SpellServer::start(&mut world, &mut heap, &langs, 1500, true).expect("dictionaries load");
    for dict in &server.dictionaries {
        println!(
            "dictionary {:3}: {} words on {} pages (cluster of {})",
            dict.lang,
            dict.len(),
            dict.pages.len(),
            world
                .rt
                .clusters
                .cluster_len(world.rt.clusters.ay_get_cluster_ids(dict.pages[0])[0]),
        );
    }

    // Serve requests from a pluggable request source (the same interface
    // the fleet load generator drives): a 500-word English text arriving
    // as 100-word check requests.
    let text = synth_text("en", 1500, 500, 42);
    let words = text.len();
    let mut source = TextStream::new("en", text, 100);
    let t0 = world.now();
    let mut correct = 0u64;
    while let Some(request) = source.next_request() {
        match server
            .serve(&mut world, &mut heap, &request)
            .expect("spell check")
        {
            Response::Correct(n) => correct += n,
            other => panic!("unexpected response {other:?}"),
        }
    }
    let cycles = world.now() - t0;
    println!("\nchecked {words} words: {correct} spelled correctly");
    println!(
        "throughput: {:.1} kwd/s (simulated)",
        words as f64 / 1000.0 / (cycles as f64 / CLOCK_HZ as f64)
    );

    // What did the OS see? Only whole-cluster fetches.
    let obs = world.os.observations();
    let fetches: Vec<usize> = obs
        .iter()
        .filter_map(|o| match o {
            Observation::FetchSyscall { pages, .. } => Some(pages.len()),
            _ => None,
        })
        .collect();
    println!(
        "\nadversary's view: {} fetch syscalls, sizes {:?} (whole dictionaries only)",
        fetches.len(),
        fetches
    );
    println!("words leaked to the OS: none — fetches never name individual entry pages");
}
