//! Property harness: the hardened self-paging runtime under seeded
//! hostile-OS fault injection (the robustness half of the threat model —
//! see DESIGN.md, "Threat model under OS misbehavior").
//!
//! Acceptance properties:
//!
//! * 100 distinct seeded schedules per protection policy (rate-limit,
//!   clusters, cached ORAM) run to completion with zero panics; every
//!   run ends `Ok` or with a typed [`RtError`];
//! * *transient* faults alone (delays, whole-call `NoMemory`, partial
//!   batches, whole-enclave suspensions) are absorbed by retries and
//!   never escalate to a false-positive `AttackDetected`;
//! * a fixed `(seed, plan, workload)` triple replays to a bit-for-bit
//!   identical outcome, observation stream, final cycle count, and
//!   injected-fault tally;
//! * an armed-but-quiescent plan is behaviorally invisible;
//! * the published attacks stay detected with injection armed (asserted
//!   in `attack_defense.rs`, which arms transient plans on every
//!   protected-profile build).

use autarky::os::{FaultPlan, Observation};
use autarky::prelude::*;
use autarky::{Profile, SystemBuilder};

const SEEDS_PER_POLICY: u64 = 100;

/// The three protection policies the harness must cover. The bool is
/// whether the policy has an evictable paging surface: only fetch/evict
/// traffic can be hit by the *hostile* fault kinds (dropped pages,
/// spurious evictions, backing tampering), so only such policies are
/// required to surface hostile errors. Cached ORAM pins everything — its
/// driver traffic is allocation-only and all applicable kinds are
/// transient.
fn policies() -> [(&'static str, Profile, bool); 3] {
    [
        (
            "rate-limit",
            Profile::RateLimited {
                max_faults_per_progress: 16.0,
                burst: 512,
            },
            true,
        ),
        (
            "clusters",
            Profile::Clusters {
                pages_per_cluster: 4,
            },
            true,
        ),
        (
            "cached-oram",
            Profile::CachedOram {
                capacity_pages: 64,
                cache_pages: 16,
            },
            false,
        ),
    ]
}

fn build(name: &str, profile: Profile, seed: u64) -> (World, EncHeap) {
    SystemBuilder::new(name, profile)
        .epc_pages(512)
        .code_pages(8)
        .heap_pages(256)
        // Far fewer budgeted frames than the working set, so the
        // self-paging policies churn through fetch/evict constantly.
        .budget_pages(16)
        .seed(seed)
        .build()
        .expect("system assembles")
}

/// A paging-heavy allocate/write/readback workload. Every path is
/// `?`-propagated so any injected fault the runtime cannot absorb
/// surfaces as a typed [`RtError`] — never a panic.
fn drive(world: &mut World, heap: &mut EncHeap) -> Result<u64, RtError> {
    const SLOTS: usize = 24;
    let mut ptrs = Vec::with_capacity(SLOTS);
    for i in 0..SLOTS {
        let ptr = heap.alloc(world, PAGE_SIZE)?;
        heap.write_u64(world, ptr, i as u64)?;
        ptrs.push(ptr);
    }
    // Revisit with a stride to force fetch/evict churn under the policy.
    let mut sum = 0u64;
    for round in 0..3usize {
        for i in 0..SLOTS {
            let j = (i * 7 + round) % SLOTS;
            let value = heap.read_u64(world, ptrs[j])?;
            sum = sum.wrapping_add(value);
            heap.write_u64(world, ptrs[j], value.wrapping_add(round as u64))?;
        }
    }
    // Direct runtime traffic (malloc + access through the trusted
    // runtime) so even profiles whose data heap bypasses the driver
    // entirely (the in-enclave ORAM) still exercise the hardened
    // allocation path.
    let base = world.rt.malloc(&mut world.os, 16 * PAGE_SIZE)?;
    for k in 0..16u64 {
        let va = Va(base.0 + k * PAGE_SIZE as u64);
        world.rt.write(&mut world.os, va, &k.to_le_bytes())?;
        let mut buf = [0u8; 8];
        world.rt.read(&mut world.os, va, &mut buf)?;
        sum = sum.wrapping_add(u64::from_le_bytes(buf));
    }
    Ok(sum)
}

/// Transient faults are an honest OS under pressure: the hardened
/// runtime must absorb them (bounded retry + backoff + degradation) and
/// must never report them as a controlled-channel attack.
#[test]
fn transient_schedules_never_false_positive() {
    for (name, profile, _) in policies() {
        let mut ok = 0usize;
        for seed in 0..SEEDS_PER_POLICY {
            let (mut world, mut heap) = build(name, profile, seed);
            world
                .os
                .arm_fault_plan(FaultPlan::transient_only(seed, 0.08));
            match drive(&mut world, &mut heap) {
                Ok(_) => ok += 1,
                Err(RtError::AttackDetected { vpn, why }) => panic!(
                    "policy {name} seed {seed}: transient-only injection escalated \
                     to AttackDetected on {vpn}: {why}"
                ),
                Err(_) => {} // typed, non-attack error: acceptable
            }
            world.os.disarm_fault_plan();
        }
        // The harness must not be vacuous: retries absorb the large
        // majority of transient schedules.
        assert!(
            ok > (SEEDS_PER_POLICY as usize) / 2,
            "policy {name}: only {ok}/{SEEDS_PER_POLICY} transient schedules absorbed"
        );
    }
}

/// Hostile schedules (lying replies, dropped pages, pinned-page
/// eviction, backing-store tampering) may legitimately end in a typed
/// error — including a *true-positive* `AttackDetected` — but must
/// never panic or wedge.
#[test]
fn hostile_schedules_end_ok_or_typed() {
    for (name, profile, evictable) in policies() {
        let (mut absorbed, mut surfaced) = (0usize, 0usize);
        for seed in 0..SEEDS_PER_POLICY {
            let (mut world, mut heap) = build(name, profile, seed);
            world.os.arm_fault_plan(FaultPlan::hostile(seed, 0.05));
            match drive(&mut world, &mut heap) {
                Ok(_) => absorbed += 1,
                Err(_) => surfaced += 1,
            }
        }
        // Both sides must be exercised: some schedules are absorbed, and
        // (where hostile kinds can reach the paging surface at all) some
        // misbehavior is caught and surfaced.
        assert!(absorbed > 0, "policy {name}: no hostile schedule absorbed");
        assert!(
            !evictable || surfaced > 0,
            "policy {name}: no hostile schedule ever surfaced an error"
        );
    }
}

/// Determinism: a fixed `(seed, plan, workload)` triple is a replayable
/// experiment — identical outcome, adversary-visible observation
/// stream, final cycle count, and injected-fault tally.
#[test]
fn same_seed_and_plan_replay_identically() {
    for (name, profile, _) in policies() {
        let run = |seed: u64| {
            let (mut world, mut heap) = build(name, profile, seed);
            world.os.arm_fault_plan(FaultPlan::hostile(seed, 0.05));
            let outcome = drive(&mut world, &mut heap);
            (
                outcome,
                world.os.observations_since(0).to_vec(),
                world.os.machine.clock.now(),
                world.os.disarm_fault_plan(),
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.0, b.0, "{name}: outcomes diverge");
        assert_eq!(a.1, b.1, "{name}: observation streams diverge");
        assert_eq!(a.2, b.2, "{name}: final cycle counts diverge");
        assert_eq!(a.3, b.3, "{name}: injected-fault tallies diverge");
        assert!(
            a.1.iter()
                .any(|o| matches!(o, Observation::FaultInjected { .. })),
            "{name}: schedule injected nothing — harness is vacuous"
        );
        let c = run(43);
        assert!(
            a.1 != c.1 || a.2 != c.2,
            "{name}: a different seed produced an identical schedule"
        );
    }
}

/// An armed injector whose plan never fires must be invisible: the
/// plumbing itself (the per-syscall decision draw) must not perturb the
/// simulation relative to running with no injector at all.
#[test]
fn quiescent_plan_is_behaviorally_invisible() {
    for (name, profile, _) in policies() {
        let bare = {
            let (mut world, mut heap) = build(name, profile, 7);
            let outcome = drive(&mut world, &mut heap);
            (
                outcome,
                world.os.observations_since(0).to_vec(),
                world.os.machine.clock.now(),
            )
        };
        let armed = {
            let (mut world, mut heap) = build(name, profile, 7);
            world.os.arm_fault_plan(FaultPlan::quiescent(99));
            let outcome = drive(&mut world, &mut heap);
            assert_eq!(world.os.disarm_fault_plan(), 0, "{name}: quiescent fired");
            (
                outcome,
                world.os.observations_since(0).to_vec(),
                world.os.machine.clock.now(),
            )
        };
        assert_eq!(
            bare, armed,
            "{name}: armed quiescent plan perturbed the run"
        );
    }
}
