//! Randomized property tests over the core invariants:
//!
//! * enclave memory behaves like memory under arbitrary operation
//!   sequences, for every protection profile;
//! * the cluster residency invariant survives arbitrary cluster graphs
//!   and fault/evict orders;
//! * sealing/ORAM round-trips hold for arbitrary contents;
//! * fault reports for self-paging enclaves are always fully masked.
//!
//! Cases are drawn from the deterministic [`SimRng`] with fixed per-test
//! seeds, so runs are bit-for-bit reproducible.

use autarky::oram::{buckets_for, MemStorage, PathOram};
use autarky::os::Observation;
use autarky::prelude::*;
use autarky::rt::paging::{sw_open, sw_seal};
use autarky::{Profile, SystemBuilder};
use autarky_prng::SimRng;

const CASES: usize = 24;

#[derive(Debug, Clone)]
enum MemOp {
    Write { page: u8, value: u64 },
    Read { page: u8 },
    Evict { page: u8 },
}

fn mem_op(rng: &mut SimRng) -> MemOp {
    let page = rng.gen_range(0..48) as u8;
    match rng.gen_range(0..3) {
        0 => MemOp::Write {
            page,
            value: rng.next_u64(),
        },
        1 => MemOp::Read { page },
        _ => MemOp::Evict { page },
    }
}

#[test]
fn enclave_memory_is_memory() {
    let mut rng = SimRng::seed_from_u64(0xAE01);
    for case in 0..CASES {
        let ops: Vec<MemOp> = {
            let n = rng.gen_range_usize(1..120);
            (0..n).map(|_| mem_op(&mut rng)).collect()
        };
        let cluster_pages = rng.gen_range_usize(1..6);
        let (mut world, mut heap) = SystemBuilder::new(
            "prop-mem",
            Profile::Clusters {
                pages_per_cluster: cluster_pages,
            },
        )
        .epc_pages(1024)
        .heap_pages(128)
        .budget_pages(60)
        .build()
        .expect("system");
        let ptr = heap.alloc(&mut world, 48 * PAGE_SIZE).expect("alloc");
        let mut model = [0u64; 48];
        for op in &ops {
            match *op {
                MemOp::Write { page, value } => {
                    heap.write_u64(
                        &mut world,
                        ptr.offset(page as u64 * PAGE_SIZE as u64),
                        value,
                    )
                    .expect("write");
                    model[page as usize] = value;
                }
                MemOp::Read { page } => {
                    let got = heap
                        .read_u64(&mut world, ptr.offset(page as u64 * PAGE_SIZE as u64))
                        .expect("read");
                    assert_eq!(got, model[page as usize], "case {case}");
                }
                MemOp::Evict { page } => {
                    let vpn = Vpn((ptr.0 >> 12) + page as u64);
                    if world.rt.residency(vpn) == Some(true) {
                        let set: Vec<Vpn> = world
                            .rt
                            .clusters
                            .evict_set(vpn)
                            .into_iter()
                            .filter(|&p| world.rt.residency(p) == Some(true))
                            .collect();
                        world.rt.evict_pages(&mut world.os, &set).expect("evict");
                    }
                }
            }
            assert!(
                world.rt.cluster_invariant_holds(),
                "invariant broken by {op:?} in case {case}"
            );
        }
        // Final sweep: everything still reads back per the model.
        for page in 0..48u64 {
            let got = heap
                .read_u64(&mut world, ptr.offset(page * PAGE_SIZE as u64))
                .expect("read");
            assert_eq!(got, model[page as usize], "case {case}");
        }
        assert!(
            !world.rt.is_terminated(),
            "benign ops must never look like attacks"
        );
    }
}

#[test]
fn fault_reports_always_masked() {
    let mut rng = SimRng::seed_from_u64(0xAE02);
    for _ in 0..CASES {
        let accesses: Vec<u8> = {
            let n = rng.gen_range_usize(1..60);
            (0..n).map(|_| rng.gen_range(0..64) as u8).collect()
        };
        let (mut world, mut heap) = SystemBuilder::new(
            "prop-mask",
            Profile::Clusters {
                pages_per_cluster: 2,
            },
        )
        .epc_pages(1024)
        .heap_pages(96)
        .budget_pages(50)
        .build()
        .expect("system");
        let ptr = heap.alloc(&mut world, 64 * PAGE_SIZE).expect("alloc");
        for i in 0..64u64 {
            heap.write_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64), i)
                .expect("write");
        }
        let mark = world.os.observation_mark();
        for &page in &accesses {
            heap.read_u64(&mut world, ptr.offset(page as u64 * PAGE_SIZE as u64))
                .expect("read");
        }
        for obs in world.os.observations_since(mark) {
            if let Observation::Fault { va, kind, .. } = obs {
                assert_eq!(*va, world.image.base);
                assert_eq!(*kind, AccessKind::Read);
            }
        }
    }
}

#[test]
fn software_sealing_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0xAE03);
    for _ in 0..CASES {
        let mut page = [0u8; PAGE_SIZE];
        rng.fill_bytes(&mut page);
        let vpn = rng.gen_range(0..1_000_000);
        let version = rng.gen_range(1..u64::MAX);
        let key = [9u8; 32];
        let blob = sw_seal(&key, Vpn(vpn), version, &page);
        let opened = sw_open(&key, Vpn(vpn), version, &blob).expect("authentic");
        assert_eq!(&opened[..], &page[..]);
        // Any metadata perturbation must fail.
        assert!(sw_open(&key, Vpn(vpn + 1), version, &blob).is_none());
        assert!(sw_open(&key, Vpn(vpn), version ^ 1, &blob).is_none());
    }
}

#[test]
fn pathoram_matches_model() {
    let mut rng = SimRng::seed_from_u64(0xAE04);
    for _ in 0..CASES {
        let ops: Vec<(u64, u8)> = {
            let n = rng.gen_range_usize(1..80);
            (0..n)
                .map(|_| (rng.gen_range(0..32), rng.next_u64() as u8))
                .collect()
        };
        let storage = MemStorage::new(buckets_for(32));
        let mut oram = PathOram::new(32, 16, 5, [1; 32], storage);
        let mut model = std::collections::HashMap::new();
        for (id, byte) in ops {
            if byte % 2 == 0 {
                let data = vec![byte; 16];
                oram.write(id, &data).expect("write");
                model.insert(id, data);
            } else {
                let expected = model.get(&id).cloned().unwrap_or_else(|| vec![0u8; 16]);
                assert_eq!(oram.read(id).expect("read"), expected);
            }
            assert!(oram.stash_len() <= 40, "stash must stay bounded");
        }
    }
}

#[test]
fn measurement_binds_layout() {
    let mut rng = SimRng::seed_from_u64(0xAE05);
    for _ in 0..8 {
        let code_pages = rng.gen_range_usize(1..8);
        let data_pages = rng.gen_range_usize(1..8);
        let build = |code: usize, data: usize| {
            let (world, _) = SystemBuilder::new("prop-attest", Profile::PinAll)
                .epc_pages(512)
                .code_pages(code)
                .data_pages(data)
                .heap_pages(16)
                .build()
                .expect("system");
            world.os.machine.secs(world.eid).expect("secs").measurement
        };
        let a = build(code_pages, data_pages);
        let b = build(code_pages, data_pages);
        assert_eq!(a, b, "measurement is deterministic");
        let c = build(code_pages + 1, data_pages);
        assert_ne!(a, c, "layout changes the measurement");
    }
}
