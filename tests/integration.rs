//! Cross-crate integration tests: full systems assembled through the
//! public `autarky` API, exercising hardware + OS + runtime + workloads
//! together.

use autarky::prelude::*;
use autarky::workloads::nbench;
use autarky::workloads::uthash::EncHashTable;
use autarky::{Profile, SystemBuilder};

#[test]
fn every_profile_runs_a_real_workload() {
    // The same hash-table workload must produce identical results under
    // every protection profile.
    let profiles = [
        ("unprotected", Profile::Unprotected),
        ("pin-all", Profile::PinAll),
        (
            "clusters",
            Profile::Clusters {
                pages_per_cluster: 4,
            },
        ),
        (
            "rate-limited",
            Profile::RateLimited {
                max_faults_per_progress: 1e9,
                burst: 1 << 40,
            },
        ),
        (
            "cached-oram",
            Profile::CachedOram {
                capacity_pages: 512,
                cache_pages: 64,
            },
        ),
    ];
    let mut reference: Option<Vec<Option<Vec<u8>>>> = None;
    for (name, profile) in profiles {
        let (mut world, mut heap) = SystemBuilder::new(name, profile)
            .epc_pages(2048)
            .heap_pages(512)
            .budget_pages(if matches!(profile, Profile::Clusters { .. }) {
                128
            } else {
                0
            })
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut table = EncHashTable::new(&mut world, &mut heap, 64, 32, 10)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for key in 0..200u64 {
            let value = vec![(key % 251) as u8; 32];
            table
                .insert(&mut world, &mut heap, key, &value)
                .expect("insert");
        }
        let results: Vec<Option<Vec<u8>>> = (0..210u64)
            .map(|key| table.get(&mut world, &mut heap, key).expect("get"))
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(expected, &results, "{name} diverged"),
        }
        assert!(
            !world.rt.is_terminated(),
            "{name}: benign run must not terminate"
        );
    }
}

#[test]
fn attestation_distinguishes_protection_modes() {
    let (world_a, _) = SystemBuilder::new("prot", Profile::PinAll)
        .build()
        .expect("build");
    let (world_b, _) = SystemBuilder::new("prot", Profile::Unprotected)
        .build()
        .expect("build");
    let ra = world_a
        .os
        .machine
        .ereport(world_a.eid, [1; 64])
        .expect("report");
    let rb = world_b
        .os
        .machine
        .ereport(world_b.eid, [1; 64])
        .expect("report");
    assert!(ra.attributes.self_paging);
    assert!(!rb.attributes.self_paging);
    assert_ne!(
        ra.mrenclave, rb.mrenclave,
        "the mode is part of the measured identity"
    );
    assert!(autarky::sgx::attest::verify_report(
        world_a.os.machine.platform_key(),
        &ra
    ));
}

#[test]
fn nbench_kernels_agree_across_modes() {
    // A compute kernel must produce the same checksum whether or not the
    // Autarky hardware checks are active.
    for kernel in nbench::all_kernels().iter().take(3) {
        let mut results = Vec::new();
        for profile in [Profile::Unprotected, Profile::PinAll] {
            let (mut world, mut heap) = SystemBuilder::new("nbench-int", profile)
                .epc_pages(8192)
                .heap_pages(4096)
                .build()
                .expect("system");
            results.push((kernel.run)(&mut world, &mut heap, 1).expect("kernel"));
        }
        assert_eq!(
            results[0], results[1],
            "{} diverged across modes",
            kernel.name
        );
    }
}

#[test]
fn multiple_enclaves_share_epc() {
    // Two enclaves under one OS compete for EPC; both must finish and the
    // pinned pages of the protected one must survive the other's pressure.
    let mut os = Os::new(MachineConfig {
        epc_frames: 256,
        ..Default::default()
    });

    let mut img1 = EnclaveImage::named("tenant-a");
    img1.heap_pages = 64;
    let eid1 = os.load_enclave(&img1).expect("load a");
    let mut rt1 =
        autarky::rt::Runtime::attach(&mut os, eid1, RuntimeConfig::default()).expect("attach");

    let mut img2 = EnclaveImage::named("tenant-b");
    img2.base = Va(0x9000_0000);
    img2.self_paging = false;
    img2.heap_pages = 200;
    let eid2 = os.load_enclave(&img2).expect("load b");
    let mut rt2 =
        autarky::rt::Runtime::attach(&mut os, eid2, RuntimeConfig::default()).expect("attach");

    // Tenant A writes through pinned pages.
    let a_ptr = rt1.malloc(&mut os, 16 * PAGE_SIZE).expect("a alloc");
    rt1.write(&mut os, a_ptr, &[0xAA; 64]).expect("a write");
    // Tenant B (legacy) allocates enough to pressure the EPC.
    let b_ptr = rt2.malloc(&mut os, 180 * PAGE_SIZE).expect("b alloc");
    for i in 0..180u64 {
        rt2.write(&mut os, Va(b_ptr.0 + i * PAGE_SIZE as u64), &[i as u8; 8])
            .expect("b write");
    }
    // Tenant A's pinned data is untouched and still resident.
    let mut buf = [0u8; 64];
    rt1.read(&mut os, a_ptr, &mut buf).expect("a read");
    assert_eq!(buf, [0xAA; 64]);
    assert_eq!(rt1.stats.faults_handled, 0, "pinned pages never fault");
}

#[test]
fn terminated_enclave_cannot_be_restarted_in_place() {
    let (mut world, _heap) = SystemBuilder::new("kill", Profile::PinAll)
        .build()
        .expect("system");
    world.os.machine.terminate(world.eid).expect("terminate");
    assert!(matches!(
        world.os.machine.eenter(world.eid, 0),
        Err(SgxError::Terminated)
    ));
    // A restart means a whole new enclave instance that must re-attest;
    // detecting unusually frequent restarts is the attestation service's
    // job (§3). The old instance stays dead even as the new one runs.
    let (world2, _) = SystemBuilder::new("kill", Profile::PinAll)
        .build()
        .expect("rebuild");
    assert!(world.os.machine.is_terminated(world.eid));
    assert!(!world2.os.machine.is_terminated(world2.eid));
    world2
        .os
        .machine
        .ereport(world2.eid, [0; 64])
        .expect("fresh instance attests");
}

use autarky::sgx::SgxError;
