//! Telemetry integration properties: metric snapshots are deterministic
//! functions of (seed, policy), and the sealed export channel round-trips
//! while rejecting tampering.

use autarky::prelude::*;
use autarky::rt::telemetry_export_key;
use autarky::{Profile, SystemBuilder};

/// Drive a paging-heavy workload and return the final metrics snapshot.
fn drive(name: &str, profile: Profile, budget: usize, seed: u64) -> Vec<u8> {
    let (mut world, mut heap) = SystemBuilder::new(name, profile)
        .epc_pages(2048)
        .heap_pages(256)
        .budget_pages(budget)
        .seed(seed)
        .build()
        .expect("system");
    let ptr = heap.alloc(&mut world, 40 * PAGE_SIZE).expect("alloc");
    for round in 0..3u64 {
        for i in 0..40u64 {
            let p = Ptr(ptr.0 + i * PAGE_SIZE as u64);
            heap.write_u64(&mut world, p, round * 100 + i)
                .expect("write");
        }
    }
    world.rt.telemetry.snapshot_bytes()
}

#[test]
fn snapshots_are_deterministic_across_paging_policies() {
    let policies: [(&str, Profile, usize); 3] = [
        ("tl-pin", Profile::PinAll, 0),
        (
            "tl-clusters",
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            24,
        ),
        (
            "tl-rate",
            Profile::RateLimited {
                max_faults_per_progress: 64.0,
                burst: 4096,
            },
            24,
        ),
    ];
    let mut snapshots = Vec::new();
    for (name, profile, budget) in policies {
        let a = drive(name, profile, budget, 0xFEED);
        let b = drive(name, profile, budget, 0xFEED);
        assert_eq!(
            a, b,
            "{name}: same seed + policy => byte-identical snapshot"
        );
        assert_eq!(&a[..4], b"AYTL", "{name}: snapshot magic");
        snapshots.push(a);
    }
    // The snapshot is not vacuous: paging policies record activity that
    // the pinned profile cannot, so the encodings differ.
    assert_ne!(
        snapshots[0], snapshots[1],
        "pinned and self-paging runs produce different metrics"
    );
}

#[test]
fn exported_epochs_round_trip_and_reject_tampering() {
    let (mut world, mut heap) = SystemBuilder::new(
        "tl-export",
        Profile::Clusters {
            pages_per_cluster: 10,
        },
    )
    .epc_pages(2048)
    .heap_pages(256)
    .budget_pages(24)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 40 * PAGE_SIZE).expect("alloc");
    for i in 0..40u64 {
        let p = Ptr(ptr.0 + i * PAGE_SIZE as u64);
        heap.write_u64(&mut world, p, i).expect("write");
    }
    world
        .rt
        .export_epoch(&mut world.os)
        .expect("export epoch 0");
    heap.read_u64(&mut world, ptr).expect("more work");
    world
        .rt
        .export_epoch(&mut world.os)
        .expect("export epoch 1");

    // A trusted consumer holding the export key recovers both snapshots.
    for epoch in 0..2u64 {
        let snapshot = world
            .rt
            .open_exported_epoch(&mut world.os, epoch)
            .expect("epoch opens");
        assert_eq!(&snapshot[..4], b"AYTL", "snapshot magic");
        let embedded = u64::from_le_bytes(snapshot[8..16].try_into().expect("epoch field"));
        assert_eq!(embedded, epoch, "snapshot embeds its epoch");
    }
    assert!(
        world.rt.open_exported_epoch(&mut world.os, 7).is_none(),
        "an epoch that was never exported does not open"
    );

    // The OS flips one ciphertext byte: the AEAD must refuse.
    let key = telemetry_export_key(world.eid.0, 1);
    let mut blob = world.os.sys_untrusted_read(key).expect("blob exists");
    let last = blob.len() - 1;
    blob[last] ^= 0xFF;
    world.os.sys_untrusted_write(key, blob);
    assert!(
        world.rt.open_exported_epoch(&mut world.os, 1).is_none(),
        "tampered export is rejected"
    );
    assert!(
        world.rt.open_exported_epoch(&mut world.os, 0).is_some(),
        "other epochs are unaffected"
    );
}
