//! Policy-level behavioural tests across the full stack: budgets,
//! clusters, rate limits, ORAM, whole-enclave swap, and the OS interface
//! contract of §5.2.1.

use autarky::os::Observation;
use autarky::prelude::*;
use autarky::{Profile, SystemBuilder};

fn touch_pages(world: &mut World, heap: &mut EncHeap, ptr: Ptr, pages: u64) {
    for i in 0..pages {
        heap.write_u64(world, ptr.offset(i * PAGE_SIZE as u64), i)
            .expect("write");
    }
}

#[test]
fn budget_is_respected_under_any_access_pattern() {
    let budget = 96usize;
    let (mut world, mut heap) = SystemBuilder::new(
        "budget",
        Profile::Clusters {
            pages_per_cluster: 4,
        },
    )
    .epc_pages(2048)
    .heap_pages(512)
    .budget_pages(budget)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 256 * PAGE_SIZE).expect("alloc");
    // Sequential, strided, and pseudo-random sweeps.
    touch_pages(&mut world, &mut heap, ptr, 256);
    for i in (0..256u64).step_by(7) {
        heap.read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64))
            .expect("read");
        assert!(world.rt.resident_pages() <= budget, "budget violated");
    }
    for i in 0..200u64 {
        let page = autarky::workloads::uthash::hash64(i) % 256;
        heap.read_u64(&mut world, ptr.offset(page * PAGE_SIZE as u64))
            .expect("read");
        assert!(world.rt.resident_pages() <= budget, "budget violated");
    }
    assert!(
        world.rt.cluster_invariant_holds(),
        "cluster invariant maintained"
    );
}

#[test]
fn cluster_fetches_never_leak_individual_pages() {
    let (mut world, mut heap) = SystemBuilder::new(
        "leakcheck",
        Profile::Clusters {
            pages_per_cluster: 8,
        },
    )
    .epc_pages(2048)
    .heap_pages(512)
    .budget_pages(80)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 200 * PAGE_SIZE).expect("alloc");
    touch_pages(&mut world, &mut heap, ptr, 200);
    let mark = world.os.observation_mark();
    // Random secret-dependent accesses.
    for i in 0..100u64 {
        let page = autarky::workloads::uthash::hash64(i ^ 0x5EED) % 200;
        heap.read_u64(&mut world, ptr.offset(page * PAGE_SIZE as u64))
            .expect("read");
    }
    // Every fetch the OS observed named a full cluster (8 pages), and
    // every fault report was masked to the enclave base.
    for obs in world.os.observations_since(mark) {
        match obs {
            Observation::FetchSyscall { pages, .. } => {
                assert!(
                    pages.len() >= 8 || pages.len() == 200 % 8,
                    "fetch of {} pages breaks the anonymity set",
                    pages.len()
                );
            }
            Observation::Fault { va, kind, .. } => {
                assert_eq!(*va, world.image.base, "fault address masked");
                assert_eq!(*kind, AccessKind::Read, "fault kind masked");
            }
            _ => {}
        }
    }
}

#[test]
fn rate_limit_allows_benign_workloads_and_kills_thrash() {
    // Benign: faults paid for by progress.
    let (mut world, mut heap) = SystemBuilder::new(
        "benign",
        Profile::RateLimited {
            max_faults_per_progress: 8.0,
            burst: 64,
        },
    )
    .epc_pages(2048)
    .heap_pages(256)
    .budget_pages(64)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 128 * PAGE_SIZE).expect("alloc");
    for i in 0..128u64 {
        world.progress(1);
        heap.write_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64), i)
            .expect("write");
    }
    assert!(!world.rt.is_terminated(), "benign paging survives");

    // Malicious-looking: fault storm with no progress.
    let (mut world, mut heap) = SystemBuilder::new(
        "thrash",
        Profile::RateLimited {
            max_faults_per_progress: 0.5,
            burst: 8,
        },
    )
    .epc_pages(2048)
    .heap_pages(256)
    .budget_pages(16)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 64 * PAGE_SIZE).expect("alloc");
    let mut killed = false;
    for round in 0..64u64 {
        for i in 0..64u64 {
            match heap.read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64)) {
                Ok(_) => {}
                Err(RtError::RateLimitExceeded) => {
                    killed = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        if killed {
            break;
        }
        let _ = round;
    }
    assert!(killed, "unpaid fault storm must trip the limiter");
    assert!(world.rt.is_terminated());
}

#[test]
fn oram_profile_hides_access_pattern_from_fetch_stream() {
    let (mut world, mut heap) = SystemBuilder::new(
        "oram-leak",
        Profile::CachedOram {
            capacity_pages: 256,
            cache_pages: 16,
        },
    )
    .epc_pages(1024)
    .heap_pages(64)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 64 * PAGE_SIZE).expect("alloc");
    touch_pages(&mut world, &mut heap, ptr, 64);
    let mark = world.os.observation_mark();
    // A pathological pattern: hammer one secret page.
    for _ in 0..50 {
        heap.read_u64(&mut world, ptr.offset(13 * PAGE_SIZE as u64))
            .expect("read");
        heap.read_u64(&mut world, ptr.offset(14 * PAGE_SIZE as u64))
            .expect("read");
        heap.read_u64(&mut world, ptr.offset(47 * PAGE_SIZE as u64))
            .expect("read");
    }
    // The ORAM data path produces no fetch/evict syscalls at all (its
    // bucket traffic is position-randomized and tested in the oram crate).
    for obs in world.os.observations_since(mark) {
        assert!(
            !matches!(
                obs,
                Observation::FetchSyscall { .. } | Observation::EvictSyscall { .. }
            ),
            "ORAM profile must not expose page-granular paging syscalls"
        );
    }
}

#[test]
fn whole_enclave_swap_respects_the_contract() {
    let (mut world, mut heap) = SystemBuilder::new(
        "swap",
        Profile::Clusters {
            pages_per_cluster: 4,
        },
    )
    .epc_pages(2048)
    .heap_pages(128)
    .build()
    .expect("system");
    let ptr = heap.alloc(&mut world, 32 * PAGE_SIZE).expect("alloc");
    touch_pages(&mut world, &mut heap, ptr, 32);
    let before: Vec<u64> = (0..32u64)
        .map(|i| {
            heap.read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64))
                .expect("read")
        })
        .collect();

    let eid = world.eid;
    let evicted = world.os.suspend_enclave(eid).expect("suspend");
    assert_eq!(world.os.machine.epc_frames_of(eid), 0, "fully swapped out");
    let restored = world.os.resume_enclave(eid).expect("resume");
    assert_eq!(evicted, restored, "all pages restored before resumption");

    let after: Vec<u64> = (0..32u64)
        .map(|i| {
            heap.read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64))
                .expect("read")
        })
        .collect();
    assert_eq!(before, after, "contents intact");
    assert!(
        !world.rt.is_terminated(),
        "no false attack verdict after swap"
    );
}

#[test]
fn sgx2_software_paging_equivalent_to_sgx1() {
    let run = |mechanism| {
        let (mut world, mut heap) = SystemBuilder::new(
            "mech",
            Profile::Clusters {
                pages_per_cluster: 2,
            },
        )
        .epc_pages(2048)
        .heap_pages(256)
        .budget_pages(48)
        .mechanism(mechanism)
        .build()
        .expect("system");
        let ptr = heap.alloc(&mut world, 96 * PAGE_SIZE).expect("alloc");
        touch_pages(&mut world, &mut heap, ptr, 96);
        let mut sum = 0u64;
        for i in 0..96u64 {
            sum = sum.wrapping_add(
                heap.read_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64))
                    .expect("read"),
            );
        }
        sum
    };
    assert_eq!(
        run(PagingMechanism::Sgx1),
        run(PagingMechanism::Sgx2),
        "both mechanisms preserve data"
    );
}
