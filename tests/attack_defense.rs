//! The paper's security claims as executable tests: every published
//! controlled-channel attack variant must succeed against vanilla SGX and
//! be defeated by Autarky.

use autarky::os::{Attacker, FaultPlan, Observation};
use autarky::prelude::*;
use autarky::workloads::font::{recover_text_from_trace, FontRenderer};
use autarky::workloads::jpeg;
use autarky::workloads::spell::{synth_wordlist, Dictionary};
use autarky::{Profile, SystemBuilder};

fn build(name: &str, profile: Profile) -> (World, EncHeap) {
    SystemBuilder::new(name, profile)
        .epc_pages(2048)
        .code_pages(24)
        .heap_pages(512)
        .build()
        .expect("system")
}

/// Arm a low-rate transient-only fault plan on a *protected* build: the
/// defense properties below must keep holding while the OS is
/// additionally flaky (delays, transient failures, partial batches,
/// spurious suspensions). Hostile lying/tampering kinds are exercised
/// separately in `fault_injection.rs`.
fn arm_transient(world: &mut World, seed: u64) {
    world
        .os
        .arm_fault_plan(FaultPlan::transient_only(seed, 0.05));
}

// ------------------------------------------------------------------
// Attack 1: Xu et al. fault tracing of code pages (FreeType).
// ------------------------------------------------------------------

#[test]
fn freetype_attack_succeeds_on_vanilla_sgx() {
    let (mut world, mut heap) = build("ft-victim", Profile::Unprotected);
    let secret = "attackatdusk";
    let code_pages: Vec<Vpn> = world.image.code_range().collect();
    world
        .os
        .arm_fault_tracer(world.eid, code_pages)
        .expect("arm");
    let mut font = FontRenderer::new(&mut world, &mut heap, 16).expect("font");
    font.render_text(&mut world, &mut heap, secret)
        .expect("render");
    let tracer = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t,
        other => panic!("{other:?}"),
    };
    let code_start = world.image.code_start().0;
    let offsets: Vec<u64> = tracer.trace.iter().map(|v| v.0 - code_start).collect();
    let alphabet: Vec<char> = ('a'..='z').collect();
    assert_eq!(
        recover_text_from_trace(&offsets, &alphabet),
        secret,
        "the code-page trace reveals the rendered text on vanilla SGX"
    );
}

#[test]
fn freetype_attack_blocked_by_autarky() {
    let (mut world, mut heap) = build("ft-protected", Profile::PinAll);
    arm_transient(&mut world, 1);
    let code_pages: Vec<Vpn> = world.image.code_range().collect();
    world
        .os
        .arm_fault_tracer(world.eid, code_pages)
        .expect("arm");
    let mut font = FontRenderer::new(&mut world, &mut heap, 16).expect("font");
    let err = font
        .render_text(&mut world, &mut heap, "attackatdusk")
        .expect_err("the defense must fire");
    assert!(matches!(err, RtError::AttackDetected { .. }), "{err}");
    let tracer = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t,
        other => panic!("{other:?}"),
    };
    assert!(
        tracer.trace.is_empty(),
        "no attributable page ever observed"
    );
    assert!(world.os.machine.is_terminated(world.eid));
}

// ------------------------------------------------------------------
// Attack 2: A/D-bit monitoring (Wang et al.) of data pages.
// ------------------------------------------------------------------

#[test]
fn ad_bit_attack_traces_vanilla_and_is_blocked_by_autarky() {
    // Vanilla: the monitor harvests the access pattern without any fault.
    let (mut world, mut heap) = build("ad-victim", Profile::Unprotected);
    let ptr = heap.alloc(&mut world, 8 * PAGE_SIZE).expect("alloc");
    let pages: Vec<Vpn> = (0..8).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
    for &p in &pages {
        heap.write_u64(&mut world, Ptr(p.0 << 12), 1)
            .expect("touch");
    }
    world
        .os
        .arm_ad_monitor(world.eid, pages.iter().copied())
        .expect("arm");
    let secret_pages = [3usize, 1, 6];
    for &s in &secret_pages {
        heap.read_u64(&mut world, Ptr(pages[s].0 << 12))
            .expect("read");
        world.os.attacker_poll();
    }
    let monitor = match world.os.disarm_attacker() {
        Attacker::AdMonitor(m) => m,
        other => panic!("{other:?}"),
    };
    let observed: Vec<Vpn> = monitor.trace.iter().map(|(v, _)| *v).collect();
    assert_eq!(
        observed,
        vec![pages[3], pages[1], pages[6]],
        "A/D bits leak the access sequence on vanilla SGX"
    );

    // Autarky: the cleared bit itself faults and the handler terminates.
    let (mut world, mut heap) = build("ad-protected", Profile::PinAll);
    arm_transient(&mut world, 2);
    let ptr = heap.alloc(&mut world, 8 * PAGE_SIZE).expect("alloc");
    let pages: Vec<Vpn> = (0..8).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
    for &p in &pages {
        heap.write_u64(&mut world, Ptr(p.0 << 12), 1)
            .expect("touch");
    }
    world
        .os
        .arm_ad_monitor(world.eid, pages.iter().copied())
        .expect("arm");
    let err = heap
        .read_u64(&mut world, Ptr(pages[3].0 << 12))
        .expect_err("detected");
    assert!(
        matches!(err, RtError::AttackDetected { why, .. } if why.contains("accessed/dirty")),
        "{err}"
    );
    world.os.attacker_poll();
    let monitor = match world.os.disarm_attacker() {
        Attacker::AdMonitor(m) => m,
        other => panic!("{other:?}"),
    };
    assert!(
        monitor.trace.is_empty(),
        "the bits were never set for the OS to read"
    );
}

// ------------------------------------------------------------------
// Attack 3: the Hunspell dictionary trace (data pages).
// ------------------------------------------------------------------

#[test]
fn hunspell_word_signatures_leak_on_vanilla_and_not_under_clusters() {
    // The attacker knows the (public) dictionary and layout; the secret is
    // the queried word. On vanilla SGX the fault trace of a single lookup
    // identifies the bucket chain — and hence the word.
    let words = synth_wordlist("en", 1500);
    let (mut world, mut heap) = build("hs-victim", Profile::Unprotected);
    let dict = Dictionary::load(&mut world, &mut heap, "en", 1500).expect("load");

    // Build the reference signature per candidate word by tracing a
    // lookup of each (the attacker can do this offline with the public
    // dictionary).
    let pages = dict.pages.clone();
    let mut signatures: Vec<(String, Vec<Vpn>)> = Vec::new();
    for word in words.iter().take(40) {
        world
            .os
            .arm_fault_tracer(world.eid, pages.iter().copied())
            .expect("arm");
        dict.check(&mut world, &mut heap, word).expect("lookup");
        if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
            signatures.push((word.clone(), t.trace));
        }
    }
    // Signatures must be discriminative for most words.
    let distinct: std::collections::HashSet<&Vec<Vpn>> =
        signatures.iter().map(|(_, s)| s).collect();
    assert!(
        distinct.len() > signatures.len() / 2,
        "page-trace signatures distinguish words ({} / {})",
        distinct.len(),
        signatures.len()
    );

    // Replay the attack against the secret query.
    let secret_word = &words[7];
    world
        .os
        .arm_fault_tracer(world.eid, pages.iter().copied())
        .expect("arm");
    dict.check(&mut world, &mut heap, secret_word)
        .expect("query");
    let trace = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t.trace,
        other => panic!("{other:?}"),
    };
    let matched: Vec<&String> = signatures
        .iter()
        .filter(|(_, sig)| sig == &trace)
        .map(|(w, _)| w)
        .collect();
    assert!(
        matched.contains(&secret_word),
        "the attack recovers a candidate set containing the secret word"
    );

    // Under Autarky with one cluster per dictionary, the only OS-visible
    // event is a whole-dictionary fetch.
    let (mut world, mut heap) = build(
        "hs-protected",
        Profile::Clusters {
            pages_per_cluster: 0,
        },
    );
    // Whole-call transient faults only: batch-shaping kinds would make
    // the hardened runtime legitimately re-request just the missing
    // suffix of a cluster, which is exactly what the whole-dictionary
    // observation check below must not be confused by.
    world.os.arm_fault_plan(FaultPlan {
        partial_batch: 0.0,
        suspend: 0.0,
        ..FaultPlan::transient_only(3, 0.05)
    });
    let dict = Dictionary::load(&mut world, &mut heap, "en", 1500).expect("load");
    let cluster = world.rt.clusters.new_cluster();
    for &page in &dict.pages {
        world.rt.clusters.ay_add_page(cluster, page).expect("add");
    }
    // Evict the whole dictionary (legitimate paging), then query.
    let evictable: Vec<Vpn> = dict
        .pages
        .iter()
        .copied()
        .filter(|&p| world.rt.residency(p) == Some(true))
        .collect();
    world
        .rt
        .evict_pages(&mut world.os, &evictable)
        .expect("evict");
    let mark = world.os.observation_mark();
    dict.check(&mut world, &mut heap, &words[7]).expect("query");
    let obs = world.os.observations_since(mark);
    for o in obs {
        if let Observation::FetchSyscall { pages, .. } = o {
            assert_eq!(
                pages.len(),
                dict.pages.len(),
                "fetches name whole dictionaries, not word-specific pages"
            );
        }
    }
}

// ------------------------------------------------------------------
// Attack 4: the libjpeg flatness map (IDCT shortcut).
// ------------------------------------------------------------------

#[test]
fn libjpeg_flatness_leaks_on_vanilla_and_not_under_pinning() {
    let side = 64;
    let image = jpeg::synth_image(side, side, 99);
    let compressed = jpeg::encode(side, side, &image);
    let truth = jpeg::flatness_map(&compressed);

    // Vanilla: trace the decoder's two IDCT code pages.
    let (mut world, mut heap) = build("jp-victim", Profile::Unprotected);
    let code_start = world.image.code_start().0;
    let full = Vpn(code_start + jpeg::CODE_PAGE_IDCT_FULL);
    let dcval = Vpn(code_start + jpeg::CODE_PAGE_IDCT_DCVAL);
    world
        .os
        .arm_fault_tracer(world.eid, [full, dcval])
        .expect("arm");
    let mut decoder = jpeg::Decoder::new(&mut world, &mut heap, side, side).expect("decoder");
    decoder
        .decode(&mut world, &mut heap, &compressed)
        .expect("decode");
    let trace = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t.trace,
        other => panic!("{other:?}"),
    };
    // The attacker sees a fault only when the decoder *switches* between
    // the two IDCT code pages, so the noise-free property it recovers is
    // the image's run structure: the number of dcval-page faults equals
    // the number of flat-block runs in the truth map.
    let flat_runs = truth
        .iter()
        .zip(std::iter::once(&false).chain(truth.iter()))
        .filter(|(cur, prev)| **cur && !**prev)
        .count();
    let dcval_faults = trace.iter().filter(|&&v| v == dcval).count();
    assert_eq!(
        dcval_faults, flat_runs,
        "code-page faults reveal the block structure"
    );

    // Autarky, everything pinned: the decoder runs fault-free; the armed
    // tracer kills the enclave on its very first induced fault instead.
    let (mut world, mut heap) = build("jp-protected", Profile::PinAll);
    arm_transient(&mut world, 4);
    world
        .os
        .arm_fault_tracer(world.eid, [full, dcval])
        .expect("arm");
    let mut decoder = jpeg::Decoder::new(&mut world, &mut heap, side, side).expect("decoder");
    let err = decoder
        .decode(&mut world, &mut heap, &compressed)
        .expect_err("defense fires");
    assert!(matches!(err, RtError::AttackDetected { .. }));
    if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
        assert!(t.trace.is_empty());
    }
}

// ------------------------------------------------------------------
// §5.3: termination & lack-of-faults attacks are bounded.
// ------------------------------------------------------------------

#[test]
fn termination_attack_yields_one_bit() {
    // The OS unmaps a set of pages; if the enclave dies, it learns only
    // that *some* page of the set was accessed — one bit per restart.
    let (mut world, mut heap) = build("term", Profile::PinAll);
    arm_transient(&mut world, 5);
    let ptr = heap.alloc(&mut world, 4 * PAGE_SIZE).expect("alloc");
    heap.write_u64(&mut world, ptr, 7).expect("touch");
    let pages: Vec<Vpn> = (0..4).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
    world
        .os
        .arm_fault_tracer(world.eid, pages.iter().copied())
        .expect("arm");
    let err = heap.read_u64(&mut world, ptr).expect_err("detected");
    assert!(matches!(err, RtError::AttackDetected { .. }));
    // Adversary view: exactly one masked fault; which of the 4 pages
    // faulted is not attributable.
    if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
        assert_eq!(t.masked_faults, 1);
        assert!(t.trace.is_empty());
    }
    let obs = world.os.observations();
    let fault_reports: Vec<&Observation> = obs
        .iter()
        .filter(|o| matches!(o, Observation::Fault { .. }))
        .collect();
    assert_eq!(fault_reports.len(), 1);
    if let Observation::Fault { va, kind, .. } = fault_reports[0] {
        assert_eq!(*va, world.image.base, "address fully masked");
        assert_eq!(*kind, AccessKind::Read, "access type masked");
    }
}

// ------------------------------------------------------------------
// Attack 5: permission-stripping variant (write-protect, AsyncShock-style).
// ------------------------------------------------------------------

#[test]
fn write_protect_tracer_works_on_vanilla_and_is_blocked() {
    use autarky::os::TraceMode;
    let mode = TraceMode::StripPermission {
        write: true,
        execute: false,
    };

    // Vanilla: write-faults reveal the store pattern.
    let (mut world, mut heap) = build("wp-victim", Profile::Unprotected);
    let ptr = heap.alloc(&mut world, 6 * PAGE_SIZE).expect("alloc");
    let pages: Vec<Vpn> = (0..6).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
    for &p in &pages {
        heap.write_u64(&mut world, Ptr(p.0 << 12), 0)
            .expect("touch");
    }
    world
        .os
        .arm_fault_tracer_mode(world.eid, pages.iter().copied(), mode)
        .expect("arm");
    let secret_writes = [4usize, 0, 5];
    for &s in &secret_writes {
        heap.write_u64(&mut world, Ptr(pages[s].0 << 12), 1)
            .expect("write");
    }
    // Reads never fault under write-protection (stealthier than unmap).
    heap.read_u64(&mut world, Ptr(pages[2].0 << 12))
        .expect("read silently");
    let tracer = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        tracer.trace,
        vec![pages[4], pages[0], pages[5]],
        "write-protect faults reveal exactly the store pattern"
    );

    // Autarky: the first induced write-fault on a resident page is an
    // attack; the report carries no page or access-type information.
    let (mut world, mut heap) = build("wp-protected", Profile::PinAll);
    arm_transient(&mut world, 6);
    let ptr = heap.alloc(&mut world, 6 * PAGE_SIZE).expect("alloc");
    let pages: Vec<Vpn> = (0..6).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
    for &p in &pages {
        heap.write_u64(&mut world, Ptr(p.0 << 12), 0)
            .expect("touch");
    }
    world
        .os
        .arm_fault_tracer_mode(world.eid, pages.iter().copied(), mode)
        .expect("arm");
    let err = heap
        .write_u64(&mut world, Ptr(pages[4].0 << 12), 1)
        .expect_err("detected");
    assert!(matches!(err, RtError::AttackDetected { .. }), "{err}");
    if let Attacker::FaultTracer(t) = world.os.disarm_attacker() {
        assert!(t.trace.is_empty());
        assert_eq!(t.masked_faults, 1);
    }
}

#[test]
fn straddling_access_completes_under_full_density_tracing() {
    // An 8-byte read spanning two adjacent *armed* pages: a purely
    // transition-granular tracer would ping-pong the pair forever
    // (restoring one page re-protects the other, so the replayed access
    // never completes). The tracer resolves the straddle — both pages
    // stay open, the victim progresses, and each page is traced once.
    let (mut world, mut heap) = build("straddle", Profile::Unprotected);
    let ptr = heap.alloc(&mut world, 2 * PAGE_SIZE).expect("alloc");
    let lo = Vpn(ptr.0 >> 12);
    let hi = Vpn(lo.0 + 1);
    heap.write_u64(&mut world, Ptr(lo.0 << 12), 1).expect("lo");
    heap.write_u64(&mut world, Ptr(hi.0 << 12), 2).expect("hi");
    world.os.arm_fault_tracer(world.eid, [lo, hi]).expect("arm");
    let boundary = Ptr((hi.0 << 12) - 4);
    heap.read_u64(&mut world, boundary)
        .expect("straddling read completes");
    let tracer = match world.os.disarm_attacker() {
        Attacker::FaultTracer(t) => t,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        tracer.trace,
        vec![lo, hi],
        "both pages enter the trace exactly once"
    );
}

// ------------------------------------------------------------------
// Integrity attacks on the backing store (beyond tracing).
// ------------------------------------------------------------------

#[test]
fn tampered_ewb_blob_rejected_on_reload() {
    // The OS corrupts a sealed page in untrusted swap; ELDU must refuse
    // and the enclave must never observe modified contents.
    let (mut world, mut heap) = build(
        "tamper",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    );
    arm_transient(&mut world, 7);
    let ptr = heap.alloc(&mut world, PAGE_SIZE).expect("alloc");
    heap.write_u64(&mut world, ptr, 0xDEAD_BEEF).expect("write");
    let vpn = Vpn(ptr.0 >> 12);
    world.rt.evict_pages(&mut world.os, &[vpn]).expect("evict");

    // Corrupt the blob in the backing store.
    let mut sealed = world
        .os
        .backing
        .take_sealed(world.eid, vpn)
        .expect("blob exists");
    sealed.ciphertext[123] ^= 0xFF;
    world.os.backing.put_sealed(sealed);

    let err = heap
        .read_u64(&mut world, ptr)
        .expect_err("reload must fail");
    assert!(
        matches!(
            err,
            RtError::Os(autarky::os::OsError::Sgx(
                autarky::sgx::SgxError::SealBroken
            ))
        ),
        "got {err}"
    );
}

#[test]
fn replayed_ewb_blob_rejected_on_reload() {
    // The OS keeps an old (authentic) version of a page and replays it
    // after the enclave has written a newer one: the version array check
    // must refuse.
    let (mut world, mut heap) = build(
        "replay",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    );
    arm_transient(&mut world, 8);
    let ptr = heap.alloc(&mut world, PAGE_SIZE).expect("alloc");
    heap.write_u64(&mut world, ptr, 1).expect("v1");
    let vpn = Vpn(ptr.0 >> 12);
    world
        .rt
        .evict_pages(&mut world.os, &[vpn])
        .expect("evict v1");
    let stale = world
        .os
        .backing
        .get_sealed(world.eid, vpn)
        .expect("blob")
        .clone();
    // Legitimate reload + update + re-evict bumps the version.
    heap.read_u64(&mut world, ptr).expect("reload v1");
    heap.write_u64(&mut world, ptr, 2).expect("v2");
    world
        .rt
        .evict_pages(&mut world.os, &[vpn])
        .expect("evict v2");
    // Replay the stale blob.
    world.os.backing.put_sealed(stale);
    let err = heap.read_u64(&mut world, ptr).expect_err("replay refused");
    assert!(
        matches!(
            err,
            RtError::Os(autarky::os::OsError::Sgx(autarky::sgx::SgxError::Replay(_)))
        ),
        "got {err}"
    );
}

// ------------------------------------------------------------------
// Quantitative leakage: the audit subsystem's numbers on the matrix.
// ------------------------------------------------------------------

#[test]
fn leakage_audit_quantifies_the_channel() {
    // One distinguishable cell (legacy paging, traced code pages) and
    // one closed cell (cached ORAM): the audit must measure ~1 bit per
    // run on the former and ~0 on the latter.
    let config = autarky_leakage::AuditConfig {
        seeds: 2,
        ..Default::default()
    };
    let report = autarky_leakage::audit::run_audit_filtered(
        &config,
        &["baseline/font".into(), "cached-oram/font".into()],
    );
    assert_eq!(report.cells.len(), 2);

    let baseline = report
        .cells
        .iter()
        .find(|c| c.policy == "baseline")
        .expect("baseline cell");
    assert!(
        baseline.dist.mi_bits >= 0.9,
        "legacy paging leaks the secret: {} bits/run",
        baseline.dist.mi_bits
    );
    assert!(
        baseline.dist.mean_cross_tv > baseline.dist.mean_within_tv,
        "cross-class traces are farther apart than same-class ones"
    );

    let oram = report
        .cells
        .iter()
        .find(|c| c.policy == "cached-oram")
        .expect("cached-oram cell");
    assert!(
        oram.dist.mi_bits <= 0.25,
        "cached ORAM is indistinguishable: {} bits/run",
        oram.dist.mi_bits
    );
    assert!(
        oram.dist.mean_cross_tv <= oram.dist.mean_within_tv + 1e-9,
        "under ORAM, cross-class distance ({}) collapses to the \
         same-class noise floor ({})",
        oram.dist.mean_cross_tv,
        oram.dist.mean_within_tv
    );
    assert!(report.pass, "both gates hold");
}

// ------------------------------------------------------------------
// Forensics: the flight recorder names the injected fault as the
// causal root of an attack verdict.
// ------------------------------------------------------------------

#[test]
fn forensic_timeline_names_injected_fault_as_attack_root() {
    use autarky::os::flight::{causal_root_of_attack, render_timeline};
    use autarky::os::{FlightEvent, InjectedFault};

    let (mut world, mut heap) = build(
        "forensics",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    );
    world.os.arm_flight_recorder(4096);
    let ptr = heap.alloc(&mut world, PAGE_SIZE).expect("alloc");
    heap.write_u64(&mut world, ptr, 7).expect("touch");
    let vpn = Vpn(ptr.0 >> 12);

    // A hostile OS that spuriously evicts exactly one pinned page on the
    // next driver call, then goes quiet. The victim is the
    // lowest-numbered resident enclave-managed page.
    world.os.arm_fault_plan(FaultPlan {
        spurious_evict: 1.0,
        max_injections: Some(1),
        ..FaultPlan::quiescent(9)
    });
    world
        .rt
        .evict_pages(&mut world.os, &[vpn])
        .expect("the legitimate eviction itself succeeds");

    // The flight log already names the victim page (this is forensics:
    // the test reads the recorder the way an operator would).
    let victim = world
        .os
        .flight_snapshot()
        .iter()
        .find_map(|r| match &r.event {
            FlightEvent::Kernel(Observation::FaultInjected {
                fault: InjectedFault::SpuriousEvict { vpn },
                ..
            }) => Some(*vpn),
            _ => None,
        })
        .expect("the spurious eviction was recorded");

    // The victim is a page the runtime believes resident; touching it
    // faults, the fault is unexplainable, and the defense fires.
    let err = world
        .rt
        .exec(&mut world.os, Va(victim.0 << 12))
        .expect_err("detected");
    assert!(matches!(err, RtError::AttackDetected { .. }), "{err}");

    let recorder = world
        .os
        .disarm_flight_recorder()
        .expect("recorder was armed");
    let records = recorder.snapshot();

    // The reconstruction must resolve the verdict to the injection.
    let (attack, root) = causal_root_of_attack(&records).expect("causal root exists");
    assert!(matches!(attack.event, FlightEvent::AttackDetected { .. }));
    let spurious_vpn = match &root.event {
        FlightEvent::Kernel(Observation::FaultInjected {
            fault: InjectedFault::SpuriousEvict { vpn },
            ..
        }) => *vpn,
        other => panic!("root is not the injected spurious eviction: {other:?}"),
    };
    match &attack.event {
        FlightEvent::AttackDetected { vpn, .. } => {
            assert_eq!(*vpn, spurious_vpn, "verdict names the injected page")
        }
        other => panic!("{other:?}"),
    }

    // And the rendered post-mortem says so in as many words.
    let report = render_timeline(&records, 50);
    assert!(
        report.contains("Causal root of the attack verdict"),
        "{report}"
    );
    assert!(report.contains("INJECTED FAULT"), "{report}");
    assert!(report.contains("ATTACK DETECTED"), "{report}");
}
