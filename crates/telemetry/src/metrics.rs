//! Metrics: counters, gauges, and log-linear histograms with a schema
//! fixed at construction.
//!
//! Names are registered up front so the snapshot encoding has a static
//! layout (registration order == encoding order); recording against an
//! unregistered name panics, because that is a schema bug the tests
//! should catch, not a runtime condition.

/// Log-linear histogram: one octave per power of two, four linear
/// sub-buckets per octave (~25% relative resolution), fixed storage.
///
/// Values 0..8 get exact buckets; the largest `u64` lands in bucket 251.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Number of buckets in every [`Histogram`].
pub const HIST_BUCKETS: usize = 252;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Encoded size: buckets plus count/sum/min/max.
    pub const ENCODED_LEN: usize = (HIST_BUCKETS + 4) * 8;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value.
    pub fn bucket_index(value: u64) -> usize {
        if value < 8 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (octave - 2)) & 3) as usize;
        (octave - 1) * 4 + sub
    }

    /// Inclusive lower bound of a bucket (for percentile reporting).
    pub fn bucket_floor(index: usize) -> u64 {
        if index < 8 {
            return index as u64;
        }
        let octave = index / 4 + 1;
        let sub = (index % 4) as u64;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`); 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(HIST_BUCKETS - 1)
    }

    /// Digest the distribution into the standard latency summary
    /// (p50/p99/p999 + mean). This is the single quantile surface the
    /// whole workspace reports through — fleet and profiler percentiles
    /// are this method, not parallel re-implementations of the bucket
    /// walk.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            mean: self.mean(),
        }
    }

    /// Merge another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Append the canonical little-endian encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min().to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        for b in &self.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    /// Rebuild a histogram from its canonical encoding (the inverse of
    /// [`Histogram::encode_into`]), consuming from `input`. The encoding
    /// stores `min()` (0 when empty), so an empty histogram decodes back
    /// to the internal `u64::MAX` sentinel and keeps recording correctly.
    /// Returns `None` on truncation.
    pub fn decode_from(input: &mut &[u8]) -> Option<Histogram> {
        let count = take_u64(input)?;
        let sum = take_u64(input)?;
        let min = take_u64(input)?;
        let max = take_u64(input)?;
        let mut buckets = [0u64; HIST_BUCKETS];
        for b in &mut buckets {
            *b = take_u64(input)?;
        }
        Some(Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        })
    }
}

/// The standard latency digest derived from a [`Histogram`]: the
/// percentile set every report in the workspace prints. Values are
/// bucket floors (the same ~25% relative resolution as the histogram
/// itself), so two digests of byte-identical histograms are equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded values.
    pub count: u64,
    /// Median, cycles (bucket floor).
    pub p50: u64,
    /// 99th percentile, cycles (bucket floor).
    pub p99: u64,
    /// 99.9th percentile, cycles (bucket floor).
    pub p999: u64,
    /// Mean, cycles.
    pub mean: f64,
}

/// Consume a little-endian `u64` from the front of `input`.
pub(crate) fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&input[..8]);
    *input = &input[8..];
    Some(u64::from_le_bytes(bytes))
}

/// Consume a little-endian `u32` from the front of `input`.
pub(crate) fn take_u32(input: &mut &[u8]) -> Option<u32> {
    if input.len() < 4 {
        return None;
    }
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&input[..4]);
    *input = &input[4..];
    Some(u32::from_le_bytes(bytes))
}

/// A fixed set of named `u64` counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSet {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl CounterSet {
    /// Register the counter names (the schema).
    pub fn new(names: &[&'static str]) -> Self {
        Self {
            names: names.to_vec(),
            values: vec![0; names.len()],
        }
    }

    fn index(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unregistered counter: {name}"))
    }

    /// Add `n` to a counter.
    pub fn add(&mut self, name: &str, n: u64) {
        let i = self.index(name);
        self.values[i] += n;
    }

    /// Read a counter.
    pub fn get(&self, name: &str) -> u64 {
        self.values[self.index(name)]
    }

    /// Registered names, in encoding order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Merge another set (schemas must match).
    pub fn absorb(&mut self, other: &CounterSet) {
        assert_eq!(self.names, other.names, "counter schema mismatch");
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }

    /// Append values in registration order.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Encoded size for this schema.
    pub fn encoded_len(&self) -> usize {
        4 + self.values.len() * 8
    }

    /// Overwrite the values from a canonical encoding produced under the
    /// same schema, consuming from `input`. Returns `None` on truncation
    /// or if the encoded count differs from the registered schema.
    pub fn restore_from(&mut self, input: &mut &[u8]) -> Option<()> {
        let n = take_u32(input)? as usize;
        if n != self.names.len() {
            return None;
        }
        for v in &mut self.values {
            *v = take_u64(input)?;
        }
        Some(())
    }
}

/// A fixed set of named gauges (last value + high-water mark + sample
/// count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSet {
    names: Vec<&'static str>,
    last: Vec<u64>,
    max: Vec<u64>,
    samples: Vec<u64>,
}

impl GaugeSet {
    /// Register the gauge names (the schema).
    pub fn new(names: &[&'static str]) -> Self {
        Self {
            names: names.to_vec(),
            last: vec![0; names.len()],
            max: vec![0; names.len()],
            samples: vec![0; names.len()],
        }
    }

    fn index(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unregistered gauge: {name}"))
    }

    /// Sample a gauge.
    pub fn set(&mut self, name: &str, value: u64) {
        let i = self.index(name);
        self.last[i] = value;
        self.max[i] = self.max[i].max(value);
        self.samples[i] += 1;
    }

    /// Last sampled value.
    pub fn last(&self, name: &str) -> u64 {
        self.last[self.index(name)]
    }

    /// High-water mark.
    pub fn max(&self, name: &str) -> u64 {
        self.max[self.index(name)]
    }

    /// Append last/max/samples per gauge in registration order.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for i in 0..self.names.len() {
            out.extend_from_slice(&self.last[i].to_le_bytes());
            out.extend_from_slice(&self.max[i].to_le_bytes());
            out.extend_from_slice(&self.samples[i].to_le_bytes());
        }
    }

    /// Encoded size for this schema.
    pub fn encoded_len(&self) -> usize {
        4 + self.names.len() * 24
    }

    /// Overwrite the gauge state from a canonical encoding produced under
    /// the same schema, consuming from `input`. Returns `None` on
    /// truncation or schema-count mismatch.
    pub fn restore_from(&mut self, input: &mut &[u8]) -> Option<()> {
        let n = take_u32(input)? as usize;
        if n != self.names.len() {
            return None;
        }
        for i in 0..self.names.len() {
            self.last[i] = take_u64(input)?;
            self.max[i] = take_u64(input)?;
            self.samples[i] = take_u64(input)?;
        }
        Some(())
    }
}

/// A fixed set of named histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSet {
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

impl HistSet {
    /// Register the histogram names (the schema).
    pub fn new(names: &[&'static str]) -> Self {
        Self {
            names: names.to_vec(),
            hists: names.iter().map(|_| Histogram::new()).collect(),
        }
    }

    fn index(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unregistered histogram: {name}"))
    }

    /// Record a value.
    pub fn record(&mut self, name: &str, value: u64) {
        let i = self.index(name);
        self.hists[i].record(value);
    }

    /// Access a histogram.
    pub fn get(&self, name: &str) -> &Histogram {
        &self.hists[self.index(name)]
    }

    /// Append every histogram in registration order.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for h in &self.hists {
            h.encode_into(out);
        }
    }

    /// Encoded size for this schema.
    pub fn encoded_len(&self) -> usize {
        4 + self.names.len() * Histogram::ENCODED_LEN
    }

    /// Overwrite the histograms from a canonical encoding produced under
    /// the same schema, consuming from `input`. Returns `None` on
    /// truncation or schema-count mismatch.
    pub fn restore_from(&mut self, input: &mut &[u8]) -> Option<()> {
        let n = take_u32(input)? as usize;
        if n != self.names.len() {
            return None;
        }
        for h in &mut self.hists {
            *h = Histogram::decode_from(input)?;
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_in_range() {
        let mut prev = 0;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v, v + v / 4, v + v / 2] {
                let i = Histogram::bucket_index(v);
                assert!(i < HIST_BUCKETS, "{v} -> {i}");
                assert!(i >= prev, "bucket index must not decrease at {v}");
                prev = i;
                assert!(
                    Histogram::bucket_floor(i) <= v,
                    "floor({i}) = {} > {v}",
                    Histogram::bucket_floor(i)
                );
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.quantile(1.0) >= 96, "p100 bucket floor near max");
    }

    #[test]
    fn summary_matches_direct_quantiles() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(1000 + i * 10);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, h.quantile(0.50));
        assert_eq!(s.p99, h.quantile(0.99));
        assert_eq!(s.p999, h.quantile(0.999));
        assert!((s.mean - h.mean()).abs() < 1e-9);
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999);
        assert_eq!(Histogram::new().summary().count, 0);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(50);
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn counter_set_roundtrip() {
        let mut c = CounterSet::new(&["a", "b"]);
        c.add("b", 3);
        assert_eq!(c.get("a"), 0);
        assert_eq!(c.get("b"), 3);
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert_eq!(buf.len(), c.encoded_len());
    }

    #[test]
    #[should_panic(expected = "unregistered counter")]
    fn unknown_counter_panics() {
        CounterSet::new(&["a"]).add("nope", 1);
    }

    #[test]
    fn gauge_tracks_last_and_max() {
        let mut g = GaugeSet::new(&["stash"]);
        g.set("stash", 10);
        g.set("stash", 4);
        assert_eq!(g.last("stash"), 4);
        assert_eq!(g.max("stash"), 10);
        let mut buf = Vec::new();
        g.encode_into(&mut buf);
        assert_eq!(buf.len(), g.encoded_len());
    }

    #[test]
    fn hist_set_encodes_fixed_len() {
        let mut hs = HistSet::new(&["x", "y"]);
        hs.record("x", 9);
        let mut buf = Vec::new();
        hs.encode_into(&mut buf);
        assert_eq!(buf.len(), hs.encoded_len());
        assert_eq!(hs.get("x").count(), 1);
        assert_eq!(hs.get("y").count(), 0);
    }
}
