//! Enclave-side telemetry for the Autarky runtime.
//!
//! Observability inside an enclave is security-sensitive: any signal the
//! enclave emits about its own paging behaviour can itself become a
//! controlled channel (cf. the Heisenberg defense and the pigeonhole
//! attacks). This crate therefore splits telemetry into two halves:
//!
//! * **In-enclave, full fidelity** — a zero-alloc, fixed-capacity
//!   [`SpanRing`] of individual [`SpanRecord`]s plus per-kind aggregates,
//!   counters, gauges, and log-linear [`Histogram`]s. All timing is in
//!   *simulated cycles* supplied by the caller (the `sgx-sim` clock), so
//!   records are deterministic and host wall time never leaks in.
//! * **Exported, aggregate only** — [`Telemetry::snapshot_bytes`] encodes
//!   the aggregates (never the raw span ring) into a canonical,
//!   **fixed-size** little-endian blob. Because the size and layout
//!   depend only on the registered schema — not on what the enclave did —
//!   a sealed snapshot exported once per epoch is indistinguishable
//!   across secrets by construction. The leakage audit verifies this.
//!
//! The crate is dependency-free so that even the pure `oram` crate can
//! build its statistics on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{CounterSet, GaugeSet, HistSet, Histogram, LatencySummary, HIST_BUCKETS};
pub use span::{SpanGuard, SpanKind, SpanRecord, SpanRing, SPAN_KINDS};

/// Per-span-kind running aggregate (what the export path sees; the raw
/// ring never leaves the enclave).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed spans of this kind.
    pub count: u64,
    /// Total simulated cycles spent inside this kind.
    pub total_cycles: u64,
    /// Latency distribution (cycles per span).
    pub hist: Histogram,
}

/// The enclave's telemetry instance: span ring + aggregates + metrics.
///
/// The metric *schema* (counter/gauge/histogram names) is fixed at
/// construction so the snapshot encoding has a static layout; recording
/// against an unregistered name panics (a schema bug, not a data bug).
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    ring: SpanRing,
    spans: [SpanAgg; SPAN_KINDS],
    counters: CounterSet,
    gauges: GaugeSet,
    hists: HistSet,
    epoch: u64,
}

impl Telemetry {
    /// Build a telemetry instance with the given span-ring capacity and
    /// metric schema.
    pub fn new(
        ring_capacity: usize,
        counters: &[&'static str],
        gauges: &[&'static str],
        hists: &[&'static str],
    ) -> Self {
        Self {
            ring: SpanRing::new(ring_capacity),
            spans: core::array::from_fn(|_| SpanAgg::default()),
            counters: CounterSet::new(counters),
            gauges: GaugeSet::new(gauges),
            hists: HistSet::new(hists),
            epoch: 0,
        }
    }

    /// Open a span; `now_cycles` comes from the simulated clock.
    pub fn enter(&self, kind: SpanKind, now_cycles: u64) -> SpanGuard {
        SpanGuard::new(kind, now_cycles)
    }

    /// Close a span opened with [`Telemetry::enter`].
    pub fn exit(&mut self, guard: SpanGuard, now_cycles: u64) {
        self.span(guard.kind(), guard.start_cycles(), now_cycles);
    }

    /// Record a completed span in one call (enter + exit).
    pub fn span(&mut self, kind: SpanKind, start_cycles: u64, end_cycles: u64) {
        let record = SpanRecord {
            kind,
            start_cycles,
            end_cycles,
        };
        self.ring.push(record);
        let agg = &mut self.spans[kind as usize];
        agg.count += 1;
        agg.total_cycles += record.duration();
        agg.hist.record(record.duration());
    }

    /// Aggregate for one span kind.
    pub fn span_agg(&self, kind: SpanKind) -> &SpanAgg {
        &self.spans[kind as usize]
    }

    /// The raw span ring (in-enclave debugging only; never exported).
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Empty the span ring, keeping its drop counter (the counter is a
    /// lifetime total, mirrored in every snapshot). Host-side profilers
    /// call this between a warm-up phase and the measured phase so the
    /// fixed-capacity ring holds only the spans of the window under
    /// attribution; aggregates and metrics are left untouched.
    pub fn clear_ring(&mut self) {
        self.ring.clear();
    }

    /// Increment a registered counter.
    pub fn incr(&mut self, name: &'static str) {
        self.counters.add(name, 1);
    }

    /// Add to a registered counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.counters.add(name, n);
    }

    /// Read a registered counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name)
    }

    /// Sample a registered gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.set(name, value);
    }

    /// Last sampled value of a registered gauge.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.last(name)
    }

    /// High-water mark of a registered gauge.
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauges.max(name)
    }

    /// Record a value into a registered named histogram.
    pub fn hist_record(&mut self, name: &'static str, value: u64) {
        self.hists.record(name, value);
    }

    /// A registered named histogram.
    pub fn hist(&self, name: &str) -> &Histogram {
        self.hists.get(name)
    }

    /// Current epoch number (bumped by [`Telemetry::end_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Close the current epoch: returns the canonical snapshot of the
    /// aggregates and advances the epoch counter. Aggregates are
    /// *cumulative* (they are not reset), so every export has the same
    /// fixed size and consecutive exports differ only in content.
    pub fn end_epoch(&mut self) -> Vec<u8> {
        let snapshot = self.snapshot_bytes();
        self.epoch += 1;
        snapshot
    }

    /// Canonical little-endian encoding of the aggregate state.
    ///
    /// The layout (and therefore the byte length) depends only on the
    /// registered schema: magic, version, epoch, span-drop counter, the
    /// per-kind span aggregates (count, total, full latency histogram), then
    /// counters, gauges, and named histograms in registration order.
    /// Identical runs produce byte-identical snapshots; runs on different
    /// secrets produce same-sized snapshots.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.snapshot_len());
        out.extend_from_slice(b"AYTL");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.ring.dropped().to_le_bytes());
        for agg in &self.spans {
            out.extend_from_slice(&agg.count.to_le_bytes());
            out.extend_from_slice(&agg.total_cycles.to_le_bytes());
            agg.hist.encode_into(&mut out);
        }
        self.counters.encode_into(&mut out);
        self.gauges.encode_into(&mut out);
        self.hists.encode_into(&mut out);
        out
    }

    /// Exact byte length of [`Telemetry::snapshot_bytes`] for this schema.
    pub fn snapshot_len(&self) -> usize {
        4 + 4
            + 8
            + 8
            + SPAN_KINDS * (8 + 8 + Histogram::ENCODED_LEN)
            + self.counters.encoded_len()
            + self.gauges.encoded_len()
            + self.hists.encoded_len()
    }

    /// Full-fidelity state export for checkpoint/restore.
    ///
    /// Unlike [`Telemetry::snapshot_bytes`] (the aggregate-only *export*
    /// path that deliberately omits the raw span ring), this encodes
    /// everything — epoch, the ring with its individual records and drop
    /// counter, the span aggregates, and all metrics — so a restored
    /// enclave continues with telemetry byte-identical to an
    /// uninterrupted run. The blob stays inside the sealed snapshot; it
    /// is never exported to the OS in the clear.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"AYTS");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.ring.capacity() as u64).to_le_bytes());
        out.extend_from_slice(&self.ring.dropped().to_le_bytes());
        out.extend_from_slice(&(self.ring.len() as u64).to_le_bytes());
        for record in self.ring.records() {
            out.push(record.kind as u8);
            out.extend_from_slice(&record.start_cycles.to_le_bytes());
            out.extend_from_slice(&record.end_cycles.to_le_bytes());
        }
        for agg in &self.spans {
            out.extend_from_slice(&agg.count.to_le_bytes());
            out.extend_from_slice(&agg.total_cycles.to_le_bytes());
            agg.hist.encode_into(&mut out);
        }
        self.counters.encode_into(&mut out);
        self.gauges.encode_into(&mut out);
        self.hists.encode_into(&mut out);
        out
    }

    /// Restore the full state from [`Telemetry::state_bytes`] output.
    ///
    /// `self` must have been constructed with the same schema (ring
    /// capacity and metric names) as the instance that produced the
    /// blob. On error, `self` is left unchanged — the decode completes
    /// into temporaries before anything is committed.
    pub fn restore_state(&mut self, blob: &[u8]) -> Result<(), StateError> {
        let mut input = blob;
        if input.len() < 8 {
            return Err(StateError::Malformed);
        }
        if &input[..4] != b"AYTS" {
            return Err(StateError::BadMagic);
        }
        input = &input[4..];
        let version = metrics::take_u32(&mut input).ok_or(StateError::Malformed)?;
        if version != 1 {
            return Err(StateError::BadVersion(version));
        }
        let epoch = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
        let capacity = metrics::take_u64(&mut input).ok_or(StateError::Malformed)? as usize;
        if capacity != self.ring.capacity() {
            return Err(StateError::SchemaMismatch);
        }
        let dropped = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
        let len = metrics::take_u64(&mut input).ok_or(StateError::Malformed)? as usize;
        if len > capacity {
            return Err(StateError::Malformed);
        }
        let mut records = Vec::with_capacity(len);
        for _ in 0..len {
            let (&kind, rest) = input.split_first().ok_or(StateError::Malformed)?;
            input = rest;
            let kind = SpanKind::from_u8(kind).ok_or(StateError::Malformed)?;
            let start_cycles = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
            let end_cycles = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
            records.push(SpanRecord {
                kind,
                start_cycles,
                end_cycles,
            });
        }
        let ring =
            SpanRing::restore_parts(capacity, records, dropped).ok_or(StateError::Malformed)?;
        let mut spans: [SpanAgg; SPAN_KINDS] = core::array::from_fn(|_| SpanAgg::default());
        for agg in &mut spans {
            agg.count = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
            agg.total_cycles = metrics::take_u64(&mut input).ok_or(StateError::Malformed)?;
            agg.hist = Histogram::decode_from(&mut input).ok_or(StateError::Malformed)?;
        }
        // A short tail is truncation; a full-length section that still
        // fails to decode means the blob was written under a different
        // metric schema.
        let metrics_len =
            self.counters.encoded_len() + self.gauges.encoded_len() + self.hists.encoded_len();
        if input.len() < metrics_len {
            return Err(StateError::Malformed);
        }
        let mut counters = self.counters.clone();
        counters
            .restore_from(&mut input)
            .ok_or(StateError::SchemaMismatch)?;
        let mut gauges = self.gauges.clone();
        gauges
            .restore_from(&mut input)
            .ok_or(StateError::SchemaMismatch)?;
        let mut hists = self.hists.clone();
        hists
            .restore_from(&mut input)
            .ok_or(StateError::SchemaMismatch)?;
        if !input.is_empty() {
            return Err(StateError::Malformed);
        }
        self.epoch = epoch;
        self.ring = ring;
        self.spans = spans;
        self.counters = counters;
        self.gauges = gauges;
        self.hists = hists;
        Ok(())
    }
}

/// Errors from [`Telemetry::restore_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// Blob does not start with the `AYTS` magic.
    BadMagic,
    /// Unknown state-format version.
    BadVersion(u32),
    /// Blob truncated or structurally malformed.
    Malformed,
    /// Blob was produced under a different metric schema or ring size.
    SchemaMismatch,
}

impl core::fmt::Display for StateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StateError::BadMagic => write!(f, "telemetry state blob has bad magic"),
            StateError::BadVersion(v) => write!(f, "unknown telemetry state version {v}"),
            StateError::Malformed => write!(f, "telemetry state blob is malformed"),
            StateError::SchemaMismatch => {
                write!(
                    f,
                    "telemetry state blob does not match the registered schema"
                )
            }
        }
    }
}

impl std::error::Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Telemetry {
        Telemetry::new(8, &["faults", "retries"], &["stash"], &["batch"])
    }

    #[test]
    fn span_aggregates_accumulate() {
        let mut t = schema();
        let g = t.enter(SpanKind::FaultHandler, 100);
        t.exit(g, 150);
        t.span(SpanKind::FaultHandler, 200, 300);
        let agg = t.span_agg(SpanKind::FaultHandler);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total_cycles, 150);
        assert_eq!(agg.hist.count(), 2);
        assert_eq!(t.span_agg(SpanKind::OramAccess).count, 0);
    }

    #[test]
    fn counters_gauges_hists() {
        let mut t = schema();
        t.incr("faults");
        t.add("faults", 4);
        t.gauge_set("stash", 7);
        t.gauge_set("stash", 3);
        t.hist_record("batch", 16);
        assert_eq!(t.counter("faults"), 5);
        assert_eq!(t.gauge("stash"), 3);
        assert_eq!(t.gauge_max("stash"), 7);
        assert_eq!(t.hist("batch").count(), 1);
    }

    #[test]
    fn snapshot_is_fixed_size_and_deterministic() {
        let mut a = schema();
        let mut b = schema();
        for t in [&mut a, &mut b] {
            t.span(SpanKind::Seal, 0, 10);
            t.add("retries", 2);
            t.gauge_set("stash", 9);
            t.hist_record("batch", 3);
        }
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
        assert_eq!(a.snapshot_bytes().len(), a.snapshot_len());

        // Different *content*, same size: that is the export contract.
        let mut c = schema();
        for _ in 0..1000 {
            c.span(SpanKind::FaultHandler, 0, 12345);
            c.add("faults", 17);
        }
        assert_eq!(c.snapshot_bytes().len(), a.snapshot_len());
        assert_ne!(c.snapshot_bytes(), a.snapshot_bytes());
    }

    #[test]
    fn end_epoch_advances_counter() {
        let mut t = schema();
        assert_eq!(t.epoch(), 0);
        let s0 = t.end_epoch();
        assert_eq!(t.epoch(), 1);
        let s1 = t.end_epoch();
        assert_eq!(s0.len(), s1.len());
        assert_ne!(s0, s1, "epoch counter is part of the snapshot");
    }

    #[test]
    fn state_round_trip_is_exact() {
        let mut t = schema();
        t.span(SpanKind::FaultHandler, 100, 150);
        t.span(SpanKind::Seal, 200, 260);
        t.incr("faults");
        t.add("retries", 3);
        t.gauge_set("stash", 11);
        t.hist_record("batch", 42);
        t.end_epoch();

        let blob = t.state_bytes();
        let mut restored = schema();
        restored.restore_state(&blob).expect("restore");
        assert_eq!(restored, t, "full state including ring and epoch");

        // The restored instance continues identically.
        for x in [&mut t, &mut restored] {
            x.span(SpanKind::Open, 300, 310);
            x.incr("faults");
        }
        assert_eq!(restored.snapshot_bytes(), t.snapshot_bytes());
        assert_eq!(restored.state_bytes(), t.state_bytes());
    }

    #[test]
    fn state_restore_preserves_ring_overflow() {
        // A saturated ring (capacity 8) round-trips exactly: retained
        // prefix, drop counter, and post-restore drop behaviour.
        let mut t = schema();
        for i in 0..20 {
            t.span(SpanKind::FaultHandler, i * 10, i * 10 + 5);
        }
        assert_eq!(t.ring().len(), 8);
        assert_eq!(t.ring().dropped(), 12);

        let mut restored = schema();
        restored.restore_state(&t.state_bytes()).expect("restore");
        assert_eq!(restored.ring().records(), t.ring().records());
        assert_eq!(restored.ring().dropped(), 12);
        restored.span(SpanKind::Seal, 999, 1000);
        assert_eq!(restored.ring().dropped(), 13, "still saturated");
    }

    #[test]
    fn state_restore_rejects_bad_blobs() {
        let t = schema();
        let blob = t.state_bytes();

        let mut other_schema = Telemetry::new(8, &["faults"], &["stash"], &["batch"]);
        assert_eq!(
            other_schema.restore_state(&blob),
            Err(StateError::SchemaMismatch)
        );
        let mut other_ring = Telemetry::new(4, &["faults", "retries"], &["stash"], &["batch"]);
        assert_eq!(
            other_ring.restore_state(&blob),
            Err(StateError::SchemaMismatch)
        );

        let mut fresh = schema();
        assert_eq!(
            fresh.restore_state(&blob[..blob.len() - 1]),
            Err(StateError::Malformed)
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(fresh.restore_state(&bad_magic), Err(StateError::BadMagic));
        assert_eq!(fresh, schema(), "failed restores leave state untouched");
    }
}
