//! Tracing spans: a static registry of instrumented operations and a
//! zero-alloc, fixed-capacity record ring.
//!
//! Span timing is in *simulated cycles* — callers pass timestamps read
//! from the `sgx-sim` cost clock, so spans measure exactly what the cost
//! model charges and nothing about the host machine.

/// Static registry of instrumented operations.
///
/// The discriminants are stable: they index per-kind aggregate arrays and
/// appear in the canonical snapshot encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// The runtime's page-fault handler, end to end.
    FaultHandler = 0,
    /// The `ay_fetch_pages` driver call (enclave-side view).
    AyFetchPages = 1,
    /// The `ay_evict_pages` driver call (enclave-side view).
    AyEvictPages = 2,
    /// One ORAM access through the enclave data path.
    OramAccess = 3,
    /// Software page sealing (`sw_seal`) on the SGXv2 evict path.
    Seal = 4,
    /// Software page authentication (`sw_open`) on the SGXv2 fetch path.
    Open = 5,
    /// The fault-rate limiter's admit/kill decision.
    RatelimitDecision = 6,
    /// Exponential backoff inside the transient-failure retry loop.
    RetryBackoff = 7,
    /// Demand allocation of a fresh heap page (`ay_alloc_pages` +
    /// `EACCEPT`), the non-swap branch of the fault path.
    HeapAlloc = 8,
}

/// Number of span kinds in the registry.
pub const SPAN_KINDS: usize = 9;

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; SPAN_KINDS] = [
        SpanKind::FaultHandler,
        SpanKind::AyFetchPages,
        SpanKind::AyEvictPages,
        SpanKind::OramAccess,
        SpanKind::Seal,
        SpanKind::Open,
        SpanKind::RatelimitDecision,
        SpanKind::RetryBackoff,
        SpanKind::HeapAlloc,
    ];

    /// Kind for a stable discriminant (wire/state decode); `None` if out
    /// of range.
    pub fn from_u8(discriminant: u8) -> Option<SpanKind> {
        Self::ALL.get(discriminant as usize).copied()
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FaultHandler => "fault_handler",
            SpanKind::AyFetchPages => "ay_fetch_pages",
            SpanKind::AyEvictPages => "ay_evict_pages",
            SpanKind::OramAccess => "oram_access",
            SpanKind::Seal => "seal",
            SpanKind::Open => "open",
            SpanKind::RatelimitDecision => "ratelimit_decision",
            SpanKind::RetryBackoff => "retry_backoff",
            SpanKind::HeapAlloc => "heap_alloc",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which operation this span covers.
    pub kind: SpanKind,
    /// Simulated-cycle timestamp at entry.
    pub start_cycles: u64,
    /// Simulated-cycle timestamp at exit.
    pub end_cycles: u64,
}

impl SpanRecord {
    /// Span duration in simulated cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycles.saturating_sub(self.start_cycles)
    }
}

/// An open span handle returned by `Telemetry::enter`.
///
/// Dropping a guard without closing it simply loses the span (there is no
/// global state to corrupt); the `#[must_use]` lint catches the common
/// mistake.
#[derive(Debug, Clone, Copy)]
#[must_use = "close the span with Telemetry::exit"]
pub struct SpanGuard {
    kind: SpanKind,
    start_cycles: u64,
}

impl SpanGuard {
    pub(crate) fn new(kind: SpanKind, start_cycles: u64) -> Self {
        Self { kind, start_cycles }
    }

    /// Which operation the open span covers.
    pub fn kind(&self) -> SpanKind {
        self.kind
    }

    /// Simulated-cycle timestamp at entry.
    pub fn start_cycles(&self) -> u64 {
        self.start_cycles
    }
}

/// Fixed-capacity span buffer: all storage is allocated up front and new
/// records are **dropped, not overwritten**, once the buffer is full,
/// with a counter recording how many were lost.
///
/// Dropping new records (instead of the classic overwrite-oldest ring)
/// keeps the retained prefix deterministic — the same run always keeps
/// the same records — which the byte-identical snapshot tests rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRing {
    records: Vec<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

impl SpanRing {
    /// Preallocate a ring holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            records: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append a record, or count it as dropped if the ring is full.
    pub fn push(&mut self, record: SpanRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained records, in arrival order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear retained records (the drop counter is preserved — it is part
    /// of the exported aggregate state).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Rebuild a ring from captured parts (checkpoint restore). Fails if
    /// more records than `capacity` are supplied.
    pub fn restore_parts(
        capacity: usize,
        records: Vec<SpanRecord>,
        dropped: u64,
    ) -> Option<SpanRing> {
        if records.len() > capacity {
            return None;
        }
        let mut ring = SpanRing::new(capacity);
        ring.records.extend(records);
        ring.dropped = dropped;
        Some(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: SpanKind, start: u64) -> SpanRecord {
        SpanRecord {
            kind,
            start_cycles: start,
            end_cycles: start + 10,
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i);
        }
        let names: std::collections::HashSet<&str> =
            SpanKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), SPAN_KINDS);
    }

    #[test]
    fn ring_drops_new_records_when_full() {
        let mut ring = SpanRing::new(3);
        for i in 0..10 {
            ring.push(rec(SpanKind::FaultHandler, i * 100));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        // The retained prefix is the *first* three records (deterministic).
        assert_eq!(ring.records()[0].start_cycles, 0);
        assert_eq!(ring.records()[2].start_cycles, 200);
    }

    #[test]
    fn ring_never_reallocates() {
        let mut ring = SpanRing::new(4);
        let cap_before = ring.records.capacity();
        for i in 0..100 {
            ring.push(rec(SpanKind::Seal, i));
        }
        assert_eq!(ring.records.capacity(), cap_before);
    }

    #[test]
    fn clear_preserves_drop_counter() {
        let mut ring = SpanRing::new(1);
        ring.push(rec(SpanKind::Open, 0));
        ring.push(rec(SpanKind::Open, 1));
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn duration_saturates() {
        let r = SpanRecord {
            kind: SpanKind::Open,
            start_cycles: 50,
            end_cycles: 40,
        };
        assert_eq!(r.duration(), 0);
    }
}
