//! PARSEC kernels (paper §7.2, Figure 7): bodytrack, canneal,
//! streamcluster, swaptions, dedup, blackscholes, fluidanimate, and x264.
//!
//! Sequential, footprint-parameterized implementations preserving each
//! application's characteristic memory behaviour: canneal's random swaps,
//! dedup's hashed chunk table, fluidanimate's structured grid
//! neighborhoods, x264's windowed motion search, and the compute-heavy
//! sweeps of blackscholes/swaptions.

use autarky_runtime::RtError;
use autarky_sgx_sim::PAGE_SIZE;

use crate::encmem::{EncHeap, EncVecF64, EncVecU64, World};
use crate::uthash::{hash64, EncHashTable};

/// Bodytrack: particle-filter update — scattered particle reads, weight
/// computation against a small observation model.
pub fn btrack(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    const STATE: usize = 8;
    let particles = (pages * PAGE_SIZE / (STATE * 8)).max(64);
    let states = EncVecF64::new(world, heap, particles * STATE)?;
    let weights = EncVecF64::new(world, heap, particles)?;
    for i in 0..particles * STATE {
        states.set(world, heap, i, (hash64(i as u64) % 1000) as f64 / 500.0)?;
    }
    let mut checksum = 0u64;
    for step in 0..3u64 {
        // Weight update: likelihood against a synthetic observation.
        for p in 0..particles {
            let mut err = 0.0;
            for d in 0..STATE {
                let x = states.get(world, heap, p * STATE + d)?;
                let obs = ((hash64(step ^ d as u64) % 1000) as f64) / 500.0;
                err += (x - obs) * (x - obs);
            }
            weights.set(world, heap, p, (-err).exp())?;
            world.compute(STATE as u64 * 6);
        }
        // Resample: scattered reads driven by the weight order.
        for p in 0..particles {
            let src = (hash64(step ^ p as u64) % particles as u64) as usize;
            let w = weights.get(world, heap, src)?;
            if w > 0.5 {
                for d in 0..STATE {
                    let v = states.get(world, heap, src * STATE + d)?;
                    states.set(world, heap, p * STATE + d, v)?;
                }
            }
            checksum = checksum.wrapping_add(w.to_bits() >> 40);
        }
    }
    Ok(checksum)
}

/// Canneal: simulated-annealing element swaps — the most random-access
/// workload of the suite (highest fault rates in Figure 7).
pub fn canneal(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let elements = (pages * PAGE_SIZE / 8).max(128);
    let netlist = EncVecU64::new(world, heap, elements)?;
    for i in 0..elements {
        netlist.set(world, heap, i, hash64(i as u64))?;
    }
    let swaps = (elements as u64 / 2).min(50_000);
    let mut accepted = 0u64;
    let mut temperature = 100.0f64;
    for s in 0..swaps {
        let a = (hash64(s) % elements as u64) as usize;
        let b = (hash64(s ^ 0xDEAD) % elements as u64) as usize;
        let va = netlist.get(world, heap, a)?;
        let vb = netlist.get(world, heap, b)?;
        // Routing-cost delta proxy: prefer value/index locality.
        let cost = |i: usize, v: u64| ((v % 1024) as i64 - (i % 1024) as i64).abs();
        let delta = cost(a, vb) + cost(b, va) - cost(a, va) - cost(b, vb);
        let accept = delta < 0
            || ((hash64(s ^ 7) % 1000) as f64) < 1000.0 * (-(delta as f64) / temperature).exp();
        if accept {
            netlist.set(world, heap, a, vb)?;
            netlist.set(world, heap, b, va)?;
            accepted += 1;
        }
        temperature *= 0.99995;
        world.compute(20);
    }
    Ok(accepted)
}

/// Streamcluster: distance of streamed points to a small median set.
pub fn scluster(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    const D: usize = 8;
    const MEDIANS: usize = 16;
    let n = (pages * PAGE_SIZE / (D * 8)).max(64);
    let points = EncVecF64::new(world, heap, n * D)?;
    let medians = EncVecF64::new(world, heap, MEDIANS * D)?;
    for i in 0..n * D {
        points.set(world, heap, i, (hash64(i as u64) % 1000) as f64 / 100.0)?;
    }
    for i in 0..MEDIANS * D {
        medians.set(
            world,
            heap,
            i,
            (hash64(i as u64 ^ 0xC0FFEE) % 1000) as f64 / 100.0,
        )?;
    }
    let mut total_cost = 0f64;
    for p in 0..n {
        let mut best = f64::MAX;
        for m in 0..MEDIANS {
            let mut dist = 0.0;
            for d in 0..D {
                let x = points.get(world, heap, p * D + d)?;
                let c = medians.get(world, heap, m * D + d)?;
                dist += (x - c) * (x - c);
            }
            best = best.min(dist);
        }
        total_cost += best.sqrt();
        world.compute((MEDIANS * D * 3) as u64);
    }
    Ok(total_cost.to_bits() >> 12)
}

/// Swaptions: Monte-Carlo HJM pricing — compute-bound, small memory.
pub fn swap(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let swaptions = (pages / 4).clamp(4, 64);
    let results = EncVecF64::new(world, heap, swaptions)?;
    let trials = 2000u64;
    for s in 0..swaptions {
        let strike = 0.01 + (s as f64) * 0.001;
        let mut payoff_sum = 0.0;
        let mut state = hash64(s as u64);
        for _ in 0..trials {
            // Evolve a one-factor short rate with pseudo-normal shocks.
            let mut rate = 0.02f64;
            for _ in 0..16 {
                state = hash64(state);
                let unif = (state % 10_000) as f64 / 10_000.0;
                let shock = (unif - 0.5) * 0.02; // zero-mean
                rate = (rate + 0.001 + shock).max(0.0001);
            }
            payoff_sum += (rate - strike).max(0.0);
            world.compute(120);
        }
        results.set(world, heap, s, payoff_sum / trials as f64)?;
    }
    let mut checksum = 0u64;
    for s in 0..swaptions {
        checksum = checksum.wrapping_add(results.get(world, heap, s)?.to_bits() >> 20);
    }
    Ok(checksum)
}

/// Dedup: content-chunk the input, hash each chunk, count duplicates in a
/// table (streaming reads + random table updates).
pub fn dedup(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let bytes = pages * PAGE_SIZE * 3 / 4;
    let input = heap.alloc(world, bytes)?;
    // Input with repeated runs so deduplication finds matches.
    let mut chunk = vec![0u8; PAGE_SIZE];
    for off in (0..bytes).step_by(PAGE_SIZE) {
        let motif = hash64((off / (PAGE_SIZE * 4)) as u64); // repeats every 4 pages
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = (hash64(motif ^ (i as u64 % 512)) % 256) as u8;
        }
        let n = chunk.len().min(bytes - off);
        heap.write(world, input.offset(off as u64), &chunk[..n])?;
    }
    let mut table = EncHashTable::new(world, heap, 512, 8, 16)?;
    let mut buf = vec![0u8; 512];
    let mut unique = 0u64;
    let mut duplicates = 0u64;
    for off in (0..bytes).step_by(512) {
        let n = buf.len().min(bytes - off);
        heap.read(world, input.offset(off as u64), &mut buf[..n])?;
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in &buf[..n] {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01B3);
        }
        let key = hash64(h);
        if table.contains(world, heap, key)? {
            duplicates += 1;
        } else {
            table.insert(world, heap, key, &1u64.to_le_bytes())?;
            unique += 1;
        }
        world.compute(n as u64);
    }
    debug_assert!(duplicates > 0, "repeating motifs must dedup");
    Ok(unique << 20 | duplicates)
}

/// Black-Scholes: one pass over an option array, heavy per-element math.
pub fn bscholes(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    const FIELDS: usize = 5; // spot, strike, rate, vol, time
    let n = (pages * PAGE_SIZE / (FIELDS * 8)).max(64);
    let options = EncVecF64::new(world, heap, n * FIELDS)?;
    let prices = EncVecF64::new(world, heap, n)?;
    for i in 0..n {
        options.set(
            world,
            heap,
            i * FIELDS,
            80.0 + (hash64(i as u64) % 400) as f64 / 10.0,
        )?;
        options.set(world, heap, i * FIELDS + 1, 100.0)?;
        options.set(world, heap, i * FIELDS + 2, 0.02)?;
        options.set(
            world,
            heap,
            i * FIELDS + 3,
            0.1 + (hash64(i as u64 ^ 2) % 40) as f64 / 100.0,
        )?;
        options.set(
            world,
            heap,
            i * FIELDS + 4,
            0.25 + (hash64(i as u64 ^ 3) % 300) as f64 / 100.0,
        )?;
    }
    // Abramowitz–Stegun normal CDF.
    let cnd = |x: f64| {
        let l = x.abs();
        let k = 1.0 / (1.0 + 0.2316419 * l);
        let poly = k
            * (0.319381530
                + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
        let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
        if x < 0.0 {
            1.0 - w
        } else {
            w
        }
    };
    let mut checksum = 0u64;
    for i in 0..n {
        let s = options.get(world, heap, i * FIELDS)?;
        let k = options.get(world, heap, i * FIELDS + 1)?;
        let r = options.get(world, heap, i * FIELDS + 2)?;
        let v = options.get(world, heap, i * FIELDS + 3)?;
        let t = options.get(world, heap, i * FIELDS + 4)?;
        let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
        let d2 = d1 - v * t.sqrt();
        let call = s * cnd(d1) - k * (-r * t).exp() * cnd(d2);
        prices.set(world, heap, i, call)?;
        checksum = checksum.wrapping_add(call.to_bits() >> 24);
        world.compute(200);
    }
    Ok(checksum)
}

/// Fluidanimate: grid-structured neighbor updates (good locality, low
/// fault rate in Figure 7).
pub fn fluid(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let cells = (pages * PAGE_SIZE / 8).max(256);
    let side = (cells as f64).sqrt() as usize;
    let grid = EncVecF64::new(world, heap, side * side)?;
    for i in 0..side * side {
        grid.set(world, heap, i, (hash64(i as u64) % 1000) as f64 / 100.0)?;
    }
    for _step in 0..2 {
        for y in 1..side - 1 {
            for x in 1..side - 1 {
                let c = grid.get(world, heap, y * side + x)?;
                let n = grid.get(world, heap, (y - 1) * side + x)?;
                let s = grid.get(world, heap, (y + 1) * side + x)?;
                let w = grid.get(world, heap, y * side + x - 1)?;
                let e = grid.get(world, heap, y * side + x + 1)?;
                grid.set(world, heap, y * side + x, c * 0.6 + (n + s + w + e) * 0.1)?;
                world.compute(10);
            }
        }
    }
    let mut checksum = 0u64;
    for i in (0..side * side).step_by(side.max(1)) {
        checksum = checksum.wrapping_add(grid.get(world, heap, i)?.to_bits() >> 20);
    }
    Ok(checksum)
}

/// x264: block motion estimation against a reference frame (windowed
/// search — bounded locality with bursts).
pub fn x264(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let frame_bytes = pages * PAGE_SIZE / 2;
    let side = ((frame_bytes as f64).sqrt() as usize / 16 * 16).max(64);
    let reference = heap.alloc(world, side * side)?;
    let current = heap.alloc(world, side * side)?;
    let mut row = vec![0u8; side];
    for y in 0..side {
        for (x, b) in row.iter_mut().enumerate() {
            *b = (hash64((y * side + x) as u64) % 256) as u8;
        }
        heap.write(world, reference.offset((y * side) as u64), &row)?;
        // Current frame: the reference shifted by (3, 1) plus noise.
        for (x, b) in row.iter_mut().enumerate() {
            let sx = (x + 3) % side;
            let sy = (y + 1) % side;
            *b = (hash64((sy * side + sx) as u64) % 256) as u8;
        }
        heap.write(world, current.offset((y * side) as u64), &row)?;
    }
    const BLOCK: usize = 16;
    const RANGE: i64 = 4;
    let mut sad_total = 0u64;
    let mut cur_block = vec![0u8; BLOCK];
    let mut ref_block = vec![0u8; BLOCK];
    for by in (BLOCK..side - BLOCK).step_by(BLOCK * 2) {
        for bx in (BLOCK..side - BLOCK).step_by(BLOCK * 2) {
            let mut best = u64::MAX;
            for dy in -RANGE..=RANGE {
                for dx in -RANGE..=RANGE {
                    let mut sad = 0u64;
                    for line in 0..BLOCK {
                        let cy = by + line;
                        let ry = (cy as i64 + dy) as usize;
                        let rx = (bx as i64 + dx) as usize;
                        heap.read(
                            world,
                            current.offset((cy * side + bx) as u64),
                            &mut cur_block,
                        )?;
                        heap.read(
                            world,
                            reference.offset((ry * side + rx) as u64),
                            &mut ref_block,
                        )?;
                        for i in 0..BLOCK {
                            sad += (cur_block[i] as i64 - ref_block[i] as i64).unsigned_abs();
                        }
                    }
                    best = best.min(sad);
                    world.compute((BLOCK * BLOCK) as u64);
                }
            }
            sad_total = sad_total.wrapping_add(best);
        }
    }
    Ok(sad_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world() -> World {
        let mut img = EnclaveImage::named("parsec-test");
        img.heap_pages = 1024;
        World::new(
            MachineConfig {
                epc_frames: 4096,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn kernels_run_and_are_deterministic() {
        type F = fn(&mut World, &mut EncHeap, usize) -> Result<u64, RtError>;
        let kernels: Vec<(&str, F)> = vec![
            ("btrack", btrack),
            ("canneal", canneal),
            ("scluster", scluster),
            ("swap", swap),
            ("dedup", dedup),
            ("bscholes", bscholes),
            ("fluid", fluid),
            ("x264", x264),
        ];
        for (name, run) in kernels {
            let mut w1 = world();
            let mut h1 = EncHeap::direct();
            let a = run(&mut w1, &mut h1, 12).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut w2 = world();
            let mut h2 = EncHeap::direct();
            let b = run(&mut w2, &mut h2, 12).expect("rerun");
            assert_eq!(a, b, "{name} deterministic");
        }
    }

    #[test]
    fn dedup_finds_duplicates() {
        let mut w = world();
        let mut h = EncHeap::direct();
        let result = dedup(&mut w, &mut h, 16).expect("run");
        let duplicates = result & 0xF_FFFF;
        assert!(duplicates > 0);
    }

    #[test]
    fn canneal_accepts_some_swaps() {
        let mut w = world();
        let mut h = EncHeap::direct();
        let accepted = canneal(&mut w, &mut h, 8).expect("run");
        assert!(accepted > 0);
    }
}
