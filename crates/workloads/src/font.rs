//! A FreeType-style glyph renderer (paper §7.3, Table 2; attack from Xu
//! et al. [76]).
//!
//! The original attack recovered rendered text purely from *instruction
//! fetches*: each character's rendering routine executes a distinctive
//! sequence of code pages. The model gives every glyph a deterministic set
//! of code pages (its "outline program") and executes them on render,
//! plus writes the rasterized bitmap into an output buffer.
//!
//! The defense (Table 2) is simply pinning all code pages — FreeType's
//! code comfortably fits EPC — after which rendering runs with *zero*
//! measurable overhead and zero leakage.

use autarky_runtime::RtError;
use autarky_sgx_sim::Va;

use crate::encmem::{EncHeap, Ptr, World};
use crate::uthash::hash64;

/// Glyph bitmap side (pixels).
pub const GLYPH_SIZE: usize = 16;

/// Number of code pages the renderer's glyph programs span.
pub const FONT_CODE_PAGES: u64 = 12;

/// The code pages (offsets into the enclave's code region) glyph `c`
/// executes. Deterministic, distinctive per character — the signature the
/// attack matches.
pub fn glyph_code_pages(c: char) -> Vec<u64> {
    let h = hash64(c as u64);
    let count = 3 + (h % 3) as usize; // 3-5 pages per glyph program
    let mut pages = Vec::with_capacity(count);
    let mut i = 0u64;
    while pages.len() < count {
        // Pages 3.. leave room for shared code; skip consecutive repeats
        // (a re-execution of the same page is invisible to a page-granular
        // tracer, so signatures avoid them for determinism).
        let page = 3 + hash64(h ^ i) % FONT_CODE_PAGES;
        if pages.last() != Some(&page) {
            pages.push(page);
        }
        i += 1;
    }
    pages
}

/// The in-enclave font renderer.
pub struct FontRenderer {
    output: Ptr,
    capacity_glyphs: usize,
    /// Glyphs rendered so far.
    pub rendered: u64,
}

impl FontRenderer {
    /// Allocate an output buffer for up to `capacity_glyphs` glyphs.
    pub fn new(
        world: &mut World,
        heap: &mut EncHeap,
        capacity_glyphs: usize,
    ) -> Result<Self, RtError> {
        let output = heap.alloc(world, capacity_glyphs * GLYPH_SIZE * GLYPH_SIZE)?;
        Ok(Self {
            output,
            capacity_glyphs,
            rendered: 0,
        })
    }

    /// Rasterize one character: execute its outline program's code pages
    /// and write the bitmap.
    pub fn render_glyph(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        c: char,
        slot: usize,
    ) -> Result<(), RtError> {
        debug_assert!(slot < self.capacity_glyphs);
        let code_base = world.image.code_start().0;
        for page in glyph_code_pages(c) {
            world.rt.exec(&mut world.os, Va((code_base + page) << 12))?;
        }
        // Rasterize: a deterministic per-character bitmap.
        let mut bitmap = [0u8; GLYPH_SIZE * GLYPH_SIZE];
        let h = hash64(c as u64);
        for (i, px) in bitmap.iter_mut().enumerate() {
            *px = ((hash64(h ^ i as u64) % 2) * 255) as u8;
        }
        let offset = (slot * GLYPH_SIZE * GLYPH_SIZE) as u64;
        heap.write(world, self.output.offset(offset), &bitmap)?;
        // Outline decoding + rasterization compute (FreeType renders a
        // glyph in ~20k cycles, matching the paper's 149 kop/s).
        world.compute(20_000);
        self.rendered += 1;
        world.progress(1);
        Ok(())
    }

    /// Render a whole string into consecutive slots (wrapping).
    pub fn render_text(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        text: &str,
    ) -> Result<(), RtError> {
        for (i, c) in text.chars().enumerate() {
            self.render_glyph(world, heap, c, i % self.capacity_glyphs)?;
        }
        Ok(())
    }

    /// Read back one rendered glyph bitmap.
    pub fn read_glyph(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        slot: usize,
    ) -> Result<Vec<u8>, RtError> {
        let mut bitmap = vec![0u8; GLYPH_SIZE * GLYPH_SIZE];
        let offset = (slot * GLYPH_SIZE * GLYPH_SIZE) as u64;
        heap.read(world, self.output.offset(offset), &mut bitmap)?;
        Ok(bitmap)
    }
}

/// A secret-input pair for leakage audits: two strings of `len`
/// characters (equal byte length) whose glyph programs execute different
/// code-page sequences. Characters are drawn from disjoint halves of the
/// lowercase alphabet; a final check guarantees the executed page
/// sequences actually differ (signatures are hash-derived, so two chars
/// *could* collide).
pub fn secret_pair(len: usize) -> (String, String) {
    let half_a: Vec<char> = "acegikmoqsuwy".chars().collect();
    let half_b: Vec<char> = "bdfhjlnprtvxz".chars().collect();
    let program = |s: &str| -> Vec<u64> { s.chars().flat_map(glyph_code_pages).collect() };
    let a: String = (0..len).map(|i| half_a[i % half_a.len()]).collect();
    for rotation in 0..half_b.len() {
        let b: String = (0..len)
            .map(|i| half_b[(i + rotation) % half_b.len()])
            .collect();
        if program(&b) != program(&a) {
            return (a, b);
        }
    }
    unreachable!("13 rotations of a disjoint alphabet half all collide");
}

/// The attack oracle: given a code-page access trace (page offsets into
/// the code region), recover the rendered characters by matching glyph
/// signatures. Works on the *legacy* trace; under Autarky the trace is
/// unavailable.
///
/// The tracer observes page *transitions*: when one glyph's last page
/// equals the next glyph's first page, that boundary fault is absent from
/// the trace, so matching tolerates an elided leading page.
pub fn recover_text_from_trace(trace: &[u64], alphabet: &[char]) -> String {
    let mut out = String::new();
    let mut i = 0usize;
    let mut last_page: Option<u64> = None;
    while i < trace.len() {
        // Longest-match wins: a shorter signature can be a prefix of a
        // longer one, so greedily matching the first hit mis-decodes.
        // `consumed` is how many trace entries the match uses (one less
        // when the leading page was elided by the transition effect).
        let best = alphabet
            .iter()
            .map(|&c| (c, glyph_code_pages(c)))
            .filter_map(|(c, sig)| {
                if trace[i..].starts_with(&sig) {
                    Some((c, sig.len(), sig.len()))
                } else if last_page == Some(sig[0]) && trace[i..].starts_with(&sig[1..]) {
                    Some((c, sig.len(), sig.len() - 1))
                } else {
                    None
                }
            })
            .max_by_key(|&(_, sig_len, _)| sig_len);
        match best {
            Some((c, _, consumed)) => {
                out.push(c);
                i += consumed;
                last_page = trace.get(i.wrapping_sub(1)).copied();
            }
            None => {
                last_page = Some(trace[i]);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world() -> World {
        let mut img = EnclaveImage::named("font-test");
        img.code_pages = 16;
        img.heap_pages = 64;
        World::new(
            MachineConfig {
                epc_frames: 512,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn glyph_signatures_are_deterministic_and_mostly_distinct() {
        assert_eq!(glyph_code_pages('a'), glyph_code_pages('a'));
        let alphabet: Vec<char> = ('a'..='z').collect();
        let sigs: std::collections::HashSet<Vec<u64>> =
            alphabet.iter().map(|&c| glyph_code_pages(c)).collect();
        assert!(sigs.len() > 20, "only {} distinct signatures", sigs.len());
    }

    #[test]
    fn render_writes_bitmaps() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut font = FontRenderer::new(&mut w, &mut heap, 8).expect("renderer");
        font.render_text(&mut w, &mut heap, "hi").expect("render");
        assert_eq!(font.rendered, 2);
        let h_bitmap = font.read_glyph(&mut w, &mut heap, 0).expect("read");
        let i_bitmap = font.read_glyph(&mut w, &mut heap, 1).expect("read");
        assert_ne!(h_bitmap, i_bitmap, "glyphs differ");
        assert!(h_bitmap.iter().any(|&p| p != 0), "non-empty bitmap");
    }

    #[test]
    fn rendering_executes_glyph_code_pages() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut font = FontRenderer::new(&mut w, &mut heap, 4).expect("renderer");
        let (fills_before, _, _) = w.os.machine.tlb_stats();
        font.render_glyph(&mut w, &mut heap, 'q', 0)
            .expect("render");
        let (fills_after, _, _) = w.os.machine.tlb_stats();
        assert!(
            fills_after > fills_before,
            "code fetches go through the MMU"
        );
    }

    #[test]
    fn secret_pair_same_length_different_code_pages() {
        let (a, b) = secret_pair(12);
        assert_eq!(a.chars().count(), 12);
        assert_eq!(a.len(), b.len(), "identical byte length");
        assert_ne!(a, b);
        let program = |s: &str| -> Vec<u64> { s.chars().flat_map(glyph_code_pages).collect() };
        assert_ne!(program(&a), program(&b), "different executed page sets");
    }

    #[test]
    fn oracle_recovers_text_from_clean_trace() {
        // Build the exact trace rendering would produce.
        let secret = "hello";
        let mut trace = Vec::new();
        for c in secret.chars() {
            trace.extend(glyph_code_pages(c));
        }
        let alphabet: Vec<char> = ('a'..='z').collect();
        let recovered = recover_text_from_trace(&trace, &alphabet);
        assert_eq!(recovered, secret);
    }
}
