//! Phoenix MapReduce kernels (paper §7.2, Figure 7): kmeans, linear
//! regression, word count, PCA, string match, and matrix multiply.
//!
//! Each kernel takes a `pages` footprint parameter so the Figure 7 harness
//! can size working sets relative to EPC; the access *patterns* match the
//! originals (streaming sweeps for linreg/smatch, strided reuse for
//! mmult, hash updates for wcount, iterative scans for kmeans/pca).

use autarky_runtime::RtError;
use autarky_sgx_sim::PAGE_SIZE;

use crate::encmem::{EncHeap, EncVecF64, World};
use crate::uthash::{hash64, EncHashTable};

fn floats_for(pages: usize) -> usize {
    pages * PAGE_SIZE / 8
}

/// K-means clustering: iterative sweeps over a point array with a small
/// hot centroid table.
pub fn kmeans(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    const D: usize = 4;
    const K: usize = 8;
    let n = (floats_for(pages) / D).max(64);
    let points = EncVecF64::new(world, heap, n * D)?;
    let centroids = EncVecF64::new(world, heap, K * D)?;
    for i in 0..n * D {
        points.set(world, heap, i, (hash64(i as u64) % 1000) as f64 / 100.0)?;
    }
    for i in 0..K * D {
        centroids.set(
            world,
            heap,
            i,
            (hash64(i as u64 ^ 99) % 1000) as f64 / 100.0,
        )?;
    }
    let mut assignment_hash = 0u64;
    for _iter in 0..3 {
        let mut sums = vec![0f64; K * D];
        let mut counts = [0u64; K];
        for p in 0..n {
            let mut pt = [0f64; D];
            for (d, v) in pt.iter_mut().enumerate() {
                *v = points.get(world, heap, p * D + d)?;
            }
            let mut best = (0usize, f64::MAX);
            for k in 0..K {
                let mut dist = 0.0;
                for (d, &v) in pt.iter().enumerate() {
                    let c = centroids.get(world, heap, k * D + d)?;
                    dist += (v - c) * (v - c);
                }
                if dist < best.1 {
                    best = (k, dist);
                }
            }
            counts[best.0] += 1;
            for (d, &v) in pt.iter().enumerate() {
                sums[best.0 * D + d] += v;
            }
            assignment_hash = assignment_hash.wrapping_add(hash64(p as u64 ^ best.0 as u64));
            world.compute(K as u64 * D as u64 * 3);
        }
        for k in 0..K {
            if counts[k] > 0 {
                for d in 0..D {
                    centroids.set(world, heap, k * D + d, sums[k * D + d] / counts[k] as f64)?;
                }
            }
        }
    }
    Ok(assignment_hash)
}

/// Linear regression: one streaming pass accumulating sums.
pub fn linreg(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let n = (floats_for(pages) / 2).max(64);
    let xs = EncVecF64::new(world, heap, n)?;
    let ys = EncVecF64::new(world, heap, n)?;
    for i in 0..n {
        let x = (hash64(i as u64) % 10_000) as f64 / 100.0;
        xs.set(world, heap, i, x)?;
        ys.set(
            world,
            heap,
            i,
            3.0 * x + 7.0 + ((hash64(i as u64 ^ 5) % 100) as f64 / 100.0),
        )?;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0f64, 0f64, 0f64, 0f64);
    for i in 0..n {
        let x = xs.get(world, heap, i)?;
        let y = ys.get(world, heap, i)?;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        world.compute(8);
    }
    let nf = n as f64;
    let slope = (nf * sxy - sx * sy) / (nf * sxx - sx * sx);
    let intercept = (sy - slope * sx) / nf;
    debug_assert!((slope - 3.0).abs() < 0.1, "slope {slope}");
    Ok(slope.to_bits() ^ intercept.to_bits())
}

/// Word count: stream a text buffer, counting words in a hash table.
pub fn wcount(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let text_pages = pages * 3 / 4;
    let bytes = text_pages * PAGE_SIZE;
    let text = heap.alloc(world, bytes)?;
    // Synthetic text: words of 3-8 letters from a 4096-word vocabulary.
    let mut chunk = Vec::with_capacity(PAGE_SIZE);
    let mut written = 0usize;
    let mut word_idx = 0u64;
    while written < bytes {
        chunk.clear();
        while chunk.len() + 10 < PAGE_SIZE {
            let w = hash64(word_idx) % 4096;
            word_idx += 1;
            let len = 3 + (hash64(w) % 6) as usize;
            for i in 0..len {
                chunk.push(b'a' + (hash64(w ^ i as u64) % 26) as u8);
            }
            chunk.push(b' ');
        }
        chunk.resize(PAGE_SIZE.min(bytes - written), b' ');
        heap.write(world, text.offset(written as u64), &chunk)?;
        written += chunk.len();
    }
    // Count words.
    let mut counts = EncHashTable::new(world, heap, 1024, 8, 16)?;
    let mut buf = vec![0u8; PAGE_SIZE];
    let mut current = 0u64;
    let mut have_word = false;
    let mut total_words = 0u64;
    for off in (0..bytes).step_by(PAGE_SIZE) {
        let n = buf.len().min(bytes - off);
        heap.read(world, text.offset(off as u64), &mut buf[..n])?;
        for &b in &buf[..n] {
            if b.is_ascii_alphabetic() {
                current = current.wrapping_mul(31).wrapping_add(b as u64);
                have_word = true;
            } else if have_word {
                let key = hash64(current);
                let prev = counts
                    .get(world, heap, key)?
                    .map(|v| u64::from_le_bytes(v.try_into().expect("8 bytes")))
                    .unwrap_or(0);
                counts.insert(world, heap, key, &(prev + 1).to_le_bytes())?;
                total_words += 1;
                current = 0;
                have_word = false;
            }
            world.compute(2);
        }
    }
    Ok(total_words ^ counts.len())
}

/// PCA first stage: mean-center and compute a covariance matrix by
/// column sweeps.
pub fn pca(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    const COLS: usize = 8;
    let rows = (floats_for(pages) / COLS).max(32);
    let data = EncVecF64::new(world, heap, rows * COLS)?;
    for i in 0..rows * COLS {
        data.set(world, heap, i, (hash64(i as u64) % 2000) as f64 / 100.0)?;
    }
    let mut means = [0f64; COLS];
    for (c, mean) in means.iter_mut().enumerate() {
        let mut sum = 0.0;
        for r in 0..rows {
            sum += data.get(world, heap, r * COLS + c)?;
        }
        *mean = sum / rows as f64;
        world.compute(rows as u64);
    }
    let mut checksum = 0u64;
    for a in 0..COLS {
        for b in a..COLS {
            let mut cov = 0.0;
            for r in 0..rows {
                let x = data.get(world, heap, r * COLS + a)? - means[a];
                let y = data.get(world, heap, r * COLS + b)? - means[b];
                cov += x * y;
            }
            cov /= (rows - 1) as f64;
            checksum = checksum.wrapping_add(cov.to_bits() >> 16);
            world.compute(rows as u64 * 3);
        }
    }
    Ok(checksum)
}

/// String match: stream the corpus comparing against a small key set.
pub fn smatch(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let bytes = pages * PAGE_SIZE;
    let corpus = heap.alloc(world, bytes)?;
    let keys: Vec<&[u8]> = vec![b"needle", b"autarky", b"enclave", b"oblivious"];
    // Plant known needles at deterministic positions.
    let mut chunk = vec![0u8; PAGE_SIZE];
    let mut planted = 0u64;
    for (page, off) in (0..bytes).step_by(PAGE_SIZE).enumerate() {
        for (i, b) in chunk.iter_mut().enumerate() {
            *b = b'a' + (hash64((off + i) as u64) % 20) as u8;
        }
        if page % 7 == 3 {
            let key = keys[page % keys.len()];
            chunk[100..100 + key.len()].copy_from_slice(key);
            planted += 1;
        }
        let n = chunk.len().min(bytes - off);
        heap.write(world, corpus.offset(off as u64), &chunk[..n])?;
    }
    // Scan.
    let mut found = 0u64;
    let mut buf = vec![0u8; PAGE_SIZE + 16];
    for off in (0..bytes).step_by(PAGE_SIZE) {
        let n = (PAGE_SIZE + 16).min(bytes - off);
        heap.read(world, corpus.offset(off as u64), &mut buf[..n])?;
        for key in &keys {
            found += buf[..n].windows(key.len()).filter(|w| w == key).count() as u64;
        }
        world.compute(PAGE_SIZE as u64);
    }
    debug_assert!(found >= planted, "found {found} < planted {planted}");
    Ok(found)
}

/// Matrix multiply: row×column sweeps (strided, TLB- and paging-heavy).
pub fn mmult(world: &mut World, heap: &mut EncHeap, pages: usize) -> Result<u64, RtError> {
    let n = (((floats_for(pages) / 3) as f64).sqrt() as usize).max(16);
    let a = EncVecF64::new(world, heap, n * n)?;
    let b = EncVecF64::new(world, heap, n * n)?;
    let c = EncVecF64::new(world, heap, n * n)?;
    for i in 0..n * n {
        a.set(world, heap, i, (hash64(i as u64) % 100) as f64 / 10.0)?;
        b.set(world, heap, i, (hash64(i as u64 ^ 3) % 100) as f64 / 10.0)?;
    }
    let mut checksum = 0u64;
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            for k in 0..n {
                sum += a.get(world, heap, i * n + k)? * b.get(world, heap, k * n + j)?;
            }
            c.set(world, heap, i * n + j, sum)?;
            world.compute(2 * n as u64);
        }
        checksum = checksum.wrapping_add(c.get(world, heap, i * n + i)?.to_bits() >> 16);
    }
    Ok(checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world() -> World {
        let mut img = EnclaveImage::named("phoenix-test");
        img.heap_pages = 1024;
        World::new(
            MachineConfig {
                epc_frames: 4096,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn kernels_run_and_are_deterministic() {
        type F = fn(&mut World, &mut EncHeap, usize) -> Result<u64, RtError>;
        let kernels: Vec<(&str, F)> = vec![
            ("kmeans", kmeans),
            ("linreg", linreg),
            ("wcount", wcount),
            ("pca", pca),
            ("smatch", smatch),
            ("mmult", mmult),
        ];
        for (name, run) in kernels {
            let mut w1 = world();
            let mut h1 = EncHeap::direct();
            let a = run(&mut w1, &mut h1, 16).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut w2 = world();
            let mut h2 = EncHeap::direct();
            let b = run(&mut w2, &mut h2, 16).expect("rerun");
            assert_eq!(a, b, "{name} deterministic");
        }
    }

    #[test]
    fn linreg_recovers_slope() {
        let mut w = world();
        let mut h = EncHeap::direct();
        linreg(&mut w, &mut h, 8).expect("runs with internal slope assert");
    }

    #[test]
    fn smatch_finds_planted_needles() {
        let mut w = world();
        let mut h = EncHeap::direct();
        let found = smatch(&mut w, &mut h, 32).expect("run");
        assert!(found >= 4, "planted needles found: {found}");
    }
}
