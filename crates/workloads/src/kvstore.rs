//! A Memcached-style key-value store over instrumented enclave memory
//! (the paper's §7.3 / Figure 8 workload: 1 KB entries, 100% GET,
//! single-threaded).
//!
//! To support the page-cluster configuration, the store mirrors the
//! paper's 30-line Memcached patch: its slab allocator registers every
//! item page with a fixed-size cluster, so an item access reveals only
//! its cluster.

use autarky_runtime::RtError;
use autarky_sgx_sim::{Vpn, PAGE_SIZE};

use crate::encmem::{EncHeap, World};
use crate::uthash::EncHashTable;

/// Clustering applied to item storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemClustering {
    /// No clustering (baseline / rate-limited / ORAM configurations).
    None,
    /// Register every item page with clusters of this many pages
    /// (the paper's modified slab allocation, 10 pages).
    Pages(usize),
}

/// The key-value store.
pub struct KvStore {
    table: EncHashTable,
    value_size: usize,
    /// GET operations served.
    pub gets: u64,
    /// SET operations served.
    pub sets: u64,
}

impl KvStore {
    /// Create a store for `expected_items` values of `value_size` bytes.
    pub fn new(
        world: &mut World,
        heap: &mut EncHeap,
        expected_items: u64,
        value_size: usize,
        clustering: ItemClustering,
    ) -> Result<Self, RtError> {
        // Clustering must be configured before the table allocates its
        // first pages, so the bucket array is covered too.
        if let ItemClustering::Pages(pages) = clustering {
            world.rt.clusters.ay_init_clusters(0, pages);
        }
        // Bucket count sized for short chains, as Memcached does.
        let nbuckets = (expected_items / 4).next_power_of_two().max(16);
        let table = EncHashTable::new(world, heap, nbuckets, value_size, 16)?;
        Ok(Self {
            table,
            value_size,
            gets: 0,
            sets: 0,
        })
    }

    /// Value size in bytes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// Store `value` under `key`.
    pub fn set(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        key: u64,
        value: &[u8],
    ) -> Result<(), RtError> {
        self.sets += 1;
        world.progress(1); // forward-progress signal for the rate limiter
                           // Request processing (protocol parse, dispatch, response build):
                           // Memcached spends ~40µs/request single-threaded over loopback.
        world.compute(120_000);
        // Under ItemClustering::Pages the runtime allocator auto-clusters
        // every page the table grows into (configured in `new`), which is
        // the paper's 30-line slab-allocation patch.
        self.table.insert(world, heap, key, value)
    }

    /// Fetch the value under `key`.
    pub fn get(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        key: u64,
    ) -> Result<Option<Vec<u8>>, RtError> {
        self.gets += 1;
        world.progress(1);
        world.compute(120_000);
        self.table.get(world, heap, key)
    }

    /// Items stored.
    pub fn len(&self) -> u64 {
        self.table.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Deterministic value payload for `key` (load generators and
    /// correctness checks share it).
    pub fn value_for(key: u64, value_size: usize) -> Vec<u8> {
        let mut value = vec![0u8; value_size];
        let seed = crate::uthash::hash64(key);
        for (i, b) in value.iter_mut().enumerate() {
            *b = (seed.wrapping_add(i as u64) % 256) as u8;
        }
        value
    }

    /// Populate the store with `items` deterministic entries.
    pub fn load(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        items: u64,
    ) -> Result<(), RtError> {
        for key in 0..items {
            let value = Self::value_for(key, self.value_size);
            self.set(world, heap, key, &value)?;
        }
        Ok(())
    }
}

/// A secret-input pair for leakage audits: two GET key streams of
/// `count` requests each, drawn from disjoint halves of a store of
/// `items` keys. Request count, value sizes, and timing are identical;
/// only which items are touched differs.
pub fn secret_pair(items: u64, count: usize) -> (Vec<u64>, Vec<u64>) {
    let half = (items / 2).max(1);
    let a = (0..count).map(|i| i as u64 % half).collect();
    let b = (0..count).map(|i| i as u64 % half + half).collect();
    (a, b)
}

/// Enable cluster registration on a direct heap world: route the runtime
/// allocator's pages into auto clusters of `pages` pages.
pub fn enable_item_clusters(world: &mut World, pages: usize) {
    world.rt.clusters.ay_init_clusters(0, pages);
}

/// Hand the heap region to the OS for the *baseline* (insecure) and
/// rate-limited configurations where item pages are not pinned.
pub fn declare_heap_os_managed(world: &mut World) -> Result<(), RtError> {
    let pages: Vec<Vpn> = world.image.heap_range().collect();
    world.os.ay_set_os_managed(world.eid, &pages)?;
    Ok(())
}

/// Approximate bytes a store of `items` × `value_size` occupies,
/// including node headers and the bucket array.
pub fn store_bytes(items: u64, value_size: usize) -> u64 {
    let node = (16 + value_size) as u64;
    let buckets = (items / 4).next_power_of_two().max(16) * 8;
    items * node + buckets
}

/// Pages needed for a store (rounded up).
pub fn store_pages(items: u64, value_size: usize) -> u64 {
    store_bytes(items, value_size).div_ceil(PAGE_SIZE as u64) + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world(heap_pages: usize) -> World {
        let mut img = EnclaveImage::named("kv-test");
        img.heap_pages = heap_pages;
        World::new(
            MachineConfig {
                epc_frames: heap_pages + 128,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn set_get_roundtrip() {
        let mut w = world(1024);
        let mut heap = EncHeap::direct();
        let mut store =
            KvStore::new(&mut w, &mut heap, 100, 64, ItemClustering::None).expect("store");
        store.load(&mut w, &mut heap, 100).expect("load");
        for key in 0..100u64 {
            let got = store
                .get(&mut w, &mut heap, key)
                .expect("get")
                .expect("present");
            assert_eq!(got, KvStore::value_for(key, 64));
        }
        assert_eq!(store.get(&mut w, &mut heap, 999).expect("get"), None);
        assert_eq!(store.gets, 101);
        assert_eq!(store.sets, 100);
    }

    #[test]
    fn values_are_key_dependent() {
        assert_ne!(KvStore::value_for(1, 32), KvStore::value_for(2, 32));
        assert_eq!(KvStore::value_for(1, 32), KvStore::value_for(1, 32));
    }

    #[test]
    fn store_over_cached_oram() {
        let mut w = world(256);
        let mut heap = EncHeap::cached_oram(1024, 64, 5);
        let mut store =
            KvStore::new(&mut w, &mut heap, 50, 128, ItemClustering::None).expect("store");
        store.load(&mut w, &mut heap, 50).expect("load");
        for key in (0..50u64).rev() {
            let got = store
                .get(&mut w, &mut heap, key)
                .expect("get")
                .expect("present");
            assert_eq!(got, KvStore::value_for(key, 128));
        }
    }

    #[test]
    fn secret_pair_disjoint_key_streams() {
        let (a, b) = secret_pair(64, 40);
        assert_eq!(a.len(), 40);
        assert_eq!(b.len(), 40);
        let set_a: std::collections::HashSet<u64> = a.iter().copied().collect();
        let set_b: std::collections::HashSet<u64> = b.iter().copied().collect();
        assert!(set_a.is_disjoint(&set_b), "key sets are disjoint");
        assert!(a.iter().chain(&b).all(|&k| k < 64), "all keys loadable");
    }

    #[test]
    fn size_estimates_are_sane() {
        let pages = store_pages(1000, 1024);
        assert!(pages > 250, "1000×1KB needs >1MB: got {pages} pages");
        assert!(pages < 600);
    }

    #[test]
    fn item_clustering_registers_pages() {
        let mut w = world(1024);
        let mut heap = EncHeap::direct();
        let mut store =
            KvStore::new(&mut w, &mut heap, 200, 256, ItemClustering::Pages(10)).expect("store");
        store.load(&mut w, &mut heap, 200).expect("load");
        // Item pages must have landed in clusters of up to 10 pages.
        let heap_start = w.image.heap_start();
        let ids = w.rt.clusters.ay_get_cluster_ids(heap_start);
        assert_eq!(ids.len(), 1, "first item page is clustered");
        let len = w.rt.clusters.cluster_len(ids[0]);
        assert!((2..=10).contains(&len), "cluster of {len} pages");
    }
}
