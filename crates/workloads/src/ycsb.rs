//! YCSB-style key generators (workload C = 100% GET) used by the
//! Memcached evaluation (paper §7.3, Figure 8): uniform, Zipfian with
//! α = 0.99, and hotspot distributions.

use autarky_prng::SimRng;

/// Request-key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every key equally likely.
    Uniform,
    /// YCSB Zipfian with the given exponent (0.99 in the paper; ~90% of
    /// requests hit ~10% of keys).
    Zipfian {
        /// The skew exponent α.
        theta: f64,
    },
    /// A hot set of `hot_frac` of the keys takes `hot_prob` of requests
    /// (paper: 1% of entries with 90% or 99% probability).
    Hotspot {
        /// Fraction of the keyspace that is hot.
        hot_frac: f64,
        /// Probability a request targets the hot set.
        hot_prob: f64,
    },
}

/// A seeded request-key generator over keys `0..n`.
pub struct KeyGenerator {
    n: u64,
    dist: Distribution,
    rng: SimRng,
    // Zipfian state (Gray et al.'s method, as in YCSB).
    zetan: f64,
    theta: f64,
    alpha: f64,
    eta: f64,
}

impl KeyGenerator {
    /// Create a generator for `n` keys under `dist`, seeded for
    /// reproducibility.
    pub fn new(n: u64, dist: Distribution, seed: u64) -> Self {
        let (zetan, theta, alpha, eta) = match dist {
            Distribution::Zipfian { theta } => {
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                (zetan, theta, alpha, eta)
            }
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        Self {
            n,
            dist,
            rng: SimRng::seed_from_u64(seed),
            zetan,
            theta,
            alpha,
            eta,
        }
    }

    /// Keyspace size.
    pub fn keyspace(&self) -> u64 {
        self.n
    }

    /// Draw the next key.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            Distribution::Uniform => self.rng.gen_range(0..self.n),
            Distribution::Zipfian { .. } => {
                let u: f64 = self.rng.gen_f64();
                let uz = u * self.zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(self.theta) {
                    return 1;
                }
                let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
                // Scatter ranks over the keyspace so the hot keys are not
                // physically adjacent (YCSB's hashed-Zipfian behaviour).
                crate::uthash::hash64(raw.min(self.n - 1)) % self.n
            }
            Distribution::Hotspot { hot_frac, hot_prob } => {
                let hot_n = ((self.n as f64 * hot_frac) as u64).max(1);
                if self.rng.gen_f64() < hot_prob {
                    self.rng.gen_range(0..hot_n)
                } else {
                    hot_n + self.rng.gen_range(0..self.n - hot_n)
                }
            }
        }
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct summation; n is at most a few hundred thousand in the
    // simulator, and the generator is built once per run.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(generator: &mut KeyGenerator, samples: usize) -> HashMap<u64, u64> {
        let mut h = HashMap::new();
        for _ in 0..samples {
            *h.entry(generator.next_key()).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_keyspace_evenly() {
        let mut g = KeyGenerator::new(100, Distribution::Uniform, 1);
        let h = histogram(&mut g, 100_000);
        assert!(h.len() > 95, "nearly all keys drawn");
        let max = *h.values().max().expect("nonempty");
        let min = *h.values().min().expect("nonempty");
        assert!(max < min * 2, "uniform spread: min {min}, max {max}");
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = KeyGenerator::new(10_000, Distribution::Zipfian { theta: 0.99 }, 1);
        let h = histogram(&mut g, 100_000);
        let mut counts: Vec<u64> = h.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = counts.iter().take(counts.len() / 10).sum();
        let total: u64 = counts.iter().sum();
        assert!(
            top_decile as f64 > total as f64 * 0.6,
            "top 10% of drawn keys should dominate, got {}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn zipfian_keys_in_range() {
        let mut g = KeyGenerator::new(1000, Distribution::Zipfian { theta: 0.99 }, 7);
        for _ in 0..10_000 {
            assert!(g.next_key() < 1000);
        }
    }

    #[test]
    fn hotspot_probability_respected() {
        let n = 10_000u64;
        let mut g = KeyGenerator::new(
            n,
            Distribution::Hotspot {
                hot_frac: 0.01,
                hot_prob: 0.9,
            },
            1,
        );
        let hot_n = 100u64;
        let mut hot_hits = 0u64;
        let samples = 100_000;
        for _ in 0..samples {
            if g.next_key() < hot_n {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / samples as f64;
        assert!((0.88..0.92).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = KeyGenerator::new(100, Distribution::Zipfian { theta: 0.99 }, 9);
        let mut b = KeyGenerator::new(100, Distribution::Zipfian { theta: 0.99 }, 9);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }
}
