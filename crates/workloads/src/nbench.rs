//! The nbench (BYTEmark) kernel suite over instrumented enclave memory
//! (paper §7: the no-paging overhead experiment — datasets fit in EPC, so
//! Autarky's only cost is the per-TLB-fill check).
//!
//! All ten kernels are implemented: numeric sort, string sort, bitfield,
//! FP emulation, Fourier, assignment, IDEA, Huffman, neural net, and LU
//! decomposition. Each is a compact but real implementation of the
//! original benchmark's algorithm, reads and writes its dataset through
//! the simulated MMU, and returns a checksum so tests can pin behaviour.

use autarky_runtime::RtError;

use crate::encmem::{EncHeap, EncVecF64, EncVecU64, Ptr, World};
use crate::uthash::hash64;

/// One nbench kernel.
pub struct Kernel {
    /// Kernel name (matches nbench's).
    pub name: &'static str,
    /// Run at `scale` (≥1), returning a checksum.
    pub run: fn(&mut World, &mut EncHeap, u32) -> Result<u64, RtError>,
}

/// All ten kernels, in nbench order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "numeric sort",
            run: numeric_sort,
        },
        Kernel {
            name: "string sort",
            run: string_sort,
        },
        Kernel {
            name: "bitfield",
            run: bitfield,
        },
        Kernel {
            name: "fp emulation",
            run: fp_emulation,
        },
        Kernel {
            name: "fourier",
            run: fourier,
        },
        Kernel {
            name: "assignment",
            run: assignment,
        },
        Kernel {
            name: "idea",
            run: idea,
        },
        Kernel {
            name: "huffman",
            run: huffman,
        },
        Kernel {
            name: "neural net",
            run: neural_net,
        },
        Kernel {
            name: "lu decomposition",
            run: lu_decomposition,
        },
    ]
}

// ------------------------------------------------------------------
// 1. Numeric sort: heapsort of 64-bit integers.
// ------------------------------------------------------------------

/// Heapsort a seeded array; checksum samples the sorted result.
pub fn numeric_sort(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let n = 2048 * scale as usize;
    let v = EncVecU64::new(world, heap, n)?;
    for i in 0..n {
        v.set(world, heap, i, hash64(i as u64))?;
    }
    // Build max-heap.
    let sift = |world: &mut World,
                heap: &mut EncHeap,
                mut root: usize,
                end: usize|
     -> Result<(), RtError> {
        loop {
            let child = 2 * root + 1;
            if child >= end {
                return Ok(());
            }
            let mut swap = root;
            if v.get(world, heap, swap)? < v.get(world, heap, child)? {
                swap = child;
            }
            if child + 1 < end && v.get(world, heap, swap)? < v.get(world, heap, child + 1)? {
                swap = child + 1;
            }
            if swap == root {
                return Ok(());
            }
            let a = v.get(world, heap, root)?;
            let b = v.get(world, heap, swap)?;
            v.set(world, heap, root, b)?;
            v.set(world, heap, swap, a)?;
            root = swap;
            world.compute(4);
        }
    };
    for start in (0..n / 2).rev() {
        sift(world, heap, start, n)?;
    }
    for end in (1..n).rev() {
        let a = v.get(world, heap, 0)?;
        let b = v.get(world, heap, end)?;
        v.set(world, heap, 0, b)?;
        v.set(world, heap, end, a)?;
        sift(world, heap, 0, end)?;
    }
    // Verify order and checksum.
    let mut prev = 0u64;
    let mut sum = 0u64;
    for i in (0..n).step_by(n / 64) {
        let x = v.get(world, heap, i)?;
        debug_assert!(x >= prev, "sorted order violated");
        prev = x;
        sum = sum.wrapping_add(x);
    }
    Ok(sum)
}

// ------------------------------------------------------------------
// 2. String sort: merge sort of fixed 16-byte strings.
// ------------------------------------------------------------------

/// Bottom-up merge sort over 16-byte strings; checksum of the result.
pub fn string_sort(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    const W: usize = 16;
    let n = 512 * scale as usize;
    let a = heap.alloc(world, n * W)?;
    let b = heap.alloc(world, n * W)?;
    for i in 0..n {
        let h = hash64(i as u64 ^ 0x5712);
        let mut s = [0u8; W];
        for (j, byte) in s.iter_mut().enumerate() {
            *byte = b'a' + (hash64(h ^ j as u64) % 26) as u8;
        }
        heap.write(world, a.offset((i * W) as u64), &s)?;
    }
    let read =
        |world: &mut World, heap: &mut EncHeap, base: Ptr, i: usize| -> Result<[u8; W], RtError> {
            let mut s = [0u8; W];
            heap.read(world, base.offset((i * W) as u64), &mut s)?;
            Ok(s)
        };
    let mut src = a;
    let mut dst = b;
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while k < hi {
                let take_left = if i >= mid {
                    false
                } else if j >= hi {
                    true
                } else {
                    read(world, heap, src, i)? <= read(world, heap, src, j)?
                };
                let s = if take_left {
                    let s = read(world, heap, src, i)?;
                    i += 1;
                    s
                } else {
                    let s = read(world, heap, src, j)?;
                    j += 1;
                    s
                };
                heap.write(world, dst.offset((k * W) as u64), &s)?;
                k += 1;
                world.compute(8);
            }
            lo = hi;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    let mut sum = 0u64;
    let mut prev = [0u8; W];
    for i in (0..n).step_by((n / 64).max(1)) {
        let s = read(world, heap, src, i)?;
        debug_assert!(s >= prev);
        prev = s;
        sum = sum.wrapping_add(u64::from_le_bytes(s[..8].try_into().expect("8")));
    }
    Ok(sum)
}

// ------------------------------------------------------------------
// 3. Bitfield: set / clear / complement runs of bits.
// ------------------------------------------------------------------

/// The bitfield manipulation kernel.
pub fn bitfield(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let words = 1024 * scale as usize;
    let bits = EncVecU64::new(world, heap, words)?;
    let nbits = (words * 64) as u64;
    let ops = 4096 * scale as u64;
    for op in 0..ops {
        let h = hash64(op);
        let start = h % nbits;
        let len = 1 + (hash64(h) % 256);
        let mode = h % 3;
        for bit in start..start + len {
            if bit >= nbits {
                break;
            }
            let word = (bit / 64) as usize;
            let mask = 1u64 << (bit % 64);
            let cur = bits.get(world, heap, word)?;
            let new = match mode {
                0 => cur | mask,
                1 => cur & !mask,
                _ => cur ^ mask,
            };
            bits.set(world, heap, word, new)?;
        }
        world.compute(len);
    }
    let mut ones = 0u64;
    for i in 0..words {
        ones += bits.get(world, heap, i)?.count_ones() as u64;
    }
    Ok(ones)
}

// ------------------------------------------------------------------
// 4. FP emulation: software floating point over integer arrays.
// ------------------------------------------------------------------

/// Pack sign/exponent/mantissa into a software float.
fn sf_pack(sign: u64, exp: i64, mant: u64) -> u64 {
    (sign << 63) | (((exp + 1024) as u64) << 40) | (mant & 0xFF_FFFF_FFFF)
}

fn sf_unpack(f: u64) -> (u64, i64, u64) {
    (
        f >> 63,
        ((f >> 40) & 0x7FFFFF) as i64 - 1024,
        f & 0xFF_FFFF_FFFF,
    )
}

fn sf_from_f64(x: f64) -> u64 {
    if x == 0.0 {
        return 0;
    }
    let sign = if x < 0.0 { 1 } else { 0 };
    let mut m = x.abs();
    let mut e = 0i64;
    while m >= 2.0 {
        m /= 2.0;
        e += 1;
    }
    while m < 1.0 {
        m *= 2.0;
        e -= 1;
    }
    sf_pack(sign, e, (m * (1u64 << 39) as f64) as u64)
}

fn sf_to_f64(f: u64) -> f64 {
    if f == 0 {
        return 0.0;
    }
    let (s, e, m) = sf_unpack(f);
    let v = m as f64 / (1u64 << 39) as f64 * 2f64.powi(e as i32);
    if s == 1 {
        -v
    } else {
        v
    }
}

fn sf_mul(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (sa, ea, ma) = sf_unpack(a);
    let (sb, eb, mb) = sf_unpack(b);
    let mut m = ((ma as u128 * mb as u128) >> 39) as u64;
    let mut e = ea + eb;
    while m >= 1 << 40 {
        m >>= 1;
        e += 1;
    }
    sf_pack(sa ^ sb, e, m)
}

fn sf_add(a: u64, b: u64) -> u64 {
    // Implemented via integer alignment; covers same-sign addition, which
    // is what the kernel exercises.
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let (sa, ea, ma) = sf_unpack(a);
    let (sb, eb, mb) = sf_unpack(b);
    debug_assert_eq!(sa, sb, "kernel uses same-sign sums");
    let (eh, mh, ml, el) = if ea >= eb {
        (ea, ma, mb, eb)
    } else {
        (eb, mb, ma, ea)
    };
    let shift = (eh - el).min(63);
    let mut m = mh + (ml >> shift);
    let mut e = eh;
    while m >= 1 << 40 {
        m >>= 1;
        e += 1;
    }
    sf_pack(sa, e, m)
}

/// Software-float array arithmetic; checks against hardware floats.
pub fn fp_emulation(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let n = 1024 * scale as usize;
    let a = EncVecU64::new(world, heap, n)?;
    let b = EncVecU64::new(world, heap, n)?;
    let c = EncVecU64::new(world, heap, n)?;
    for i in 0..n {
        let x = 0.5 + (hash64(i as u64) % 1000) as f64 / 500.0;
        let y = 0.5 + (hash64(i as u64 ^ 1) % 1000) as f64 / 500.0;
        a.set(world, heap, i, sf_from_f64(x))?;
        b.set(world, heap, i, sf_from_f64(y))?;
    }
    for i in 0..n {
        let x = a.get(world, heap, i)?;
        let y = b.get(world, heap, i)?;
        let r = sf_add(sf_mul(x, y), sf_mul(x, x));
        c.set(world, heap, i, r)?;
        world.compute(40); // software FP is expensive
    }
    // Spot-check accuracy and build the checksum.
    let mut sum = 0u64;
    for i in (0..n).step_by((n / 32).max(1)) {
        let x = sf_to_f64(a.get(world, heap, i)?);
        let y = sf_to_f64(b.get(world, heap, i)?);
        let r = sf_to_f64(c.get(world, heap, i)?);
        let expected = x * y + x * x;
        debug_assert!((r - expected).abs() / expected < 1e-6, "{r} vs {expected}");
        sum = sum.wrapping_add(c.get(world, heap, i)?);
    }
    Ok(sum)
}

// ------------------------------------------------------------------
// 5. Fourier: coefficients of (x+1)^x on [0,2] by trapezoid rule.
// ------------------------------------------------------------------

/// The Fourier-coefficients kernel (nbench's actual function).
pub fn fourier(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let n = 32 * scale as usize;
    let coeffs = EncVecF64::new(world, heap, 2 * n)?;
    let f = |x: f64| (x + 1.0).powf(x);
    let integrate = |g: &dyn Fn(f64) -> f64| {
        let steps = 200;
        let dx = 2.0 / steps as f64;
        let mut sum = (g(0.0) + g(2.0)) / 2.0;
        for i in 1..steps {
            sum += g(i as f64 * dx);
        }
        sum * dx
    };
    for k in 0..n {
        let w = std::f64::consts::PI * k as f64;
        let a = integrate(&|x| f(x) * (w * x).cos());
        let b = integrate(&|x| f(x) * (w * x).sin());
        coeffs.set(world, heap, 2 * k, a)?;
        coeffs.set(world, heap, 2 * k + 1, b)?;
        world.compute(4000); // 400 transcendental evaluations
    }
    let mut sum = 0u64;
    for k in 0..2 * n {
        sum = sum.wrapping_add(coeffs.get(world, heap, k)?.to_bits() >> 16);
    }
    Ok(sum)
}

// ------------------------------------------------------------------
// 6. Assignment: task-assignment cost minimization.
// ------------------------------------------------------------------

/// Row/column reduction plus greedy diagonal assignment on an N×N cost
/// matrix (the structure of nbench's assignment kernel).
pub fn assignment(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let n = 32 * (scale as usize).min(4) + 32;
    let m = EncVecU64::new(world, heap, n * n)?;
    for i in 0..n * n {
        m.set(world, heap, i, 1 + hash64(i as u64) % 1000)?;
    }
    // Row reduction.
    for r in 0..n {
        let mut min = u64::MAX;
        for c in 0..n {
            min = min.min(m.get(world, heap, r * n + c)?);
        }
        for c in 0..n {
            let v = m.get(world, heap, r * n + c)?;
            m.set(world, heap, r * n + c, v - min)?;
        }
        world.compute(2 * n as u64);
    }
    // Column reduction.
    for c in 0..n {
        let mut min = u64::MAX;
        for r in 0..n {
            min = min.min(m.get(world, heap, r * n + c)?);
        }
        for r in 0..n {
            let v = m.get(world, heap, r * n + c)?;
            m.set(world, heap, r * n + c, v - min)?;
        }
        world.compute(2 * n as u64);
    }
    // Greedy assignment on zeros.
    let mut used_cols = vec![false; n];
    let mut assigned = 0u64;
    for r in 0..n {
        for (c, used) in used_cols.iter_mut().enumerate() {
            if !*used && m.get(world, heap, r * n + c)? == 0 {
                *used = true;
                assigned += 1;
                break;
            }
        }
    }
    Ok(assigned)
}

// ------------------------------------------------------------------
// 7. IDEA cipher.
// ------------------------------------------------------------------

fn idea_mul(a: u16, b: u16) -> u16 {
    // Multiplication modulo 65537 with 0 ≡ 65536 (65536² overflows u32).
    let a = if a == 0 { 65536u64 } else { a as u64 };
    let b = if b == 0 { 65536u64 } else { b as u64 };
    let p = (a * b) % 65537;
    if p == 65536 {
        0
    } else {
        p as u16
    }
}

fn idea_expand_key(key: &[u16; 8]) -> [u16; 52] {
    let mut sub = [0u16; 52];
    sub[..8].copy_from_slice(key);
    for i in 8..52 {
        // Rotate the 128-bit key left by 25 bits, expressed per-word.
        let base = i - i % 8;
        let idx = |j: usize| sub[base - 8 + (j % 8)];
        let j = i % 8;
        sub[i] = if j < 6 {
            (idx(j + 1) << 9) | (idx(j + 2) >> 7)
        } else {
            (idx((j + 1) % 8) << 9) | (idx((j + 2) % 8) >> 7)
        };
    }
    sub
}

fn idea_encrypt_block(block: [u16; 4], sub: &[u16; 52]) -> [u16; 4] {
    let [mut x1, mut x2, mut x3, mut x4] = block;
    for round in 0..8 {
        let k = &sub[round * 6..round * 6 + 6];
        x1 = idea_mul(x1, k[0]);
        x2 = x2.wrapping_add(k[1]);
        x3 = x3.wrapping_add(k[2]);
        x4 = idea_mul(x4, k[3]);
        let t0 = x1 ^ x3;
        let t1 = x2 ^ x4;
        let t0 = idea_mul(t0, k[4]);
        let t1 = t1.wrapping_add(t0);
        let t1 = idea_mul(t1, k[5]);
        let t0 = t0.wrapping_add(t1);
        x1 ^= t1;
        x4 ^= t0;
        let tmp = x2 ^ t0;
        x2 = x3 ^ t1;
        x3 = tmp;
    }
    let k = &sub[48..52];
    [
        idea_mul(x1, k[0]),
        x3.wrapping_add(k[1]),
        x2.wrapping_add(k[2]),
        idea_mul(x4, k[3]),
    ]
}

/// IDEA encryption over an enclave buffer (ECB, encrypt-only like nbench;
/// determinism is the checksum).
pub fn idea(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let blocks = 2048 * scale as usize;
    let data = heap.alloc(world, blocks * 8)?;
    for i in 0..blocks {
        heap.write_u64(world, data.offset((i * 8) as u64), hash64(i as u64))?;
    }
    let key: [u16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
    let sub = idea_expand_key(&key);
    let mut sum = 0u64;
    for i in 0..blocks {
        let raw = heap.read_u64(world, data.offset((i * 8) as u64))?;
        let block = [
            raw as u16,
            (raw >> 16) as u16,
            (raw >> 32) as u16,
            (raw >> 48) as u16,
        ];
        let out = idea_encrypt_block(block, &sub);
        let packed =
            out[0] as u64 | (out[1] as u64) << 16 | (out[2] as u64) << 32 | (out[3] as u64) << 48;
        heap.write_u64(world, data.offset((i * 8) as u64), packed)?;
        sum = sum.wrapping_add(packed);
        world.compute(50);
    }
    Ok(sum)
}

// ------------------------------------------------------------------
// 8. Huffman compression.
// ------------------------------------------------------------------

/// Huffman-code a buffer and verify the decode (tree built from in-enclave
/// frequency counts).
pub fn huffman(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let len = 8192 * scale as usize;
    let input = heap.alloc(world, len)?;
    // Skewed symbol distribution so coding actually compresses.
    let mut chunk = vec![0u8; 256];
    for i in (0..len).step_by(256) {
        for (j, b) in chunk.iter_mut().enumerate() {
            let h = hash64((i + j) as u64);
            *b = if !h.is_multiple_of(4) {
                (h % 4) as u8
            } else {
                (h % 32) as u8
            };
        }
        let n = chunk.len().min(len - i);
        heap.write(world, input.offset(i as u64), &chunk[..n])?;
    }
    // Frequency count through enclave memory.
    let freq_v = EncVecU64::new(world, heap, 32)?;
    let mut buf = vec![0u8; 256];
    for i in (0..len).step_by(256) {
        let n = buf.len().min(len - i);
        heap.read(world, input.offset(i as u64), &mut buf[..n])?;
        for &b in &buf[..n] {
            let f = freq_v.get(world, heap, b as usize)?;
            freq_v.set(world, heap, b as usize, f + 1)?;
        }
    }
    // Build the tree (host stack; the real codebook is tiny and would be
    // enclave-resident code/data).
    #[derive(Clone)]
    struct Node {
        freq: u64,
        sym: Option<u8>,
        kids: Option<(usize, usize)>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut live: Vec<usize> = Vec::new();
    for sym in 0..32u8 {
        let freq = freq_v.get(world, heap, sym as usize)?;
        if freq > 0 {
            nodes.push(Node {
                freq,
                sym: Some(sym),
                kids: None,
            });
            live.push(nodes.len() - 1);
        }
    }
    while live.len() > 1 {
        live.sort_by_key(|&i| std::cmp::Reverse(nodes[i].freq));
        let a = live.pop().expect("len>1");
        let b = live.pop().expect("len>1");
        nodes.push(Node {
            freq: nodes[a].freq + nodes[b].freq,
            sym: None,
            kids: Some((a, b)),
        });
        live.push(nodes.len() - 1);
    }
    let root = live[0];
    let mut codes: Vec<Option<(u32, u8)>> = vec![None; 32];
    let mut stack = vec![(root, 0u32, 0u8)];
    while let Some((idx, code, bits)) = stack.pop() {
        match (nodes[idx].sym, nodes[idx].kids) {
            (Some(sym), _) => codes[sym as usize] = Some((code, bits.max(1))),
            (None, Some((a, b))) => {
                stack.push((a, code << 1, bits + 1));
                stack.push((b, (code << 1) | 1, bits + 1));
            }
            _ => unreachable!("leaf or internal"),
        }
    }
    // Encode into an enclave bitstream.
    let out = heap.alloc(world, len)?; // worst case ≤ input for this alphabet
    let mut bitbuf = 0u64;
    let mut nbits = 0u32;
    let mut out_pos = 0u64;
    let mut total_bits = 0u64;
    for i in (0..len).step_by(256) {
        let n = buf.len().min(len - i);
        heap.read(world, input.offset(i as u64), &mut buf[..n])?;
        for &b in &buf[..n] {
            let (code, bits) = codes[b as usize].expect("symbol seen");
            bitbuf = (bitbuf << bits) | code as u64;
            nbits += bits as u32;
            total_bits += bits as u64;
            while nbits >= 8 {
                nbits -= 8;
                let byte = (bitbuf >> nbits) as u8;
                heap.write(world, out.offset(out_pos), &[byte])?;
                out_pos += 1;
            }
        }
        world.compute(n as u64 * 6);
    }
    let compressed_bytes = out_pos + u64::from(nbits > 0);
    debug_assert!(
        compressed_bytes < len as u64,
        "skewed input must compress: {compressed_bytes} vs {len}"
    );
    Ok(total_bits)
}

// ------------------------------------------------------------------
// 9. Neural net: small MLP with backprop.
// ------------------------------------------------------------------

/// Train an 8-8-4 MLP on a deterministic dataset; checksum of weights.
pub fn neural_net(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    const IN: usize = 8;
    const HID: usize = 8;
    const OUT: usize = 4;
    let w1 = EncVecF64::new(world, heap, IN * HID)?;
    let w2 = EncVecF64::new(world, heap, HID * OUT)?;
    for i in 0..IN * HID {
        w1.set(
            world,
            heap,
            i,
            ((hash64(i as u64) % 1000) as f64 / 500.0) - 1.0,
        )?;
    }
    for i in 0..HID * OUT {
        w2.set(
            world,
            heap,
            i,
            ((hash64(i as u64 ^ 77) % 1000) as f64 / 500.0) - 1.0,
        )?;
    }
    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
    let samples = 16;
    let epochs = 20 * scale as usize;
    let lr = 0.3;
    for _epoch in 0..epochs {
        for s in 0..samples {
            // Input: bits of s; target: one-hot of s % 4.
            let input: Vec<f64> = (0..IN).map(|b| ((s >> b) & 1) as f64).collect();
            let target: Vec<f64> = (0..OUT)
                .map(|o| if s % OUT == o { 1.0 } else { 0.0 })
                .collect();
            // Forward.
            let mut hidden = [0f64; HID];
            for (h, hv) in hidden.iter_mut().enumerate() {
                let mut sum = 0.0;
                for (i, &x) in input.iter().enumerate() {
                    sum += x * w1.get(world, heap, i * HID + h)?;
                }
                *hv = sigmoid(sum);
            }
            let mut output = [0f64; OUT];
            for (o, ov) in output.iter_mut().enumerate() {
                let mut sum = 0.0;
                for (h, &hv) in hidden.iter().enumerate() {
                    sum += hv * w2.get(world, heap, h * OUT + o)?;
                }
                *ov = sigmoid(sum);
            }
            // Backward.
            let mut delta_out = [0f64; OUT];
            for o in 0..OUT {
                delta_out[o] = (target[o] - output[o]) * output[o] * (1.0 - output[o]);
            }
            let mut delta_hid = [0f64; HID];
            for (h, &hv) in hidden.iter().enumerate() {
                let mut err = 0.0;
                for (o, &d) in delta_out.iter().enumerate() {
                    err += d * w2.get(world, heap, h * OUT + o)?;
                }
                delta_hid[h] = err * hv * (1.0 - hv);
            }
            for (h, &hv) in hidden.iter().enumerate() {
                for (o, &d) in delta_out.iter().enumerate() {
                    let w = w2.get(world, heap, h * OUT + o)?;
                    w2.set(world, heap, h * OUT + o, w + lr * d * hv)?;
                }
            }
            for (i, &x) in input.iter().enumerate() {
                for (h, &d) in delta_hid.iter().enumerate() {
                    let w = w1.get(world, heap, i * HID + h)?;
                    w1.set(world, heap, i * HID + h, w + lr * d * x)?;
                }
            }
            world.compute(2000);
        }
    }
    // The net must have learned something: training error below chance.
    let mut correct = 0usize;
    for s in 0..samples {
        let input: Vec<f64> = (0..IN).map(|b| ((s >> b) & 1) as f64).collect();
        let mut hidden = [0f64; HID];
        for (h, hv) in hidden.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (i, &x) in input.iter().enumerate() {
                sum += x * w1.get(world, heap, i * HID + h)?;
            }
            *hv = sigmoid(sum);
        }
        let mut best = (0usize, f64::MIN);
        for o in 0..OUT {
            let mut sum = 0.0;
            for (h, &hv) in hidden.iter().enumerate() {
                sum += hv * w2.get(world, heap, h * OUT + o)?;
            }
            if sum > best.1 {
                best = (o, sum);
            }
        }
        if best.0 == s % OUT {
            correct += 1;
        }
    }
    let mut sum = 0u64;
    for i in 0..IN * HID {
        sum = sum.wrapping_add(w1.get(world, heap, i)?.to_bits() >> 20);
    }
    Ok(sum.wrapping_add(correct as u64))
}

// ------------------------------------------------------------------
// 10. LU decomposition.
// ------------------------------------------------------------------

/// Doolittle LU with partial pivoting; returns a checksum of the diagonal.
pub fn lu_decomposition(world: &mut World, heap: &mut EncHeap, scale: u32) -> Result<u64, RtError> {
    let n = 24 + 8 * (scale as usize).min(8);
    let m = EncVecF64::new(world, heap, n * n)?;
    for i in 0..n {
        for j in 0..n {
            let base = (hash64((i * n + j) as u64) % 1000) as f64 / 100.0;
            // Diagonal dominance keeps the factorization well-conditioned.
            let v = if i == j { base + 100.0 } else { base };
            m.set(world, heap, i * n + j, v)?;
        }
    }
    for k in 0..n {
        // Pivot search.
        let mut pivot = k;
        let mut pmax = m.get(world, heap, k * n + k)?.abs();
        for r in k + 1..n {
            let v = m.get(world, heap, r * n + k)?.abs();
            if v > pmax {
                pmax = v;
                pivot = r;
            }
        }
        if pivot != k {
            for c in 0..n {
                let a = m.get(world, heap, k * n + c)?;
                let b = m.get(world, heap, pivot * n + c)?;
                m.set(world, heap, k * n + c, b)?;
                m.set(world, heap, pivot * n + c, a)?;
            }
        }
        let diag = m.get(world, heap, k * n + k)?;
        for r in k + 1..n {
            let factor = m.get(world, heap, r * n + k)? / diag;
            m.set(world, heap, r * n + k, factor)?;
            for c in k + 1..n {
                let v = m.get(world, heap, r * n + c)?;
                let u = m.get(world, heap, k * n + c)?;
                m.set(world, heap, r * n + c, v - factor * u)?;
            }
            world.compute(2 * (n - k) as u64);
        }
    }
    let mut sum = 0u64;
    for k in 0..n {
        let d = m.get(world, heap, k * n + k)?;
        debug_assert!(d.abs() > 1e-9, "singular pivot");
        sum = sum.wrapping_add(d.to_bits() >> 20);
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world() -> World {
        let mut img = EnclaveImage::named("nbench-test");
        img.heap_pages = 8192;
        World::new(
            MachineConfig {
                epc_frames: 16384,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn all_kernels_run_and_are_deterministic() {
        for kernel in all_kernels() {
            let mut w1 = world();
            let mut h1 = EncHeap::direct();
            let a = (kernel.run)(&mut w1, &mut h1, 1).unwrap_or_else(|e| {
                panic!("{} failed: {e}", kernel.name);
            });
            let mut w2 = world();
            let mut h2 = EncHeap::direct();
            let b = (kernel.run)(&mut w2, &mut h2, 1).expect("second run");
            assert_eq!(a, b, "{} must be deterministic", kernel.name);
        }
    }

    #[test]
    fn kernels_have_distinct_checksums() {
        let mut sums = std::collections::HashSet::new();
        for kernel in all_kernels() {
            let mut w = world();
            let mut h = EncHeap::direct();
            sums.insert((kernel.run)(&mut w, &mut h, 1).expect("run"));
        }
        assert!(sums.len() >= 9, "kernels compute different things");
    }

    #[test]
    fn idea_mul_is_lai_massey_multiplication() {
        assert_eq!(idea_mul(0, 0), 1); // 65536*65536 mod 65537 = 1
        assert_eq!(idea_mul(1, 1), 1);
        assert_eq!(idea_mul(2, 3), 6);
        // A value that wraps the modulus.
        assert_eq!(idea_mul(40000, 40000), ((40000u64 * 40000) % 65537) as u16);
    }

    #[test]
    fn software_float_roundtrip() {
        for &x in &[1.0, 0.5, 3.75, 123.456, 1e-3, 7e5] {
            let rt = sf_to_f64(sf_from_f64(x));
            assert!((rt - x).abs() / x < 1e-9, "{x} vs {rt}");
        }
        let a = sf_from_f64(1.5);
        let b = sf_from_f64(2.25);
        assert!((sf_to_f64(sf_mul(a, b)) - 3.375).abs() < 1e-9);
        assert!((sf_to_f64(sf_add(a, b)) - 3.75).abs() < 1e-9);
    }

    #[test]
    fn numeric_sort_scales() {
        let mut w = world();
        let mut h = EncHeap::direct();
        numeric_sort(&mut w, &mut h, 2).expect("scale 2");
    }
}
