//! The enclave execution environment and instrumented memory layer.
//!
//! [`World`] assembles a full system — machine, untrusted OS, and trusted
//! runtime — around one enclave. Workloads never touch host memory for
//! their data; they allocate from an [`EncHeap`] and move bytes through
//! one of three access paths, mirroring how CoSMIX instruments binaries:
//!
//! * [`HeapMode::Direct`] — loads/stores go through the simulated MMU
//!   (TLB, page faults, demand paging). This is the un-instrumented build.
//! * [`HeapMode::CachedOram`] — the paper's §5.2.2 scheme: a large
//!   enclave-managed page cache in front of PathORAM. Cache hits cost a
//!   lookup; misses run the ORAM protocol against untrusted memory.
//! * [`HeapMode::UncachedOram`] — the pre-Autarky baseline (CoSMIX-like):
//!   no EPC cache is safe, so every access runs the protocol *and* scans
//!   the position map obliviously. This is the 232×-slower configuration
//!   of §7.2.
//!
//! ORAM cycle accounting: the ORAM crate counts events; [`EncHeap`]
//! converts the per-operation deltas into cycles on the machine clock.

use autarky_oram::{buckets_for, CachedOram, MemStorage, OramStats, PathOram};
use autarky_os_sim::{EnclaveImage, Os};
use autarky_runtime::{RtError, Runtime, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{CostTag, EnclaveId, Va, PAGE_SIZE};
use autarky_telemetry::SpanKind;

/// A fully assembled system around one enclave.
pub struct World {
    /// The untrusted host (owns the machine).
    pub os: Os,
    /// The trusted runtime.
    pub rt: Runtime,
    /// The enclave id.
    pub eid: EnclaveId,
    /// The image the enclave was loaded from.
    pub image: EnclaveImage,
}

/// One fleet member detached from the shared host: the trusted runtime
/// and identity of a single enclave, without the OS that (together with
/// its neighbors) it runs on.
///
/// A multi-enclave host holds one [`Os`] and N handles; to run workload
/// code for member *i* it temporarily assembles a [`World`] view with
/// [`World::join`] and takes it apart again with [`World::split`]. The
/// moves are free (no copying of enclave state) and keep the single-
/// enclave workload API unchanged.
pub struct EnclaveHandle {
    /// The trusted runtime.
    pub rt: Runtime,
    /// The enclave id.
    pub eid: EnclaveId,
    /// The image the enclave was loaded from.
    pub image: EnclaveImage,
}

impl World {
    /// Build a world: boot the OS, load `image`, attach the runtime.
    pub fn new(
        machine: MachineConfig,
        image: EnclaveImage,
        runtime: RuntimeConfig,
    ) -> Result<Self, RtError> {
        let mut os = Os::new(machine);
        let eid = os.load_enclave(&image)?;
        let rt = Runtime::attach(&mut os, eid, runtime)?;
        Ok(Self { os, rt, eid, image })
    }

    /// Load an additional enclave into an *existing* host and attach a
    /// runtime to it, returning the detached per-enclave handle. This is
    /// how fleet members after the first come up: they share the host's
    /// machine (and thus its EPC) with every enclave already loaded.
    pub fn attach_to(
        os: &mut Os,
        image: EnclaveImage,
        runtime: RuntimeConfig,
    ) -> Result<EnclaveHandle, RtError> {
        let eid = os.load_enclave(&image)?;
        let rt = Runtime::attach(os, eid, runtime)?;
        Ok(EnclaveHandle { rt, eid, image })
    }

    /// Assemble a world view over the shared host for one fleet member.
    pub fn join(os: Os, handle: EnclaveHandle) -> Self {
        Self {
            os,
            rt: handle.rt,
            eid: handle.eid,
            image: handle.image,
        }
    }

    /// Take the world apart again: the shared host goes back to the
    /// supervisor, the per-enclave pieces back into the handle.
    pub fn split(self) -> (Os, EnclaveHandle) {
        (
            self.os,
            EnclaveHandle {
                rt: self.rt,
                eid: self.eid,
                image: self.image,
            },
        )
    }

    /// Cycles elapsed on the machine clock.
    pub fn now(&self) -> u64 {
        self.os.machine.clock.now()
    }

    /// Record forward progress (rate-limit policy input).
    pub fn progress(&mut self, amount: u64) {
        self.rt.progress(amount);
    }

    /// Charge explicit compute cycles (models ALU work between memory
    /// accesses so throughput numbers are not paging-only).
    pub fn compute(&mut self, cycles: u64) {
        self.os.machine.clock.charge(cycles);
    }
}

/// An address in the workload's data space.
///
/// For [`HeapMode::Direct`] this is an enclave virtual address; for the
/// ORAM modes it is a flat byte offset into the ORAM block space. The
/// newtype keeps the two from mixing with host pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ptr(pub u64);

impl Ptr {
    /// Null-ish sentinel (offset 0 is never handed out).
    pub const NULL: Ptr = Ptr(0);

    /// Whether this is the null sentinel.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> Ptr {
        Ptr(self.0 + bytes)
    }
}

/// Which instrumented path data accesses take.
pub enum HeapMode {
    /// Straight through the MMU (demand paging, clusters, rate limiting).
    Direct,
    /// Cached ORAM (§5.2.2): `capacity_pages` of ORAM space fronted by an
    /// enclave-managed cache of `cache_pages`.
    CachedOram(Box<CachedOram<MemStorage>>),
    /// Uncached ORAM: the pre-Autarky configuration.
    UncachedOram(Box<PathOram<MemStorage>>),
}

/// The workload heap: allocation plus instrumented loads/stores.
pub struct EncHeap {
    mode: HeapMode,
    /// Bump pointer for ORAM modes (block space is not managed by the
    /// runtime allocator).
    oram_bump: u64,
    oram_capacity_bytes: u64,
    last_stats: OramStats,
}

impl EncHeap {
    /// A direct (MMU) heap.
    pub fn direct() -> Self {
        Self {
            mode: HeapMode::Direct,
            oram_bump: 0,
            oram_capacity_bytes: 0,
            last_stats: OramStats::default(),
        }
    }

    /// A cached-ORAM heap with `capacity_pages` of page-sized blocks and a
    /// `cache_pages`-page enclave-managed cache.
    pub fn cached_oram(capacity_pages: u64, cache_pages: usize, seed: u64) -> Self {
        let storage = MemStorage::new(buckets_for(capacity_pages));
        let oram = PathOram::new(capacity_pages, PAGE_SIZE, seed, [0x5C; 32], storage);
        Self {
            mode: HeapMode::CachedOram(Box::new(CachedOram::new(oram, cache_pages))),
            oram_bump: PAGE_SIZE as u64, // skip block 0 so Ptr(0) stays null
            oram_capacity_bytes: capacity_pages * PAGE_SIZE as u64,
            last_stats: OramStats::default(),
        }
    }

    /// An uncached-ORAM heap (linear metadata scans on every access).
    pub fn uncached_oram(capacity_pages: u64, seed: u64) -> Self {
        let storage = MemStorage::new(buckets_for(capacity_pages));
        let mut oram = PathOram::new(capacity_pages, PAGE_SIZE, seed, [0x5C; 32], storage);
        oram.set_uncached_metadata(true);
        Self {
            mode: HeapMode::UncachedOram(Box::new(oram)),
            oram_bump: PAGE_SIZE as u64,
            oram_capacity_bytes: capacity_pages * PAGE_SIZE as u64,
            last_stats: OramStats::default(),
        }
    }

    /// Whether this heap runs over ORAM.
    pub fn is_oram(&self) -> bool {
        !matches!(self.mode, HeapMode::Direct)
    }

    /// Allocate `bytes` (16-byte aligned).
    pub fn alloc(&mut self, world: &mut World, bytes: usize) -> Result<Ptr, RtError> {
        match &mut self.mode {
            HeapMode::Direct => world.rt.malloc(&mut world.os, bytes).map(|va| Ptr(va.0)),
            HeapMode::CachedOram(_) | HeapMode::UncachedOram(_) => {
                let size = (bytes.max(1) as u64).next_multiple_of(16);
                if self.oram_bump + size > self.oram_capacity_bytes {
                    return Err(RtError::OutOfMemory);
                }
                let ptr = Ptr(self.oram_bump);
                self.oram_bump += size;
                Ok(ptr)
            }
        }
    }

    /// Free an allocation (direct mode recycles; ORAM mode is bump-only).
    pub fn free(&mut self, world: &mut World, ptr: Ptr, bytes: usize) {
        if let HeapMode::Direct = self.mode {
            world.rt.free(Va(ptr.0), bytes);
        }
    }

    /// Read `buf.len()` bytes at `ptr`.
    pub fn read(&mut self, world: &mut World, ptr: Ptr, buf: &mut [u8]) -> Result<(), RtError> {
        match &mut self.mode {
            HeapMode::Direct => world.rt.read(&mut world.os, Va(ptr.0), buf),
            HeapMode::CachedOram(cache) => {
                let span = Self::enter_oram(world);
                let mut done = 0usize;
                while done < buf.len() {
                    let at = ptr.0 + done as u64;
                    let block = at / PAGE_SIZE as u64;
                    let off = (at % PAGE_SIZE as u64) as usize;
                    let chunk = (PAGE_SIZE - off).min(buf.len() - done);
                    cache
                        .read_at(block, off, &mut buf[done..done + chunk])
                        .map_err(oram_err)?;
                    done += chunk;
                }
                let stats = cache.oram().stats.clone();
                let stash = cache.oram().stash_len() as u64;
                Self::charge(world, &self.last_stats, &stats);
                self.last_stats = stats;
                Self::exit_oram(world, span, stash);
                Ok(())
            }
            HeapMode::UncachedOram(oram) => {
                let span = Self::enter_oram(world);
                let mut done = 0usize;
                while done < buf.len() {
                    let at = ptr.0 + done as u64;
                    let block = at / PAGE_SIZE as u64;
                    let off = (at % PAGE_SIZE as u64) as usize;
                    let chunk = (PAGE_SIZE - off).min(buf.len() - done);
                    let data = oram.read(block).map_err(oram_err)?;
                    buf[done..done + chunk].copy_from_slice(&data[off..off + chunk]);
                    done += chunk;
                }
                let stats = oram.stats.clone();
                let stash = oram.stash_len() as u64;
                Self::charge(world, &self.last_stats, &stats);
                self.last_stats = stats;
                Self::exit_oram(world, span, stash);
                Ok(())
            }
        }
    }

    /// Write `data` at `ptr`.
    pub fn write(&mut self, world: &mut World, ptr: Ptr, data: &[u8]) -> Result<(), RtError> {
        match &mut self.mode {
            HeapMode::Direct => world.rt.write(&mut world.os, Va(ptr.0), data),
            HeapMode::CachedOram(cache) => {
                let span = Self::enter_oram(world);
                let mut done = 0usize;
                while done < data.len() {
                    let at = ptr.0 + done as u64;
                    let block = at / PAGE_SIZE as u64;
                    let off = (at % PAGE_SIZE as u64) as usize;
                    let chunk = (PAGE_SIZE - off).min(data.len() - done);
                    cache
                        .write_at(block, off, &data[done..done + chunk])
                        .map_err(oram_err)?;
                    done += chunk;
                }
                let stats = cache.oram().stats.clone();
                let stash = cache.oram().stash_len() as u64;
                Self::charge(world, &self.last_stats, &stats);
                self.last_stats = stats;
                Self::exit_oram(world, span, stash);
                Ok(())
            }
            HeapMode::UncachedOram(oram) => {
                let span = Self::enter_oram(world);
                let mut done = 0usize;
                while done < data.len() {
                    let at = ptr.0 + done as u64;
                    let block = at / PAGE_SIZE as u64;
                    let off = (at % PAGE_SIZE as u64) as usize;
                    let chunk = (PAGE_SIZE - off).min(data.len() - done);
                    let mut block_data = oram.read(block).map_err(oram_err)?;
                    block_data[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
                    oram.write(block, &block_data).map_err(oram_err)?;
                    done += chunk;
                }
                let stats = oram.stats.clone();
                let stash = oram.stash_len() as u64;
                Self::charge(world, &self.last_stats, &stats);
                self.last_stats = stats;
                Self::exit_oram(world, span, stash);
                Ok(())
            }
        }
    }

    /// Open an `oram_access` span on the runtime's telemetry.
    fn enter_oram(world: &World) -> autarky_telemetry::SpanGuard {
        world
            .rt
            .telemetry
            .enter(SpanKind::OramAccess, world.os.machine.clock.now())
    }

    /// Close an `oram_access` span and sample the stash-occupancy gauge.
    fn exit_oram(world: &mut World, span: autarky_telemetry::SpanGuard, stash: u64) {
        world.rt.telemetry.exit(span, world.os.machine.clock.now());
        world.rt.telemetry.gauge_set("stash_occupancy", stash);
    }

    /// Convert ORAM event deltas into machine cycles.
    fn charge(world: &mut World, before: &OramStats, after: &OramStats) {
        let costs = &world.os.machine.costs;
        let bucket_ops = (after.bucket_reads() - before.bucket_reads())
            + (after.bucket_writes() - before.bucket_writes());
        // Bucket sealing runs on AES-NI-class hardware crypto (~1
        // cycle/byte including the GCM tag work).
        let cycles = bucket_ops * 200 // untrusted-memory round trip per bucket
            + (after.crypto_bytes() - before.crypto_bytes())
            + (after.oblivious_scan_bytes() - before.oblivious_scan_bytes())
                * costs.oblivious_copy_per_byte
            + (after.cache_hits() - before.cache_hits()) * 15; // pinned-cache lookup
        world.os.machine.clock.charge_tagged(CostTag::Oram, cycles);
    }

    /// The adversary-visible ORAM bucket-access log: `(bucket index,
    /// was_write)` in access order, straight from the untrusted storage.
    /// Empty for direct heaps. This is exactly what an OS watching the
    /// enclave's untrusted memory traffic records, so the leakage audit
    /// treats it as part of the observation stream.
    pub fn oram_access_log(&self) -> &[(usize, bool)] {
        match &self.mode {
            HeapMode::Direct => &[],
            HeapMode::CachedOram(cache) => &cache.oram().storage().log,
            HeapMode::UncachedOram(oram) => &oram.storage().log,
        }
    }

    /// ORAM statistics (zeroes for direct heaps).
    pub fn oram_stats(&self) -> OramStats {
        match &self.mode {
            HeapMode::Direct => OramStats::default(),
            HeapMode::CachedOram(cache) => cache.oram().stats.clone(),
            HeapMode::UncachedOram(oram) => oram.stats.clone(),
        }
    }

    // Typed helpers -------------------------------------------------

    /// Read a `u64`.
    pub fn read_u64(&mut self, world: &mut World, ptr: Ptr) -> Result<u64, RtError> {
        let mut buf = [0u8; 8];
        self.read(world, ptr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Write a `u64`.
    pub fn write_u64(&mut self, world: &mut World, ptr: Ptr, value: u64) -> Result<(), RtError> {
        self.write(world, ptr, &value.to_le_bytes())
    }

    /// Read an `f64`.
    pub fn read_f64(&mut self, world: &mut World, ptr: Ptr) -> Result<f64, RtError> {
        Ok(f64::from_bits(self.read_u64(world, ptr)?))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, world: &mut World, ptr: Ptr, value: f64) -> Result<(), RtError> {
        self.write_u64(world, ptr, value.to_bits())
    }

    /// Read a `u32`.
    pub fn read_u32(&mut self, world: &mut World, ptr: Ptr) -> Result<u32, RtError> {
        let mut buf = [0u8; 4];
        self.read(world, ptr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Write a `u32`.
    pub fn write_u32(&mut self, world: &mut World, ptr: Ptr, value: u32) -> Result<(), RtError> {
        self.write(world, ptr, &value.to_le_bytes())
    }
}

fn oram_err(err: autarky_oram::OramError) -> RtError {
    match err {
        autarky_oram::OramError::Tampered(_) => RtError::SealBroken(autarky_sgx_sim::Vpn(0)),
        _ => RtError::OutOfMemory,
    }
}

/// A fixed-length array of `u64` in enclave memory.
pub struct EncVecU64 {
    ptr: Ptr,
    len: usize,
}

impl EncVecU64 {
    /// Allocate `len` zeroed elements.
    pub fn new(world: &mut World, heap: &mut EncHeap, len: usize) -> Result<Self, RtError> {
        let ptr = heap.alloc(world, len * 8)?;
        Ok(Self { ptr, len })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Load element `i`.
    pub fn get(&self, world: &mut World, heap: &mut EncHeap, i: usize) -> Result<u64, RtError> {
        debug_assert!(i < self.len);
        heap.read_u64(world, self.ptr.offset(i as u64 * 8))
    }

    /// Store element `i`.
    pub fn set(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        i: usize,
        value: u64,
    ) -> Result<(), RtError> {
        debug_assert!(i < self.len);
        heap.write_u64(world, self.ptr.offset(i as u64 * 8), value)
    }
}

/// A fixed-length array of `f64` in enclave memory.
pub struct EncVecF64 {
    ptr: Ptr,
    len: usize,
}

impl EncVecF64 {
    /// Allocate `len` zeroed elements.
    pub fn new(world: &mut World, heap: &mut EncHeap, len: usize) -> Result<Self, RtError> {
        let ptr = heap.alloc(world, len * 8)?;
        Ok(Self { ptr, len })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Load element `i`.
    pub fn get(&self, world: &mut World, heap: &mut EncHeap, i: usize) -> Result<f64, RtError> {
        debug_assert!(i < self.len);
        heap.read_f64(world, self.ptr.offset(i as u64 * 8))
    }

    /// Store element `i`.
    pub fn set(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        i: usize,
        value: f64,
    ) -> Result<(), RtError> {
        debug_assert!(i < self.len);
        heap.write_f64(world, self.ptr.offset(i as u64 * 8), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(heap_pages: usize) -> World {
        let mut img = EnclaveImage::named("encmem-test");
        img.heap_pages = heap_pages;
        World::new(
            MachineConfig {
                epc_frames: heap_pages + 64,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn direct_heap_roundtrip() {
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let ptr = heap.alloc(&mut w, 128).expect("alloc");
        heap.write(&mut w, ptr, &[42u8; 128]).expect("write");
        let mut buf = [0u8; 128];
        heap.read(&mut w, ptr, &mut buf).expect("read");
        assert_eq!(buf, [42u8; 128]);
    }

    #[test]
    fn cached_oram_heap_roundtrip_across_blocks() {
        let mut w = world(16);
        let mut heap = EncHeap::cached_oram(64, 8, 1);
        let ptr = heap.alloc(&mut w, 3 * PAGE_SIZE).expect("alloc");
        let data: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        heap.write(&mut w, ptr, &data).expect("write");
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        heap.read(&mut w, ptr, &mut buf).expect("read");
        assert_eq!(buf, data);
    }

    #[test]
    fn uncached_oram_heap_roundtrip() {
        let mut w = world(16);
        let mut heap = EncHeap::uncached_oram(32, 1);
        let ptr = heap.alloc(&mut w, 64).expect("alloc");
        heap.write(&mut w, ptr, &[7u8; 64]).expect("write");
        let mut buf = [0u8; 64];
        heap.read(&mut w, ptr, &mut buf).expect("read");
        assert_eq!(buf, [7u8; 64]);
    }

    #[test]
    fn oram_access_charges_cycles() {
        let mut w = world(16);
        let mut heap = EncHeap::cached_oram(64, 2, 1);
        let ptr = heap.alloc(&mut w, PAGE_SIZE * 4).expect("alloc");
        let before = w.now();
        // 4 distinct blocks through a 2-block cache: misses guaranteed.
        for i in 0..4u64 {
            heap.write_u64(&mut w, ptr.offset(i * PAGE_SIZE as u64), i)
                .expect("write");
        }
        assert!(w.now() > before + 1000, "ORAM traffic must cost cycles");
    }

    #[test]
    fn uncached_is_much_slower_than_cached() {
        let mut w1 = world(16);
        let mut cached = EncHeap::cached_oram(256, 64, 1);
        let p1 = cached.alloc(&mut w1, 32 * PAGE_SIZE).expect("alloc");
        let start1 = w1.now();
        for i in 0..200u64 {
            cached
                .read_u64(&mut w1, p1.offset((i % 32) * PAGE_SIZE as u64))
                .expect("read");
        }
        let cached_cycles = w1.now() - start1;

        let mut w2 = world(16);
        let mut uncached = EncHeap::uncached_oram(256, 1);
        let p2 = uncached.alloc(&mut w2, 32 * PAGE_SIZE).expect("alloc");
        let start2 = w2.now();
        for i in 0..200u64 {
            uncached
                .read_u64(&mut w2, p2.offset((i % 32) * PAGE_SIZE as u64))
                .expect("read");
        }
        let uncached_cycles = w2.now() - start2;
        assert!(
            uncached_cycles > cached_cycles * 5,
            "uncached {uncached_cycles} vs cached {cached_cycles}"
        );
    }

    #[test]
    fn typed_vectors() {
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let v = EncVecU64::new(&mut w, &mut heap, 100).expect("vec");
        for i in 0..100 {
            v.set(&mut w, &mut heap, i, (i * i) as u64).expect("set");
        }
        for i in 0..100 {
            assert_eq!(v.get(&mut w, &mut heap, i).expect("get"), (i * i) as u64);
        }
        let f = EncVecF64::new(&mut w, &mut heap, 10).expect("vec");
        f.set(&mut w, &mut heap, 3, 2.5).expect("set");
        assert_eq!(f.get(&mut w, &mut heap, 3).expect("get"), 2.5);
    }

    #[test]
    fn ptr_null_never_allocated() {
        let mut w = world(64);
        let mut heap = EncHeap::cached_oram(16, 4, 1);
        let p = heap.alloc(&mut w, 8).expect("alloc");
        assert!(!p.is_null());
        assert!(Ptr::NULL.is_null());
    }
}
