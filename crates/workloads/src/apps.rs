//! Registry of the 14 Phoenix + PARSEC applications evaluated in
//! Figure 7 (the paper runs "14 out of 15" — `vips` does not run under
//! Graphene and is excluded here too).

use autarky_runtime::RtError;

use crate::encmem::{EncHeap, World};
use crate::{parsec, phoenix};

/// One Figure 7 application.
pub struct App {
    /// Short name (paper's x-axis label).
    pub name: &'static str,
    /// Run with a working set of roughly `pages` pages.
    pub run: fn(&mut World, &mut EncHeap, usize) -> Result<u64, RtError>,
    /// Relative paging intensity: how much of the footprint the app
    /// actively re-touches (drives the Figure 7 fault-rate differences).
    pub churn: f64,
}

/// The 14 applications in the paper's presentation order.
pub fn fig7_apps() -> Vec<App> {
    vec![
        App {
            name: "kmeans",
            run: phoenix::kmeans,
            churn: 0.9,
        },
        App {
            name: "linreg",
            run: phoenix::linreg,
            churn: 0.3,
        },
        App {
            name: "wcount",
            run: phoenix::wcount,
            churn: 0.5,
        },
        App {
            name: "pca",
            run: phoenix::pca,
            churn: 0.8,
        },
        App {
            name: "smatch",
            run: phoenix::smatch,
            churn: 0.3,
        },
        App {
            name: "mmult",
            run: phoenix::mmult,
            churn: 1.0,
        },
        App {
            name: "btrack",
            run: parsec::btrack,
            churn: 0.7,
        },
        App {
            name: "canneal",
            run: parsec::canneal,
            churn: 1.0,
        },
        App {
            name: "scluster",
            run: parsec::scluster,
            churn: 0.4,
        },
        App {
            name: "swap",
            run: parsec::swap,
            churn: 0.1,
        },
        App {
            name: "dedup",
            run: parsec::dedup,
            churn: 0.9,
        },
        App {
            name: "bscholes",
            run: parsec::bscholes,
            churn: 0.2,
        },
        App {
            name: "fluid",
            run: parsec::fluid,
            churn: 0.5,
        },
        App {
            name: "x264",
            run: parsec::x264,
            churn: 0.8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_apps_like_the_paper() {
        let apps = fig7_apps();
        assert_eq!(apps.len(), 14);
        let names: std::collections::HashSet<&str> = apps.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 14, "no duplicate app names");
        assert!(!names.contains("vips"), "vips excluded, as in the paper");
    }
}
