//! Uniform request plumbing between load sources and enclave services.
//!
//! The example servers used to hardcode their own input loops, which
//! meant nothing else — a load generator, a fleet scheduler, a replay
//! harness — could drive them. This module splits the two roles:
//!
//! * a [`RequestSource`] produces a stream of [`Request`]s (a key
//!   generator, a text chunker, a seeded open-loop arrival process);
//! * a [`Service`] consumes one request at a time against a [`World`] +
//!   [`EncHeap`] pair and returns a [`Response`].
//!
//! [`KvStore`] and [`SpellServer`] implement [`Service`] directly, so
//! any source can drive either server unmodified.

use autarky_runtime::RtError;

use crate::encmem::{EncHeap, World};
use crate::kvstore::KvStore;
use crate::spell::SpellServer;
use crate::ycsb::KeyGenerator;

/// One request a client could send to an enclave-hosted service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch the value under `key` (kvstore).
    Get {
        /// Key to fetch.
        key: u64,
    },
    /// Store `value` under `key` (kvstore).
    Set {
        /// Key to store under.
        key: u64,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Spell-check `text` against dictionary `lang` (spell server).
    Check {
        /// Dictionary language code.
        lang: String,
        /// Words to check.
        text: Vec<String>,
    },
}

/// A service's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result: the value, or `None` for a missing key.
    Value(Option<Vec<u8>>),
    /// SET acknowledged.
    Stored,
    /// CHECK result: number of correctly spelled words.
    Correct(u64),
}

/// A stream of requests. `None` means the source is drained.
pub trait RequestSource {
    /// Produce the next request, or `None` when done.
    fn next_request(&mut self) -> Option<Request>;
}

/// An enclave-hosted service that can serve the uniform request type.
pub trait Service {
    /// Serve one request. A request kind the service does not speak is
    /// an error, not a panic — a fleet scheduler may route anything.
    fn serve(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        request: &Request,
    ) -> Result<Response, RtError>;
}

impl Service for KvStore {
    fn serve(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        request: &Request,
    ) -> Result<Response, RtError> {
        match request {
            Request::Get { key } => Ok(Response::Value(self.get(world, heap, *key)?)),
            Request::Set { key, value } => {
                self.set(world, heap, *key, value)?;
                Ok(Response::Stored)
            }
            Request::Check { .. } => Err(RtError::BadCluster("spell request sent to a kv store")),
        }
    }
}

impl Service for SpellServer {
    fn serve(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        request: &Request,
    ) -> Result<Response, RtError> {
        match request {
            Request::Check { lang, text } => {
                Ok(Response::Correct(self.check_text(world, heap, lang, text)?))
            }
            Request::Get { .. } | Request::Set { .. } => {
                Err(RtError::BadCluster("kv request sent to a spell server"))
            }
        }
    }
}

/// A finite stream of GET requests drawn from a [`KeyGenerator`]
/// (uniform, Zipfian, or latest-biased key skew).
pub struct KeyStream {
    generator: KeyGenerator,
    remaining: u64,
}

impl KeyStream {
    /// `count` GETs from `generator`.
    pub fn new(generator: KeyGenerator, count: u64) -> Self {
        Self {
            generator,
            remaining: count,
        }
    }
}

impl RequestSource for KeyStream {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(Request::Get {
            key: self.generator.next_key(),
        })
    }
}

/// A text split into fixed-size CHECK requests against one dictionary.
pub struct TextStream {
    lang: String,
    words: Vec<String>,
    words_per_request: usize,
    cursor: usize,
}

impl TextStream {
    /// Chunk `words` into requests of `words_per_request` words each
    /// (the final request may be shorter).
    pub fn new(lang: &str, words: Vec<String>, words_per_request: usize) -> Self {
        Self {
            lang: lang.to_owned(),
            words,
            words_per_request: words_per_request.max(1),
            cursor: 0,
        }
    }
}

impl RequestSource for TextStream {
    fn next_request(&mut self) -> Option<Request> {
        if self.cursor >= self.words.len() {
            return None;
        }
        let end = (self.cursor + self.words_per_request).min(self.words.len());
        let text = self.words[self.cursor..end].to_vec();
        self.cursor = end;
        Some(Request::Check {
            lang: self.lang.clone(),
            text,
        })
    }
}

/// A canned request list, replayed in order (tests, recorded traces).
pub struct ReplaySource {
    requests: std::vec::IntoIter<Request>,
}

impl ReplaySource {
    /// Replay `requests` front to back.
    pub fn new(requests: Vec<Request>) -> Self {
        Self {
            requests: requests.into_iter(),
        }
    }
}

impl RequestSource for ReplaySource {
    fn next_request(&mut self) -> Option<Request> {
        self.requests.next()
    }
}

/// Drain `source` through `service`, returning the responses in order.
pub fn serve_all(
    world: &mut World,
    heap: &mut EncHeap,
    service: &mut dyn Service,
    source: &mut dyn RequestSource,
) -> Result<Vec<Response>, RtError> {
    let mut responses = Vec::new();
    while let Some(request) = source.next_request() {
        responses.push(service.serve(world, heap, &request)?);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvstore::ItemClustering;
    use crate::spell::synth_text;
    use crate::ycsb::Distribution;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world(heap_pages: usize) -> World {
        let mut img = EnclaveImage::named("request-test");
        img.heap_pages = heap_pages;
        World::new(
            MachineConfig {
                epc_frames: heap_pages + 64,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn key_stream_drives_kv_store() {
        let mut w = world(256);
        let mut heap = EncHeap::direct();
        let mut store = KvStore::new(&mut w, &mut heap, 64, 32, ItemClustering::None).expect("kv");
        store.load(&mut w, &mut heap, 64).expect("load");
        let mut source = KeyStream::new(
            KeyGenerator::new(64, Distribution::Zipfian { theta: 0.99 }, 7),
            40,
        );
        let responses = serve_all(&mut w, &mut heap, &mut store, &mut source).expect("serve");
        assert_eq!(responses.len(), 40);
        assert!(responses
            .iter()
            .all(|r| matches!(r, Response::Value(Some(_)))));
    }

    #[test]
    fn text_stream_drives_spell_server() {
        let mut w = world(512);
        let mut heap = EncHeap::direct();
        let mut server =
            SpellServer::start(&mut w, &mut heap, &["en"], 200, false).expect("server");
        let words = synth_text("en", 200, 30, 5);
        let mut source = TextStream::new("en", words, 10);
        let responses = serve_all(&mut w, &mut heap, &mut server, &mut source).expect("serve");
        assert_eq!(responses.len(), 3, "30 words in requests of 10");
        let correct: u64 = responses
            .iter()
            .map(|r| match r {
                Response::Correct(n) => *n,
                _ => 0,
            })
            .sum();
        assert!(correct > 0, "synthetic text contains dictionary words");
    }

    #[test]
    fn wrong_request_kind_is_an_error_not_a_panic() {
        let mut w = world(256);
        let mut heap = EncHeap::direct();
        let mut store = KvStore::new(&mut w, &mut heap, 16, 32, ItemClustering::None).expect("kv");
        let req = Request::Check {
            lang: "en".into(),
            text: vec!["word".into()],
        };
        assert!(store.serve(&mut w, &mut heap, &req).is_err());
    }

    #[test]
    fn replay_source_preserves_order() {
        let reqs = vec![
            Request::Get { key: 3 },
            Request::Set {
                key: 4,
                value: vec![1, 2],
            },
            Request::Get { key: 5 },
        ];
        let mut source = ReplaySource::new(reqs.clone());
        let mut seen = Vec::new();
        while let Some(r) = source.next_request() {
            seen.push(r);
        }
        assert_eq!(seen, reqs);
    }
}
