//! A Hunspell-style spell-checking server (paper §7.3, Table 2; attack
//! from Xu et al. [76]).
//!
//! Dictionaries are hash tables with chained collision resolution; a
//! lookup walks a word-specific chain of nodes spread over pages, giving
//! every word a distinctive page-access signature. The published attack
//! logged page accesses while the dictionary was populated, then matched
//! the signatures of later lookups to recover the words being checked.
//!
//! The multi-dictionary server demonstrates *application-defined
//! clusters*: each dictionary's pages form one cluster, so the adversary
//! learns at most which language is in use — not the words.

use autarky_runtime::RtError;
use autarky_sgx_sim::Vpn;

use crate::encmem::{EncHeap, World};
use crate::uthash::{hash64, EncHashTable};

/// Hash a word to the table key (the word bytes are the secret; only the
/// derived key ever touches the table).
pub fn word_key(word: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    hash64(h)
}

/// A loaded dictionary.
pub struct Dictionary {
    /// Language tag.
    pub lang: String,
    table: EncHashTable,
    /// Heap pages this dictionary's nodes landed on (tracked so the
    /// server can build a per-dictionary cluster).
    pub pages: Vec<Vpn>,
}

/// Deterministic synthetic word list for a language: `words` distinct
/// lowercase words of 3–12 letters, seeded by the language tag.
pub fn synth_wordlist(lang: &str, words: usize) -> Vec<String> {
    const SYLLABLES: [&str; 16] = [
        "ka", "lo", "mi", "tu", "res", "ban", "dor", "fi", "gel", "hap", "jin", "kor", "lum",
        "ned", "pos", "wex",
    ];
    let seed = word_key(lang);
    let mut out = Vec::with_capacity(words);
    let mut i = 0u64;
    while out.len() < words {
        let mut h = hash64(seed ^ i);
        let syllables = 2 + (h % 4) as usize;
        let mut word = String::new();
        for _ in 0..syllables {
            h = hash64(h);
            word.push_str(SYLLABLES[(h % 16) as usize]);
        }
        // Distinctness by construction index suffix for collisions.
        if out.contains(&word) {
            word.push((b'a' + (i % 26) as u8) as char);
        }
        out.push(word);
        i += 1;
    }
    out
}

impl Dictionary {
    /// Load a dictionary of `words` synthetic words into enclave memory.
    pub fn load(
        world: &mut World,
        heap: &mut EncHeap,
        lang: &str,
        words: usize,
    ) -> Result<Self, RtError> {
        let free_before = heap_cursor(world);
        let nbuckets = (words as u64 / 4).next_power_of_two().max(16);
        // 24-byte items: enough for the word plus affix flags, as in
        // Hunspell's hash entries.
        let mut table = EncHashTable::new(world, heap, nbuckets, 24, 10)?;
        for word in synth_wordlist(lang, words) {
            let mut value = [0u8; 24];
            let bytes = word.as_bytes();
            let n = bytes.len().min(24);
            value[..n].copy_from_slice(&bytes[..n]);
            table.insert(world, heap, word_key(&word), &value)?;
        }
        let free_after = heap_cursor(world);
        let pages: Vec<Vpn> = pages_between(world, free_before, free_after);
        Ok(Self {
            lang: lang.to_owned(),
            table,
            pages,
        })
    }

    /// Check one word.
    pub fn check(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        word: &str,
    ) -> Result<bool, RtError> {
        world.progress(1);
        self.table.contains(world, heap, word_key(word))
    }

    /// Entries loaded.
    pub fn len(&self) -> u64 {
        self.table.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

fn heap_cursor(world: &World) -> u64 {
    world.rt.stats.pages_allocated
}

fn pages_between(world: &World, before: u64, after: u64) -> Vec<Vpn> {
    let start = world.image.heap_start().0;
    (start + before..start + after).map(Vpn).collect()
}

/// The multi-dictionary spell server.
pub struct SpellServer {
    /// Loaded dictionaries, by load order.
    pub dictionaries: Vec<Dictionary>,
}

impl SpellServer {
    /// Load `langs` dictionaries of `words_each` words. When
    /// `cluster_per_dictionary` is set, each dictionary's pages become one
    /// application-defined cluster (the Table 2 configuration).
    pub fn start(
        world: &mut World,
        heap: &mut EncHeap,
        langs: &[&str],
        words_each: usize,
        cluster_per_dictionary: bool,
    ) -> Result<Self, RtError> {
        let mut dictionaries = Vec::new();
        for lang in langs {
            let dict = Dictionary::load(world, heap, lang, words_each)?;
            if cluster_per_dictionary {
                let cluster = world.rt.clusters.new_cluster();
                for &page in &dict.pages {
                    world.rt.clusters.ay_add_page(cluster, page)?;
                }
            }
            dictionaries.push(dict);
        }
        Ok(Self { dictionaries })
    }

    /// Spell-check `text` against dictionary `lang`; returns the number of
    /// correctly spelled words.
    pub fn check_text(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        lang: &str,
        text: &[String],
    ) -> Result<u64, RtError> {
        let dict = self
            .dictionaries
            .iter()
            .find(|d| d.lang == lang)
            .ok_or(RtError::BadCluster("unknown dictionary"))?;
        let mut correct = 0u64;
        for word in text {
            if dict.check(world, heap, word)? {
                correct += 1;
            }
        }
        Ok(correct)
    }
}

/// A secret-input pair for leakage audits: two query texts of `count`
/// words each, equal in word count and in every per-word byte length, but
/// made of different dictionary words — so the lookups walk different
/// bucket chains while the public shape of the request stream is
/// identical.
///
/// # Panics
/// Panics when the wordlist has no two distinct words of equal length
/// (needs a dictionary of more than a handful of words).
pub fn secret_pair(lang: &str, dict_words: usize, count: usize) -> (Vec<String>, Vec<String>) {
    let words = synth_wordlist(lang, dict_words);
    let mut by_len: std::collections::BTreeMap<usize, Vec<&String>> = Default::default();
    for word in &words {
        by_len.entry(word.len()).or_default().push(word);
    }
    // Equal-length word pairs, in deterministic order.
    let mut left = Vec::new();
    let mut right = Vec::new();
    for bucket in by_len.values() {
        for pair in bucket.chunks(2) {
            if let [a, b] = pair {
                left.push((*a).clone());
                right.push((*b).clone());
            }
        }
    }
    assert!(
        !left.is_empty(),
        "no equal-length word pair in a {dict_words}-word list"
    );
    let a = (0..count).map(|i| left[i % left.len()].clone()).collect();
    let b = (0..count).map(|i| right[i % right.len()].clone()).collect();
    (a, b)
}

/// Generate a deterministic "book" of `count` words drawn from a
/// dictionary's word list (the Wizard-of-Oz stand-in; the text is the
/// secret the attack targets).
pub fn synth_text(lang: &str, dict_words: usize, count: usize, seed: u64) -> Vec<String> {
    let words = synth_wordlist(lang, dict_words);
    (0..count)
        .map(|i| words[(hash64(seed ^ i as u64) % words.len() as u64) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world(heap_pages: usize) -> World {
        let mut img = EnclaveImage::named("spell-test");
        img.heap_pages = heap_pages;
        World::new(
            MachineConfig {
                epc_frames: heap_pages + 128,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn wordlists_are_deterministic_and_distinct() {
        let a = synth_wordlist("en", 100);
        let b = synth_wordlist("en", 100);
        let c = synth_wordlist("de", 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let unique: std::collections::HashSet<&String> = a.iter().collect();
        assert_eq!(unique.len(), 100, "no duplicate words");
    }

    #[test]
    fn dictionary_membership() {
        let mut w = world(512);
        let mut heap = EncHeap::direct();
        let dict = Dictionary::load(&mut w, &mut heap, "en", 200).expect("load");
        assert_eq!(dict.len(), 200);
        for word in synth_wordlist("en", 200).iter().take(50) {
            assert!(
                dict.check(&mut w, &mut heap, word).expect("check"),
                "{word}"
            );
        }
        assert!(!dict.check(&mut w, &mut heap, "zzzzzz").expect("check"));
        assert!(!dict.pages.is_empty(), "dictionary landed on tracked pages");
    }

    #[test]
    fn secret_pair_same_shape_different_words() {
        let (a, b) = secret_pair("en", 300, 24);
        assert_eq!(a.len(), 24);
        assert_eq!(b.len(), 24);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.len(), wb.len(), "public shape (lengths) identical");
            assert_ne!(wa, wb, "secret content differs");
            assert_ne!(word_key(wa), word_key(wb), "different bucket chains");
        }
        // Both sides are real dictionary words (lookups succeed).
        let dict_words: std::collections::HashSet<String> =
            synth_wordlist("en", 300).into_iter().collect();
        assert!(a.iter().all(|w| dict_words.contains(w)));
        assert!(b.iter().all(|w| dict_words.contains(w)));
    }

    #[test]
    fn server_checks_against_right_language() {
        let mut w = world(1024);
        let mut heap = EncHeap::direct();
        let server =
            SpellServer::start(&mut w, &mut heap, &["en", "de"], 150, false).expect("start");
        let text = synth_text("en", 150, 40, 9);
        let correct = server
            .check_text(&mut w, &mut heap, "en", &text)
            .expect("check");
        assert_eq!(correct, 40, "all words from the en dictionary");
        let cross = server
            .check_text(&mut w, &mut heap, "de", &text)
            .expect("check");
        assert!(cross < 40, "en words mostly absent from de");
    }

    #[test]
    fn per_dictionary_clusters_created() {
        let mut w = world(1024);
        let mut heap = EncHeap::direct();
        let server =
            SpellServer::start(&mut w, &mut heap, &["en", "de", "fr"], 100, true).expect("start");
        for dict in &server.dictionaries {
            let page = dict.pages[0];
            let ids = w.rt.clusters.ay_get_cluster_ids(page);
            assert_eq!(
                ids.len(),
                1,
                "{}: page in exactly its dictionary cluster",
                dict.lang
            );
            assert_eq!(
                w.rt.clusters.cluster_len(ids[0]),
                dict.pages.len(),
                "cluster covers the whole dictionary"
            );
        }
    }
}
