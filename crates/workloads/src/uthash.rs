//! A chained hash table in enclave memory, modeled on `uthash` (the
//! paper's §7.2 workload: 256-byte items, up to 10 items per bucket,
//! rehash-and-expand on overflow).
//!
//! The access pattern is the interesting part: a lookup touches the bucket
//! array page, then walks a chain of nodes that usually live on *different
//! pages* — exactly the secret-dependent page-access signature the
//! Hunspell attack exploited, and the pattern clusters/ORAM must hide.

use autarky_runtime::RtError;

use crate::encmem::{EncHeap, Ptr, World};

/// Node header: key (8) + next pointer (8).
const NODE_HEADER: usize = 16;

/// A chained hash table over instrumented enclave memory.
pub struct EncHashTable {
    buckets: Ptr,
    nbuckets: u64,
    item_size: usize,
    count: u64,
    /// Rehash when average chain length would exceed this.
    max_chain: u64,
    /// Number of rehashes performed (diagnostics).
    pub rehashes: u32,
}

/// 64-bit mix (splitmix64 finalizer) used as the hash function.
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl EncHashTable {
    /// Create a table with `nbuckets` initial buckets holding
    /// `item_size`-byte values, rehashing at `max_chain` items per bucket.
    pub fn new(
        world: &mut World,
        heap: &mut EncHeap,
        nbuckets: u64,
        item_size: usize,
        max_chain: u64,
    ) -> Result<Self, RtError> {
        let buckets = heap.alloc(world, (nbuckets * 8) as usize)?;
        // Heap memory is zeroed on allocation, so chains start empty.
        Ok(Self {
            buckets,
            nbuckets,
            item_size,
            count: 0,
            max_chain,
            rehashes: 0,
        })
    }

    /// Items stored.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current bucket count.
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    /// Total bytes a node occupies.
    pub fn node_size(&self) -> usize {
        NODE_HEADER + self.item_size
    }

    fn bucket_slot(&self, key: u64) -> Ptr {
        let idx = hash64(key) % self.nbuckets;
        self.buckets.offset(idx * 8)
    }

    /// Insert or update `key` with `value`.
    pub fn insert(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        key: u64,
        value: &[u8],
    ) -> Result<(), RtError> {
        debug_assert_eq!(value.len(), self.item_size);
        // Update in place when the key exists.
        let slot = self.bucket_slot(key);
        let mut node = Ptr(heap.read_u64(world, slot)?);
        while !node.is_null() {
            let node_key = heap.read_u64(world, node)?;
            if node_key == key {
                heap.write(world, node.offset(NODE_HEADER as u64), value)?;
                return Ok(());
            }
            node = Ptr(heap.read_u64(world, node.offset(8))?);
        }
        // Prepend a new node.
        let node = heap.alloc(world, self.node_size())?;
        let head = heap.read_u64(world, slot)?;
        heap.write_u64(world, node, key)?;
        heap.write_u64(world, node.offset(8), head)?;
        heap.write(world, node.offset(NODE_HEADER as u64), value)?;
        heap.write_u64(world, slot, node.0)?;
        self.count += 1;
        if self.count > self.nbuckets * self.max_chain {
            self.rehash(world, heap)?;
        }
        Ok(())
    }

    /// Look up `key`, returning its value when present.
    pub fn get(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        key: u64,
    ) -> Result<Option<Vec<u8>>, RtError> {
        let slot = self.bucket_slot(key);
        let mut node = Ptr(heap.read_u64(world, slot)?);
        while !node.is_null() {
            let node_key = heap.read_u64(world, node)?;
            if node_key == key {
                let mut value = vec![0u8; self.item_size];
                heap.read(world, node.offset(NODE_HEADER as u64), &mut value)?;
                return Ok(Some(value));
            }
            node = Ptr(heap.read_u64(world, node.offset(8))?);
        }
        Ok(None)
    }

    /// Whether `key` is present (no value copy).
    pub fn contains(
        &self,
        world: &mut World,
        heap: &mut EncHeap,
        key: u64,
    ) -> Result<bool, RtError> {
        let slot = self.bucket_slot(key);
        let mut node = Ptr(heap.read_u64(world, slot)?);
        while !node.is_null() {
            if heap.read_u64(world, node)? == key {
                return Ok(true);
            }
            node = Ptr(heap.read_u64(world, node.offset(8))?);
        }
        Ok(false)
    }

    /// Double the bucket array and re-link every node (uthash's expansion;
    /// §7.2 measures throughput before and after this).
    pub fn rehash(&mut self, world: &mut World, heap: &mut EncHeap) -> Result<(), RtError> {
        let new_n = self.nbuckets * 2;
        let new_buckets = heap.alloc(world, (new_n * 8) as usize)?;
        for i in 0..self.nbuckets {
            let mut node = Ptr(heap.read_u64(world, self.buckets.offset(i * 8))?);
            while !node.is_null() {
                let next = Ptr(heap.read_u64(world, node.offset(8))?);
                let key = heap.read_u64(world, node)?;
                let slot = new_buckets.offset((hash64(key) % new_n) * 8);
                let head = heap.read_u64(world, slot)?;
                heap.write_u64(world, node.offset(8), head)?;
                heap.write_u64(world, slot, node.0)?;
                node = next;
            }
        }
        heap.free(world, self.buckets, (self.nbuckets * 8) as usize);
        self.buckets = new_buckets;
        self.nbuckets = new_n;
        self.rehashes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world() -> World {
        let mut img = EnclaveImage::named("uthash-test");
        img.heap_pages = 2048;
        World::new(
            MachineConfig {
                epc_frames: 4096,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut table = EncHashTable::new(&mut w, &mut heap, 16, 32, 10).expect("table");
        for key in 0..100u64 {
            let value = vec![(key % 256) as u8; 32];
            table
                .insert(&mut w, &mut heap, key, &value)
                .expect("insert");
        }
        assert_eq!(table.len(), 100);
        for key in 0..100u64 {
            let value = table
                .get(&mut w, &mut heap, key)
                .expect("get")
                .expect("present");
            assert_eq!(value, vec![(key % 256) as u8; 32]);
        }
        assert_eq!(table.get(&mut w, &mut heap, 1000).expect("get"), None);
    }

    #[test]
    fn update_in_place() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut table = EncHashTable::new(&mut w, &mut heap, 16, 8, 10).expect("table");
        table
            .insert(&mut w, &mut heap, 5, &[1u8; 8])
            .expect("insert");
        table
            .insert(&mut w, &mut heap, 5, &[2u8; 8])
            .expect("update");
        assert_eq!(table.len(), 1, "update must not duplicate");
        assert_eq!(
            table
                .get(&mut w, &mut heap, 5)
                .expect("get")
                .expect("present"),
            vec![2u8; 8]
        );
    }

    #[test]
    fn rehash_triggers_and_preserves_contents() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut table = EncHashTable::new(&mut w, &mut heap, 4, 8, 2).expect("table");
        for key in 0..100u64 {
            table
                .insert(&mut w, &mut heap, key, &[(key % 251) as u8; 8])
                .expect("insert");
        }
        assert!(table.rehashes > 0, "rehash must have fired");
        assert!(table.nbuckets() > 4);
        for key in 0..100u64 {
            assert_eq!(
                table
                    .get(&mut w, &mut heap, key)
                    .expect("get")
                    .expect("present"),
                vec![(key % 251) as u8; 8],
                "key {key} lost in rehash"
            );
        }
    }

    #[test]
    fn contains_matches_get() {
        let mut w = world();
        let mut heap = EncHeap::direct();
        let mut table = EncHashTable::new(&mut w, &mut heap, 8, 8, 10).expect("table");
        table
            .insert(&mut w, &mut heap, 77, &[0u8; 8])
            .expect("insert");
        assert!(table.contains(&mut w, &mut heap, 77).expect("contains"));
        assert!(!table.contains(&mut w, &mut heap, 78).expect("contains"));
    }

    #[test]
    fn works_over_cached_oram() {
        let mut w = world();
        let mut heap = EncHeap::cached_oram(512, 32, 3);
        let mut table = EncHashTable::new(&mut w, &mut heap, 16, 32, 10).expect("table");
        for key in 0..50u64 {
            table
                .insert(&mut w, &mut heap, key, &[(key as u8); 32])
                .expect("insert");
        }
        for key in 0..50u64 {
            assert_eq!(
                table
                    .get(&mut w, &mut heap, key)
                    .expect("get")
                    .expect("present"),
                vec![key as u8; 32]
            );
        }
    }
}
