//! A miniature JPEG-style image codec with libjpeg's leaky access
//! pattern (paper §7.3, Table 2; attack from Xu et al. [76]).
//!
//! The codec is real: 8×8 block DCT, quantization, zig-zag + RLE entropy
//! coding, and the inverse pipeline. The controlled-channel relevance is
//! libjpeg's IDCT optimization: blocks whose AC coefficients are all zero
//! skip the full inverse transform and splat the DC value ("dcval"
//! shortcut). The two paths live on *different code pages* and touch
//! working memory differently, so a page-granular trace of the decoder
//! reveals which image blocks are flat — enough to reconstruct the
//! picture.
//!
//! The decoder executes its two paths at distinct simulated code-page
//! addresses, and keeps its working buffers in enclave memory, exactly
//! reproducing that signature.

use autarky_runtime::RtError;
use autarky_sgx_sim::Va;

use crate::encmem::{EncHeap, Ptr, World};

/// 8×8 quantization table (a scaled luminance table).
const QUANT: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zig-zag scan order.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// A compressed image (lives in untrusted I/O space; it is ciphertext in
/// a real deployment, so host storage is fine).
#[derive(Debug, Clone)]
pub struct Compressed {
    /// Image width in pixels (multiple of 8).
    pub width: usize,
    /// Image height in pixels (multiple of 8).
    pub height: usize,
    /// Entropy-coded block data.
    pub data: Vec<i16>,
}

fn dct_1d(row: &mut [f64; 8]) {
    let mut out = [0f64; 8];
    for (u, o) in out.iter_mut().enumerate() {
        let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
        let mut sum = 0.0;
        for (x, &v) in row.iter().enumerate() {
            sum += v * (((2 * x + 1) as f64) * (u as f64) * std::f64::consts::PI / 16.0).cos();
        }
        *o = 0.5 * cu * sum;
    }
    *row = out;
}

fn idct_1d(row: &mut [f64; 8]) {
    let mut out = [0f64; 8];
    for (x, o) in out.iter_mut().enumerate() {
        let mut sum = 0.0;
        for (u, &v) in row.iter().enumerate() {
            let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
            sum += cu * v * (((2 * x + 1) as f64) * (u as f64) * std::f64::consts::PI / 16.0).cos();
        }
        *o = 0.5 * sum;
    }
    *row = out;
}

fn forward_block(pixels: &[u8; 64]) -> [i16; 64] {
    let mut m = [0f64; 64];
    for (i, &p) in pixels.iter().enumerate() {
        m[i] = p as f64 - 128.0;
    }
    // Rows then columns.
    for r in 0..8 {
        let mut row = [0f64; 8];
        row.copy_from_slice(&m[r * 8..r * 8 + 8]);
        dct_1d(&mut row);
        m[r * 8..r * 8 + 8].copy_from_slice(&row);
    }
    for c in 0..8 {
        let mut col = [0f64; 8];
        for r in 0..8 {
            col[r] = m[r * 8 + c];
        }
        dct_1d(&mut col);
        for r in 0..8 {
            m[r * 8 + c] = col[r];
        }
    }
    let mut q = [0i16; 64];
    for i in 0..64 {
        q[i] = (m[i] / QUANT[i] as f64).round() as i16;
    }
    q
}

fn inverse_block(coeffs: &[i16; 64]) -> [u8; 64] {
    let mut m = [0f64; 64];
    for i in 0..64 {
        m[i] = (coeffs[i] as i32 * QUANT[i]) as f64;
    }
    for c in 0..8 {
        let mut col = [0f64; 8];
        for r in 0..8 {
            col[r] = m[r * 8 + c];
        }
        idct_1d(&mut col);
        for r in 0..8 {
            m[r * 8 + c] = col[r];
        }
    }
    for r in 0..8 {
        let mut row = [0f64; 8];
        row.copy_from_slice(&m[r * 8..r * 8 + 8]);
        idct_1d(&mut row);
        m[r * 8..r * 8 + 8].copy_from_slice(&row);
    }
    let mut out = [0u8; 64];
    for i in 0..64 {
        out[i] = (m[i] + 128.0).round().clamp(0.0, 255.0) as u8;
    }
    out
}

/// Encode a host-side image (the *input* path of the pipeline is public
/// in the attack scenario; the secret is the decoded content inside the
/// enclave).
pub fn encode(width: usize, height: usize, pixels: &[u8]) -> Compressed {
    assert_eq!(width % 8, 0);
    assert_eq!(height % 8, 0);
    assert_eq!(pixels.len(), width * height);
    let mut data = Vec::new();
    for by in (0..height).step_by(8) {
        for bx in (0..width).step_by(8) {
            let mut block = [0u8; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = pixels[(by + y) * width + bx + x];
                }
            }
            let q = forward_block(&block);
            // Zig-zag + trailing-zero truncation (RLE-lite): emit the
            // count of significant coefficients, then the coefficients.
            let zz: Vec<i16> = ZIGZAG.iter().map(|&i| q[i]).collect();
            let sig = zz.iter().rposition(|&v| v != 0).map(|p| p + 1).unwrap_or(0);
            data.push(sig as i16);
            data.extend_from_slice(&zz[..sig]);
        }
    }
    Compressed {
        width,
        height,
        data,
    }
}

/// Where the decoder's two IDCT paths "live" as code pages, relative to
/// the enclave's code region (offsets in pages).
pub const CODE_PAGE_IDCT_FULL: u64 = 1;
/// Code page of the flat-block (DC-only) shortcut.
pub const CODE_PAGE_IDCT_DCVAL: u64 = 2;

/// The in-enclave decoder.
pub struct Decoder {
    /// Output framebuffer in enclave memory.
    pub framebuffer: Ptr,
    width: usize,
    height: usize,
    /// Number of blocks that took the DC-only shortcut (diagnostics).
    pub dcval_blocks: u64,
    /// Number of blocks that ran the full IDCT.
    pub full_blocks: u64,
}

impl Decoder {
    /// Allocate the output framebuffer for a `width`×`height` decode.
    pub fn new(
        world: &mut World,
        heap: &mut EncHeap,
        width: usize,
        height: usize,
    ) -> Result<Self, RtError> {
        let framebuffer = heap.alloc(world, width * height)?;
        Ok(Self {
            framebuffer,
            width,
            height,
            dcval_blocks: 0,
            full_blocks: 0,
        })
    }

    /// Decode `compressed` into the framebuffer, reproducing libjpeg's
    /// data-dependent code-page and memory-access signature.
    pub fn decode(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        compressed: &Compressed,
    ) -> Result<(), RtError> {
        assert_eq!(compressed.width, self.width);
        assert_eq!(compressed.height, self.height);
        let code_base = world.image.code_start();
        let full_va = Va((code_base.0 + CODE_PAGE_IDCT_FULL) << 12);
        let dcval_va = Va((code_base.0 + CODE_PAGE_IDCT_DCVAL) << 12);

        let mut cursor = 0usize;
        for by in (0..self.height).step_by(8) {
            for bx in (0..self.width).step_by(8) {
                let sig = compressed.data[cursor] as usize;
                cursor += 1;
                let mut coeffs = [0i16; 64];
                for i in 0..sig {
                    coeffs[ZIGZAG[i]] = compressed.data[cursor + i];
                }
                cursor += sig;

                let flat = sig <= 1; // DC only (or empty)
                if flat {
                    // libjpeg's "dcval" shortcut: distinct code page, and
                    // only a splat of one value into the output rows.
                    world.rt.exec(&mut world.os, dcval_va)?;
                    self.dcval_blocks += 1;
                    let dc = ((coeffs[0] as i32 * QUANT[0]) as f64 / 8.0 + 128.0)
                        .round()
                        .clamp(0.0, 255.0) as u8;
                    let row = [dc; 8];
                    for y in 0..8 {
                        let off = ((by + y) * self.width + bx) as u64;
                        heap.write(world, self.framebuffer.offset(off), &row)?;
                    }
                } else {
                    // Full inverse transform: different code page, plus
                    // the per-block working state.
                    world.rt.exec(&mut world.os, full_va)?;
                    self.full_blocks += 1;
                    let block = inverse_block(&coeffs);
                    for y in 0..8 {
                        let off = ((by + y) * self.width + bx) as u64;
                        heap.write(
                            world,
                            self.framebuffer.offset(off),
                            &block[y * 8..y * 8 + 8],
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Read the decoded image back out (for checks / the invert stage).
    pub fn read_image(&self, world: &mut World, heap: &mut EncHeap) -> Result<Vec<u8>, RtError> {
        let mut out = vec![0u8; self.width * self.height];
        let mut offset = 0usize;
        // Page-sized chunks keep the access count realistic.
        while offset < out.len() {
            let chunk = (out.len() - offset).min(4096);
            heap.read(
                world,
                self.framebuffer.offset(offset as u64),
                &mut out[offset..offset + chunk],
            )?;
            offset += chunk;
        }
        Ok(out)
    }

    /// Invert the image in place (the insensitive filter stage of the
    /// §7.3 pipeline: access pattern is content-independent).
    pub fn invert(&mut self, world: &mut World, heap: &mut EncHeap) -> Result<(), RtError> {
        let total = self.width * self.height;
        let mut offset = 0usize;
        let mut buf = vec![0u8; 4096];
        while offset < total {
            let chunk = (total - offset).min(4096);
            heap.read(
                world,
                self.framebuffer.offset(offset as u64),
                &mut buf[..chunk],
            )?;
            for b in &mut buf[..chunk] {
                *b = 255 - *b;
            }
            heap.write(world, self.framebuffer.offset(offset as u64), &buf[..chunk])?;
            offset += chunk;
        }
        Ok(())
    }
}

/// Synthesize a deterministic grayscale test image: smooth flat regions
/// (which compress to DC-only blocks) with a detailed object whose shape
/// depends on `seed` — the "secret" the attack tries to recover.
pub fn synth_image(width: usize, height: usize, seed: u64) -> Vec<u8> {
    let mut pixels = vec![0u8; width * height];
    let cx = (crate::uthash::hash64(seed) % width as u64) as f64;
    let cy = (crate::uthash::hash64(seed ^ 0xABCD) % height as u64) as f64;
    let radius = (width.min(height) / 4) as f64;
    for y in 0..height {
        for x in 0..width {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let dist = (dx * dx + dy * dy).sqrt();
            pixels[y * width + x] = if dist < radius {
                // Textured disc: high-frequency content.
                let t = crate::uthash::hash64(seed ^ ((x as u64) << 20) ^ y as u64);
                128u8.wrapping_add((t % 96) as u8)
            } else {
                // Flat background.
                200
            };
        }
    }
    pixels
}

/// A secret-input pair for leakage audits: two images of identical
/// dimensions and byte length whose decoders execute *different* IDCT
/// code-page sequences (the disc position — the secret — moves, so the
/// block flatness maps differ while everything public about the inputs
/// is equal).
pub fn secret_pair(side: usize) -> (Vec<u8>, Vec<u8>) {
    let a = synth_image(side, side, 0x5EC2E7);
    let map_a = flatness_map(&encode(side, side, &a));
    // Scan forward from a fixed seed until the block map differs; with a
    // seed-positioned disc this terminates immediately in practice.
    let mut seed = 0xB10C;
    loop {
        let b = synth_image(side, side, seed);
        if flatness_map(&encode(side, side, &b)) != map_a {
            return (a, b);
        }
        seed += 1;
    }
}

/// Block-level "flatness map" of an image — what the controlled-channel
/// attack recovers from the decoder's code-page trace.
pub fn flatness_map(compressed: &Compressed) -> Vec<bool> {
    let mut map = Vec::new();
    let mut cursor = 0usize;
    let blocks = (compressed.width / 8) * (compressed.height / 8);
    for _ in 0..blocks {
        let sig = compressed.data[cursor] as usize;
        cursor += 1 + sig;
        map.push(sig <= 1);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::EnclaveImage;
    use autarky_runtime::RuntimeConfig;
    use autarky_sgx_sim::machine::MachineConfig;

    fn world(heap_pages: usize) -> World {
        let mut img = EnclaveImage::named("jpeg-test");
        img.heap_pages = heap_pages;
        img.code_pages = 8;
        World::new(
            MachineConfig {
                epc_frames: heap_pages + 128,
                ..Default::default()
            },
            img,
            RuntimeConfig::default(),
        )
        .expect("world")
    }

    #[test]
    fn codec_roundtrip_is_lossy_but_close() {
        let pixels = synth_image(64, 64, 7);
        let compressed = encode(64, 64, &pixels);
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let mut dec = Decoder::new(&mut w, &mut heap, 64, 64).expect("decoder");
        dec.decode(&mut w, &mut heap, &compressed).expect("decode");
        let out = dec.read_image(&mut w, &mut heap).expect("read");
        // JPEG is lossy: require mean absolute error under 12 gray levels.
        let mae: f64 = pixels
            .iter()
            .zip(&out)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / pixels.len() as f64;
        assert!(mae < 12.0, "mean abs error {mae}");
    }

    #[test]
    fn flat_background_takes_dcval_path() {
        let pixels = synth_image(64, 64, 3);
        let compressed = encode(64, 64, &pixels);
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let mut dec = Decoder::new(&mut w, &mut heap, 64, 64).expect("decoder");
        dec.decode(&mut w, &mut heap, &compressed).expect("decode");
        assert!(dec.dcval_blocks > 0, "flat blocks exist");
        assert!(dec.full_blocks > 0, "textured blocks exist");
        // The disc covers ~πr² / (w·h) ≈ 20% of the image; most blocks
        // should be flat.
        assert!(dec.dcval_blocks > dec.full_blocks);
    }

    #[test]
    fn flatness_map_matches_decoder_paths() {
        let pixels = synth_image(64, 64, 11);
        let compressed = encode(64, 64, &pixels);
        let map = flatness_map(&compressed);
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let mut dec = Decoder::new(&mut w, &mut heap, 64, 64).expect("decoder");
        dec.decode(&mut w, &mut heap, &compressed).expect("decode");
        assert_eq!(map.iter().filter(|&&f| f).count() as u64, dec.dcval_blocks);
    }

    #[test]
    fn invert_is_involutive() {
        let pixels = synth_image(32, 32, 5);
        let compressed = encode(32, 32, &pixels);
        let mut w = world(64);
        let mut heap = EncHeap::direct();
        let mut dec = Decoder::new(&mut w, &mut heap, 32, 32).expect("decoder");
        dec.decode(&mut w, &mut heap, &compressed).expect("decode");
        let before = dec.read_image(&mut w, &mut heap).expect("read");
        dec.invert(&mut w, &mut heap).expect("invert");
        dec.invert(&mut w, &mut heap).expect("invert again");
        let after = dec.read_image(&mut w, &mut heap).expect("read");
        assert_eq!(before, after);
    }

    #[test]
    fn secret_pair_same_shape_different_block_maps() {
        let (a, b) = secret_pair(32);
        assert_eq!(a.len(), b.len(), "identical byte length");
        assert_ne!(a, b, "contents differ");
        let map_a = flatness_map(&encode(32, 32, &a));
        let map_b = flatness_map(&encode(32, 32, &b));
        assert_eq!(map_a.len(), map_b.len(), "same block count");
        assert_ne!(map_a, map_b, "the secret shapes the decode path");
    }

    #[test]
    fn different_seeds_different_flatness() {
        let a = flatness_map(&encode(64, 64, &synth_image(64, 64, 1)));
        let b = flatness_map(&encode(64, 64, &synth_image(64, 64, 2)));
        assert_ne!(a, b, "the secret (disc position) shapes the block map");
    }
}
