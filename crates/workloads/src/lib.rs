//! Evaluation workloads for the Autarky reproduction — every application
//! the paper measures, implemented over instrumented enclave memory.
//!
//! * [`encmem`] — the execution environment: [`World`] (machine + OS +
//!   runtime) and [`EncHeap`], the instrumented data path with Direct,
//!   cached-ORAM, and uncached-ORAM modes;
//! * [`uthash`] — the chained hash table of §7.2 (Figure 6);
//! * [`kvstore`] + [`ycsb`] — the Memcached/YCSB-C setup of Figure 8;
//! * [`jpeg`] — the libjpeg-style codec with the leaky IDCT shortcut
//!   (Table 2);
//! * [`spell`] — the Hunspell-style multi-dictionary server (Table 2);
//! * [`font`] — the FreeType-style glyph renderer whose code-page trace
//!   leaks rendered text (Table 2);
//! * [`nbench`] — all ten BYTEmark kernels (the zero-paging-overhead
//!   experiment);
//! * [`phoenix`] / [`parsec`] / [`apps`] — the 14 Figure 7 applications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod encmem;
pub mod font;
pub mod jpeg;
pub mod kvstore;
pub mod nbench;
pub mod parsec;
pub mod phoenix;
pub mod request;
pub mod spell;
pub mod uthash;
pub mod ycsb;

pub use encmem::{EncHeap, EncVecF64, EncVecU64, EnclaveHandle, Ptr, World};
pub use request::{Request, RequestSource, Response, Service};
