//! Integration tests for the untrusted OS: loading, demand paging under
//! EPC pressure, the Autarky driver syscalls, whole-enclave swap, and the
//! attacker machinery against legacy enclaves.
//!
//! (Runtime-cooperating flows — the trusted handler, policies, attack
//! *defense* — are tested in `autarky-runtime` and the workspace-level
//! `tests/attack_defense.rs`.)

use autarky_os_sim::{
    EnclaveImage, FaultDisposition, FaultPlan, InjectedFault, Observation, Os, OsError,
};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{AccessError, EnclaveId, SgxError, Va, Vpn};

fn small_image(name: &str, self_paging: bool) -> EnclaveImage {
    let mut img = EnclaveImage::named(name);
    img.self_paging = self_paging;
    img.code_pages = 4;
    img.data_pages = 4;
    img.stack_pages = 2;
    img.heap_pages = 16;
    img
}

fn os_with_frames(frames: usize) -> Os {
    Os::new(MachineConfig {
        epc_frames: frames,
        ..Default::default()
    })
}

/// Back a range of heap pages (what the in-enclave allocator would do:
/// `ay_alloc_pages` + `EACCEPT` per page).
fn alloc_heap(os: &mut Os, eid: EnclaveId, pages: &[Vpn]) {
    os.ay_alloc_pages(eid, pages).expect("alloc");
    for &vpn in pages {
        os.machine.eaccept(eid, vpn).expect("accept");
    }
}

/// Drive a legacy-enclave read to completion, letting the OS resolve
/// faults the way a real kernel would.
fn legacy_read(os: &mut Os, eid: EnclaveId, va: Va, buf: &mut [u8]) {
    loop {
        match os.machine.read_bytes(eid, 0, va, buf) {
            Ok(()) => return,
            Err(AccessError::Fault(ev)) => {
                let disp = os.on_fault(ev).expect("OS resolves legacy fault");
                assert_eq!(disp, FaultDisposition::Resumed);
            }
            Err(AccessError::Fatal(e)) => panic!("fatal: {e}"),
        }
    }
}

fn legacy_write(os: &mut Os, eid: EnclaveId, va: Va, buf: &[u8]) {
    loop {
        match os.machine.write_bytes(eid, 0, va, buf) {
            Ok(()) => return,
            Err(AccessError::Fault(ev)) => {
                os.on_fault(ev).expect("OS resolves legacy fault");
            }
            Err(AccessError::Fatal(e)) => panic!("fatal: {e}"),
        }
    }
}

#[test]
fn load_and_touch_legacy_enclave() {
    let mut os = os_with_frames(256);
    let img = small_image("legacy", false);
    let eid = os.load_enclave(&img).expect("load");
    let data_va = img.data_start().base();
    legacy_write(&mut os, eid, data_va, &[1, 2, 3]);
    let mut buf = [0u8; 3];
    legacy_read(&mut os, eid, data_va, &mut buf);
    assert_eq!(buf, [1, 2, 3]);
}

#[test]
fn image_larger_than_epc_loads_and_runs() {
    // 16 frames of EPC, but the *initial* (measured) image needs more:
    // the loader must page as it goes, and the enclave must still run via
    // demand paging.
    let mut os = os_with_frames(16);
    let mut img = small_image("big", false);
    img.data_pages = 24; // initial pages alone exceed EPC
    assert!(img.tcs_count + img.code_pages + img.data_pages + img.stack_pages > 16);
    let eid = os.load_enclave(&img).expect("load pages out as it goes");
    assert!(os.machine.epc_frames_of(eid) <= 16);

    // Touch every data page; every access must eventually succeed.
    let data: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
    for &vpn in &data {
        legacy_write(&mut os, eid, vpn.base(), &[vpn.0 as u8]);
    }
    for &vpn in &data {
        let mut buf = [0u8; 1];
        legacy_read(&mut os, eid, vpn.base(), &mut buf);
        assert_eq!(buf[0], vpn.0 as u8, "contents preserved across swaps");
    }
    // Demand paging must actually have happened.
    let stats = os.machine.stats();
    assert!(stats.ewbs > 0, "evictions under pressure");
    assert!(stats.eldus > 0, "reloads on fault");
}

#[test]
fn quota_bounds_residency() {
    let mut os = os_with_frames(256);
    let img = small_image("q", false);
    let eid = os.load_enclave(&img).expect("load");
    os.set_epc_quota(eid, 8).expect("quota");
    for vpn in img.heap_range() {
        alloc_heap(&mut os, eid, &[vpn]);
        legacy_write(&mut os, eid, vpn.base(), &[9]);
        assert!(
            os.machine.epc_frames_of(eid) <= 8,
            "resident frames exceed quota"
        );
    }
}

#[test]
fn fault_tracer_recovers_legacy_access_pattern() {
    let mut os = os_with_frames(256);
    let img = small_image("victim", false);
    let eid = os.load_enclave(&img).expect("load");
    let heap: Vec<Vpn> = img.heap_range().collect();
    alloc_heap(&mut os, eid, &heap[..4]);

    // Secret-dependent access pattern over 4 pages.
    let secret = [2usize, 0, 3, 1, 2, 2, 0];
    os.arm_fault_tracer(eid, heap[..4].iter().copied())
        .expect("arm");
    for &s in &secret {
        let mut buf = [0u8; 1];
        legacy_read(&mut os, eid, heap[s].base(), &mut buf);
    }
    let attacker = os.disarm_attacker();
    let trace = match attacker {
        autarky_os_sim::Attacker::FaultTracer(t) => t.trace,
        other => panic!("unexpected attacker {other:?}"),
    };
    // The trace must reproduce the secret sequence (repeated accesses to
    // the same page do not re-fault, exactly like the real attack).
    let expected: Vec<Vpn> = {
        let mut out = Vec::new();
        let mut last = None;
        for &s in &secret {
            if last != Some(s) {
                out.push(heap[s]);
                last = Some(s);
            }
        }
        out
    };
    assert_eq!(trace, expected, "noise-free page-granular trace recovered");
}

#[test]
fn ad_monitor_sees_legacy_accesses_without_faults() {
    let mut os = os_with_frames(256);
    let img = small_image("victim2", false);
    let eid = os.load_enclave(&img).expect("load");
    let heap: Vec<Vpn> = img.heap_range().collect();
    alloc_heap(&mut os, eid, &heap[..4]);

    os.arm_ad_monitor(eid, heap[..4].iter().copied())
        .expect("arm");
    let faults_before = os.machine.stats().faults;

    let mut buf = [0u8; 1];
    legacy_read(&mut os, eid, heap[1].base(), &mut buf);
    os.attacker_poll();
    legacy_write(&mut os, eid, heap[3].base(), &[1]);
    os.attacker_poll();

    assert_eq!(
        os.machine.stats().faults,
        faults_before,
        "A/D monitoring is fault-free on legacy SGX"
    );
    let attacker = os.disarm_attacker();
    let trace = match attacker {
        autarky_os_sim::Attacker::AdMonitor(m) => m.trace,
        other => panic!("unexpected attacker {other:?}"),
    };
    assert_eq!(trace, vec![(heap[1], false), (heap[3], true)]);
}

#[test]
fn masked_faults_defeat_fault_tracer() {
    // Against a self-paging enclave the tracer only counts masked faults;
    // it cannot attribute them to pages. (Full handler-side detection is
    // tested with the runtime.)
    let mut os = os_with_frames(256);
    let img = small_image("protected", true);
    let eid = os.load_enclave(&img).expect("load");
    let data = img.data_start();
    os.arm_fault_tracer(eid, [data]).expect("arm");

    let err = os
        .machine
        .read_bytes(eid, 0, data.base(), &mut [0u8; 1])
        .expect_err("unmapped page faults");
    let ev = match err {
        AccessError::Fault(ev) => ev,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(ev.reported_va, img.base, "report masked to enclave base");
    let disp = os.on_fault(ev).expect("fault entry");
    assert_eq!(disp, FaultDisposition::HandlerRequired);
    match &os.attacker {
        autarky_os_sim::Attacker::FaultTracer(t) => {
            assert!(t.trace.is_empty(), "no attributable trace");
            assert_eq!(t.masked_faults, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn driver_transfers_management_and_pins() {
    let mut os = os_with_frames(64);
    let img = small_image("drv", true);
    let eid = os.load_enclave(&img).expect("load");
    let data: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();

    let status = os.ay_set_enclave_managed(eid, &data).expect("claim");
    assert!(
        status.iter().all(|(_, resident)| *resident),
        "initially resident"
    );

    // Pinned pages must survive OS memory pressure from another enclave.
    let mut img2 = small_image("pressure", false);
    img2.base = Va(0x4000_0000);
    img2.heap_pages = 64; // exceeds what's left
    let eid2 = os.load_enclave(&img2).expect("second enclave loads");
    for (vpn, _) in &status {
        assert!(
            os.machine.is_resident(eid, *vpn),
            "enclave-managed page {vpn} evicted despite pin"
        );
    }
    let _ = eid2;
}

#[test]
fn driver_fetch_evict_roundtrip() {
    let mut os = os_with_frames(128);
    let img = small_image("rt", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");

    // Write through the machine, evict, then fetch back.
    os.machine
        .write_bytes(eid, 0, page.base(), &[0xEE; 4])
        .expect("write while resident");
    os.ay_evict_pages(eid, &[page]).expect("evict");
    assert!(!os.machine.is_resident(eid, page));
    os.ay_fetch_pages(eid, &[page]).expect("fetch");
    let mut buf = [0u8; 4];
    os.machine
        .read_bytes(eid, 0, page.base(), &mut buf)
        .expect("read back");
    assert_eq!(buf, [0xEE; 4]);
}

#[test]
fn driver_alloc_then_accept() {
    let mut os = os_with_frames(128);
    let img = small_image("alloc", true);
    let eid = os.load_enclave(&img).expect("load");
    let heap0 = img.heap_start();
    os.ay_alloc_pages(eid, &[heap0]).expect("alloc");
    // Pending page faults until the enclave accepts it.
    assert!(matches!(
        os.machine.read_bytes(eid, 0, heap0.base(), &mut [0u8; 1]),
        Err(AccessError::Fault(_))
    ));
    // The trusted runtime accepts; then the page works.
    os.machine.eenter(eid, 0).expect("handler entry");
    os.machine.eaccept(eid, heap0).expect("accept");
    os.machine.pop_ssa(eid, 0).expect("pop fault frame");
    os.machine
        .write_bytes(eid, 0, heap0.base(), &[5u8])
        .expect("usable after accept");
}

#[test]
fn syscalls_are_observable() {
    let mut os = os_with_frames(128);
    let img = small_image("obs", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    let mark = os.observation_mark();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.ay_evict_pages(eid, &[page]).expect("evict");
    os.ay_fetch_pages(eid, &[page]).expect("fetch");
    let obs = os.observations_since(mark);
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::SetEnclaveManaged { pages, .. } if pages == &[page])));
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::EvictSyscall { pages, .. } if pages == &[page])));
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::FetchSyscall { pages, .. } if pages == &[page])));
}

/// The observation stream is append-only and cursor reads are
/// non-draining: a mark sees exactly the events recorded after it was
/// taken, repeated reads return the same slice, and older marks keep
/// strictly larger views — nothing a consumer does can steal events
/// from another.
#[test]
fn cursor_reads_are_repeatable_and_non_draining() {
    let mut os = os_with_frames(128);
    let img = small_image("cursor", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    let early_mark = os.observation_mark();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    let mark = os.observation_mark();
    os.ay_evict_pages(eid, &[page]).expect("evict");
    os.ay_fetch_pages(eid, &[page]).expect("fetch");

    // A mark sees only post-mark events.
    let since = os.observations_since(mark).to_vec();
    assert!(
        !since
            .iter()
            .any(|o| matches!(o, Observation::SetEnclaveManaged { .. })),
        "pre-mark events are invisible through the mark"
    );
    assert!(since
        .iter()
        .any(|o| matches!(o, Observation::EvictSyscall { .. })));
    assert!(since
        .iter()
        .any(|o| matches!(o, Observation::FetchSyscall { .. })));

    // Reads are repeatable (non-draining) and independent per consumer.
    assert_eq!(os.observations_since(mark), since.as_slice());
    let early = os.observations_since(early_mark);
    assert!(
        early.len() > since.len(),
        "an older mark sees a strict superset"
    );
    assert_eq!(&early[early.len() - since.len()..], since.as_slice());

    // A fresh mark equals the stream length; beyond-the-end marks are
    // clamped to empty rather than panicking.
    assert_eq!(os.observation_mark(), os.observations().len() as u64);
    assert!(os
        .observations_since(os.observation_mark() + 1000)
        .is_empty());
}

#[test]
fn suspend_and_resume_whole_enclave() {
    let mut os = os_with_frames(128);
    let img = small_image("swap", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.machine
        .write_bytes(eid, 0, page.base(), &[0x77; 8])
        .expect("write");

    let evicted = os.suspend_enclave(eid).expect("suspend");
    assert!(evicted > 0);
    assert!(os.is_suspended(eid));
    assert_eq!(os.machine.epc_frames_of(eid), 0, "everything out");

    let restored = os.resume_enclave(eid).expect("resume");
    assert_eq!(
        restored, evicted,
        "contract: all pages restored before resume"
    );
    assert!(
        os.machine.is_resident(eid, page),
        "enclave-managed page back"
    );
    let mut buf = [0u8; 8];
    os.machine
        .read_bytes(eid, 0, page.base(), &mut buf)
        .expect("read");
    assert_eq!(buf, [0x77; 8]);
}

#[test]
fn self_paging_enclave_fault_forces_reentry() {
    let mut os = os_with_frames(128);
    let img = small_image("handler", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.ay_evict_pages(eid, &[page]).expect("evict");

    let err = os
        .machine
        .read_bytes(eid, 0, page.base(), &mut [0u8; 1])
        .expect_err("fault on evicted page");
    let ev = match err {
        AccessError::Fault(ev) => ev,
        other => panic!("unexpected {other:?}"),
    };
    // ERESUME must be refused before the handler runs.
    assert_eq!(os.machine.eresume(eid, 0), Err(SgxError::ResumeBlocked));
    let disp = os.on_fault(ev).expect("fault entry");
    assert_eq!(disp, FaultDisposition::HandlerRequired);
    // We are now "inside" the handler; the trusted side sees real info.
    let info = os.machine.ssa_exinfo(eid, 0).expect("tcs").expect("exinfo");
    assert_eq!(info.va, page.base());
}

/// The `completed` prefix length of the first injected partial batch in
/// an observation stream, if any.
fn partial_fault_completed(obs: &[Observation]) -> Option<usize> {
    obs.iter().find_map(|o| match o {
        Observation::FaultInjected {
            fault: InjectedFault::PartialBatch { completed },
            ..
        } => Some(*completed),
        _ => None,
    })
}

/// `ay_evict_pages` documents that on error a prefix of the batch may
/// already be evicted and a verbatim retry then fails with `BadRequest`;
/// callers must reconcile against residency first. The partial-batch
/// injector exercises exactly that contract.
#[test]
fn partial_batch_evict_prefix_semantics_and_reconciled_retry() {
    // Scan seeds for an interior split (0 < completed) so the processed
    // prefix is non-empty; the prefix index is a seeded secondary draw.
    for seed in 0..64 {
        let mut os = os_with_frames(128);
        let img = small_image("pb-evict", true);
        let eid = os.load_enclave(&img).expect("load");
        let pages: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
        os.ay_set_enclave_managed(eid, &pages).expect("claim");
        let mark = os.observation_mark();
        os.arm_fault_plan(FaultPlan {
            partial_batch: 1.0,
            max_injections: Some(1),
            ..FaultPlan::quiescent(seed)
        });
        let err = os
            .ay_evict_pages(eid, &pages)
            .expect_err("partial batch fails");
        assert_eq!(err, OsError::NoMemory, "surfaces as transient NoMemory");
        let completed =
            partial_fault_completed(os.observations_since(mark)).expect("fault observed in log");
        // Documented state: pages[..completed] out, pages[completed..]
        // untouched.
        for (i, &vpn) in pages.iter().enumerate() {
            assert_eq!(os.machine.is_resident(eid, vpn), i >= completed, "page {i}");
        }
        if completed == 0 {
            continue;
        }
        // A verbatim retry trips over the already-evicted prefix.
        assert!(matches!(
            os.ay_evict_pages(eid, &pages),
            Err(OsError::BadRequest(_))
        ));
        // Reconciling against residency completes the batch.
        let remaining: Vec<Vpn> = pages
            .iter()
            .copied()
            .filter(|&vpn| os.machine.is_resident(eid, vpn))
            .collect();
        os.ay_evict_pages(eid, &remaining)
            .expect("reconciled retry");
        assert!(pages.iter().all(|&vpn| !os.machine.is_resident(eid, vpn)));
        return;
    }
    panic!("no seed in 0..64 produced a non-empty evicted prefix");
}

/// `ay_alloc_pages` documents the mirror contract: after a partial batch
/// the allocated prefix is resident, a verbatim retry is rejected with
/// `BadRequest("alloc of resident page")`, and the retry must skip pages
/// that are now resident.
#[test]
fn partial_batch_alloc_retry_must_skip_resident_prefix() {
    for seed in 0..64 {
        let mut os = os_with_frames(128);
        let img = small_image("pb-alloc", true);
        let eid = os.load_enclave(&img).expect("load");
        let heap: Vec<Vpn> = img.heap_range().take(8).collect();
        let mark = os.observation_mark();
        os.arm_fault_plan(FaultPlan {
            partial_batch: 1.0,
            max_injections: Some(1),
            ..FaultPlan::quiescent(seed)
        });
        let err = os
            .ay_alloc_pages(eid, &heap)
            .expect_err("partial alloc fails");
        assert_eq!(err, OsError::NoMemory);
        let completed =
            partial_fault_completed(os.observations_since(mark)).expect("fault observed in log");
        for (i, &vpn) in heap.iter().enumerate() {
            assert_eq!(os.machine.is_resident(eid, vpn), i < completed, "page {i}");
        }
        if completed == 0 {
            continue;
        }
        assert!(matches!(
            os.ay_alloc_pages(eid, &heap),
            Err(OsError::BadRequest(_))
        ));
        let missing: Vec<Vpn> = heap
            .iter()
            .copied()
            .filter(|&vpn| !os.machine.is_resident(eid, vpn))
            .collect();
        os.ay_alloc_pages(eid, &missing).expect("reconciled retry");
        assert!(heap.iter().all(|&vpn| os.machine.is_resident(eid, vpn)));
        return;
    }
    panic!("no seed in 0..64 produced a non-empty allocated prefix");
}

/// Fetch of an already-resident page is an idempotent remap, so — unlike
/// evict and alloc — a fetch batch that failed part-way may be retried
/// verbatim.
#[test]
fn partial_batch_fetch_is_retry_safe_verbatim() {
    for seed in 0..64 {
        let mut os = os_with_frames(128);
        let img = small_image("pb-fetch", true);
        let eid = os.load_enclave(&img).expect("load");
        let pages: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
        os.ay_set_enclave_managed(eid, &pages).expect("claim");
        os.ay_evict_pages(eid, &pages).expect("evict all");
        let mark = os.observation_mark();
        os.arm_fault_plan(FaultPlan {
            partial_batch: 1.0,
            max_injections: Some(1),
            ..FaultPlan::quiescent(seed)
        });
        let err = os
            .ay_fetch_pages(eid, &pages)
            .expect_err("partial fetch fails");
        assert_eq!(err, OsError::NoMemory);
        let completed =
            partial_fault_completed(os.observations_since(mark)).expect("fault observed in log");
        for (i, &vpn) in pages.iter().enumerate() {
            assert_eq!(os.machine.is_resident(eid, vpn), i < completed, "page {i}");
        }
        if completed == 0 {
            continue;
        }
        os.ay_fetch_pages(eid, &pages)
            .expect("verbatim retry is safe for fetch");
        assert!(pages.iter().all(|&vpn| os.machine.is_resident(eid, vpn)));
        return;
    }
    panic!("no seed in 0..64 produced a non-empty fetched prefix");
}

/// An injected whole-enclave suspension fails the in-flight call with
/// `Suspended`, and the next driver entry transparently resumes the
/// enclave (as a real kernel's syscall-entry hook would) before
/// servicing the call.
#[test]
fn injected_suspend_surfaces_then_auto_resumes() {
    let mut os = os_with_frames(128);
    let img = small_image("pb-susp", true);
    let eid = os.load_enclave(&img).expect("load");
    let pages: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
    os.ay_set_enclave_managed(eid, &pages).expect("claim");
    os.arm_fault_plan(FaultPlan {
        suspend: 1.0,
        max_injections: Some(1),
        ..FaultPlan::quiescent(11)
    });
    let err = os
        .ay_evict_pages(eid, &pages)
        .expect_err("injected suspend");
    assert_eq!(err, OsError::Suspended(eid));
    assert!(os.is_suspended(eid), "whole enclave swapped out");
    assert_eq!(os.machine.epc_frames_of(eid), 0);
    // Resume restores every sealed page, so the verbatim list is fully
    // resident again and the retried evict completes.
    os.ay_evict_pages(eid, &pages)
        .expect("auto-resume then evict");
    assert!(!os.is_suspended(eid));
    assert!(pages.iter().all(|&vpn| !os.machine.is_resident(eid, vpn)));
}

/// A fixed (seed, plan, workload) triple yields a bit-for-bit identical
/// outcome sequence, observation stream, final cycle count, and injected
/// fault tally.
#[test]
fn injector_schedule_is_deterministic() {
    let run = |seed: u64| {
        let mut os = os_with_frames(64);
        let img = small_image("det", true);
        let eid = os.load_enclave(&img).expect("load");
        let pages: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
        os.ay_set_enclave_managed(eid, &pages).expect("claim");
        os.arm_fault_plan(FaultPlan::hostile(seed, 0.2));
        let mut outcomes = Vec::new();
        for round in 0..50 {
            let result = if round % 2 == 0 {
                os.ay_evict_pages(eid, &pages)
            } else {
                os.ay_fetch_pages(eid, &pages)
            };
            outcomes.push(result);
        }
        (
            outcomes,
            os.observations_since(0).to_vec(),
            os.machine.clock.now(),
            os.disarm_fault_plan(),
        )
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "same seed + plan => identical replay");
    let c = run(4321);
    assert!(
        a.1 != c.1 || a.2 != c.2,
        "different seed perturbs the schedule"
    );
}

#[test]
fn fetch_without_backing_rejected() {
    let mut os = os_with_frames(128);
    let img = small_image("bad", true);
    let eid = os.load_enclave(&img).expect("load");
    let never_allocated = img.heap_start();
    assert!(matches!(
        os.ay_fetch_pages(eid, &[never_allocated]),
        Err(OsError::BadRequest(_))
    ));
}
