//! Integration tests for the untrusted OS: loading, demand paging under
//! EPC pressure, the Autarky driver syscalls, whole-enclave swap, and the
//! attacker machinery against legacy enclaves.
//!
//! (Runtime-cooperating flows — the trusted handler, policies, attack
//! *defense* — are tested in `autarky-runtime` and the workspace-level
//! `tests/attack_defense.rs`.)

use autarky_os_sim::{EnclaveImage, FaultDisposition, Observation, Os, OsError};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{AccessError, EnclaveId, SgxError, Va, Vpn};

fn small_image(name: &str, self_paging: bool) -> EnclaveImage {
    let mut img = EnclaveImage::named(name);
    img.self_paging = self_paging;
    img.code_pages = 4;
    img.data_pages = 4;
    img.stack_pages = 2;
    img.heap_pages = 16;
    img
}

fn os_with_frames(frames: usize) -> Os {
    Os::new(MachineConfig {
        epc_frames: frames,
        ..Default::default()
    })
}

/// Back a range of heap pages (what the in-enclave allocator would do:
/// `ay_alloc_pages` + `EACCEPT` per page).
fn alloc_heap(os: &mut Os, eid: EnclaveId, pages: &[Vpn]) {
    os.ay_alloc_pages(eid, pages).expect("alloc");
    for &vpn in pages {
        os.machine.eaccept(eid, vpn).expect("accept");
    }
}

/// Drive a legacy-enclave read to completion, letting the OS resolve
/// faults the way a real kernel would.
fn legacy_read(os: &mut Os, eid: EnclaveId, va: Va, buf: &mut [u8]) {
    loop {
        match os.machine.read_bytes(eid, 0, va, buf) {
            Ok(()) => return,
            Err(AccessError::Fault(ev)) => {
                let disp = os.on_fault(ev).expect("OS resolves legacy fault");
                assert_eq!(disp, FaultDisposition::Resumed);
            }
            Err(AccessError::Fatal(e)) => panic!("fatal: {e}"),
        }
    }
}

fn legacy_write(os: &mut Os, eid: EnclaveId, va: Va, buf: &[u8]) {
    loop {
        match os.machine.write_bytes(eid, 0, va, buf) {
            Ok(()) => return,
            Err(AccessError::Fault(ev)) => {
                os.on_fault(ev).expect("OS resolves legacy fault");
            }
            Err(AccessError::Fatal(e)) => panic!("fatal: {e}"),
        }
    }
}

#[test]
fn load_and_touch_legacy_enclave() {
    let mut os = os_with_frames(256);
    let img = small_image("legacy", false);
    let eid = os.load_enclave(&img).expect("load");
    let data_va = img.data_start().base();
    legacy_write(&mut os, eid, data_va, &[1, 2, 3]);
    let mut buf = [0u8; 3];
    legacy_read(&mut os, eid, data_va, &mut buf);
    assert_eq!(buf, [1, 2, 3]);
}

#[test]
fn image_larger_than_epc_loads_and_runs() {
    // 16 frames of EPC, but the *initial* (measured) image needs more:
    // the loader must page as it goes, and the enclave must still run via
    // demand paging.
    let mut os = os_with_frames(16);
    let mut img = small_image("big", false);
    img.data_pages = 24; // initial pages alone exceed EPC
    assert!(img.tcs_count + img.code_pages + img.data_pages + img.stack_pages > 16);
    let eid = os.load_enclave(&img).expect("load pages out as it goes");
    assert!(os.machine.epc_frames_of(eid) <= 16);

    // Touch every data page; every access must eventually succeed.
    let data: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();
    for &vpn in &data {
        legacy_write(&mut os, eid, vpn.base(), &[vpn.0 as u8]);
    }
    for &vpn in &data {
        let mut buf = [0u8; 1];
        legacy_read(&mut os, eid, vpn.base(), &mut buf);
        assert_eq!(buf[0], vpn.0 as u8, "contents preserved across swaps");
    }
    // Demand paging must actually have happened.
    let stats = os.machine.stats();
    assert!(stats.ewbs > 0, "evictions under pressure");
    assert!(stats.eldus > 0, "reloads on fault");
}

#[test]
fn quota_bounds_residency() {
    let mut os = os_with_frames(256);
    let img = small_image("q", false);
    let eid = os.load_enclave(&img).expect("load");
    os.set_epc_quota(eid, 8).expect("quota");
    for vpn in img.heap_range() {
        alloc_heap(&mut os, eid, &[vpn]);
        legacy_write(&mut os, eid, vpn.base(), &[9]);
        assert!(
            os.machine.epc_frames_of(eid) <= 8,
            "resident frames exceed quota"
        );
    }
}

#[test]
fn fault_tracer_recovers_legacy_access_pattern() {
    let mut os = os_with_frames(256);
    let img = small_image("victim", false);
    let eid = os.load_enclave(&img).expect("load");
    let heap: Vec<Vpn> = img.heap_range().collect();
    alloc_heap(&mut os, eid, &heap[..4]);

    // Secret-dependent access pattern over 4 pages.
    let secret = [2usize, 0, 3, 1, 2, 2, 0];
    os.arm_fault_tracer(eid, heap[..4].iter().copied())
        .expect("arm");
    for &s in &secret {
        let mut buf = [0u8; 1];
        legacy_read(&mut os, eid, heap[s].base(), &mut buf);
    }
    let attacker = os.disarm_attacker();
    let trace = match attacker {
        autarky_os_sim::Attacker::FaultTracer(t) => t.trace,
        other => panic!("unexpected attacker {other:?}"),
    };
    // The trace must reproduce the secret sequence (repeated accesses to
    // the same page do not re-fault, exactly like the real attack).
    let expected: Vec<Vpn> = {
        let mut out = Vec::new();
        let mut last = None;
        for &s in &secret {
            if last != Some(s) {
                out.push(heap[s]);
                last = Some(s);
            }
        }
        out
    };
    assert_eq!(trace, expected, "noise-free page-granular trace recovered");
}

#[test]
fn ad_monitor_sees_legacy_accesses_without_faults() {
    let mut os = os_with_frames(256);
    let img = small_image("victim2", false);
    let eid = os.load_enclave(&img).expect("load");
    let heap: Vec<Vpn> = img.heap_range().collect();
    alloc_heap(&mut os, eid, &heap[..4]);

    os.arm_ad_monitor(eid, heap[..4].iter().copied())
        .expect("arm");
    let faults_before = os.machine.stats().faults;

    let mut buf = [0u8; 1];
    legacy_read(&mut os, eid, heap[1].base(), &mut buf);
    os.attacker_poll();
    legacy_write(&mut os, eid, heap[3].base(), &[1]);
    os.attacker_poll();

    assert_eq!(
        os.machine.stats().faults,
        faults_before,
        "A/D monitoring is fault-free on legacy SGX"
    );
    let attacker = os.disarm_attacker();
    let trace = match attacker {
        autarky_os_sim::Attacker::AdMonitor(m) => m.trace,
        other => panic!("unexpected attacker {other:?}"),
    };
    assert_eq!(trace, vec![(heap[1], false), (heap[3], true)]);
}

#[test]
fn masked_faults_defeat_fault_tracer() {
    // Against a self-paging enclave the tracer only counts masked faults;
    // it cannot attribute them to pages. (Full handler-side detection is
    // tested with the runtime.)
    let mut os = os_with_frames(256);
    let img = small_image("protected", true);
    let eid = os.load_enclave(&img).expect("load");
    let data = img.data_start();
    os.arm_fault_tracer(eid, [data]).expect("arm");

    let err = os
        .machine
        .read_bytes(eid, 0, data.base(), &mut [0u8; 1])
        .expect_err("unmapped page faults");
    let ev = match err {
        AccessError::Fault(ev) => ev,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(ev.reported_va, img.base, "report masked to enclave base");
    let disp = os.on_fault(ev).expect("fault entry");
    assert_eq!(disp, FaultDisposition::HandlerRequired);
    match &os.attacker {
        autarky_os_sim::Attacker::FaultTracer(t) => {
            assert!(t.trace.is_empty(), "no attributable trace");
            assert_eq!(t.masked_faults, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn driver_transfers_management_and_pins() {
    let mut os = os_with_frames(64);
    let img = small_image("drv", true);
    let eid = os.load_enclave(&img).expect("load");
    let data: Vec<Vpn> = (img.data_start().0..img.stack_start().0).map(Vpn).collect();

    let status = os.ay_set_enclave_managed(eid, &data).expect("claim");
    assert!(
        status.iter().all(|(_, resident)| *resident),
        "initially resident"
    );

    // Pinned pages must survive OS memory pressure from another enclave.
    let mut img2 = small_image("pressure", false);
    img2.base = Va(0x4000_0000);
    img2.heap_pages = 64; // exceeds what's left
    let eid2 = os.load_enclave(&img2).expect("second enclave loads");
    for (vpn, _) in &status {
        assert!(
            os.machine.is_resident(eid, *vpn),
            "enclave-managed page {vpn} evicted despite pin"
        );
    }
    let _ = eid2;
}

#[test]
fn driver_fetch_evict_roundtrip() {
    let mut os = os_with_frames(128);
    let img = small_image("rt", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");

    // Write through the machine, evict, then fetch back.
    os.machine
        .write_bytes(eid, 0, page.base(), &[0xEE; 4])
        .expect("write while resident");
    os.ay_evict_pages(eid, &[page]).expect("evict");
    assert!(!os.machine.is_resident(eid, page));
    os.ay_fetch_pages(eid, &[page]).expect("fetch");
    let mut buf = [0u8; 4];
    os.machine
        .read_bytes(eid, 0, page.base(), &mut buf)
        .expect("read back");
    assert_eq!(buf, [0xEE; 4]);
}

#[test]
fn driver_alloc_then_accept() {
    let mut os = os_with_frames(128);
    let img = small_image("alloc", true);
    let eid = os.load_enclave(&img).expect("load");
    let heap0 = img.heap_start();
    os.ay_alloc_pages(eid, &[heap0]).expect("alloc");
    // Pending page faults until the enclave accepts it.
    assert!(matches!(
        os.machine.read_bytes(eid, 0, heap0.base(), &mut [0u8; 1]),
        Err(AccessError::Fault(_))
    ));
    // The trusted runtime accepts; then the page works.
    os.machine.eenter(eid, 0).expect("handler entry");
    os.machine.eaccept(eid, heap0).expect("accept");
    os.machine.pop_ssa(eid, 0).expect("pop fault frame");
    os.machine
        .write_bytes(eid, 0, heap0.base(), &[5u8])
        .expect("usable after accept");
}

#[test]
fn syscalls_are_observable() {
    let mut os = os_with_frames(128);
    let img = small_image("obs", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.take_observations();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.ay_evict_pages(eid, &[page]).expect("evict");
    os.ay_fetch_pages(eid, &[page]).expect("fetch");
    let obs = os.take_observations();
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::SetEnclaveManaged { pages, .. } if pages == &[page])));
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::EvictSyscall { pages, .. } if pages == &[page])));
    assert!(obs
        .iter()
        .any(|o| matches!(o, Observation::FetchSyscall { pages, .. } if pages == &[page])));
}

#[test]
fn suspend_and_resume_whole_enclave() {
    let mut os = os_with_frames(128);
    let img = small_image("swap", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.machine
        .write_bytes(eid, 0, page.base(), &[0x77; 8])
        .expect("write");

    let evicted = os.suspend_enclave(eid).expect("suspend");
    assert!(evicted > 0);
    assert!(os.is_suspended(eid));
    assert_eq!(os.machine.epc_frames_of(eid), 0, "everything out");

    let restored = os.resume_enclave(eid).expect("resume");
    assert_eq!(
        restored, evicted,
        "contract: all pages restored before resume"
    );
    assert!(
        os.machine.is_resident(eid, page),
        "enclave-managed page back"
    );
    let mut buf = [0u8; 8];
    os.machine
        .read_bytes(eid, 0, page.base(), &mut buf)
        .expect("read");
    assert_eq!(buf, [0x77; 8]);
}

#[test]
fn self_paging_enclave_fault_forces_reentry() {
    let mut os = os_with_frames(128);
    let img = small_image("handler", true);
    let eid = os.load_enclave(&img).expect("load");
    let page = img.data_start();
    os.ay_set_enclave_managed(eid, &[page]).expect("claim");
    os.ay_evict_pages(eid, &[page]).expect("evict");

    let err = os
        .machine
        .read_bytes(eid, 0, page.base(), &mut [0u8; 1])
        .expect_err("fault on evicted page");
    let ev = match err {
        AccessError::Fault(ev) => ev,
        other => panic!("unexpected {other:?}"),
    };
    // ERESUME must be refused before the handler runs.
    assert_eq!(os.machine.eresume(eid, 0), Err(SgxError::ResumeBlocked));
    let disp = os.on_fault(ev).expect("fault entry");
    assert_eq!(disp, FaultDisposition::HandlerRequired);
    // We are now "inside" the handler; the trusted side sees real info.
    let info = os.machine.ssa_exinfo(eid, 0).expect("tcs").expect("exinfo");
    assert_eq!(info.va, page.base());
}

#[test]
fn fetch_without_backing_rejected() {
    let mut os = os_with_frames(128);
    let img = small_image("bad", true);
    let eid = os.load_enclave(&img).expect("load");
    let never_allocated = img.heap_start();
    assert!(matches!(
        os.ay_fetch_pages(eid, &[never_allocated]),
        Err(OsError::BadRequest(_))
    ));
}
