//! The untrusted OS kernel: enclave loading, EPC accounting, demand paging
//! of OS-managed pages, fault entry, and whole-enclave swap.
//!
//! Everything in this module runs *outside* the trust boundary. It is both
//! the resource manager the enclave depends on and — via
//! [`crate::attack`] — the adversary of the paper's threat model (§3).

use std::collections::{BTreeSet, HashMap};

use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::pagetable::Pte;
use autarky_sgx_sim::{
    AccessKind, Attributes, CostTag, EnclaveId, FaultEvent, Machine, PageType, Perms, SgxError, Va,
    Vpn,
};

use crate::attack::Attacker;
use crate::backing::BackingStore;
use crate::eviction::{EvictionPolicy, EvictionState};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, InjectedFault, SyscallKind};
use crate::flight::{FlightEvent, FlightRecord, FlightRecorder, CORR_NONE};
use crate::image::EnclaveImage;

/// Errors surfaced by OS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// EPC exhausted and nothing evictable: the caller must free memory.
    NoMemory,
    /// The enclave id is unknown to the OS.
    NotLoaded(EnclaveId),
    /// The enclave is suspended (whole-enclave swap) and cannot run.
    Suspended(EnclaveId),
    /// Underlying architectural failure.
    Sgx(SgxError),
    /// The OS refused a nonsensical request (e.g. fetching a page that has
    /// no backing copy and was never allocated).
    BadRequest(&'static str),
}

impl From<SgxError> for OsError {
    fn from(err: SgxError) -> Self {
        OsError::Sgx(err)
    }
}

impl core::fmt::Display for OsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OsError::NoMemory => write!(f, "out of EPC memory"),
            OsError::NotLoaded(eid) => write!(f, "{eid} not loaded"),
            OsError::Suspended(eid) => write!(f, "{eid} is suspended"),
            OsError::Sgx(e) => write!(f, "SGX error: {e}"),
            OsError::BadRequest(what) => write!(f, "bad request: {what}"),
        }
    }
}

impl std::error::Error for OsError {
    /// The architectural error that caused this one, when there is one.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Sgx(e) => Some(e),
            _ => None,
        }
    }
}

/// One adversary-visible event. The attack oracles consume only this
/// stream (plus direct page-table inspection) — never enclave-internal
/// state — so a verdict of "nothing leaked" is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// A fault was delivered to the OS with this (possibly masked) report.
    Fault {
        /// Faulting enclave.
        eid: EnclaveId,
        /// Reported address (enclave base when masked).
        va: Va,
        /// Reported access kind (`Read` when masked).
        kind: AccessKind,
    },
    /// The enclave runtime asked to fetch these pages (demand-paging side
    /// channel — visible by design, clusters widen the anonymity set).
    FetchSyscall {
        /// Requesting enclave.
        eid: EnclaveId,
        /// Pages requested, in request order.
        pages: Vec<Vpn>,
    },
    /// The enclave runtime asked to evict these pages.
    EvictSyscall {
        /// Requesting enclave.
        eid: EnclaveId,
        /// Pages evicted.
        pages: Vec<Vpn>,
    },
    /// The enclave runtime asked for fresh (zeroed) pages.
    AllocSyscall {
        /// Requesting enclave.
        eid: EnclaveId,
        /// Pages allocated.
        pages: Vec<Vpn>,
    },
    /// Pages were handed to enclave management.
    SetEnclaveManaged {
        /// Requesting enclave.
        eid: EnclaveId,
        /// Pages transferred.
        pages: Vec<Vpn>,
    },
    /// Pages were handed (back) to OS management.
    SetOsManaged {
        /// Requesting enclave.
        eid: EnclaveId,
        /// Pages transferred.
        pages: Vec<Vpn>,
    },
    /// An untrusted-memory buffer was read or written by the enclave.
    UntrustedAccess {
        /// Buffer key.
        key: u64,
        /// True for writes.
        write: bool,
    },
    /// The OS performed legacy demand paging for this page.
    DemandPaging {
        /// Enclave.
        eid: EnclaveId,
        /// Page paged in.
        vpn: Vpn,
    },
    /// An attacker poll found a PTE accessed/dirty bit newly set.
    AdBitObserved {
        /// Enclave.
        eid: EnclaveId,
        /// Page observed.
        vpn: Vpn,
        /// Whether the dirty bit (vs just accessed) was set.
        dirty: bool,
    },
    /// The fault injector perturbed a driver call (robustness harness).
    FaultInjected {
        /// Enclave whose call was perturbed.
        eid: EnclaveId,
        /// What was injected, as applied.
        fault: InjectedFault,
    },
}

/// What `Os::on_fault` decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDisposition {
    /// Legacy flow: the OS resolved the fault and silently resumed the
    /// enclave; the access should simply be replayed.
    Resumed,
    /// Autarky flow: `ERESUME` is blocked by the pending-exception flag;
    /// the OS re-entered the enclave so the trusted handler can run.
    HandlerRequired,
}

#[derive(Clone)]
pub(crate) struct Proc {
    pub image: EnclaveImage,
    /// Pages the OS may page at will.
    pub os_managed: BTreeSet<Vpn>,
    /// Pages pinned under the Autarky contract while the enclave runs.
    pub enclave_managed: BTreeSet<Vpn>,
    pub eviction: EvictionState,
    /// Maximum EPC frames this enclave may occupy.
    pub quota: usize,
    pub suspended: bool,
}

/// The untrusted operating system.
pub struct Os {
    /// The hardware. Public so trusted-runtime code can execute its
    /// (unprivileged) instructions on it, exactly as real enclave code
    /// shares the CPU with the kernel.
    pub machine: Machine,
    pub(crate) procs: HashMap<EnclaveId, Proc>,
    /// Untrusted swap space.
    pub backing: BackingStore,
    /// The currently armed attacker (part of the OS).
    pub attacker: Attacker,
    /// The all-time adversary-visible event stream. Append-only: events
    /// are never drained, so a [`Os::observation_mark`] cursor is a plain
    /// index into this vector and stays valid for the OS's lifetime.
    observations: Vec<Observation>,
    /// Use exitless calls for enclave syscalls (Graphene/Eleos style).
    pub exitless: bool,
    /// Armed fault injector (robustness harness), if any.
    pub(crate) injector: Option<FaultInjector>,
    /// Armed causal flight recorder (off by default), if any.
    flight: Option<FlightRecorder>,
}

impl Os {
    /// Boot an OS on a machine built from `config`.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            machine: Machine::new(config),
            procs: HashMap::new(),
            backing: BackingStore::new(),
            attacker: Attacker::None,
            observations: Vec::new(),
            exitless: true,
            injector: None,
            flight: None,
        }
    }

    // ----------------------------------------------------------------
    // Fault injection (robustness harness).
    // ----------------------------------------------------------------

    /// Arm the hostile-OS fault injector with `plan`. Subsequent driver
    /// calls are perturbed per the plan's seeded schedule; every injected
    /// fault is recorded as [`Observation::FaultInjected`].
    pub fn arm_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Disarm the injector, returning how many faults it injected.
    pub fn disarm_fault_plan(&mut self) -> u64 {
        self.injector.take().map(|i| i.injected()).unwrap_or(0)
    }

    /// Faults injected so far by the armed injector.
    pub fn injected_fault_count(&self) -> u64 {
        self.injector.as_ref().map(|i| i.injected()).unwrap_or(0)
    }

    /// Whether an injected suspend is awaiting its transparent resume
    /// (exposed so the fault path can model the OS resuming the enclave
    /// before the next entry, as the syscall-entry hook would).
    pub fn has_pending_injected_resume(&self) -> bool {
        self.injector
            .as_ref()
            .and_then(|inj| inj.peek_pending_resume())
            .is_some()
    }

    /// Syscall-entry hook: transparently resume an enclave that an
    /// injected [`FaultKind::Suspend`] put to sleep. The OS decided to
    /// swap the enclave out; by the time the runtime retries, it has
    /// decided to bring it back. The pending marker is only cleared once
    /// resumption succeeds, so a transient resume failure (EPC pressure)
    /// is retried at the next syscall entry.
    pub fn resume_injected_suspend(&mut self) -> Result<(), OsError> {
        let pending = self
            .injector
            .as_ref()
            .and_then(|inj| inj.peek_pending_resume());
        if let Some(suspended) = pending {
            if self.is_suspended(suspended) {
                self.resume_enclave(suspended)?;
            }
            if let Some(inj) = self.injector.as_mut() {
                inj.take_pending_resume();
            }
        }
        Ok(())
    }

    /// Draw the fault decision for one driver call issued by `eid` (one
    /// RNG draw for untargeted plans; targeted plans skip other enclaves
    /// without a draw — see [`FaultPlan::target`]).
    pub(crate) fn inject_decide(
        &mut self,
        eid: EnclaveId,
        syscall: SyscallKind,
        batch_len: usize,
    ) -> Option<FaultKind> {
        self.injector
            .as_mut()
            .and_then(|inj| inj.decide(eid, syscall, batch_len))
    }

    /// Record an applied fault in the log and the injector's count.
    pub(crate) fn record_injection(&mut self, eid: EnclaveId, fault: InjectedFault) {
        if let Some(inj) = self.injector.as_mut() {
            inj.record();
        }
        self.observe(Observation::FaultInjected { eid, fault });
    }

    /// Apply an injected whole-enclave suspension after `completed` batch
    /// entries: evict everything, remember to resume at the next syscall
    /// entry, and return the error the current call must fail with.
    pub(crate) fn apply_injected_suspend(&mut self, eid: EnclaveId, completed: usize) -> OsError {
        if let Err(e) = self.suspend_enclave(eid) {
            return e;
        }
        if let Some(inj) = self.injector.as_mut() {
            inj.set_pending_resume(eid);
        }
        self.record_injection(eid, InjectedFault::Suspend { completed });
        OsError::Suspended(eid)
    }

    /// Apply an injected delay: charge the cycle model and log it.
    pub(crate) fn apply_injected_delay(&mut self, eid: EnclaveId) {
        let cycles = self
            .injector
            .as_ref()
            .map(|inj| inj.delay_cycles())
            .unwrap_or(0);
        self.machine.clock.charge_tagged(CostTag::Injected, cycles);
        self.record_injection(eid, InjectedFault::Delay { cycles });
    }

    /// Pick a batch index for a batch-shaping fault.
    pub(crate) fn inject_pick_index(&mut self, len: usize) -> usize {
        self.injector
            .as_mut()
            .map(|inj| inj.pick_index(len))
            .unwrap_or(0)
    }

    /// Apply an injected spurious eviction: evict the lowest-numbered
    /// pinned (enclave-managed, resident) page, violating the pin
    /// contract. Returns whether a victim existed.
    pub(crate) fn apply_spurious_evict(&mut self, eid: EnclaveId) -> Result<bool, OsError> {
        let victim = self
            .proc(eid)?
            .enclave_managed
            .iter()
            .copied()
            .find(|&vpn| self.machine.is_resident(eid, vpn));
        match victim {
            Some(vpn) => {
                self.evict_page_ewb(eid, vpn)?;
                self.record_injection(eid, InjectedFault::SpuriousEvict { vpn });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The adversary-visible event log.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// A cursor into the all-time observation stream. Pair with
    /// [`Os::observations_since`] to read events non-destructively, so
    /// several consumers (attack oracles, leakage capture) can share the
    /// stream without stealing each other's events.
    ///
    /// The stream is append-only, so a mark is simply the stream length
    /// at the moment it was taken and never expires.
    pub fn observation_mark(&self) -> u64 {
        self.observations.len() as u64
    }

    /// Events recorded at or after `mark` (from [`Os::observation_mark`]).
    /// Reads are non-draining and repeatable: the same mark always yields
    /// the same prefix-stable slice, however many consumers share it.
    pub fn observations_since(&self, mark: u64) -> &[Observation] {
        let start = (mark as usize).min(self.observations.len());
        &self.observations[start..]
    }

    pub(crate) fn observe(&mut self, obs: Observation) {
        if self.flight.is_some() {
            self.flight_record(FlightEvent::Kernel(obs.clone()));
        }
        self.observations.push(obs);
    }

    // ----------------------------------------------------------------
    // Causal flight recorder.
    // ----------------------------------------------------------------

    /// Arm the causal flight recorder with a ring of `capacity` records.
    /// Also arms the machine's enclave-transition log so hardware events
    /// (AEX, `EENTER`, blocked resumes, ...) interleave into the stream.
    /// While armed, every recorded event charges
    /// [`autarky_sgx_sim::CostTag::Recorder`] cycles — the recorder's
    /// observer effect is measured, not hidden.
    pub fn arm_flight_recorder(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::new(capacity));
        self.machine.set_transition_recording(true);
    }

    /// Disarm the recorder and return it (with any still-undrained
    /// machine transitions folded in), or `None` if it was not armed.
    pub fn disarm_flight_recorder(&mut self) -> Option<FlightRecorder> {
        self.flight_sync();
        self.machine.set_transition_recording(false);
        self.flight.take()
    }

    /// Whether the flight recorder is armed.
    pub fn flight_armed(&self) -> bool {
        self.flight.is_some()
    }

    /// Fold machine transitions recorded since the last drain into the
    /// flight log (stamped with their captured cycle times and the
    /// currently open correlation chain).
    fn flight_sync(&mut self) {
        let Some(rec) = self.flight.as_mut() else {
            return;
        };
        for t in self.machine.take_transitions() {
            let (tag, cost) = rec.record_cost();
            self.machine.clock.charge_tagged(tag, cost);
            rec.record(
                t.cycles,
                FlightEvent::Transition {
                    kind: t.kind,
                    eid: t.eid,
                    tcs: t.tcs,
                },
            );
        }
    }

    /// Record one event in the flight log (no-op while disarmed). Any
    /// pending machine transitions are folded in first so the log stays
    /// causally ordered, and each record charges its simulated cost.
    pub fn flight_record(&mut self, event: FlightEvent) {
        if self.flight.is_none() {
            return;
        }
        self.flight_sync();
        if let Some(rec) = self.flight.as_mut() {
            let (tag, cost) = rec.record_cost();
            self.machine.clock.charge_tagged(tag, cost);
            let now = self.machine.clock.now();
            rec.record(now, event);
        }
    }

    /// Open a new correlation chain: events recorded from here until
    /// [`Os::flight_end_chain`] share one chain id. Returns the id
    /// ([`CORR_NONE`] while disarmed).
    pub fn flight_begin_chain(&mut self) -> u64 {
        self.flight_sync();
        self.flight
            .as_mut()
            .map(|rec| rec.begin_chain())
            .unwrap_or(CORR_NONE)
    }

    /// Open a chain only if none is active. Returns `true` if this call
    /// opened one (the caller then owns closing it).
    pub fn flight_begin_chain_if_idle(&mut self) -> bool {
        let idle = matches!(self.flight.as_ref(), Some(rec) if !rec.chain_active());
        if idle {
            self.flight_begin_chain();
        }
        idle
    }

    /// Close the open correlation chain, first folding in any pending
    /// machine transitions (e.g. the closing `EEXIT`/`ERESUME`) so they
    /// stay attributed to the chain.
    pub fn flight_end_chain(&mut self) {
        self.flight_sync();
        if let Some(rec) = self.flight.as_mut() {
            rec.end_chain();
        }
    }

    /// Snapshot of the retained flight records, oldest first (pending
    /// machine transitions folded in).
    pub fn flight_snapshot(&mut self) -> Vec<FlightRecord> {
        self.flight_sync();
        self.flight
            .as_ref()
            .map(|rec| rec.snapshot())
            .unwrap_or_default()
    }

    /// Flight records lost to ring overflow.
    pub fn flight_dropped(&self) -> u64 {
        self.flight.as_ref().map(|rec| rec.dropped()).unwrap_or(0)
    }

    /// Retained flight records with sequence numbers strictly greater
    /// than `seq`, oldest first (pending machine transitions folded in).
    /// The incremental form of [`Os::flight_snapshot`] for streaming
    /// consumers that poll with a cursor.
    pub fn flight_records_after(&mut self, seq: u64) -> Vec<FlightRecord> {
        self.flight_sync();
        self.flight
            .as_ref()
            .map(|rec| rec.records_after(seq))
            .unwrap_or_default()
    }

    pub(crate) fn proc(&self, eid: EnclaveId) -> Result<&Proc, OsError> {
        self.procs.get(&eid).ok_or(OsError::NotLoaded(eid))
    }

    pub(crate) fn proc_mut(&mut self, eid: EnclaveId) -> Result<&mut Proc, OsError> {
        self.procs.get_mut(&eid).ok_or(OsError::NotLoaded(eid))
    }

    /// The image an enclave was loaded from.
    pub fn image(&self, eid: EnclaveId) -> Result<&EnclaveImage, OsError> {
        Ok(&self.proc(eid)?.image)
    }

    /// Charge one syscall (exitless handoff or ring switch).
    pub(crate) fn charge_syscall(&mut self) {
        let cost = if self.exitless {
            self.machine.costs.exitless_call
        } else {
            self.machine.costs.syscall
        };
        self.machine.clock.charge_tagged(CostTag::Syscall, cost);
    }

    // ----------------------------------------------------------------
    // Loading.
    // ----------------------------------------------------------------

    /// Load an enclave: `ECREATE`, `EADD`+measure the initial pages, map
    /// them (A/D preset), `EINIT`, and `EENTER` on TCS 0.
    ///
    /// If the initial image exceeds EPC (or the enclave's quota), the
    /// loader pages out already-loaded pages as it goes, so images larger
    /// than EPC load fine — they just start partially swapped.
    pub fn load_enclave(&mut self, image: &EnclaveImage) -> Result<EnclaveId, OsError> {
        let attributes = Attributes {
            self_paging: image.self_paging,
            debug: false,
        };
        let eid = self
            .machine
            .ecreate(image.base, image.size_bytes(), attributes);
        let policy = if image.self_paging {
            EvictionPolicy::Fifo
        } else {
            EvictionPolicy::Clock
        };
        self.procs.insert(
            eid,
            Proc {
                image: image.clone(),
                os_managed: BTreeSet::new(),
                enclave_managed: BTreeSet::new(),
                eviction: EvictionState::new(policy),
                quota: self.machine.epc_total_frames(),
                suspended: false,
            },
        );

        // TCS pages.
        for i in 0..image.tcs_count {
            let vpn = Vpn(image.tcs_start().0 + i as u64);
            self.add_initial_page(eid, vpn, PageType::Tcs, Perms::RW, image)?;
        }
        // Code (RX, measured contents).
        for vpn in image.code_range() {
            self.add_initial_page(eid, vpn, PageType::Reg, Perms::RX, image)?;
        }
        // Data and stack (RW).
        let data_start = image.data_start().0;
        let stack_end = image.heap_start().0;
        for n in data_start..stack_end {
            self.add_initial_page(eid, Vpn(n), PageType::Reg, Perms::RW, image)?;
        }
        // The heap region is reserved but not backed: the runtime
        // allocates it lazily with `EAUG` (SGXv2 dynamic memory), for
        // legacy and self-paging enclaves alike — as Graphene-SGX does on
        // SGXv2 hardware.
        self.machine.einit(eid)?;
        self.machine.eenter(eid, 0)?;
        Ok(eid)
    }

    fn add_initial_page(
        &mut self,
        eid: EnclaveId,
        vpn: Vpn,
        page_type: PageType,
        perms: Perms,
        image: &EnclaveImage,
    ) -> Result<(), OsError> {
        self.make_room(eid)?;
        // Code pages carry (measured) synthetic contents; data, stack and
        // heap start zeroed, like BSS.
        let contents = if perms.x {
            Some(image.page_contents(vpn))
        } else {
            None
        };
        let frame = self
            .machine
            .eadd(eid, vpn, page_type, perms, contents.as_ref())?;
        self.machine.page_table_mut(eid)?.map(
            vpn,
            Pte {
                present: true,
                frame,
                perms,
                accessed: true,
                dirty: true,
            },
        );
        let proc = self.proc_mut(eid)?;
        proc.os_managed.insert(vpn);
        proc.eviction.on_resident(vpn);
        Ok(())
    }

    // ----------------------------------------------------------------
    // EPC accounting and OS-driven eviction.
    // ----------------------------------------------------------------

    /// Set the EPC quota (in frames) for an enclave, immediately evicting
    /// OS-managed pages down to the new limit (kernel reclaim). Pinned
    /// enclave-managed pages are never touched, so the effective floor is
    /// the enclave's pinned working set.
    pub fn set_epc_quota(&mut self, eid: EnclaveId, frames: usize) -> Result<(), OsError> {
        self.proc_mut(eid)?.quota = frames;
        while self.machine.epc_frames_of(eid) > frames {
            match self.evict_one_os_managed(eid) {
                Ok(_) => {}
                Err(OsError::NoMemory) => break, // only pinned pages remain
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The enclave's EPC quota in frames.
    pub fn epc_quota(&self, eid: EnclaveId) -> Result<usize, OsError> {
        Ok(self.proc(eid)?.quota)
    }

    /// EPC frames the enclave currently occupies.
    pub fn resident_frames(&self, eid: EnclaveId) -> usize {
        self.machine.epc_frames_of(eid)
    }

    /// Ensure at least one frame is available for `eid` without exceeding
    /// its quota, evicting OS-managed pages if necessary.
    pub(crate) fn make_room(&mut self, eid: EnclaveId) -> Result<(), OsError> {
        loop {
            let over_quota = {
                let quota = self.proc(eid)?.quota;
                self.machine.epc_frames_of(eid) >= quota
            };
            let epc_full = self.machine.epc_free_frames() == 0;
            if !over_quota && !epc_full {
                return Ok(());
            }
            // Victim enclave: ourselves when over quota, else whoever has
            // the most evictable pages.
            let victim_eid = if over_quota {
                eid
            } else {
                self.procs
                    .iter()
                    .filter(|(_, p)| !p.eviction.is_empty())
                    .max_by_key(|(e, _)| self.machine.epc_frames_of(**e))
                    .map(|(e, _)| *e)
                    .ok_or(OsError::NoMemory)?
            };
            self.evict_one_os_managed(victim_eid)?;
        }
    }

    /// Evict a single OS-managed page of `eid`, chosen by its policy
    /// (used by quota reclaim and by the hypervisor's balloon).
    ///
    /// Stale queue entries (pages that already left EPC by another path,
    /// e.g. whole-enclave suspension) are skipped and dropped.
    pub fn evict_one_os_managed(&mut self, eid: EnclaveId) -> Result<Vpn, OsError> {
        loop {
            let victim = self.pick_os_victim(eid)?;
            if self.machine.is_resident(eid, victim) {
                self.evict_page_ewb(eid, victim)?;
                return Ok(victim);
            }
        }
    }

    fn pick_os_victim(&mut self, eid: EnclaveId) -> Result<Vpn, OsError> {
        // Victim selection may consult/clear PTE accessed bits (clock).
        let victim = {
            let machine = &mut self.machine;
            let proc = self.procs.get_mut(&eid).ok_or(OsError::NotLoaded(eid))?;
            let mut clear_list = Vec::new();
            let victim = proc.eviction.pick_victim(
                |vpn| {
                    machine
                        .page_table(eid)
                        .ok()
                        .and_then(|pt| pt.get(vpn))
                        .map(|pte| pte.accessed)
                        .unwrap_or(false)
                },
                |vpn| clear_list.push(vpn),
            );
            let flush_needed = !clear_list.is_empty();
            for vpn in clear_list {
                if let Ok(pt) = machine.page_table_mut(eid) {
                    pt.clear_accessed_dirty(vpn);
                }
            }
            if flush_needed {
                // One batched IPI flush for the whole second-chance lap,
                // as real kernels do — not one shootdown per PTE.
                let _ = machine.etrack(eid);
            }
            victim.ok_or(OsError::NoMemory)?
        };
        Ok(victim)
    }

    /// OS-initiated eviction of one OS-managed page at an arbitrary
    /// moment — the flexibility the two-level contract grants the OS for
    /// insensitive pages (§5.2.1).
    pub fn evict_os_page(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), OsError> {
        if !self.proc(eid)?.os_managed.contains(&vpn) {
            return Err(OsError::BadRequest("page is enclave-managed (pinned)"));
        }
        self.evict_page_ewb(eid, vpn)?;
        self.proc_mut(eid)?.eviction.forget(vpn);
        Ok(())
    }

    /// Low-level `EBLOCK`/`ETRACK`/`EWB` eviction of one page.
    pub(crate) fn evict_page_ewb(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), OsError> {
        self.machine.eblock(eid, vpn)?;
        self.machine.etrack(eid)?;
        let sealed = self.machine.ewb(eid, vpn)?;
        self.backing.put_sealed(sealed);
        self.machine.page_table_mut(eid)?.unmap(vpn);
        Ok(())
    }

    /// Low-level `ELDU` + map of one page. A/D bits are preset, as the
    /// Autarky driver contract requires.
    pub(crate) fn fetch_page_eldu(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), OsError> {
        let sealed = self
            .backing
            .take_sealed(eid, vpn)
            .ok_or(OsError::BadRequest("no backing copy"))?;
        let perms = sealed.perms;
        let frame = match self.machine.eldu(eid, &sealed) {
            Ok(frame) => frame,
            Err(e) => {
                // Put the blob back so the page is not lost.
                self.backing.put_sealed(sealed);
                return Err(e.into());
            }
        };
        self.machine.page_table_mut(eid)?.map(
            vpn,
            Pte {
                present: true,
                frame,
                perms,
                accessed: true,
                dirty: true,
            },
        );
        Ok(())
    }

    // ----------------------------------------------------------------
    // Fault entry.
    // ----------------------------------------------------------------

    /// OS page-fault handler entry: log, run the attacker hook, then
    /// resolve benignly (legacy) or bounce to the enclave handler
    /// (Autarky).
    pub fn on_fault(&mut self, ev: FaultEvent) -> Result<FaultDisposition, OsError> {
        debug_assert!(!ev.elided, "elided faults never reach the OS");
        // A delivered fault opens a fresh correlation chain; the Fault
        // observation recorded next becomes the chain's root, and every
        // transition/decision until the handler round trip completes
        // inherits the chain id.
        self.flight_begin_chain();
        self.observe(Observation::Fault {
            eid: ev.eid,
            va: ev.reported_va,
            kind: ev.reported_kind,
        });
        if self.proc(ev.eid)?.suspended {
            return Err(OsError::Suspended(ev.eid));
        }

        // The adversary sees the fault first (it owns the kernel).
        self.run_attacker_on_fault(ev);

        // Benign resolution for legacy enclaves: demand paging on the
        // reported page.
        let self_paging = self.machine.secs(ev.eid)?.attributes.self_paging;
        if !self_paging {
            let vpn = ev.reported_va.vpn();
            self.legacy_resolve(ev.eid, vpn)?;
            // Silent resume: the enclave never observes the fault.
            match self.machine.eresume(ev.eid, ev.tcs) {
                Ok(()) => {
                    self.flight_end_chain();
                    return Ok(FaultDisposition::Resumed);
                }
                Err(SgxError::ResumeBlocked) => unreachable!("legacy TCS never blocks resume"),
                Err(e) => return Err(e.into()),
            }
        }

        // Autarky: ERESUME is blocked; the OS is forced to re-enter the
        // enclave so the trusted handler runs (§5.1.3).
        match self.machine.eresume(ev.eid, ev.tcs) {
            Err(SgxError::ResumeBlocked) => {
                self.machine.eenter(ev.eid, ev.tcs)?;
                Ok(FaultDisposition::HandlerRequired)
            }
            Ok(()) => unreachable!("self-paging fault must set the pending flag"),
            Err(e) => Err(e.into()),
        }
    }

    /// Legacy (vanilla SGX) demand paging: make the reported page
    /// accessible again.
    fn legacy_resolve(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), OsError> {
        if self.machine.is_resident(eid, vpn) {
            // Frame still in EPC: the PTE was non-present (attacker or
            // transient) — restore mapping and bits.
            let pt = self.machine.page_table_mut(eid)?;
            if let Some(pte) = pt.get_mut(vpn) {
                pte.present = true;
                pte.accessed = true;
                pte.dirty = true;
            } else {
                // Mapping removed entirely: rebuild it from the EPCM.
                let frame = self.machine.frame_of(eid, vpn)?;
                let perms = Perms::RW;
                self.machine.page_table_mut(eid)?.map(
                    vpn,
                    Pte {
                        present: true,
                        frame,
                        perms,
                        accessed: true,
                        dirty: true,
                    },
                );
            }
            return Ok(());
        }
        if self.backing.has_sealed(eid, vpn) {
            self.observe(Observation::DemandPaging { eid, vpn });
            self.make_room(eid)?;
            self.fetch_page_eldu(eid, vpn)?;
            let proc = self.proc_mut(eid)?;
            proc.eviction.on_resident(vpn);
            return Ok(());
        }
        Err(OsError::BadRequest(
            "fault on page with no frame and no backing",
        ))
    }

    // ----------------------------------------------------------------
    // Whole-enclave swap (§5.2.1: the OS's last-resort reclamation).
    // ----------------------------------------------------------------

    /// Suspend an enclave and evict *all* of its pages, including
    /// enclave-managed ones — legal because the enclave is not runnable
    /// while suspended.
    pub fn suspend_enclave(&mut self, eid: EnclaveId) -> Result<usize, OsError> {
        self.proc(eid)?;
        let pages: Vec<Vpn> = self
            .machine
            .page_table(eid)?
            .iter()
            .map(|(vpn, _)| vpn)
            .filter(|&vpn| self.machine.is_resident(eid, vpn))
            .collect();
        let count = pages.len();
        for vpn in pages {
            self.evict_page_ewb(eid, vpn)?;
        }
        let proc = self.proc_mut(eid)?;
        proc.suspended = true;
        Ok(count)
    }

    /// Restore every page evicted during suspension and make the enclave
    /// runnable again. The contract requires *all* enclave-managed pages
    /// back in EPC before resumption.
    pub fn resume_enclave(&mut self, eid: EnclaveId) -> Result<usize, OsError> {
        if !self.proc(eid)?.suspended {
            return Err(OsError::BadRequest("enclave not suspended"));
        }
        let pages: Vec<Vpn> = self
            .proc(eid)?
            .os_managed
            .iter()
            .chain(self.proc(eid)?.enclave_managed.iter())
            .copied()
            .filter(|&vpn| self.backing.has_sealed(eid, vpn))
            .collect();
        let count = pages.len();
        for vpn in pages {
            self.make_room(eid)?;
            self.fetch_page_eldu(eid, vpn)?;
            let proc = self.proc_mut(eid)?;
            if proc.os_managed.contains(&vpn) {
                proc.eviction.forget(vpn);
                proc.eviction.on_resident(vpn);
            }
        }
        let proc = self.proc_mut(eid)?;
        proc.suspended = false;
        Ok(count)
    }

    /// Whether the enclave is suspended.
    pub fn is_suspended(&self, eid: EnclaveId) -> bool {
        self.procs.get(&eid).map(|p| p.suspended).unwrap_or(false)
    }

    // ----------------------------------------------------------------
    // Checkpoint/restore support (failover host).
    // ----------------------------------------------------------------

    /// Record one explicitly mounted snapshot attack (stale, forked,
    /// truncated, or counter-rollback restore) in the adversary-visible
    /// observation log. Unlike the probability-driven kinds, these are
    /// staged deliberately by the rollback harness — so they go through
    /// this public hook rather than the per-syscall injector draw, which
    /// keeps the one-RNG-draw-per-syscall schedule untouched.
    pub fn record_snapshot_attack(&mut self, eid: EnclaveId, fault: InjectedFault) {
        self.record_injection(eid, fault);
    }

    /// Adopt the *untrusted* host state of `donor` for enclave `eid`:
    /// process bookkeeping, the entire backing store (sealed pages, raw
    /// blobs, and the snapshot vault), the observation log, the armed
    /// attacker/injector, and the flight recorder.
    ///
    /// This models failover to a fresh machine: the new host's kernel
    /// inherits everything that lives in ordinary host memory or on disk,
    /// while EPC contents and runtime state arrive only through the
    /// sealed-snapshot restore path. The donor is left without the
    /// enclave and must be discarded.
    pub fn adopt_untrusted_state(&mut self, donor: &mut Os, eid: EnclaveId) -> Result<(), OsError> {
        let proc = donor.procs.remove(&eid).ok_or(OsError::NotLoaded(eid))?;
        self.procs.insert(eid, proc);
        self.backing = std::mem::take(&mut donor.backing);
        self.observations = std::mem::take(&mut donor.observations);
        self.attacker = std::mem::replace(&mut donor.attacker, Attacker::None);
        self.exitless = donor.exitless;
        self.injector = donor.injector.take();
        if let Some(flight) = donor.flight.take() {
            donor.machine.set_transition_recording(false);
            self.machine.set_transition_recording(true);
            self.flight = Some(flight);
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Fleet support: per-enclave retire/reinstate on a *shared* host.
    // ----------------------------------------------------------------

    /// Capture one enclave's untrusted host state — process bookkeeping
    /// plus its slice of the backing store (sealed pages, stale copies,
    /// software-sealing blobs) — without disturbing the live kernel.
    ///
    /// Unlike [`Os::adopt_untrusted_state`], which moves a whole host's
    /// worth of state to a fresh machine, this clones exactly one fleet
    /// member's share so a supervisor can later tear that member down
    /// ([`Os::retire_enclave`]) and reinstate it
    /// ([`Os::reinstate_untrusted_state`]) while its neighbors keep
    /// running. Capture it at the same pause point as the sealed runtime
    /// checkpoint so the two stay consistent.
    pub fn capture_untrusted_state(
        &self,
        eid: EnclaveId,
    ) -> Result<UntrustedEnclaveState, OsError> {
        let proc = self.procs.get(&eid).ok_or(OsError::NotLoaded(eid))?;
        let (sealed, stale) = self.backing.clone_enclave_sealed(eid);
        let blobs = self.backing.clone_enclave_blobs(eid);
        Ok(UntrustedEnclaveState {
            eid,
            proc: proc.clone(),
            sealed,
            stale,
            blobs,
        })
    }

    /// Reinstate a captured bundle for an enclave that has been retired
    /// (or crashed): process bookkeeping and backing-store slice return
    /// exactly as captured. EPC contents and runtime state do NOT come
    /// back this way — they arrive only through the sealed-snapshot
    /// restore path, which verifies freshness against the monotonic
    /// counter.
    pub fn reinstate_untrusted_state(
        &mut self,
        state: &UntrustedEnclaveState,
    ) -> Result<(), OsError> {
        if self.procs.contains_key(&state.eid) {
            return Err(OsError::BadRequest("enclave still loaded; retire it first"));
        }
        self.procs.insert(state.eid, state.proc.clone());
        self.backing
            .reinstate_enclave_sealed(state.sealed.clone(), state.stale.clone());
        for (key, data) in &state.blobs {
            self.backing.put_blob(*key, data.clone());
        }
        Ok(())
    }

    /// Tear one fleet member down completely: destroy its machine-side
    /// enclave (freeing every EPC frame for the survivors), drop its
    /// process bookkeeping, and purge its backing-store residue. The
    /// observation log and snapshot vault are untouched — both are
    /// adversary-visible history, not per-enclave state.
    pub fn retire_enclave(&mut self, eid: EnclaveId) -> Result<(), OsError> {
        self.procs.remove(&eid).ok_or(OsError::NotLoaded(eid))?;
        self.machine.destroy_enclave(eid)?;
        self.backing.purge_enclave(eid);
        Ok(())
    }
}

/// Opaque per-enclave bundle captured by [`Os::capture_untrusted_state`].
///
/// Everything inside is untrusted host state (the adversary can read all
/// of it); holding it in the supervisor merely models an honest host
/// keeping the enclave's swap residue around for a restart.
#[derive(Clone)]
pub struct UntrustedEnclaveState {
    eid: EnclaveId,
    proc: Proc,
    sealed: Vec<autarky_sgx_sim::SealedPage>,
    stale: Vec<autarky_sgx_sim::SealedPage>,
    blobs: Vec<(u64, Vec<u8>)>,
}

impl UntrustedEnclaveState {
    /// Enclave this bundle belongs to.
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }
}
