//! Enclave images: what the OS loader maps into a fresh enclave.
//!
//! An image describes the initial (measured) layout — TCS pages, code,
//! data, stack — plus a reserved heap region that the runtime allocates
//! lazily with `EAUG` (SGXv2 dynamic memory). This mirrors how Graphene-SGX
//! lays out an unmodified binary plus the libOS itself.

use autarky_sgx_sim::{Va, Vpn, PAGE_SIZE};

/// Default enclave base linear address.
pub const DEFAULT_BASE: Va = Va(0x1000_0000);

/// One library within the enclave's code region (paper §5.2.3, "Clusters
/// for code pages": the loader builds one cluster per library; a library's
/// cluster also covers the libraries it calls into, so dependents share
/// pages and fetch together).
#[derive(Debug, Clone)]
pub struct Library {
    /// Library name (e.g. "libc.so").
    pub name: String,
    /// Code pages this library occupies.
    pub pages: usize,
    /// Indices (into the image's library list) of libraries this one
    /// calls into.
    pub uses: Vec<usize>,
}

/// Description of an enclave to load.
#[derive(Debug, Clone)]
pub struct EnclaveImage {
    /// Human-readable name (debugging, not measured).
    pub name: String,
    /// Whether the enclave opts in to Autarky self-paging.
    pub self_paging: bool,
    /// Number of TCS pages (hardware threads that may enter).
    pub tcs_count: usize,
    /// Code pages (mapped read-execute, contents measured).
    pub code_pages: usize,
    /// Initialized data pages (mapped read-write, contents measured).
    pub data_pages: usize,
    /// Stack pages (read-write, zeroed).
    pub stack_pages: usize,
    /// Reserved heap pages, allocated on demand by the runtime.
    pub heap_pages: usize,
    /// Base linear address.
    pub base: Va,
    /// Code-region layout by library. Empty means one anonymous library
    /// covering all code pages. When non-empty, the page counts must sum
    /// to at most `code_pages`.
    pub libraries: Vec<Library>,
}

impl EnclaveImage {
    /// A small default image; callers override the fields they care about.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            self_paging: true,
            tcs_count: 1,
            code_pages: 16,
            data_pages: 16,
            stack_pages: 8,
            heap_pages: 256,
            base: DEFAULT_BASE,
            libraries: Vec::new(),
        }
    }

    /// Append a library occupying `pages` code pages, calling into the
    /// libraries at `uses` (indices into the current list). Returns the
    /// new library's index.
    pub fn add_library(&mut self, name: &str, pages: usize, uses: &[usize]) -> usize {
        self.libraries.push(Library {
            name: name.to_owned(),
            pages,
            uses: uses.to_vec(),
        });
        self.libraries.len() - 1
    }

    /// The code pages of library `index` (laid out in declaration order
    /// from the start of the code region).
    pub fn library_pages(&self, index: usize) -> Vec<Vpn> {
        let mut start = self.code_start().0;
        for lib in &self.libraries[..index] {
            start += lib.pages as u64;
        }
        (start..start + self.libraries[index].pages as u64)
            .map(Vpn)
            .collect()
    }

    /// Total pages in the enclave's linear range.
    pub fn total_pages(&self) -> usize {
        self.tcs_count + self.code_pages + self.data_pages + self.stack_pages + self.heap_pages
    }

    /// Size of the enclave region in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.total_pages() * PAGE_SIZE) as u64
    }

    fn page_at(&self, index: usize) -> Vpn {
        Vpn(self.base.vpn().0 + index as u64)
    }

    /// First TCS page.
    pub fn tcs_start(&self) -> Vpn {
        self.page_at(0)
    }

    /// First code page.
    pub fn code_start(&self) -> Vpn {
        self.page_at(self.tcs_count)
    }

    /// First data page.
    pub fn data_start(&self) -> Vpn {
        self.page_at(self.tcs_count + self.code_pages)
    }

    /// First stack page.
    pub fn stack_start(&self) -> Vpn {
        self.page_at(self.tcs_count + self.code_pages + self.data_pages)
    }

    /// First heap page (the lazily-allocated region).
    pub fn heap_start(&self) -> Vpn {
        self.page_at(self.tcs_count + self.code_pages + self.data_pages + self.stack_pages)
    }

    /// One-past-the-last page.
    pub fn end(&self) -> Vpn {
        self.page_at(self.total_pages())
    }

    /// All code-page numbers.
    pub fn code_range(&self) -> impl Iterator<Item = Vpn> {
        let start = self.code_start().0;
        (start..start + self.code_pages as u64).map(Vpn)
    }

    /// All heap-page numbers.
    pub fn heap_range(&self) -> impl Iterator<Item = Vpn> {
        let start = self.heap_start().0;
        (start..start + self.heap_pages as u64).map(Vpn)
    }

    /// Deterministic synthetic contents for measured page `vpn` (stands in
    /// for real code/data so measurements are content-sensitive).
    pub fn page_contents(&self, vpn: Vpn) -> [u8; PAGE_SIZE] {
        let mut page = [0u8; PAGE_SIZE];
        let seed = vpn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (i, chunk) in page.chunks_mut(8).enumerate() {
            let word = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_ordered() {
        let img = EnclaveImage::named("t");
        assert_eq!(img.tcs_start(), img.base.vpn());
        assert!(img.code_start().0 > img.tcs_start().0);
        assert!(img.data_start().0 > img.code_start().0);
        assert!(img.stack_start().0 > img.data_start().0);
        assert!(img.heap_start().0 > img.stack_start().0);
        assert_eq!(img.end().0 - img.base.vpn().0, img.total_pages() as u64);
    }

    #[test]
    fn ranges_have_declared_sizes() {
        let img = EnclaveImage::named("t");
        assert_eq!(img.code_range().count(), img.code_pages);
        assert_eq!(img.heap_range().count(), img.heap_pages);
        assert_eq!(img.size_bytes(), (img.total_pages() * PAGE_SIZE) as u64);
    }

    #[test]
    fn libraries_partition_the_code_region() {
        let mut img = EnclaveImage::named("libs");
        img.code_pages = 10;
        let libc = img.add_library("libc", 4, &[]);
        let libjpeg = img.add_library("libjpeg", 3, &[libc]);
        let app = img.add_library("app", 3, &[libc, libjpeg]);
        assert_eq!(img.library_pages(libc).len(), 4);
        assert_eq!(img.library_pages(libjpeg)[0].0, img.code_start().0 + 4);
        assert_eq!(img.library_pages(app)[0].0, img.code_start().0 + 7);
        // Disjoint coverage.
        let all: Vec<_> = (0..3).flat_map(|i| img.library_pages(i)).collect();
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn contents_differ_per_page() {
        let img = EnclaveImage::named("t");
        assert_ne!(
            img.page_contents(img.code_start()).to_vec(),
            img.page_contents(img.data_start()).to_vec()
        );
    }
}
