//! The untrusted host for the Autarky simulator: OS kernel, SGX driver,
//! and the controlled-channel adversary.
//!
//! In the paper's threat model (§3) the operating system *is* the
//! attacker: it manages the enclave's address space, observes its page
//! faults, and controls PTE bits. This crate plays both roles faithfully:
//!
//! * [`kernel`] — enclave loading, EPC accounting and quotas, demand
//!   paging of OS-managed pages (clock eviction for legacy enclaves, FIFO
//!   for self-paging ones), the page-fault entry point, and whole-enclave
//!   suspend/swap;
//! * [`driver`] — the Autarky driver syscalls (`ay_set_enclave_managed`,
//!   `ay_set_os_managed`, `ay_fetch_pages`, `ay_evict_pages`, plus the
//!   SGXv2 allocation/trim calls and raw untrusted-memory access);
//! * [`attack`] — the published controlled-channel attacks (page-fault
//!   tracing, A/D-bit monitoring) as OS-resident machinery;
//! * [`backing`] — untrusted swap storage;
//! * [`fault`] — deterministic, seeded hostile-OS fault injection
//!   threaded through every driver entry point;
//! * [`flight`] — the causal flight recorder: a correlation-chained
//!   event log spanning hardware transitions, kernel observations, and
//!   trusted-runtime decisions, with post-mortem reconstruction;
//! * [`image`] — enclave image descriptions for the loader;
//! * [`eviction`] — clock and FIFO victim selection.
//!
//! Every adversary-visible event is recorded in the
//! [`kernel::Observation`] stream, which is all the attack oracles are
//! allowed to consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The simulated OS must stay runnable under every injected fault
// schedule: fallible paths return `OsError`, they do not abort.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attack;
pub mod backing;
pub mod driver;
pub mod eviction;
pub mod fault;
pub mod flight;
pub mod hypervisor;
pub mod image;
pub mod kernel;
pub mod wire;

pub use attack::{AdMonitor, Attacker, FaultTracer, TraceMode};
pub use backing::BackingStore;
pub use eviction::{EvictionPolicy, EvictionState};
pub use fault::{FaultInjector, FaultKind, FaultPlan, InjectedFault, SyscallKind};
pub use flight::{FlightEvent, FlightRecord, FlightRecorder, CORR_NONE};
pub use hypervisor::{BalloonOutcome, Hypervisor, VmId};
pub use image::EnclaveImage;
pub use kernel::{FaultDisposition, Observation, Os, OsError, UntrustedEnclaveState};
pub use wire::WireError;
