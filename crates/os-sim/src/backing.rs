//! Untrusted backing storage for evicted enclave pages.
//!
//! Everything stored here is adversary-visible: sealed `EWB` blobs, the
//! runtime's software-sealed pages (SGXv2 path), and ORAM buckets all live
//! in ordinary host memory. Confidentiality comes only from the sealing
//! done before the data arrives here; *access patterns* to this store are
//! exactly what the demand-paging side channel leaks.

use std::collections::HashMap;

use autarky_sgx_sim::{EnclaveId, SealedPage, Vpn};

/// Untrusted host memory holding swapped-out enclave state.
#[derive(Default)]
pub struct BackingStore {
    sealed: HashMap<(EnclaveId, Vpn), SealedPage>,
    /// Superseded sealed blobs. An honest OS would discard these; a
    /// hostile one (the fault injector) keeps them around to mount
    /// replay attacks.
    stale: HashMap<(EnclaveId, Vpn), SealedPage>,
    blobs: HashMap<u64, Vec<u8>>,
    /// Every sealed enclave checkpoint ever handed to the OS, in capture
    /// order. An honest OS would keep only the latest; a hostile one
    /// keeps the full history so it can offer a stale or duplicate blob
    /// at restore time (the rollback attack the monotonic counter must
    /// defeat).
    snapshots: Vec<Vec<u8>>,
}

impl BackingStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an `EWB` blob for `(eid, vpn)`, replacing any previous one.
    /// The replaced blob, if any, is retained as a stale copy.
    pub fn put_sealed(&mut self, sealed: SealedPage) {
        let key = (sealed.eid, sealed.vpn);
        if let Some(old) = self.sealed.insert(key, sealed) {
            self.stale.insert(key, old);
        }
    }

    /// Look up the current blob for a page.
    pub fn get_sealed(&self, eid: EnclaveId, vpn: Vpn) -> Option<&SealedPage> {
        self.sealed.get(&(eid, vpn))
    }

    /// Remove a blob (after a successful `ELDU`).
    pub fn take_sealed(&mut self, eid: EnclaveId, vpn: Vpn) -> Option<SealedPage> {
        self.sealed.remove(&(eid, vpn))
    }

    /// Whether a blob exists for the page.
    pub fn has_sealed(&self, eid: EnclaveId, vpn: Vpn) -> bool {
        self.sealed.contains_key(&(eid, vpn))
    }

    /// Number of sealed pages held.
    pub fn sealed_count(&self) -> usize {
        self.sealed.len()
    }

    /// Whether a superseded (stale) blob is retained for the page.
    pub fn has_stale(&self, eid: EnclaveId, vpn: Vpn) -> bool {
        self.stale.contains_key(&(eid, vpn))
    }

    /// Hostile tampering: flip one byte of the current sealed blob for
    /// the page. Returns whether a blob was present to corrupt.
    pub fn corrupt_sealed(&mut self, eid: EnclaveId, vpn: Vpn) -> bool {
        match self.sealed.get_mut(&(eid, vpn)) {
            Some(blob) => {
                match blob.ciphertext.first_mut() {
                    Some(byte) => *byte ^= 0x01,
                    None => blob.tag[0] ^= 0x01,
                }
                true
            }
            None => false,
        }
    }

    /// Hostile replay: replace the current sealed blob with the retained
    /// stale copy. Returns whether a stale copy existed to replay.
    pub fn replay_sealed(&mut self, eid: EnclaveId, vpn: Vpn) -> bool {
        match self.stale.remove(&(eid, vpn)) {
            Some(old) => {
                self.sealed.insert((eid, vpn), old);
                true
            }
            None => false,
        }
    }

    /// Store a sealed enclave checkpoint, returning its index in the
    /// history. All previous checkpoints are retained (adversary
    /// semantics — see the field docs).
    pub fn put_snapshot(&mut self, blob: Vec<u8>) -> usize {
        self.snapshots.push(blob);
        self.snapshots.len() - 1
    }

    /// A checkpoint by history index (stale indices are the rollback
    /// attack surface).
    pub fn snapshot(&self, index: usize) -> Option<&[u8]> {
        self.snapshots.get(index).map(|b| b.as_slice())
    }

    /// The most recently stored checkpoint.
    pub fn latest_snapshot(&self) -> Option<&[u8]> {
        self.snapshots.last().map(|b| b.as_slice())
    }

    /// Number of checkpoints retained.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Hostile tampering: cut the stored checkpoint at `index` down to
    /// `len` bytes. Returns whether a blob was present to truncate.
    pub fn truncate_snapshot(&mut self, index: usize, len: usize) -> bool {
        match self.snapshots.get_mut(index) {
            Some(blob) => {
                blob.truncate(len);
                true
            }
            None => false,
        }
    }

    /// Clone every current and stale sealed blob owned by one enclave
    /// (fleet checkpointing: the supervisor bundles this with the sealed
    /// runtime checkpoint so a snapshot-based restart can reinstate the
    /// exact untrusted backing the enclave will demand-fault against).
    pub fn clone_enclave_sealed(&self, eid: EnclaveId) -> (Vec<SealedPage>, Vec<SealedPage>) {
        let collect = |map: &HashMap<(EnclaveId, Vpn), SealedPage>| {
            let mut pages: Vec<SealedPage> = map
                .iter()
                .filter(|((e, _), _)| *e == eid)
                .map(|(_, p)| p.clone())
                .collect();
            pages.sort_by_key(|p| p.vpn.0);
            pages
        };
        (collect(&self.sealed), collect(&self.stale))
    }

    /// Clone every raw blob in one enclave's software-sealing key range
    /// (`eid << 40 | vpn`). Telemetry exports (bit 63) and snapshot
    /// transport chunks (bit 62) fall outside every enclave's range and
    /// are never captured here.
    pub fn clone_enclave_blobs(&self, eid: EnclaveId) -> Vec<(u64, Vec<u8>)> {
        let mut blobs: Vec<(u64, Vec<u8>)> = self
            .blobs
            .iter()
            .filter(|(key, _)| *key >> 40 == u64::from(eid.0))
            .map(|(key, data)| (*key, data.clone()))
            .collect();
        blobs.sort_by_key(|(key, _)| *key);
        blobs
    }

    /// Drop every sealed page, stale copy, and software-sealing blob
    /// owned by one enclave (fleet retirement: the supervisor tears an
    /// enclave's untrusted residue down before reinstating a checkpoint
    /// or evicting the member for good). Snapshot history is kept — it
    /// is the adversary's rollback surface, not per-enclave state.
    pub fn purge_enclave(&mut self, eid: EnclaveId) {
        self.sealed.retain(|(e, _), _| *e != eid);
        self.stale.retain(|(e, _), _| *e != eid);
        self.blobs.retain(|key, _| *key >> 40 != u64::from(eid.0));
    }

    /// Reinstate a captured set of sealed pages (current and stale) for
    /// an enclave being restarted from a checkpoint.
    pub fn reinstate_enclave_sealed(&mut self, current: Vec<SealedPage>, stale: Vec<SealedPage>) {
        for page in current {
            self.sealed.insert((page.eid, page.vpn), page);
        }
        for page in stale {
            self.stale.insert((page.eid, page.vpn), page);
        }
    }

    /// Raw untrusted buffer write (runtime software-sealing path, ORAM
    /// buckets). Keys are chosen by the writer.
    pub fn put_blob(&mut self, key: u64, data: Vec<u8>) {
        self.blobs.insert(key, data);
    }

    /// Raw untrusted buffer read.
    pub fn get_blob(&self, key: u64) -> Option<&[u8]> {
        self.blobs.get(&key).map(|v| v.as_slice())
    }

    /// Remove a raw buffer.
    pub fn remove_blob(&mut self, key: u64) -> Option<Vec<u8>> {
        self.blobs.remove(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_sgx_sim::Perms;

    fn sealed(eid: u32, vpn: u64) -> SealedPage {
        SealedPage {
            eid: EnclaveId(eid),
            vpn: Vpn(vpn),
            version: 1,
            perms: Perms::RW,
            ciphertext: vec![0; 16],
            tag: [0; 16],
        }
    }

    #[test]
    fn sealed_roundtrip() {
        let mut store = BackingStore::new();
        store.put_sealed(sealed(1, 5));
        assert!(store.has_sealed(EnclaveId(1), Vpn(5)));
        assert!(!store.has_sealed(EnclaveId(1), Vpn(6)));
        assert_eq!(store.sealed_count(), 1);
        let blob = store.take_sealed(EnclaveId(1), Vpn(5)).expect("present");
        assert_eq!(blob.vpn, Vpn(5));
        assert!(!store.has_sealed(EnclaveId(1), Vpn(5)));
    }

    #[test]
    fn newer_blob_replaces_older() {
        let mut store = BackingStore::new();
        store.put_sealed(sealed(1, 5));
        let mut newer = sealed(1, 5);
        newer.version = 2;
        store.put_sealed(newer);
        assert_eq!(
            store
                .get_sealed(EnclaveId(1), Vpn(5))
                .expect("blob")
                .version,
            2
        );
        assert_eq!(store.sealed_count(), 1);
    }

    #[test]
    fn raw_blobs() {
        let mut store = BackingStore::new();
        store.put_blob(42, vec![1, 2, 3]);
        assert_eq!(store.get_blob(42), Some(&[1u8, 2, 3][..]));
        assert_eq!(store.remove_blob(42), Some(vec![1, 2, 3]));
        assert!(store.get_blob(42).is_none());
    }
}
