//! Causal flight recorder: one event log spanning both trust domains.
//!
//! The paper's security argument (§5, §6) is about *sequences* of
//! enclave↔OS interactions — an AEX, the blocked `ERESUME`, the re-entry
//! through the trusted handler, the batched driver call it issues, the
//! injected fault that perturbed it. Telemetry aggregates (per-epoch
//! counters) and the adversary's flat observation stream each see only
//! one endpoint of those interactions. The flight recorder stitches them
//! together:
//!
//! * **untrusted-side events** — enclave transitions drained from the
//!   `sgx-sim` machine ([`FlightEvent::Transition`]) and every kernel
//!   observation ([`FlightEvent::Kernel`]), injected faults included;
//! * **trusted-side events** — fault-handler entry, paging-policy
//!   decisions, retry/backoff, misbehavior-budget debits, degradation
//!   steps, `AttackDetected` verdicts, and telemetry span closures
//!   emitted by the runtime.
//!
//! Every record carries a **correlation id** (`corr`): the kernel fault
//! path opens a chain before it logs the provoking observation, the
//! runtime closes it once the handler round trip completes, and every
//! event recorded in between — hardware transitions, syscalls, decisions,
//! span closures — inherits the chain id. Reconstruction
//! ([`chain_root`], [`render_timeline`], [`causal_root_of_attack`]) then
//! resolves each runtime decision back to the kernel observation that
//! provoked it.
//!
//! Recording is **off by default** and charged when armed: each record
//! debits [`CostTag::Recorder`] cycles on the machine clock, so the
//! recorder's own observer effect is measured instead of silently
//! perturbing the timeline. Because record and replay arm identically,
//! the charge is deterministic and bit-identical replays still hold.

use std::collections::VecDeque;

use autarky_sgx_sim::machine::TransitionKind;
use autarky_sgx_sim::{CostTag, EnclaveId, Vpn};

use crate::kernel::Observation;

/// Simulated cycles charged (as [`CostTag::Recorder`]) per recorded
/// event: a store to a preallocated ring plus a sequence-number bump.
pub const RECORD_COST_CYCLES: u64 = 25;

/// Correlation id meaning "not part of any chain".
pub const CORR_NONE: u64 = 0;

/// One event in the unified log.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// Hardware enclave transition (drained from the machine's log).
    Transition {
        /// What happened (`EENTER`, AEX, blocked resume, ...).
        kind: TransitionKind,
        /// Enclave involved.
        eid: EnclaveId,
        /// TCS slot involved.
        tcs: usize,
    },
    /// An adversary-visible kernel observation, verbatim (faults, driver
    /// syscalls, injected faults, A/D-bit polls, ...).
    Kernel(Observation),
    /// The trusted fault handler took control for this (true) faulting
    /// page — the unmasked address only the enclave knows.
    HandlerEntry {
        /// Enclave whose handler ran.
        eid: EnclaveId,
        /// True faulting page (pre-masking).
        vpn: Vpn,
    },
    /// Policy decision: fetch exactly the faulting page (no cluster).
    DecisionForward {
        /// Page being fetched.
        vpn: Vpn,
    },
    /// Policy decision: fetch the faulting page's whole cluster / ORAM
    /// fetch set (the anonymity set widening of §5.2.2).
    DecisionClusterFetch {
        /// Faulting page that triggered the fetch.
        vpn: Vpn,
        /// Full fetch set handed to the driver.
        pages: Vec<Vpn>,
    },
    /// Policy decision: evict these pages to make room.
    DecisionEvict {
        /// Victim set handed to the driver.
        pages: Vec<Vpn>,
    },
    /// A transient driver failure triggered a retry with backoff.
    Retry {
        /// 1-based retry attempt.
        attempt: u64,
        /// Backoff charged before the retry, in cycles.
        backoff_cycles: u64,
    },
    /// A misbehavior-budget debit (suspected OS contract violation).
    Misbehavior {
        /// Page implicated in the violation.
        vpn: Vpn,
        /// Debits consumed so far (including this one).
        used: u64,
        /// Total budget before termination.
        budget: u64,
        /// Why the runtime grew suspicious.
        why: String,
    },
    /// Self-defense degradation: the runtime shrank its paging appetite.
    Degrade {
        /// Budget (pages) before the step.
        from: u64,
        /// Budget (pages) after the step.
        to: u64,
    },
    /// The runtime concluded it is under attack and terminated.
    AttackDetected {
        /// Page implicated in the verdict.
        vpn: Vpn,
        /// The verdict's reason string.
        why: String,
    },
    /// The fault-rate limiter tripped and killed the enclave.
    RateLimitKill,
    /// A sealed checkpoint of the enclave was captured (the platform
    /// monotonic counter was bumped to this value as part of sealing).
    SnapshotCapture {
        /// Counter value sealed into the snapshot.
        counter: u64,
    },
    /// A sealed checkpoint was presented for restore. Only recorded when
    /// the restore *fails* (freshness or integrity violation): a
    /// successful restore is architecturally invisible — the machine was
    /// simply off — and recording it would break byte-identical
    /// continuation.
    SnapshotRestore {
        /// Counter value sealed inside the presented snapshot.
        counter: u64,
    },
    /// A fleet-supervisor decision about one enclave of a rotation
    /// (escalation-ladder step, admission-control shed, degradation
    /// order). Recorded in the same causal log as runtime decisions so a
    /// forensics pass can name *why* an enclave was restarted, but it is
    /// NOT a trusted-runtime decision: the supervisor lives in the
    /// untrusted host, so `is_runtime_decision()` excludes it and the
    /// decisions-resolved forensics gate is unaffected.
    Supervisor {
        /// Fleet member the decision is about.
        eid: EnclaveId,
        /// Ladder step or control action, as a single lowercase token
        /// (e.g. `retry`, `quarantine`, `restart`, `evict`, `shed`,
        /// `shrink`).
        action: String,
        /// Free-text reason (health verdict, budget numbers, ...).
        why: String,
    },
    /// A telemetry span closed (span↔event linkage: the span kind plus
    /// its exact cycle bracket, so a timeline row maps onto the telemetry
    /// aggregate that timed it).
    SpanClose {
        /// Span-kind name (`SpanKind::name()`), e.g. `fault_handler`.
        kind: String,
        /// Simulated-cycle timestamp at span entry.
        start_cycles: u64,
        /// Simulated-cycle timestamp at span exit.
        end_cycles: u64,
    },
    /// An online detector in the watchtower fired. Like [`Supervisor`],
    /// this is an *untrusted host-side* event — the watchtower observes
    /// only adversary-visible signals (fault counters, latencies, EPC
    /// occupancy) — so `is_runtime_decision()` excludes it. It is a
    /// first-class verdict for causal forensics, though:
    /// [`causal_root_of_attack`] resolves the latest alert to the
    /// injected fault that provoked it, exactly as it does for the
    /// runtime's own `AttackDetected`.
    ///
    /// [`Supervisor`]: FlightEvent::Supervisor
    WatchAlert {
        /// Fleet member the detector fired for.
        eid: EnclaveId,
        /// Detector name, a single lowercase token (e.g. `fault_cusum`,
        /// `entropy_cusum`, `slo_burn`, `epc_skew`).
        detector: String,
        /// Index of the epoch window that tripped the detector.
        window: u64,
        /// Detector score at firing, in milli-units (integer so alert
        /// artifacts stay byte-stable across platforms).
        score_milli: u64,
        /// Most-recently faulted page in the tripping window, when the
        /// detector tracks fault addresses (the alert's best guess at
        /// the probe target).
        vpn: Option<Vpn>,
        /// Human-readable firing reason (thresholds and observed value).
        why: String,
    },
}

impl FlightEvent {
    /// Trust domain the event originates from: `"hw"` (architectural
    /// transitions), `"os"` (kernel observations), `"fleet"` (untrusted
    /// supervisor decisions), `"watch"` (untrusted streaming-detector
    /// alerts), or `"enclave"` (trusted-runtime decisions).
    pub fn domain(&self) -> &'static str {
        match self {
            FlightEvent::Transition { .. } => "hw",
            FlightEvent::Kernel(_) => "os",
            FlightEvent::Supervisor { .. } => "fleet",
            FlightEvent::WatchAlert { .. } => "watch",
            _ => "enclave",
        }
    }

    /// Whether this is a trusted-runtime decision (the events the
    /// forensics timeline must resolve to a provoking observation).
    pub fn is_runtime_decision(&self) -> bool {
        matches!(
            self,
            FlightEvent::DecisionForward { .. }
                | FlightEvent::DecisionClusterFetch { .. }
                | FlightEvent::DecisionEvict { .. }
                | FlightEvent::Retry { .. }
                | FlightEvent::Misbehavior { .. }
                | FlightEvent::Degrade { .. }
                | FlightEvent::AttackDetected { .. }
                | FlightEvent::RateLimitKill
        )
    }

    /// One-line human description (forensics timeline cell).
    pub fn describe(&self) -> String {
        match self {
            FlightEvent::Transition { kind, eid, tcs } => {
                format!("{} eid={} tcs={}", kind.name(), eid.0, tcs)
            }
            FlightEvent::Kernel(obs) => describe_observation(obs),
            FlightEvent::HandlerEntry { eid, vpn } => {
                format!("handler entry eid={} true-vpn={}", eid.0, vpn.0)
            }
            FlightEvent::DecisionForward { vpn } => {
                format!("decision: forward-fetch vpn={}", vpn.0)
            }
            FlightEvent::DecisionClusterFetch { vpn, pages } => format!(
                "decision: cluster-fetch vpn={} set={{{} pages}}",
                vpn.0,
                pages.len()
            ),
            FlightEvent::DecisionEvict { pages } => {
                format!("decision: evict {{{} pages}}", pages.len())
            }
            FlightEvent::Retry {
                attempt,
                backoff_cycles,
            } => format!("retry attempt={attempt} backoff={backoff_cycles}cy"),
            FlightEvent::Misbehavior {
                vpn,
                used,
                budget,
                why,
            } => format!("misbehavior debit {used}/{budget} vpn={} ({why})", vpn.0),
            FlightEvent::Degrade { from, to } => {
                format!("degrade paging budget {from} -> {to} pages")
            }
            FlightEvent::AttackDetected { vpn, why } => {
                format!("ATTACK DETECTED vpn={} ({why})", vpn.0)
            }
            FlightEvent::RateLimitKill => "rate limiter tripped: enclave killed".to_owned(),
            FlightEvent::SnapshotCapture { counter } => {
                format!("snapshot captured (counter bumped to {counter})")
            }
            FlightEvent::SnapshotRestore { counter } => {
                format!("snapshot restore attempted (sealed counter {counter})")
            }
            FlightEvent::Supervisor { eid, action, why } => {
                format!("supervisor: {action} eid={} ({why})", eid.0)
            }
            FlightEvent::SpanClose {
                kind,
                start_cycles,
                end_cycles,
            } => format!(
                "span {kind} closed ({} cycles)",
                end_cycles.saturating_sub(*start_cycles)
            ),
            FlightEvent::WatchAlert {
                eid,
                detector,
                window,
                score_milli,
                vpn,
                why,
            } => {
                let page = match vpn {
                    Some(v) => format!(" vpn={}", v.0),
                    None => String::new(),
                };
                format!(
                    "WATCH ALERT {detector} eid={} window={window} score={score_milli}m{page} ({why})",
                    eid.0
                )
            }
        }
    }
}

fn describe_observation(obs: &Observation) -> String {
    match obs {
        Observation::Fault { eid, va, kind } => {
            format!("kernel: fault eid={} va={:#x} kind={kind:?}", eid.0, va.0)
        }
        Observation::FetchSyscall { eid, pages } => {
            format!("kernel: ay_fetch eid={} {{{} pages}}", eid.0, pages.len())
        }
        Observation::EvictSyscall { eid, pages } => {
            format!("kernel: ay_evict eid={} {{{} pages}}", eid.0, pages.len())
        }
        Observation::AllocSyscall { eid, pages } => {
            format!("kernel: ay_alloc eid={} {{{} pages}}", eid.0, pages.len())
        }
        Observation::SetEnclaveManaged { eid, pages } => format!(
            "kernel: set-enclave-managed eid={} {{{} pages}}",
            eid.0,
            pages.len()
        ),
        Observation::SetOsManaged { eid, pages } => format!(
            "kernel: set-os-managed eid={} {{{} pages}}",
            eid.0,
            pages.len()
        ),
        Observation::UntrustedAccess { key, write } => format!(
            "kernel: untrusted {} key={key}",
            if *write { "write" } else { "read" }
        ),
        Observation::DemandPaging { eid, vpn } => {
            format!("kernel: demand-paging eid={} vpn={}", eid.0, vpn.0)
        }
        Observation::AdBitObserved { eid, vpn, dirty } => format!(
            "kernel: a/d-bit poll eid={} vpn={} dirty={dirty}",
            eid.0, vpn.0
        ),
        Observation::FaultInjected { eid, fault } => {
            format!("kernel: INJECTED FAULT eid={} {fault:?}", eid.0)
        }
    }
}

/// One record in the causally-ordered log.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number (never reused, survives ring overflow).
    pub seq: u64,
    /// Simulated-cycle timestamp when the event was recorded.
    pub cycles: u64,
    /// Correlation chain id ([`CORR_NONE`] when outside any chain).
    pub corr: u64,
    /// The event itself.
    pub event: FlightEvent,
}

/// Bounded, overwrite-oldest event ring plus the correlation-chain state.
///
/// Unlike the telemetry span ring (which keeps the *first* records so
/// fixed-size exports stay deterministic), a flight recorder exists for
/// post-mortems: the *latest* events before a crash or verdict matter,
/// so on overflow the oldest record is dropped and counted.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    records: VecDeque<FlightRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    current_corr: u64,
    next_corr: u64,
}

impl FlightRecorder {
    /// Create a recorder retaining up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            records: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
            current_corr: CORR_NONE,
            next_corr: 1,
        }
    }

    /// Append an event at simulated time `cycles`, stamping it with the
    /// next sequence number and the active correlation chain.
    pub fn record(&mut self, cycles: u64, event: FlightEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(FlightRecord {
            seq: self.next_seq,
            cycles,
            corr: self.current_corr,
            event,
        });
        self.next_seq += 1;
    }

    /// Open a new correlation chain (replacing any active one) and return
    /// its id. The caller records the provoking event *after* this, so
    /// the chain root is the provocation itself.
    pub fn begin_chain(&mut self) -> u64 {
        self.current_corr = self.next_corr;
        self.next_corr += 1;
        self.current_corr
    }

    /// Close the active chain; subsequent records are uncorrelated.
    pub fn end_chain(&mut self) {
        self.current_corr = CORR_NONE;
    }

    /// Whether a chain is currently open.
    pub fn chain_active(&self) -> bool {
        self.current_corr != CORR_NONE
    }

    /// The active chain id ([`CORR_NONE`] when idle).
    pub fn current_corr(&self) -> u64 {
        self.current_corr
    }

    /// Retained records, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.records.iter().cloned().collect()
    }

    /// Retained records with sequence numbers strictly greater than
    /// `seq`, oldest first — the incremental-drain cursor for streaming
    /// consumers (the watchtower) that must not re-clone the whole ring
    /// every poll. A consumer that falls behind the ring sees the gap
    /// via [`FlightRecorder::dropped`], not silently.
    pub fn records_after(&self, seq: u64) -> Vec<FlightRecord> {
        self.records
            .iter()
            .skip_while(|r| r.seq <= seq)
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records lost to ring overflow (oldest-dropped).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cycle cost to charge per recorded event.
    pub fn record_cost(&self) -> (CostTag, u64) {
        (CostTag::Recorder, RECORD_COST_CYCLES)
    }
}

// ----------------------------------------------------------------
// Reconstruction: chains, causal roots, and the forensics timeline.
// ----------------------------------------------------------------

/// All records belonging to chain `corr`, in log order.
pub fn chain_records(records: &[FlightRecord], corr: u64) -> Vec<&FlightRecord> {
    if corr == CORR_NONE {
        return Vec::new();
    }
    records.iter().filter(|r| r.corr == corr).collect()
}

/// The chain's root: the first *kernel observation* recorded under
/// `corr` (the provocation), falling back to the chain's first record
/// when the chain was opened by a direct runtime entry point with no
/// kernel provocation.
pub fn chain_root(records: &[FlightRecord], corr: u64) -> Option<&FlightRecord> {
    let chain = chain_records(records, corr);
    chain
        .iter()
        .find(|r| matches!(r.event, FlightEvent::Kernel(_)))
        .copied()
        .or(chain.first().copied())
}

fn injected_vpn(fault: &crate::fault::InjectedFault) -> Option<Vpn> {
    use crate::fault::InjectedFault;
    match fault {
        InjectedFault::SpuriousEvict { vpn }
        | InjectedFault::CorruptBacking { vpn }
        | InjectedFault::ReplayBacking { vpn } => Some(*vpn),
        _ => None,
    }
}

fn is_injection(record: &FlightRecord) -> bool {
    matches!(
        record.event,
        FlightEvent::Kernel(Observation::FaultInjected { .. })
    )
}

/// For the last attack verdict in the log — the runtime's own
/// `AttackDetected` or a watchtower `WatchAlert` — find the injected
/// fault that caused it: first an injection inside the verdict's own
/// correlation chain, else the most recent prior injection — preferring
/// one that names the same page (a spurious eviction surfaces as a fault
/// only when the page is next touched, typically in a *later* chain).
///
/// Returns `(verdict_record, injection_record)`; `None` when the log
/// holds no verdict or no injection preceding it.
pub fn causal_root_of_attack(records: &[FlightRecord]) -> Option<(&FlightRecord, &FlightRecord)> {
    let (attack_idx, attack) = records.iter().enumerate().rev().find(|(_, r)| {
        matches!(
            r.event,
            FlightEvent::AttackDetected { .. } | FlightEvent::WatchAlert { .. }
        )
    })?;
    let attack_vpn = match &attack.event {
        FlightEvent::AttackDetected { vpn, .. } => Some(*vpn),
        FlightEvent::WatchAlert { vpn, .. } => *vpn,
        _ => return None,
    };
    // Inside the verdict's own chain first.
    if attack.corr != CORR_NONE {
        if let Some(inj) = records[..attack_idx]
            .iter()
            .rev()
            .find(|r| r.corr == attack.corr && is_injection(r))
        {
            return Some((attack, inj));
        }
    }
    // Else the latest prior injection naming the same page, else the
    // latest prior injection of any kind.
    let prior: Vec<&FlightRecord> = records[..attack_idx]
        .iter()
        .filter(|r| is_injection(r))
        .collect();
    let same_page = prior.iter().rev().find(|r| match &r.event {
        FlightEvent::Kernel(Observation::FaultInjected { fault, .. }) => {
            attack_vpn.is_some() && injected_vpn(fault) == attack_vpn
        }
        _ => false,
    });
    same_page.or(prior.last()).map(|inj| (attack, *inj))
}

/// Render a markdown post-mortem: the last `last_n` events as a table,
/// every runtime decision in the window resolved to its chain root, and
/// — when the log ends in an `AttackDetected` verdict — the injected
/// fault identified as the causal root.
pub fn render_timeline(records: &[FlightRecord], last_n: usize) -> String {
    let window_start = records.len().saturating_sub(last_n);
    let window = &records[window_start..];
    let mut out = String::new();
    out.push_str("# Flight-recorder post-mortem\n\n");
    out.push_str(&format!(
        "{} events total, showing the last {}.\n\n",
        records.len(),
        window.len()
    ));
    out.push_str("| seq | cycles | corr | domain | event |\n");
    out.push_str("|----:|-------:|-----:|:------|:------|\n");
    for r in window {
        let corr = if r.corr == CORR_NONE {
            "-".to_owned()
        } else {
            r.corr.to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.seq,
            r.cycles,
            corr,
            r.event.domain(),
            r.event.describe()
        ));
    }

    out.push_str("\n## Correlation chains\n\n");
    let mut any = false;
    for r in window.iter().filter(|r| r.event.is_runtime_decision()) {
        any = true;
        match chain_root(records, r.corr) {
            Some(root) if root.seq != r.seq => out.push_str(&format!(
                "- seq {} ({}) ← provoked by seq {} ({})\n",
                r.seq,
                r.event.describe(),
                root.seq,
                root.event.describe()
            )),
            Some(_) => out.push_str(&format!(
                "- seq {} ({}) ← chain root itself (direct runtime entry)\n",
                r.seq,
                r.event.describe()
            )),
            None => out.push_str(&format!(
                "- seq {} ({}) ← UNRESOLVED (no correlation chain)\n",
                r.seq,
                r.event.describe()
            )),
        }
    }
    if !any {
        out.push_str("(no runtime decisions in the window)\n");
    }

    if let Some((attack, inj)) = causal_root_of_attack(records) {
        out.push_str("\n## Causal root of the attack verdict\n\n");
        out.push_str(&format!(
            "- verdict: seq {} ({})\n- causal root: seq {} ({})\n",
            attack.seq,
            attack.event.describe(),
            inj.seq,
            inj.event.describe()
        ));
    }
    out
}

/// Whether every runtime decision in the last `last_n` events resolves
/// to a chain root (used by the forensics acceptance check).
pub fn decisions_resolved(records: &[FlightRecord], last_n: usize) -> bool {
    let window_start = records.len().saturating_sub(last_n);
    records[window_start..]
        .iter()
        .filter(|r| r.event.is_runtime_decision())
        .all(|r| chain_root(records, r.corr).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_sgx_sim::{AccessKind, Va};

    fn kernel_fault(eid: u32) -> FlightEvent {
        FlightEvent::Kernel(Observation::Fault {
            eid: EnclaveId(eid),
            va: Va(0),
            kind: AccessKind::Read,
        })
    }

    #[test]
    fn seq_and_corr_stamping() {
        let mut rec = FlightRecorder::new(16);
        rec.record(10, FlightEvent::RateLimitKill);
        let c = rec.begin_chain();
        assert_ne!(c, CORR_NONE);
        rec.record(20, kernel_fault(1));
        rec.record(30, FlightEvent::DecisionForward { vpn: Vpn(5) });
        rec.end_chain();
        rec.record(40, FlightEvent::RateLimitKill);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].corr, CORR_NONE);
        assert_eq!(snap[1].corr, c);
        assert_eq!(snap[2].corr, c);
        assert_eq!(snap[3].corr, CORR_NONE);
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5 {
            rec.record(i, FlightEvent::RateLimitKill);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let snap = rec.snapshot();
        // The latest records are retained (post-mortem semantics).
        assert_eq!(snap[0].seq, 3);
        assert_eq!(snap[1].seq, 4);
    }

    #[test]
    fn chain_root_prefers_kernel_event() {
        let mut rec = FlightRecorder::new(16);
        let c = rec.begin_chain();
        rec.record(
            5,
            FlightEvent::Transition {
                kind: TransitionKind::Aex,
                eid: EnclaveId(1),
                tcs: 0,
            },
        );
        rec.record(10, kernel_fault(1));
        rec.record(20, FlightEvent::DecisionForward { vpn: Vpn(7) });
        let snap = rec.snapshot();
        let root = chain_root(&snap, c).expect("root");
        assert!(matches!(root.event, FlightEvent::Kernel(_)));
        assert!(decisions_resolved(&snap, 50));
    }

    #[test]
    fn attack_causal_root_finds_same_page_injection() {
        let mut rec = FlightRecorder::new(64);
        // Chain 1: an injected spurious eviction of page 9.
        rec.begin_chain();
        rec.record(
            10,
            FlightEvent::Kernel(Observation::FaultInjected {
                eid: EnclaveId(1),
                fault: crate::fault::InjectedFault::SpuriousEvict { vpn: Vpn(9) },
            }),
        );
        rec.end_chain();
        // Chain 2: an unrelated injection, then the verdict on page 9.
        rec.begin_chain();
        rec.record(
            20,
            FlightEvent::Kernel(Observation::FaultInjected {
                eid: EnclaveId(1),
                fault: crate::fault::InjectedFault::TransientNoMemory,
            }),
        );
        rec.end_chain();
        rec.begin_chain();
        rec.record(30, kernel_fault(1));
        rec.record(
            40,
            FlightEvent::AttackDetected {
                vpn: Vpn(9),
                why: "unexpected fault on resident enclave-managed page".to_owned(),
            },
        );
        let snap = rec.snapshot();
        let (attack, inj) = causal_root_of_attack(&snap).expect("root");
        assert!(matches!(attack.event, FlightEvent::AttackDetected { .. }));
        match &inj.event {
            FlightEvent::Kernel(Observation::FaultInjected { fault, .. }) => {
                assert_eq!(
                    *fault,
                    crate::fault::InjectedFault::SpuriousEvict { vpn: Vpn(9) }
                );
            }
            other => panic!("wrong root: {other:?}"),
        }
    }

    #[test]
    fn watch_alert_resolves_to_same_page_injection() {
        let mut rec = FlightRecorder::new(64);
        // The staged probe: a spurious eviction of page 11.
        rec.begin_chain();
        rec.record(
            10,
            FlightEvent::Kernel(Observation::FaultInjected {
                eid: EnclaveId(2),
                fault: crate::fault::InjectedFault::SpuriousEvict { vpn: Vpn(11) },
            }),
        );
        rec.end_chain();
        // An unrelated later injection the resolver must not prefer.
        rec.begin_chain();
        rec.record(
            20,
            FlightEvent::Kernel(Observation::FaultInjected {
                eid: EnclaveId(2),
                fault: crate::fault::InjectedFault::TransientNoMemory,
            }),
        );
        rec.end_chain();
        // The watchtower fires outside any chain (it drains the ring
        // between requests), naming the page its window saw fault.
        rec.record(
            30,
            FlightEvent::WatchAlert {
                eid: EnclaveId(2),
                detector: "fault_cusum".to_owned(),
                window: 4,
                score_milli: 5120,
                vpn: Some(Vpn(11)),
                why: "fault rate above cusum threshold".to_owned(),
            },
        );
        let snap = rec.snapshot();
        let (verdict, inj) = causal_root_of_attack(&snap).expect("root");
        assert!(matches!(verdict.event, FlightEvent::WatchAlert { .. }));
        match &inj.event {
            FlightEvent::Kernel(Observation::FaultInjected { fault, .. }) => {
                assert_eq!(
                    *fault,
                    crate::fault::InjectedFault::SpuriousEvict { vpn: Vpn(11) }
                );
            }
            other => panic!("wrong root: {other:?}"),
        }
        assert_eq!(verdict.event.domain(), "watch");
        assert!(!verdict.event.is_runtime_decision());
    }

    #[test]
    fn watch_alert_without_vpn_falls_back_to_latest_injection() {
        let mut rec = FlightRecorder::new(64);
        rec.record(
            5,
            FlightEvent::Kernel(Observation::FaultInjected {
                eid: EnclaveId(1),
                fault: crate::fault::InjectedFault::TransientNoMemory,
            }),
        );
        rec.record(
            9,
            FlightEvent::WatchAlert {
                eid: EnclaveId(1),
                detector: "slo_burn".to_owned(),
                window: 2,
                score_milli: 1500,
                vpn: None,
                why: "p99 budget burn".to_owned(),
            },
        );
        let snap = rec.snapshot();
        let (verdict, inj) = causal_root_of_attack(&snap).expect("root");
        assert!(matches!(verdict.event, FlightEvent::WatchAlert { .. }));
        assert!(is_injection(inj));
    }

    #[test]
    fn timeline_renders_markdown() {
        let mut rec = FlightRecorder::new(16);
        let _ = rec.begin_chain();
        rec.record(10, kernel_fault(3));
        rec.record(20, FlightEvent::DecisionForward { vpn: Vpn(2) });
        rec.end_chain();
        let md = render_timeline(&rec.snapshot(), 50);
        assert!(md.contains("# Flight-recorder post-mortem"));
        assert!(md.contains("| seq | cycles | corr | domain | event |"));
        assert!(md.contains("provoked by"));
    }
}
