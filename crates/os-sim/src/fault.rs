//! Deterministic hostile-OS fault injection (robustness harness).
//!
//! In the paper's threat model (§3) the OS is the adversary, but the
//! attacks of [`crate::attack`] are *targeted* information-leak attacks.
//! This module models the complementary hostile behaviours a self-paging
//! runtime must also survive: flaky resource management (transient
//! failures, partial batches, spurious suspensions), lying driver replies
//! (wrong residence answers, silently dropped pages), contract violations
//! (eviction of pinned pages), and tampering with the untrusted backing
//! store (corruption, replay).
//!
//! A [`FaultPlan`] gives a per-kind probability schedule; an armed
//! [`FaultInjector`] draws **exactly one decision per `ay_*` syscall**
//! from a dedicated [`SimRng`] stream, so a fixed `(seed, plan, workload)`
//! triple produces a bit-for-bit identical injection schedule, observation
//! stream, and final cycle count. Every injected fault is recorded in the
//! adversary-visible observation log as
//! [`crate::kernel::Observation::FaultInjected`].

use autarky_prng::SimRng;
use autarky_sgx_sim::EnclaveId;

/// Which driver entry point a fault decision is being made for.
///
/// Not every fault kind makes sense for every syscall; the injector only
/// considers the kinds applicable to the entry point (see
/// [`FaultKind::applies_to`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallKind {
    /// `ay_set_enclave_managed`.
    SetEnclaveManaged,
    /// `ay_set_os_managed`.
    SetOsManaged,
    /// `ay_fetch_pages`.
    Fetch,
    /// `ay_evict_pages`.
    Evict,
    /// `ay_alloc_pages`.
    Alloc,
    /// `ay_protect_pages`.
    Protect,
    /// `ay_remove_pages`.
    Remove,
    /// `sys_untrusted_read` / `sys_untrusted_write`.
    Untrusted,
}

/// The kinds of hostile-OS behaviour the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the whole call with a transient `OsError::NoMemory`.
    TransientNoMemory,
    /// Process only a prefix of the batch, then fail with `NoMemory`.
    PartialBatch,
    /// Flip one residence answer in the `ay_set_enclave_managed` reply.
    WrongResidence,
    /// Silently skip one page of a fetch batch but still return `Ok`.
    DropPage,
    /// Evict one pinned enclave-managed page (contract violation),
    /// then service the call normally.
    SpuriousEvict,
    /// Flip a ciphertext byte of a sealed backing-store blob about to be
    /// fetched.
    CorruptBacking,
    /// Swap a sealed backing-store blob for a stale (older-version) copy.
    ReplayBacking,
    /// Charge extra cycles to the machine clock (scheduling delay),
    /// then service the call normally.
    Delay,
    /// Suspend the whole enclave mid-batch (`OsError::Suspended`); the
    /// injector resumes it at the next syscall entry.
    Suspend,
}

impl FaultKind {
    /// All kinds, in the fixed order used for the cumulative draw.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::Delay,
        FaultKind::TransientNoMemory,
        FaultKind::PartialBatch,
        FaultKind::Suspend,
        FaultKind::WrongResidence,
        FaultKind::DropPage,
        FaultKind::SpuriousEvict,
        FaultKind::CorruptBacking,
        FaultKind::ReplayBacking,
    ];

    /// Whether this kind can be injected into the given entry point.
    pub fn applies_to(self, syscall: SyscallKind) -> bool {
        use FaultKind::*;
        use SyscallKind::*;
        match self {
            Delay => true,
            TransientNoMemory => matches!(syscall, Fetch | Alloc | Evict),
            PartialBatch => matches!(syscall, Fetch | Alloc | Evict),
            Suspend => matches!(
                syscall,
                SetEnclaveManaged | SetOsManaged | Fetch | Evict | Alloc
            ),
            WrongResidence => matches!(syscall, SetEnclaveManaged),
            DropPage => matches!(syscall, Fetch),
            SpuriousEvict => matches!(syscall, Fetch | Evict),
            CorruptBacking => matches!(syscall, Fetch),
            ReplayBacking => matches!(syscall, Fetch),
        }
    }
}

/// A seeded per-syscall fault schedule.
///
/// Each field is the probability (per applicable syscall) of injecting
/// that fault kind. The probabilities of the kinds applicable to one
/// syscall must sum to at most 1.0; at most one fault fires per call.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the dedicated injection RNG stream.
    pub seed: u64,
    /// P(whole-call transient `NoMemory`).
    pub transient_no_memory: f64,
    /// P(batch stops after a prefix, with transient `NoMemory`).
    pub partial_batch: f64,
    /// P(one flipped residence answer).
    pub wrong_residence: f64,
    /// P(one silently dropped page per fetch).
    pub drop_page: f64,
    /// P(one pinned page spuriously evicted).
    pub spurious_evict: f64,
    /// P(sealed blob corrupted before fetch).
    pub corrupt_backing: f64,
    /// P(sealed blob replayed from a stale copy before fetch).
    pub replay_backing: f64,
    /// P(extra scheduling delay charged to the clock).
    pub delay: f64,
    /// Cycles charged per injected delay.
    pub delay_cycles: u64,
    /// P(whole-enclave suspend mid-batch).
    pub suspend: f64,
    /// Stop injecting after this many faults (`None` = unbounded).
    pub max_injections: Option<u64>,
    /// Restrict the campaign to one enclave of a fleet. `None` (the
    /// default) targets every enclave and consumes one RNG draw per
    /// syscall — bit-identical to the pre-fleet schedule. When set, calls
    /// from other enclaves are passed through *without* consuming a draw,
    /// so the RNG stream indexes only the target's own syscall sequence.
    pub target: Option<EnclaveId>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn quiescent(seed: u64) -> Self {
        Self {
            seed,
            transient_no_memory: 0.0,
            partial_batch: 0.0,
            wrong_residence: 0.0,
            drop_page: 0.0,
            spurious_evict: 0.0,
            corrupt_backing: 0.0,
            replay_backing: 0.0,
            delay: 0.0,
            delay_cycles: 0,
            suspend: 0.0,
            max_injections: None,
            target: None,
        }
    }

    /// Restrict this plan to one fleet member (see [`FaultPlan::target`]).
    pub fn targeting(self, eid: EnclaveId) -> Self {
        Self {
            target: Some(eid),
            ..self
        }
    }

    /// A plan of only *transient* faults (delays, whole-call `NoMemory`,
    /// partial batches, suspensions) at the given per-syscall rate each.
    /// A hardened runtime must absorb these with retries — they must
    /// never escalate to `AttackDetected`.
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        Self {
            transient_no_memory: rate,
            partial_batch: rate,
            delay: rate,
            delay_cycles: 2_000,
            suspend: rate / 4.0,
            ..Self::quiescent(seed)
        }
    }

    /// A plan that also lies and tampers (wrong residence answers,
    /// dropped pages, pinned-page eviction, backing-store corruption and
    /// replay) at the given per-syscall rate each.
    pub fn hostile(seed: u64, rate: f64) -> Self {
        Self {
            wrong_residence: rate,
            drop_page: rate,
            spurious_evict: rate,
            corrupt_backing: rate,
            replay_backing: rate,
            ..Self::transient_only(seed, rate)
        }
    }

    fn rate_of(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::TransientNoMemory => self.transient_no_memory,
            FaultKind::PartialBatch => self.partial_batch,
            FaultKind::WrongResidence => self.wrong_residence,
            FaultKind::DropPage => self.drop_page,
            FaultKind::SpuriousEvict => self.spurious_evict,
            FaultKind::CorruptBacking => self.corrupt_backing,
            FaultKind::ReplayBacking => self.replay_backing,
            FaultKind::Delay => self.delay,
            FaultKind::Suspend => self.suspend,
        }
    }
}

/// One injected fault, as applied (recorded in the observation stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The call failed with transient `NoMemory` before doing anything.
    TransientNoMemory,
    /// Only the first `completed` batch entries were processed.
    PartialBatch {
        /// Number of leading batch entries that were processed.
        completed: usize,
    },
    /// The residence answer at batch index `index` was flipped.
    WrongResidence {
        /// Index into the syscall's page list.
        index: usize,
    },
    /// The page at batch index `index` was skipped but reported fetched.
    DropPage {
        /// Index into the syscall's page list.
        index: usize,
    },
    /// A pinned enclave-managed page was evicted behind the runtime's
    /// back.
    SpuriousEvict {
        /// The victim page.
        vpn: autarky_sgx_sim::Vpn,
    },
    /// A sealed blob's ciphertext was corrupted.
    CorruptBacking {
        /// The tampered page.
        vpn: autarky_sgx_sim::Vpn,
    },
    /// A sealed blob was replaced by a stale copy.
    ReplayBacking {
        /// The replayed page.
        vpn: autarky_sgx_sim::Vpn,
    },
    /// Extra cycles were charged to the clock.
    Delay {
        /// Cycles charged.
        cycles: u64,
    },
    /// The enclave was suspended after `completed` batch entries.
    Suspend {
        /// Number of leading batch entries that were processed.
        completed: usize,
    },
    /// A stale (previously superseded) sealed snapshot was offered for
    /// restore in place of the latest one (rollback attack).
    StaleSnapshot {
        /// Monotonic-counter value sealed inside the stale snapshot.
        counter: u64,
    },
    /// The same sealed snapshot was offered for restore a second time,
    /// attempting to fork the enclave's timeline.
    ForkedSnapshot {
        /// Monotonic-counter value sealed inside the replayed snapshot.
        counter: u64,
    },
    /// A sealed snapshot was truncated before being offered for restore.
    TruncatedSnapshot {
        /// Length the blob was cut down to.
        len: usize,
    },
    /// The platform monotonic counter was overwritten with an old value
    /// (an attempt to make a stale snapshot look fresh).
    CounterRollback {
        /// Counter value the OS tried to roll back to.
        to: u64,
    },
}

/// The armed injector: plan + dedicated RNG stream + bookkeeping.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    injected: u64,
    /// Enclave suspended by an injected [`FaultKind::Suspend`], to be
    /// resumed transparently at the next syscall entry.
    pending_resume: Option<EnclaveId>,
}

impl FaultInjector {
    /// Arm an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            injected: 0,
            pending_resume: None,
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide the fault (if any) for one syscall issued by `eid` over a
    /// batch of `batch_len` pages. Exactly one uniform draw is consumed
    /// per call the plan applies to; secondary draws (victim index,
    /// prefix length) happen only when a fault fires, so the schedule
    /// stays deterministic for a fixed syscall sequence.
    ///
    /// The target filter runs *before* the draw: an untargeted plan
    /// (`target: None`) consumes a draw for every call, exactly as the
    /// single-enclave schedule always has, while a targeted plan skips
    /// non-target calls without touching the RNG — its stream indexes
    /// the target's own syscall sequence.
    pub fn decide(
        &mut self,
        eid: EnclaveId,
        syscall: SyscallKind,
        batch_len: usize,
    ) -> Option<FaultKind> {
        if let Some(target) = self.plan.target {
            if target != eid {
                return None;
            }
        }
        let u = self.rng.gen_f64();
        if let Some(max) = self.plan.max_injections {
            if self.injected >= max {
                return None;
            }
        }
        let mut cum = 0.0;
        for kind in FaultKind::ALL {
            if !kind.applies_to(syscall) {
                continue;
            }
            cum += self.plan.rate_of(kind);
            if u < cum {
                // Batch-shaping faults need a non-trivial batch.
                let needs_batch = matches!(
                    kind,
                    FaultKind::PartialBatch | FaultKind::WrongResidence | FaultKind::DropPage
                );
                if needs_batch && batch_len == 0 {
                    return None;
                }
                return Some(kind);
            }
        }
        None
    }

    /// Record that a decided fault was actually applied.
    pub(crate) fn record(&mut self) {
        self.injected += 1;
    }

    /// Draw an index into a batch of `len` pages (used by batch-shaping
    /// faults once a kind has fired).
    pub(crate) fn pick_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.rng.gen_range_usize(0..len)
    }

    /// Extra cycles for an injected delay.
    pub(crate) fn delay_cycles(&self) -> u64 {
        self.plan.delay_cycles
    }

    /// Mark `eid` as suspended-by-injection.
    pub(crate) fn set_pending_resume(&mut self, eid: EnclaveId) {
        self.pending_resume = Some(eid);
    }

    /// The enclave suspended by injection, if any (without clearing).
    pub(crate) fn peek_pending_resume(&self) -> Option<EnclaveId> {
        self.pending_resume
    }

    /// Take the pending injected suspension, if any.
    pub(crate) fn take_pending_resume(&mut self) -> Option<EnclaveId> {
        self.pending_resume.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::quiescent(1));
        for _ in 0..1000 {
            assert_eq!(inj.decide(EnclaveId(1), SyscallKind::Fetch, 4), None);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || FaultInjector::new(FaultPlan::hostile(42, 0.05));
        let (mut a, mut b) = (mk(), mk());
        for i in 0..2000 {
            let kind = [
                SyscallKind::Fetch,
                SyscallKind::Evict,
                SyscallKind::Alloc,
                SyscallKind::SetEnclaveManaged,
            ][i % 4];
            assert_eq!(
                a.decide(EnclaveId(1), kind, 3),
                b.decide(EnclaveId(1), kind, 3),
                "call {i}"
            );
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let mut inj = FaultInjector::new(FaultPlan::transient_only(7, 0.1));
        let fired = (0..10_000)
            .filter(|_| inj.decide(EnclaveId(1), SyscallKind::Fetch, 4).is_some())
            .count();
        // delay + no_memory + partial + suspend/4 = 0.325 expected.
        assert!((2800..3700).contains(&fired), "fired {fired}");
    }

    #[test]
    fn kinds_respect_applicability() {
        let mut inj = FaultInjector::new(FaultPlan::hostile(3, 0.08));
        for _ in 0..5000 {
            if let Some(kind) = inj.decide(EnclaveId(1), SyscallKind::Protect, 2) {
                assert_eq!(kind, FaultKind::Delay, "only delay applies to protect");
            }
            if let Some(kind) = inj.decide(EnclaveId(1), SyscallKind::SetEnclaveManaged, 2) {
                assert!(
                    matches!(
                        kind,
                        FaultKind::Delay | FaultKind::Suspend | FaultKind::WrongResidence
                    ),
                    "unexpected {kind:?}"
                );
            }
        }
    }

    #[test]
    fn max_injections_caps_schedule() {
        let plan = FaultPlan {
            max_injections: Some(3),
            ..FaultPlan::transient_only(5, 0.5)
        };
        let mut inj = FaultInjector::new(plan);
        let mut applied = 0;
        for _ in 0..1000 {
            if inj.decide(EnclaveId(1), SyscallKind::Fetch, 4).is_some() {
                inj.record();
                applied += 1;
            }
        }
        assert_eq!(applied, 3);
    }

    #[test]
    fn untargeted_plan_matches_pre_fleet_schedule() {
        // `target: None` must consume one draw per call regardless of the
        // calling enclave, reproducing the single-enclave stream exactly.
        let mut legacy = FaultInjector::new(FaultPlan::hostile(11, 0.07));
        let mut fleet = FaultInjector::new(FaultPlan::hostile(11, 0.07));
        for i in 0..2000 {
            let eid = EnclaveId((i % 3) as u32);
            assert_eq!(
                legacy.decide(EnclaveId(1), SyscallKind::Fetch, 4),
                fleet.decide(eid, SyscallKind::Fetch, 4),
                "call {i}"
            );
        }
    }

    #[test]
    fn targeted_plan_skips_other_enclaves_without_draws() {
        let plan = FaultPlan::hostile(13, 0.07).targeting(EnclaveId(2));
        let mut solo = FaultInjector::new(plan.clone());
        let mut interleaved = FaultInjector::new(plan);
        // Non-target calls must not perturb the target's schedule.
        for i in 0..500 {
            assert_eq!(
                interleaved.decide(EnclaveId(1), SyscallKind::Fetch, 4),
                None,
                "non-target call {i} must pass through"
            );
            assert_eq!(
                solo.decide(EnclaveId(2), SyscallKind::Fetch, 4),
                interleaved.decide(EnclaveId(2), SyscallKind::Fetch, 4),
                "target call {i}"
            );
        }
    }

    #[test]
    fn batch_shaping_faults_skip_empty_batches() {
        let plan = FaultPlan {
            partial_batch: 1.0,
            ..FaultPlan::quiescent(9)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(EnclaveId(1), SyscallKind::Fetch, 0), None);
        assert_eq!(
            inj.decide(EnclaveId(1), SyscallKind::Fetch, 4),
            Some(FaultKind::PartialBatch)
        );
    }
}
