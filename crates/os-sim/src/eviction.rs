//! Victim selection for OS-driven eviction of OS-managed pages.
//!
//! The baseline (vanilla SGX) driver uses the **clock** algorithm over PTE
//! accessed bits, exactly the behaviour Autarky has to give up: for
//! self-paging enclaves the A/D bits must stay set, so the driver falls
//! back to **FIFO** (paper §7, "Setup": "the baseline uses a clock page
//! eviction policy in the SGX driver, Autarky uses FIFO eviction since page
//! access bits are not available").

use std::collections::VecDeque;

use autarky_sgx_sim::Vpn;

/// Which victim-selection algorithm the driver runs for an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Second-chance clock over accessed bits (baseline SGX driver).
    Clock,
    /// FIFO (Autarky: A/D bits are unavailable to the OS).
    Fifo,
}

/// Per-enclave eviction state: a queue of OS-managed resident pages.
#[derive(Debug, Clone)]
pub struct EvictionState {
    policy: EvictionPolicy,
    queue: VecDeque<Vpn>,
}

impl EvictionState {
    /// Create the state for the given policy.
    pub fn new(policy: EvictionPolicy) -> Self {
        Self {
            policy,
            queue: VecDeque::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Record that `vpn` became resident (appended at queue tail).
    pub fn on_resident(&mut self, vpn: Vpn) {
        self.queue.push_back(vpn);
    }

    /// Forget a page (no longer resident or no longer OS-managed).
    pub fn forget(&mut self, vpn: Vpn) {
        self.queue.retain(|&v| v != vpn);
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Select a victim.
    ///
    /// `accessed` reports (and `clear_accessed` resets) the PTE accessed
    /// bit; only the clock policy uses them. Returns `None` when no page is
    /// evictable. The chosen victim is removed from the queue.
    pub fn pick_victim(
        &mut self,
        mut accessed: impl FnMut(Vpn) -> bool,
        mut clear_accessed: impl FnMut(Vpn),
    ) -> Option<Vpn> {
        match self.policy {
            EvictionPolicy::Fifo => self.queue.pop_front(),
            EvictionPolicy::Clock => {
                // Second chance: give each accessed page one more lap.
                let mut laps = self.queue.len() * 2 + 1;
                while laps > 0 {
                    let vpn = self.queue.pop_front()?;
                    if accessed(vpn) {
                        clear_accessed(vpn);
                        self.queue.push_back(vpn);
                        laps -= 1;
                    } else {
                        return Some(vpn);
                    }
                }
                // Everything stayed hot: degrade to FIFO.
                self.queue.pop_front()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifo_order() {
        let mut ev = EvictionState::new(EvictionPolicy::Fifo);
        ev.on_resident(Vpn(1));
        ev.on_resident(Vpn(2));
        ev.on_resident(Vpn(3));
        assert_eq!(ev.pick_victim(|_| false, |_| {}), Some(Vpn(1)));
        assert_eq!(ev.pick_victim(|_| false, |_| {}), Some(Vpn(2)));
        ev.forget(Vpn(3));
        assert_eq!(ev.pick_victim(|_| false, |_| {}), None);
    }

    #[test]
    fn clock_skips_accessed_pages_once() {
        let mut ev = EvictionState::new(EvictionPolicy::Clock);
        ev.on_resident(Vpn(1));
        ev.on_resident(Vpn(2));
        // Page 1 is hot; page 2 is cold.
        let hot: HashSet<Vpn> = [Vpn(1)].into_iter().collect();
        let mut cleared = Vec::new();
        let victim = ev.pick_victim(|v| hot.contains(&v), |v| cleared.push(v));
        assert_eq!(victim, Some(Vpn(2)));
        assert_eq!(cleared, vec![Vpn(1)], "hot page got its A bit cleared");
        // Page 1 stays queued for next time.
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn clock_degenerates_when_all_hot() {
        let mut ev = EvictionState::new(EvictionPolicy::Clock);
        ev.on_resident(Vpn(1));
        ev.on_resident(Vpn(2));
        let victim = ev.pick_victim(|_| true, |_| {});
        assert!(victim.is_some(), "must still evict something");
    }

    #[test]
    fn forget_removes_mid_queue() {
        let mut ev = EvictionState::new(EvictionPolicy::Fifo);
        ev.on_resident(Vpn(1));
        ev.on_resident(Vpn(2));
        ev.on_resident(Vpn(3));
        ev.forget(Vpn(2));
        assert_eq!(ev.pick_victim(|_| false, |_| {}), Some(Vpn(1)));
        assert_eq!(ev.pick_victim(|_| false, |_| {}), Some(Vpn(3)));
    }
}
