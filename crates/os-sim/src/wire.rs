//! Lossless serialization of adversary observations and fault schedules.
//!
//! The leakage-audit subsystem persists observation traces to disk and
//! replays them deterministically; fault schedules travel alongside so a
//! run is fully described by its artifacts. External crates (serde) are
//! unavailable in the offline build, so this module hand-rolls a compact
//! line-oriented text format with the same contract a serde round-trip
//! would give: `decode(encode(x)) == x` for every value, checked by
//! randomized round-trip tests over [`SimRng`]-generated values.
//!
//! Grammar (one event per line, fields space-separated):
//!
//! ```text
//! fault <eid> <va> <r|w|x>
//! fetch <eid> <vpn,vpn,...>        ("-" for an empty list)
//! evict <eid> <vpns>
//! alloc <eid> <vpns>
//! semg  <eid> <vpns>               (SetEnclaveManaged)
//! somg  <eid> <vpns>               (SetOsManaged)
//! ua    <key> <r|w>                (UntrustedAccess)
//! dp    <eid> <vpn>                (DemandPaging)
//! ad    <eid> <vpn> <a|d>          (AdBitObserved)
//! inj   <eid> <fault...>           (FaultInjected; see encode_injected_fault)
//! ```
//!
//! Flight-recorder records (PR 5) extend the grammar with one `ev` line
//! per [`FlightRecord`], carrying the sequence number, cycle timestamp,
//! and correlation id, then a payload:
//!
//! ```text
//! ev <seq> <cycles> <corr> tr <kind> <eid> <tcs>       (enclave transition)
//! ev <seq> <cycles> <corr> k <observation line>        (kernel observation)
//! ev <seq> <cycles> <corr> he <eid> <vpn>              (handler entry)
//! ev <seq> <cycles> <corr> fwd <vpn>                   (forward-fetch decision)
//! ev <seq> <cycles> <corr> cfetch <vpn> <vpns>         (cluster-fetch decision)
//! ev <seq> <cycles> <corr> evd <vpns>                  (evict decision)
//! ev <seq> <cycles> <corr> retry <attempt> <backoff>
//! ev <seq> <cycles> <corr> mis <vpn> <used> <budget> <why...>
//! ev <seq> <cycles> <corr> shrink <from> <to>          (degrade step)
//! ev <seq> <cycles> <corr> attack <vpn> <why...>
//! ev <seq> <cycles> <corr> rlkill
//! ev <seq> <cycles> <corr> span <kind> <start> <end>
//! ```
//!
//! Free-text `why...` payloads occupy the rest of the line and are
//! re-joined with single spaces on decode, so round-tripping is exact
//! for the whitespace-normalized, non-empty reason strings the runtime
//! emits (which is all of them).
//!
//! `f64` rates in [`FaultPlan`] are encoded as IEEE-754 bit patterns in
//! hex so the round trip is exact, not shortest-decimal approximate.

use autarky_sgx_sim::machine::TransitionKind;
use autarky_sgx_sim::{AccessKind, EnclaveId, Va, Vpn};

use crate::fault::{FaultKind, FaultPlan, InjectedFault};
use crate::flight::{FlightEvent, FlightRecord};
use crate::kernel::Observation;

/// A malformed wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed to parse.
    pub what: &'static str,
    /// The offending input line.
    pub line: String,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "wire decode error ({}): {:?}", self.what, self.line)
    }
}

impl std::error::Error for WireError {}

fn err<T>(what: &'static str, line: &str) -> Result<T, WireError> {
    Err(WireError {
        what,
        line: line.to_owned(),
    })
}

fn kind_tag(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "r",
        AccessKind::Write => "w",
        AccessKind::Execute => "x",
    }
}

fn parse_kind(tag: &str, line: &str) -> Result<AccessKind, WireError> {
    match tag {
        "r" => Ok(AccessKind::Read),
        "w" => Ok(AccessKind::Write),
        "x" => Ok(AccessKind::Execute),
        _ => err("access kind", line),
    }
}

fn pages_field(pages: &[Vpn]) -> String {
    if pages.is_empty() {
        "-".to_owned()
    } else {
        pages
            .iter()
            .map(|v| v.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_pages(field: &str, line: &str) -> Result<Vec<Vpn>, WireError> {
    if field == "-" {
        return Ok(Vec::new());
    }
    field
        .split(',')
        .map(|p| p.parse::<u64>().map(Vpn).or(err("vpn", line)))
        .collect()
}

fn parse_u64(field: &str, line: &str) -> Result<u64, WireError> {
    field.parse::<u64>().or(err("u64", line))
}

fn parse_usize(field: &str, line: &str) -> Result<usize, WireError> {
    field.parse::<usize>().or(err("usize", line))
}

fn parse_eid(field: &str, line: &str) -> Result<EnclaveId, WireError> {
    field.parse::<u32>().map(EnclaveId).or(err("eid", line))
}

/// Encode one observation as a single line (no trailing newline).
pub fn encode_observation(obs: &Observation) -> String {
    match obs {
        Observation::Fault { eid, va, kind } => {
            format!("fault {} {} {}", eid.0, va.0, kind_tag(*kind))
        }
        Observation::FetchSyscall { eid, pages } => {
            format!("fetch {} {}", eid.0, pages_field(pages))
        }
        Observation::EvictSyscall { eid, pages } => {
            format!("evict {} {}", eid.0, pages_field(pages))
        }
        Observation::AllocSyscall { eid, pages } => {
            format!("alloc {} {}", eid.0, pages_field(pages))
        }
        Observation::SetEnclaveManaged { eid, pages } => {
            format!("semg {} {}", eid.0, pages_field(pages))
        }
        Observation::SetOsManaged { eid, pages } => {
            format!("somg {} {}", eid.0, pages_field(pages))
        }
        Observation::UntrustedAccess { key, write } => {
            format!("ua {} {}", key, if *write { "w" } else { "r" })
        }
        Observation::DemandPaging { eid, vpn } => format!("dp {} {}", eid.0, vpn.0),
        Observation::AdBitObserved { eid, vpn, dirty } => {
            format!("ad {} {} {}", eid.0, vpn.0, if *dirty { "d" } else { "a" })
        }
        Observation::FaultInjected { eid, fault } => {
            format!("inj {} {}", eid.0, encode_injected_fault(fault))
        }
    }
}

/// Decode one observation line.
pub fn decode_observation(line: &str) -> Result<Observation, WireError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let [tag, rest @ ..] = fields.as_slice() else {
        return err("empty line", line);
    };
    match (*tag, rest) {
        ("fault", [eid, va, kind]) => Ok(Observation::Fault {
            eid: parse_eid(eid, line)?,
            va: Va(parse_u64(va, line)?),
            kind: parse_kind(kind, line)?,
        }),
        ("fetch", [eid, pages]) => Ok(Observation::FetchSyscall {
            eid: parse_eid(eid, line)?,
            pages: parse_pages(pages, line)?,
        }),
        ("evict", [eid, pages]) => Ok(Observation::EvictSyscall {
            eid: parse_eid(eid, line)?,
            pages: parse_pages(pages, line)?,
        }),
        ("alloc", [eid, pages]) => Ok(Observation::AllocSyscall {
            eid: parse_eid(eid, line)?,
            pages: parse_pages(pages, line)?,
        }),
        ("semg", [eid, pages]) => Ok(Observation::SetEnclaveManaged {
            eid: parse_eid(eid, line)?,
            pages: parse_pages(pages, line)?,
        }),
        ("somg", [eid, pages]) => Ok(Observation::SetOsManaged {
            eid: parse_eid(eid, line)?,
            pages: parse_pages(pages, line)?,
        }),
        ("ua", [key, rw]) => Ok(Observation::UntrustedAccess {
            key: parse_u64(key, line)?,
            write: match *rw {
                "w" => true,
                "r" => false,
                _ => return err("ua r/w", line),
            },
        }),
        ("dp", [eid, vpn]) => Ok(Observation::DemandPaging {
            eid: parse_eid(eid, line)?,
            vpn: Vpn(parse_u64(vpn, line)?),
        }),
        ("ad", [eid, vpn, ad]) => Ok(Observation::AdBitObserved {
            eid: parse_eid(eid, line)?,
            vpn: Vpn(parse_u64(vpn, line)?),
            dirty: match *ad {
                "d" => true,
                "a" => false,
                _ => return err("ad a/d", line),
            },
        }),
        ("inj", [eid, fault @ ..]) => Ok(Observation::FaultInjected {
            eid: parse_eid(eid, line)?,
            fault: decode_injected_fault_fields(fault, line)?,
        }),
        _ => err("observation tag", line),
    }
}

/// Encode a whole observation stream, one event per line.
pub fn encode_observations(stream: &[Observation]) -> String {
    let mut out = String::new();
    for obs in stream {
        out.push_str(&encode_observation(obs));
        out.push('\n');
    }
    out
}

/// Decode an observation stream (blank lines and `#` comments skipped).
pub fn decode_observations(text: &str) -> Result<Vec<Observation>, WireError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(decode_observation)
        .collect()
}

/// Encode an injected fault (the payload of `inj` lines, also usable
/// standalone for fault-schedule artifacts).
pub fn encode_injected_fault(fault: &InjectedFault) -> String {
    match fault {
        InjectedFault::TransientNoMemory => "nomem".to_owned(),
        InjectedFault::PartialBatch { completed } => format!("partial {completed}"),
        InjectedFault::WrongResidence { index } => format!("wrongres {index}"),
        InjectedFault::DropPage { index } => format!("drop {index}"),
        InjectedFault::SpuriousEvict { vpn } => format!("spurious {}", vpn.0),
        InjectedFault::CorruptBacking { vpn } => format!("corrupt {}", vpn.0),
        InjectedFault::ReplayBacking { vpn } => format!("replay {}", vpn.0),
        InjectedFault::Delay { cycles } => format!("delay {cycles}"),
        InjectedFault::Suspend { completed } => format!("suspend {completed}"),
        InjectedFault::StaleSnapshot { counter } => format!("stalesnap {counter}"),
        InjectedFault::ForkedSnapshot { counter } => format!("forksnap {counter}"),
        InjectedFault::TruncatedSnapshot { len } => format!("truncsnap {len}"),
        InjectedFault::CounterRollback { to } => format!("ctrroll {to}"),
    }
}

/// Decode an injected fault.
pub fn decode_injected_fault(text: &str) -> Result<InjectedFault, WireError> {
    let fields: Vec<&str> = text.split_whitespace().collect();
    decode_injected_fault_fields(&fields, text)
}

fn decode_injected_fault_fields(fields: &[&str], line: &str) -> Result<InjectedFault, WireError> {
    match fields {
        ["nomem"] => Ok(InjectedFault::TransientNoMemory),
        ["partial", n] => Ok(InjectedFault::PartialBatch {
            completed: parse_usize(n, line)?,
        }),
        ["wrongres", i] => Ok(InjectedFault::WrongResidence {
            index: parse_usize(i, line)?,
        }),
        ["drop", i] => Ok(InjectedFault::DropPage {
            index: parse_usize(i, line)?,
        }),
        ["spurious", v] => Ok(InjectedFault::SpuriousEvict {
            vpn: Vpn(parse_u64(v, line)?),
        }),
        ["corrupt", v] => Ok(InjectedFault::CorruptBacking {
            vpn: Vpn(parse_u64(v, line)?),
        }),
        ["replay", v] => Ok(InjectedFault::ReplayBacking {
            vpn: Vpn(parse_u64(v, line)?),
        }),
        ["delay", c] => Ok(InjectedFault::Delay {
            cycles: parse_u64(c, line)?,
        }),
        ["suspend", n] => Ok(InjectedFault::Suspend {
            completed: parse_usize(n, line)?,
        }),
        ["stalesnap", c] => Ok(InjectedFault::StaleSnapshot {
            counter: parse_u64(c, line)?,
        }),
        ["forksnap", c] => Ok(InjectedFault::ForkedSnapshot {
            counter: parse_u64(c, line)?,
        }),
        ["truncsnap", n] => Ok(InjectedFault::TruncatedSnapshot {
            len: parse_usize(n, line)?,
        }),
        ["ctrroll", to] => Ok(InjectedFault::CounterRollback {
            to: parse_u64(to, line)?,
        }),
        _ => err("injected fault", line),
    }
}

/// Encode a fault kind (stable one-word tags).
pub fn encode_fault_kind(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::TransientNoMemory => "nomem",
        FaultKind::PartialBatch => "partial",
        FaultKind::WrongResidence => "wrongres",
        FaultKind::DropPage => "drop",
        FaultKind::SpuriousEvict => "spurious",
        FaultKind::CorruptBacking => "corrupt",
        FaultKind::ReplayBacking => "replay",
        FaultKind::Delay => "delay",
        FaultKind::Suspend => "suspend",
    }
}

/// Decode a fault kind tag.
pub fn decode_fault_kind(tag: &str) -> Result<FaultKind, WireError> {
    FaultKind::ALL
        .into_iter()
        .find(|&k| encode_fault_kind(k) == tag)
        .ok_or_else(|| WireError {
            what: "fault kind",
            line: tag.to_owned(),
        })
}

/// Encode a fault plan as one line of `key=value` pairs. Rates are IEEE
/// bit patterns in hex so the round trip is bit-exact.
pub fn encode_fault_plan(plan: &FaultPlan) -> String {
    let max = plan
        .max_injections
        .map(|m| m.to_string())
        .unwrap_or_else(|| "-".to_owned());
    let mut line = format!(
        "plan seed={} nomem={:016x} partial={:016x} wrongres={:016x} drop={:016x} \
         spurious={:016x} corrupt={:016x} replay={:016x} delay={:016x} delay_cycles={} \
         suspend={:016x} max={}",
        plan.seed,
        plan.transient_no_memory.to_bits(),
        plan.partial_batch.to_bits(),
        plan.wrong_residence.to_bits(),
        plan.drop_page.to_bits(),
        plan.spurious_evict.to_bits(),
        plan.corrupt_backing.to_bits(),
        plan.replay_backing.to_bits(),
        plan.delay.to_bits(),
        plan.delay_cycles,
        plan.suspend.to_bits(),
        max,
    );
    // Emitted only when targeted, so untargeted plans (every pre-fleet
    // artifact) keep their exact historical encoding.
    if let Some(target) = plan.target {
        line.push_str(&format!(" tgt={}", target.0));
    }
    line
}

/// Decode a fault plan line produced by [`encode_fault_plan`].
pub fn decode_fault_plan(line: &str) -> Result<FaultPlan, WireError> {
    let mut plan = FaultPlan::quiescent(0);
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.first() != Some(&"plan") {
        return err("plan tag", line);
    }
    let rate = |v: &str| -> Result<f64, WireError> {
        u64::from_str_radix(v, 16)
            .map(f64::from_bits)
            .or(err("rate bits", line))
    };
    for field in &fields[1..] {
        let (key, value) = field.split_once('=').ok_or(WireError {
            what: "key=value",
            line: line.to_owned(),
        })?;
        match key {
            "seed" => plan.seed = parse_u64(value, line)?,
            "nomem" => plan.transient_no_memory = rate(value)?,
            "partial" => plan.partial_batch = rate(value)?,
            "wrongres" => plan.wrong_residence = rate(value)?,
            "drop" => plan.drop_page = rate(value)?,
            "spurious" => plan.spurious_evict = rate(value)?,
            "corrupt" => plan.corrupt_backing = rate(value)?,
            "replay" => plan.replay_backing = rate(value)?,
            "delay" => plan.delay = rate(value)?,
            "delay_cycles" => plan.delay_cycles = parse_u64(value, line)?,
            "suspend" => plan.suspend = rate(value)?,
            "max" => {
                plan.max_injections = if value == "-" {
                    None
                } else {
                    Some(parse_u64(value, line)?)
                }
            }
            "tgt" => plan.target = Some(parse_eid(value, line)?),
            _ => return err("plan key", line),
        }
    }
    Ok(plan)
}

/// Encode a transition kind (stable one-word tags shared with
/// `TransitionKind::name`).
pub fn encode_transition_kind(kind: TransitionKind) -> &'static str {
    kind.name()
}

/// Decode a transition kind tag.
pub fn decode_transition_kind(tag: &str) -> Result<TransitionKind, WireError> {
    TransitionKind::ALL
        .into_iter()
        .find(|&k| k.name() == tag)
        .ok_or_else(|| WireError {
            what: "transition kind",
            line: tag.to_owned(),
        })
}

fn rest_of_line(fields: &[&str], line: &str) -> Result<String, WireError> {
    if fields.is_empty() {
        return err("empty why", line);
    }
    Ok(fields.join(" "))
}

/// Encode one flight-event payload (the part of an `ev` line after the
/// seq/cycles/corr header fields).
pub fn encode_flight_event(event: &FlightEvent) -> String {
    match event {
        FlightEvent::Transition { kind, eid, tcs } => {
            format!("tr {} {} {}", encode_transition_kind(*kind), eid.0, tcs)
        }
        FlightEvent::Kernel(obs) => format!("k {}", encode_observation(obs)),
        FlightEvent::HandlerEntry { eid, vpn } => format!("he {} {}", eid.0, vpn.0),
        FlightEvent::DecisionForward { vpn } => format!("fwd {}", vpn.0),
        FlightEvent::DecisionClusterFetch { vpn, pages } => {
            format!("cfetch {} {}", vpn.0, pages_field(pages))
        }
        FlightEvent::DecisionEvict { pages } => format!("evd {}", pages_field(pages)),
        FlightEvent::Retry {
            attempt,
            backoff_cycles,
        } => format!("retry {attempt} {backoff_cycles}"),
        FlightEvent::Misbehavior {
            vpn,
            used,
            budget,
            why,
        } => format!("mis {} {used} {budget} {why}", vpn.0),
        FlightEvent::Degrade { from, to } => format!("shrink {from} {to}"),
        FlightEvent::AttackDetected { vpn, why } => format!("attack {} {why}", vpn.0),
        FlightEvent::RateLimitKill => "rlkill".to_owned(),
        FlightEvent::SnapshotCapture { counter } => format!("snapcap {counter}"),
        FlightEvent::SnapshotRestore { counter } => format!("snaprest {counter}"),
        FlightEvent::Supervisor { eid, action, why } => {
            format!("sup {} {action} {why}", eid.0)
        }
        FlightEvent::SpanClose {
            kind,
            start_cycles,
            end_cycles,
        } => format!("span {kind} {start_cycles} {end_cycles}"),
        FlightEvent::WatchAlert {
            eid,
            detector,
            window,
            score_milli,
            vpn,
            why,
        } => {
            let page = match vpn {
                Some(v) => v.0.to_string(),
                None => "-".to_owned(),
            };
            format!(
                "walert {} {detector} {window} {score_milli} {page} {why}",
                eid.0
            )
        }
    }
}

fn decode_flight_event_fields(fields: &[&str], line: &str) -> Result<FlightEvent, WireError> {
    let [tag, rest @ ..] = fields else {
        return err("flight event tag", line);
    };
    match (*tag, rest) {
        ("tr", [kind, eid, tcs]) => Ok(FlightEvent::Transition {
            kind: decode_transition_kind(kind)?,
            eid: parse_eid(eid, line)?,
            tcs: parse_usize(tcs, line)?,
        }),
        ("k", obs) => {
            let joined = obs.join(" ");
            Ok(FlightEvent::Kernel(decode_observation(&joined)?))
        }
        ("he", [eid, vpn]) => Ok(FlightEvent::HandlerEntry {
            eid: parse_eid(eid, line)?,
            vpn: Vpn(parse_u64(vpn, line)?),
        }),
        ("fwd", [vpn]) => Ok(FlightEvent::DecisionForward {
            vpn: Vpn(parse_u64(vpn, line)?),
        }),
        ("cfetch", [vpn, pages]) => Ok(FlightEvent::DecisionClusterFetch {
            vpn: Vpn(parse_u64(vpn, line)?),
            pages: parse_pages(pages, line)?,
        }),
        ("evd", [pages]) => Ok(FlightEvent::DecisionEvict {
            pages: parse_pages(pages, line)?,
        }),
        ("retry", [attempt, backoff]) => Ok(FlightEvent::Retry {
            attempt: parse_u64(attempt, line)?,
            backoff_cycles: parse_u64(backoff, line)?,
        }),
        ("mis", [vpn, used, budget, why @ ..]) => Ok(FlightEvent::Misbehavior {
            vpn: Vpn(parse_u64(vpn, line)?),
            used: parse_u64(used, line)?,
            budget: parse_u64(budget, line)?,
            why: rest_of_line(why, line)?,
        }),
        ("shrink", [from, to]) => Ok(FlightEvent::Degrade {
            from: parse_u64(from, line)?,
            to: parse_u64(to, line)?,
        }),
        ("attack", [vpn, why @ ..]) => Ok(FlightEvent::AttackDetected {
            vpn: Vpn(parse_u64(vpn, line)?),
            why: rest_of_line(why, line)?,
        }),
        ("rlkill", []) => Ok(FlightEvent::RateLimitKill),
        ("snapcap", [counter]) => Ok(FlightEvent::SnapshotCapture {
            counter: parse_u64(counter, line)?,
        }),
        ("snaprest", [counter]) => Ok(FlightEvent::SnapshotRestore {
            counter: parse_u64(counter, line)?,
        }),
        ("sup", [eid, action, why @ ..]) => Ok(FlightEvent::Supervisor {
            eid: parse_eid(eid, line)?,
            action: (*action).to_owned(),
            why: rest_of_line(why, line)?,
        }),
        ("span", [kind, start, end]) => Ok(FlightEvent::SpanClose {
            kind: (*kind).to_owned(),
            start_cycles: parse_u64(start, line)?,
            end_cycles: parse_u64(end, line)?,
        }),
        ("walert", [eid, detector, window, score, page, why @ ..]) => Ok(FlightEvent::WatchAlert {
            eid: parse_eid(eid, line)?,
            detector: (*detector).to_owned(),
            window: parse_u64(window, line)?,
            score_milli: parse_u64(score, line)?,
            vpn: if *page == "-" {
                None
            } else {
                Some(Vpn(parse_u64(page, line)?))
            },
            why: rest_of_line(why, line)?,
        }),
        _ => err("flight event", line),
    }
}

/// Encode one flight record as a single `ev` line (no trailing newline).
pub fn encode_flight_record(record: &FlightRecord) -> String {
    format!(
        "ev {} {} {} {}",
        record.seq,
        record.cycles,
        record.corr,
        encode_flight_event(&record.event)
    )
}

/// Decode one `ev` line.
pub fn decode_flight_record(line: &str) -> Result<FlightRecord, WireError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let ["ev", seq, cycles, corr, payload @ ..] = fields.as_slice() else {
        return err("ev header", line);
    };
    Ok(FlightRecord {
        seq: parse_u64(seq, line)?,
        cycles: parse_u64(cycles, line)?,
        corr: parse_u64(corr, line)?,
        event: decode_flight_event_fields(payload, line)?,
    })
}

/// Encode a whole flight log, one record per line.
pub fn encode_flight_log(records: &[FlightRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&encode_flight_record(record));
        out.push('\n');
    }
    out
}

/// Decode a flight log (blank lines and `#` comments skipped).
pub fn decode_flight_log(text: &str) -> Result<Vec<FlightRecord>, WireError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(decode_flight_record)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_prng::SimRng;

    fn random_pages(rng: &mut SimRng) -> Vec<Vpn> {
        let n = rng.gen_range_usize(0..6);
        (0..n).map(|_| Vpn(rng.gen_range(0..1 << 40))).collect()
    }

    fn random_injected_fault(rng: &mut SimRng) -> InjectedFault {
        match rng.gen_range(0..13) {
            0 => InjectedFault::TransientNoMemory,
            1 => InjectedFault::PartialBatch {
                completed: rng.gen_range_usize(0..100),
            },
            2 => InjectedFault::WrongResidence {
                index: rng.gen_range_usize(0..100),
            },
            3 => InjectedFault::DropPage {
                index: rng.gen_range_usize(0..100),
            },
            4 => InjectedFault::SpuriousEvict {
                vpn: Vpn(rng.next_u64() >> 12),
            },
            5 => InjectedFault::CorruptBacking {
                vpn: Vpn(rng.next_u64() >> 12),
            },
            6 => InjectedFault::ReplayBacking {
                vpn: Vpn(rng.next_u64() >> 12),
            },
            7 => InjectedFault::Delay {
                cycles: rng.next_u64() >> 20,
            },
            8 => InjectedFault::Suspend {
                completed: rng.gen_range_usize(0..100),
            },
            9 => InjectedFault::StaleSnapshot {
                counter: rng.next_u64() >> 32,
            },
            10 => InjectedFault::ForkedSnapshot {
                counter: rng.next_u64() >> 32,
            },
            11 => InjectedFault::TruncatedSnapshot {
                len: rng.gen_range_usize(0..100_000),
            },
            _ => InjectedFault::CounterRollback {
                to: rng.next_u64() >> 32,
            },
        }
    }

    fn random_observation(rng: &mut SimRng) -> Observation {
        let eid = EnclaveId(rng.next_u32() >> 8);
        match rng.gen_range(0..10) {
            0 => Observation::Fault {
                eid,
                va: Va(rng.next_u64() >> 4),
                kind: [AccessKind::Read, AccessKind::Write, AccessKind::Execute]
                    [rng.gen_range_usize(0..3)],
            },
            1 => Observation::FetchSyscall {
                eid,
                pages: random_pages(rng),
            },
            2 => Observation::EvictSyscall {
                eid,
                pages: random_pages(rng),
            },
            3 => Observation::AllocSyscall {
                eid,
                pages: random_pages(rng),
            },
            4 => Observation::SetEnclaveManaged {
                eid,
                pages: random_pages(rng),
            },
            5 => Observation::SetOsManaged {
                eid,
                pages: random_pages(rng),
            },
            6 => Observation::UntrustedAccess {
                key: rng.next_u64(),
                write: rng.gen_bool(0.5),
            },
            7 => Observation::DemandPaging {
                eid,
                vpn: Vpn(rng.next_u64() >> 12),
            },
            8 => Observation::AdBitObserved {
                eid,
                vpn: Vpn(rng.next_u64() >> 12),
                dirty: rng.gen_bool(0.5),
            },
            _ => Observation::FaultInjected {
                eid,
                fault: random_injected_fault(rng),
            },
        }
    }

    #[test]
    fn observation_roundtrip_randomized() {
        let mut rng = SimRng::seed_from_u64(0x11EA_4A6E);
        for case in 0..2000 {
            let obs = random_observation(&mut rng);
            let line = encode_observation(&obs);
            let back = decode_observation(&line).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(back, obs, "case {case}: {line}");
        }
    }

    #[test]
    fn stream_roundtrip_with_comments_and_blanks() {
        let mut rng = SimRng::seed_from_u64(0xC0FF);
        let stream: Vec<Observation> = (0..50).map(|_| random_observation(&mut rng)).collect();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&encode_observations(&stream));
        assert_eq!(decode_observations(&text).expect("decode"), stream);
    }

    #[test]
    fn injected_fault_roundtrip_randomized() {
        let mut rng = SimRng::seed_from_u64(0xFA17);
        for _ in 0..1000 {
            let fault = random_injected_fault(&mut rng);
            let text = encode_injected_fault(&fault);
            assert_eq!(decode_injected_fault(&text).expect("decode"), fault);
        }
    }

    #[test]
    fn fault_kind_roundtrip_exhaustive() {
        for kind in FaultKind::ALL {
            assert_eq!(
                decode_fault_kind(encode_fault_kind(kind)).expect("decode"),
                kind
            );
        }
        assert!(decode_fault_kind("bogus").is_err());
    }

    #[test]
    fn fault_plan_roundtrip_is_bit_exact() {
        let mut rng = SimRng::seed_from_u64(0x9A17);
        for _ in 0..200 {
            let plan = FaultPlan {
                seed: rng.next_u64(),
                transient_no_memory: rng.gen_f64(),
                partial_batch: rng.gen_f64() / 3.0,
                wrong_residence: rng.gen_f64() / 7.0,
                drop_page: rng.gen_f64() / 11.0,
                spurious_evict: rng.gen_f64() / 13.0,
                corrupt_backing: rng.gen_f64() / 17.0,
                replay_backing: rng.gen_f64() / 19.0,
                delay: rng.gen_f64() / 23.0,
                delay_cycles: rng.next_u64() >> 30,
                suspend: rng.gen_f64() / 29.0,
                max_injections: if rng.gen_bool(0.5) {
                    Some(rng.next_u64() >> 40)
                } else {
                    None
                },
                target: if rng.gen_bool(0.5) {
                    Some(EnclaveId(rng.next_u32() >> 8))
                } else {
                    None
                },
            };
            let line = encode_fault_plan(&plan);
            assert_eq!(decode_fault_plan(&line).expect("decode"), plan);
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "fault",
            "fault x y z",
            "fetch 1",
            "ua 5 q",
            "inj 1 warp 9",
            "plan seed=zz",
            "unknown 1 2 3",
        ] {
            assert!(decode_observation(bad).is_err(), "{bad:?} must not decode");
        }
    }

    fn random_why(rng: &mut SimRng) -> String {
        const WORDS: [&str; 8] = [
            "unexpected",
            "fault",
            "on",
            "pinned",
            "resident",
            "page",
            "under",
            "policy",
        ];
        let n = rng.gen_range_usize(1..5);
        (0..n)
            .map(|_| WORDS[rng.gen_range_usize(0..WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn random_flight_event(rng: &mut SimRng) -> FlightEvent {
        match rng.gen_range(0..16) {
            0 => FlightEvent::Transition {
                kind: TransitionKind::ALL[rng.gen_range_usize(0..TransitionKind::ALL.len())],
                eid: EnclaveId(rng.next_u32() >> 8),
                tcs: rng.gen_range_usize(0..8),
            },
            1 => FlightEvent::Kernel(random_observation(rng)),
            2 => FlightEvent::HandlerEntry {
                eid: EnclaveId(rng.next_u32() >> 8),
                vpn: Vpn(rng.next_u64() >> 12),
            },
            3 => FlightEvent::DecisionForward {
                vpn: Vpn(rng.next_u64() >> 12),
            },
            4 => FlightEvent::DecisionClusterFetch {
                vpn: Vpn(rng.next_u64() >> 12),
                pages: random_pages(rng),
            },
            5 => FlightEvent::DecisionEvict {
                pages: random_pages(rng),
            },
            6 => FlightEvent::Retry {
                attempt: rng.gen_range(1..8),
                backoff_cycles: rng.next_u64() >> 20,
            },
            7 => FlightEvent::Misbehavior {
                vpn: Vpn(rng.next_u64() >> 12),
                used: rng.gen_range(1..9),
                budget: rng.gen_range(1..9),
                why: random_why(rng),
            },
            8 => FlightEvent::Degrade {
                from: rng.gen_range(8..64),
                to: rng.gen_range(1..8),
            },
            9 => FlightEvent::AttackDetected {
                vpn: Vpn(rng.next_u64() >> 12),
                why: random_why(rng),
            },
            10 => FlightEvent::RateLimitKill,
            11 => FlightEvent::SnapshotCapture {
                counter: rng.next_u64() >> 32,
            },
            12 => FlightEvent::SnapshotRestore {
                counter: rng.next_u64() >> 32,
            },
            13 => FlightEvent::Supervisor {
                eid: EnclaveId(rng.next_u32() >> 8),
                action: ["retry", "quarantine", "restart", "evict", "shed", "shrink"]
                    [rng.gen_range_usize(0..6)]
                .to_owned(),
                why: random_why(rng),
            },
            14 => FlightEvent::SpanClose {
                kind: ["fault_handler", "ay_fetch_pages", "seal", "retry_backoff"]
                    [rng.gen_range_usize(0..4)]
                .to_owned(),
                start_cycles: rng.next_u64() >> 16,
                end_cycles: rng.next_u64() >> 16,
            },
            _ => FlightEvent::WatchAlert {
                eid: EnclaveId(rng.next_u32() >> 8),
                detector: ["fault_cusum", "entropy_cusum", "slo_burn", "epc_skew"]
                    [rng.gen_range_usize(0..4)]
                .to_owned(),
                window: rng.gen_range(0..10_000),
                score_milli: rng.next_u64() >> 24,
                vpn: if rng.gen_bool(0.5) {
                    Some(Vpn(rng.next_u64() >> 12))
                } else {
                    None
                },
                why: random_why(rng),
            },
        }
    }

    fn random_flight_record(rng: &mut SimRng) -> FlightRecord {
        FlightRecord {
            seq: rng.next_u64() >> 16,
            cycles: rng.next_u64() >> 8,
            corr: rng.gen_range(0..1000),
            event: random_flight_event(rng),
        }
    }

    #[test]
    fn flight_record_roundtrip_randomized() {
        let mut rng = SimRng::seed_from_u64(0xF1_16_47);
        for case in 0..2000 {
            let record = random_flight_record(&mut rng);
            let line = encode_flight_record(&record);
            let back = decode_flight_record(&line).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(back, record, "case {case}: {line}");
        }
    }

    #[test]
    fn flight_log_roundtrip_with_comments_and_blanks() {
        let mut rng = SimRng::seed_from_u64(0x10_6B00C);
        let log: Vec<FlightRecord> = (0..80).map(|_| random_flight_record(&mut rng)).collect();
        let mut text = String::from("# flight log\n\n");
        text.push_str(&encode_flight_log(&log));
        assert_eq!(decode_flight_log(&text).expect("decode"), log);
    }

    #[test]
    fn transition_kind_roundtrip_exhaustive() {
        for kind in TransitionKind::ALL {
            assert_eq!(
                decode_transition_kind(encode_transition_kind(kind)).expect("decode"),
                kind
            );
        }
        assert!(decode_transition_kind("warp").is_err());
    }

    #[test]
    fn malformed_flight_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "ev",
            "ev 1 2",
            "ev 1 2 3",
            "ev 1 2 3 tr bogus 1 0",
            "ev 1 2 3 k unknown 1",
            "ev 1 2 3 mis 4 1 8",
            "ev 1 2 3 attack 4",
            "ev x 2 3 rlkill",
            "ev 1 2 3 span fault_handler 10",
            "ev 1 2 3 snapcap",
            "ev 1 2 3 snaprest one",
            "ev 1 2 3 k inj 1 stalesnap",
            "ev 1 2 3 k inj 1 truncsnap -4",
            "ev 1 2 3 sup 4 restart",
            "ev 1 2 3 sup x restart wedged",
        ] {
            assert!(
                decode_flight_record(bad).is_err(),
                "{bad:?} must not decode"
            );
        }
    }
}
