//! The Autarky SGX-driver interface: the `ay_*` system calls (paper
//! §5.2.1) plus supporting calls used by the SGXv2 software-paging path.
//!
//! All calls are made by the *trusted runtime* but executed by the
//! *untrusted OS*, so their arguments (page lists!) are adversary-visible;
//! every call is logged to the observation stream. The calls are batched
//! by design "to minimize system calls and enclave crossing overhead".

use autarky_sgx_sim::pagetable::Pte;
use autarky_sgx_sim::{EnclaveId, Perms, Vpn};

use crate::kernel::{Observation, Os, OsError};

impl Os {
    /// `ay_set_enclave_managed`: yield management of `pages` to the
    /// enclave. Returns each page's residence status so the runtime can
    /// initialize its tracking (and page in what it needs).
    ///
    /// Enclave-managed resident pages are pinned: the OS will not evict
    /// them while the enclave is runnable.
    pub fn ay_set_enclave_managed(
        &mut self,
        eid: EnclaveId,
        pages: &[Vpn],
    ) -> Result<Vec<(Vpn, bool)>, OsError> {
        self.charge_syscall();
        self.observe(Observation::SetEnclaveManaged {
            eid,
            pages: pages.to_vec(),
        });
        let machine_resident: Vec<bool> = pages
            .iter()
            .map(|&vpn| self.machine.is_resident(eid, vpn))
            .collect();
        let proc = self.proc_mut(eid)?;
        let mut out = Vec::with_capacity(pages.len());
        for (&vpn, &resident) in pages.iter().zip(&machine_resident) {
            proc.os_managed.remove(&vpn);
            proc.enclave_managed.insert(vpn);
            proc.eviction.forget(vpn);
            out.push((vpn, resident));
        }
        Ok(out)
    }

    /// `ay_set_os_managed`: return management of `pages` to the OS, which
    /// may from now on evict them at will.
    pub fn ay_set_os_managed(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.observe(Observation::SetOsManaged {
            eid,
            pages: pages.to_vec(),
        });
        let machine_resident: Vec<bool> = pages
            .iter()
            .map(|&vpn| self.machine.is_resident(eid, vpn))
            .collect();
        let proc = self.proc_mut(eid)?;
        for (&vpn, &resident) in pages.iter().zip(&machine_resident) {
            proc.enclave_managed.remove(&vpn);
            proc.os_managed.insert(vpn);
            proc.eviction.forget(vpn);
            if resident {
                proc.eviction.on_resident(vpn);
            }
        }
        Ok(())
    }

    /// `ay_fetch_pages`: securely bring `pages` into EPC from the backing
    /// store (batched). Pages that are already resident but unmapped are
    /// remapped (this also serves the forwarding path for faults on
    /// OS-managed pages).
    pub fn ay_fetch_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.observe(Observation::FetchSyscall {
            eid,
            pages: pages.to_vec(),
        });
        for &vpn in pages {
            if self.machine.is_resident(eid, vpn) {
                // Restore the mapping (with preset A/D) if it was broken.
                let frame = self.machine.frame_of(eid, vpn)?;
                let pt = self.machine.page_table_mut(eid)?;
                match pt.get_mut(vpn) {
                    Some(pte) => {
                        pte.present = true;
                        pte.frame = frame;
                        pte.accessed = true;
                        pte.dirty = true;
                    }
                    None => pt.map(
                        vpn,
                        Pte {
                            present: true,
                            frame,
                            perms: Perms::RW,
                            accessed: true,
                            dirty: true,
                        },
                    ),
                }
                continue;
            }
            if !self.backing.has_sealed(eid, vpn) {
                return Err(OsError::BadRequest("fetch of page with no backing copy"));
            }
            self.make_room(eid)?;
            self.fetch_page_eldu(eid, vpn)?;
            // Fetched enclave-managed pages are pinned (not in the OS
            // eviction queue); OS-managed ones re-enter it.
            let proc = self.proc_mut(eid)?;
            if proc.os_managed.contains(&vpn) {
                proc.eviction.on_resident(vpn);
            }
        }
        Ok(())
    }

    /// `ay_evict_pages`: securely write `pages` out to the backing store
    /// (batched `EBLOCK`/`ETRACK`/`EWB`).
    pub fn ay_evict_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.observe(Observation::EvictSyscall {
            eid,
            pages: pages.to_vec(),
        });
        for &vpn in pages {
            if !self.machine.is_resident(eid, vpn) {
                return Err(OsError::BadRequest("evict of non-resident page"));
            }
            self.evict_page_ewb(eid, vpn)?;
            self.proc_mut(eid)?.eviction.forget(vpn);
        }
        Ok(())
    }

    /// `ay_alloc_pages`: lazily allocate fresh zeroed pages (`EAUG`). The
    /// runtime must `EACCEPT` each page before use.
    pub fn ay_alloc_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.observe(Observation::AllocSyscall {
            eid,
            pages: pages.to_vec(),
        });
        for &vpn in pages {
            if self.machine.is_resident(eid, vpn) {
                return Err(OsError::BadRequest("alloc of resident page"));
            }
            self.make_room(eid)?;
            let frame = self.machine.eaug(eid, vpn)?;
            self.machine.page_table_mut(eid)?.map(
                vpn,
                Pte {
                    present: true,
                    frame,
                    perms: Perms::RW,
                    accessed: true,
                    dirty: true,
                },
            );
            // Ownership: self-paging enclaves manage their fresh pages
            // (unless previously declared OS-managed); legacy enclaves'
            // pages always belong to the OS and join its eviction queue.
            let self_paging = self.machine.secs(eid)?.attributes.self_paging;
            let proc = self.proc_mut(eid)?;
            if self_paging && !proc.os_managed.contains(&vpn) {
                proc.enclave_managed.insert(vpn);
            } else {
                proc.os_managed.insert(vpn);
                proc.eviction.on_resident(vpn);
            }
        }
        Ok(())
    }

    /// `ay_protect_pages`: update the PTE permissions of mapped pages
    /// (the mprotect the runtime issues after an `EACCEPTCOPY` restores a
    /// page whose EPCM permissions differ from the default RW mapping).
    pub fn ay_protect_pages(
        &mut self,
        eid: EnclaveId,
        pages: &[Vpn],
        perms: Perms,
    ) -> Result<(), OsError> {
        self.charge_syscall();
        for &vpn in pages {
            let pt = self.machine.page_table_mut(eid)?;
            if let Some(pte) = pt.get_mut(vpn) {
                pte.perms = perms;
                // A/D stay preset, per the Autarky driver contract.
                pte.accessed = true;
                pte.dirty = true;
            }
            self.machine.tlb_shootdown(eid, vpn);
        }
        Ok(())
    }

    /// `ay_remove_pages`: complete the SGXv2 trim handshake for pages the
    /// enclave has already `EACCEPT`ed as trimmed, freeing their frames.
    pub fn ay_remove_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        for &vpn in pages {
            self.machine.eremove(eid, vpn)?;
            self.machine.page_table_mut(eid)?.unmap(vpn);
            let proc = self.proc_mut(eid)?;
            proc.eviction.forget(vpn);
        }
        Ok(())
    }

    /// Untrusted-memory write on behalf of the enclave (SGXv2 software
    /// eviction path, ORAM bucket store). The key, the size, and the
    /// access itself are all adversary-visible.
    pub fn sys_untrusted_write(&mut self, key: u64, data: Vec<u8>) {
        self.charge_syscall();
        self.observe(Observation::UntrustedAccess { key, write: true });
        self.backing.put_blob(key, data);
    }

    /// Untrusted-memory read on behalf of the enclave.
    pub fn sys_untrusted_read(&mut self, key: u64) -> Option<Vec<u8>> {
        self.charge_syscall();
        self.observe(Observation::UntrustedAccess { key, write: false });
        self.backing.get_blob(key).map(|b| b.to_vec())
    }
}
