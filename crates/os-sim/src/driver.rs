//! The Autarky SGX-driver interface: the `ay_*` system calls (paper
//! §5.2.1) plus supporting calls used by the SGXv2 software-paging path.
//!
//! All calls are made by the *trusted runtime* but executed by the
//! *untrusted OS*, so their arguments (page lists!) are adversary-visible;
//! every call is logged to the observation stream. The calls are batched
//! by design "to minimize system calls and enclave crossing overhead".
//!
//! When a [`crate::fault::FaultPlan`] is armed, every entry point first
//! consults the injector (one decision per call) and may fail
//! transiently, complete only a prefix of its batch, lie in its reply,
//! or tamper with backing state — see [`crate::fault`]. Batch calls that
//! fail mid-loop leave a *prefix* of the batch processed: callers must
//! treat any error as "some pages may have been processed" and reconcile
//! against architectural state before retrying.

use autarky_sgx_sim::pagetable::Pte;
use autarky_sgx_sim::{EnclaveId, Perms, Vpn};

use crate::fault::{FaultKind, InjectedFault, SyscallKind};
use crate::kernel::{Observation, Os, OsError};

impl Os {
    /// `ay_set_enclave_managed`: yield management of `pages` to the
    /// enclave. Returns each page's residence status so the runtime can
    /// initialize its tracking (and page in what it needs).
    ///
    /// Enclave-managed resident pages are pinned: the OS will not evict
    /// them while the enclave is runnable. The reply travels through
    /// untrusted memory, so a hostile OS can lie in it (and the armed
    /// injector sometimes does): the runtime must verify the answers
    /// against architecturally-authenticated state.
    pub fn ay_set_enclave_managed(
        &mut self,
        eid: EnclaveId,
        pages: &[Vpn],
    ) -> Result<Vec<(Vpn, bool)>, OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        self.observe(Observation::SetEnclaveManaged {
            eid,
            pages: pages.to_vec(),
        });
        let decision = self.inject_decide(eid, SyscallKind::SetEnclaveManaged, pages.len());
        match decision {
            Some(FaultKind::Delay) => self.apply_injected_delay(eid),
            Some(FaultKind::Suspend) => return Err(self.apply_injected_suspend(eid, 0)),
            _ => {}
        }
        let machine_resident: Vec<bool> = pages
            .iter()
            .map(|&vpn| self.machine.is_resident(eid, vpn))
            .collect();
        let proc = self.proc_mut(eid)?;
        let mut out = Vec::with_capacity(pages.len());
        for (&vpn, &resident) in pages.iter().zip(&machine_resident) {
            proc.os_managed.remove(&vpn);
            proc.enclave_managed.insert(vpn);
            proc.eviction.forget(vpn);
            out.push((vpn, resident));
        }
        if decision == Some(FaultKind::WrongResidence) {
            let index = self.inject_pick_index(out.len());
            out[index].1 = !out[index].1;
            self.record_injection(eid, InjectedFault::WrongResidence { index });
        }
        Ok(out)
    }

    /// `ay_set_os_managed`: return management of `pages` to the OS, which
    /// may from now on evict them at will.
    pub fn ay_set_os_managed(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        self.observe(Observation::SetOsManaged {
            eid,
            pages: pages.to_vec(),
        });
        match self.inject_decide(eid, SyscallKind::SetOsManaged, pages.len()) {
            Some(FaultKind::Delay) => self.apply_injected_delay(eid),
            Some(FaultKind::Suspend) => return Err(self.apply_injected_suspend(eid, 0)),
            _ => {}
        }
        let machine_resident: Vec<bool> = pages
            .iter()
            .map(|&vpn| self.machine.is_resident(eid, vpn))
            .collect();
        let proc = self.proc_mut(eid)?;
        for (&vpn, &resident) in pages.iter().zip(&machine_resident) {
            proc.enclave_managed.remove(&vpn);
            proc.os_managed.insert(vpn);
            proc.eviction.forget(vpn);
            if resident {
                proc.eviction.on_resident(vpn);
            }
        }
        Ok(())
    }

    /// `ay_fetch_pages`: securely bring `pages` into EPC from the backing
    /// store (batched). Pages that are already resident but unmapped are
    /// remapped (this also serves the forwarding path for faults on
    /// OS-managed pages).
    ///
    /// On error a prefix of the batch may already be fetched; the caller
    /// must re-check residency rather than assume all-or-nothing.
    pub fn ay_fetch_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        self.observe(Observation::FetchSyscall {
            eid,
            pages: pages.to_vec(),
        });
        let decision = self.inject_decide(eid, SyscallKind::Fetch, pages.len());
        // Faults that shape the whole call.
        let mut stop_after = usize::MAX; // PartialBatch / Suspend prefix
        let mut dropped = usize::MAX; // DropPage index
        match decision {
            Some(FaultKind::Delay) => self.apply_injected_delay(eid),
            Some(FaultKind::TransientNoMemory) => {
                self.record_injection(eid, InjectedFault::TransientNoMemory);
                return Err(OsError::NoMemory);
            }
            Some(FaultKind::PartialBatch) => {
                stop_after = self.inject_pick_index(pages.len());
            }
            Some(FaultKind::Suspend) => {
                let completed = if pages.is_empty() {
                    0
                } else {
                    self.inject_pick_index(pages.len())
                };
                stop_after = completed;
            }
            Some(FaultKind::DropPage) => {
                dropped = self.inject_pick_index(pages.len());
            }
            Some(FaultKind::SpuriousEvict) => {
                self.apply_spurious_evict(eid)?;
            }
            Some(FaultKind::CorruptBacking) => {
                if let Some(&vpn) = pages.iter().find(|&&vpn| {
                    !self.machine.is_resident(eid, vpn) && self.backing.has_sealed(eid, vpn)
                }) {
                    self.backing.corrupt_sealed(eid, vpn);
                    self.record_injection(eid, InjectedFault::CorruptBacking { vpn });
                }
            }
            Some(FaultKind::ReplayBacking) => {
                if let Some(&vpn) = pages.iter().find(|&&vpn| {
                    !self.machine.is_resident(eid, vpn) && self.backing.has_stale(eid, vpn)
                }) {
                    self.backing.replay_sealed(eid, vpn);
                    self.record_injection(eid, InjectedFault::ReplayBacking { vpn });
                }
            }
            _ => {}
        }
        for (i, &vpn) in pages.iter().enumerate() {
            if i >= stop_after {
                match decision {
                    Some(FaultKind::PartialBatch) => {
                        self.record_injection(eid, InjectedFault::PartialBatch { completed: i });
                        return Err(OsError::NoMemory);
                    }
                    Some(FaultKind::Suspend) => {
                        return Err(self.apply_injected_suspend(eid, i));
                    }
                    _ => unreachable!("stop_after set only for partial/suspend"),
                }
            }
            if i == dropped {
                self.record_injection(eid, InjectedFault::DropPage { index: i });
                continue;
            }
            if self.machine.is_resident(eid, vpn) {
                // Restore the mapping (with preset A/D) if it was broken.
                let frame = self.machine.frame_of(eid, vpn)?;
                let pt = self.machine.page_table_mut(eid)?;
                match pt.get_mut(vpn) {
                    Some(pte) => {
                        pte.present = true;
                        pte.frame = frame;
                        pte.accessed = true;
                        pte.dirty = true;
                    }
                    None => pt.map(
                        vpn,
                        Pte {
                            present: true,
                            frame,
                            perms: Perms::RW,
                            accessed: true,
                            dirty: true,
                        },
                    ),
                }
                continue;
            }
            if !self.backing.has_sealed(eid, vpn) {
                return Err(OsError::BadRequest("fetch of page with no backing copy"));
            }
            self.make_room(eid)?;
            self.fetch_page_eldu(eid, vpn)?;
            // Fetched enclave-managed pages are pinned (not in the OS
            // eviction queue); OS-managed ones re-enter it.
            let proc = self.proc_mut(eid)?;
            if proc.os_managed.contains(&vpn) {
                proc.eviction.on_resident(vpn);
            }
        }
        // A suspend drawn against the full batch length fires after the
        // loop when its prefix covered every page.
        if decision == Some(FaultKind::Suspend) {
            return Err(self.apply_injected_suspend(eid, pages.len()));
        }
        Ok(())
    }

    /// `ay_evict_pages`: securely write `pages` out to the backing store
    /// (batched `EBLOCK`/`ETRACK`/`EWB`).
    ///
    /// On error a prefix of the batch may already be evicted; retrying
    /// the same list verbatim will then fail with `BadRequest` on the
    /// already-evicted prefix — callers must re-check residency first.
    pub fn ay_evict_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        self.observe(Observation::EvictSyscall {
            eid,
            pages: pages.to_vec(),
        });
        let decision = self.inject_decide(eid, SyscallKind::Evict, pages.len());
        let mut stop_after = usize::MAX;
        match decision {
            Some(FaultKind::Delay) => self.apply_injected_delay(eid),
            Some(FaultKind::TransientNoMemory) => {
                self.record_injection(eid, InjectedFault::TransientNoMemory);
                return Err(OsError::NoMemory);
            }
            Some(FaultKind::PartialBatch) | Some(FaultKind::Suspend) => {
                stop_after = if pages.is_empty() {
                    0
                } else {
                    self.inject_pick_index(pages.len())
                };
            }
            Some(FaultKind::SpuriousEvict) => {
                self.apply_spurious_evict(eid)?;
            }
            _ => {}
        }
        for (i, &vpn) in pages.iter().enumerate() {
            if i >= stop_after {
                match decision {
                    Some(FaultKind::PartialBatch) => {
                        self.record_injection(eid, InjectedFault::PartialBatch { completed: i });
                        return Err(OsError::NoMemory);
                    }
                    Some(FaultKind::Suspend) => {
                        return Err(self.apply_injected_suspend(eid, i));
                    }
                    _ => unreachable!("stop_after set only for partial/suspend"),
                }
            }
            if !self.machine.is_resident(eid, vpn) {
                return Err(OsError::BadRequest("evict of non-resident page"));
            }
            self.evict_page_ewb(eid, vpn)?;
            self.proc_mut(eid)?.eviction.forget(vpn);
        }
        if decision == Some(FaultKind::Suspend) {
            return Err(self.apply_injected_suspend(eid, pages.len()));
        }
        Ok(())
    }

    /// `ay_alloc_pages`: lazily allocate fresh zeroed pages (`EAUG`). The
    /// runtime must `EACCEPT` each page before use.
    ///
    /// On error a prefix of the batch may already be allocated; a retry
    /// must skip pages that are now resident (`BadRequest` otherwise).
    pub fn ay_alloc_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        self.observe(Observation::AllocSyscall {
            eid,
            pages: pages.to_vec(),
        });
        let decision = self.inject_decide(eid, SyscallKind::Alloc, pages.len());
        let mut stop_after = usize::MAX;
        match decision {
            Some(FaultKind::Delay) => self.apply_injected_delay(eid),
            Some(FaultKind::TransientNoMemory) => {
                self.record_injection(eid, InjectedFault::TransientNoMemory);
                return Err(OsError::NoMemory);
            }
            Some(FaultKind::PartialBatch) | Some(FaultKind::Suspend) => {
                stop_after = if pages.is_empty() {
                    0
                } else {
                    self.inject_pick_index(pages.len())
                };
            }
            _ => {}
        }
        for (i, &vpn) in pages.iter().enumerate() {
            if i >= stop_after {
                match decision {
                    Some(FaultKind::PartialBatch) => {
                        self.record_injection(eid, InjectedFault::PartialBatch { completed: i });
                        return Err(OsError::NoMemory);
                    }
                    Some(FaultKind::Suspend) => {
                        return Err(self.apply_injected_suspend(eid, i));
                    }
                    _ => unreachable!("stop_after set only for partial/suspend"),
                }
            }
            if self.machine.is_resident(eid, vpn) {
                return Err(OsError::BadRequest("alloc of resident page"));
            }
            self.make_room(eid)?;
            let frame = self.machine.eaug(eid, vpn)?;
            self.machine.page_table_mut(eid)?.map(
                vpn,
                Pte {
                    present: true,
                    frame,
                    perms: Perms::RW,
                    accessed: true,
                    dirty: true,
                },
            );
            // Ownership: self-paging enclaves manage their fresh pages
            // (unless previously declared OS-managed); legacy enclaves'
            // pages always belong to the OS and join its eviction queue.
            let self_paging = self.machine.secs(eid)?.attributes.self_paging;
            let proc = self.proc_mut(eid)?;
            if self_paging && !proc.os_managed.contains(&vpn) {
                proc.enclave_managed.insert(vpn);
            } else {
                proc.os_managed.insert(vpn);
                proc.eviction.on_resident(vpn);
            }
        }
        if decision == Some(FaultKind::Suspend) {
            return Err(self.apply_injected_suspend(eid, pages.len()));
        }
        Ok(())
    }

    /// `ay_protect_pages`: update the PTE permissions of mapped pages
    /// (the mprotect the runtime issues after an `EACCEPTCOPY` restores a
    /// page whose EPCM permissions differ from the default RW mapping).
    pub fn ay_protect_pages(
        &mut self,
        eid: EnclaveId,
        pages: &[Vpn],
        perms: Perms,
    ) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        if let Some(FaultKind::Delay) = self.inject_decide(eid, SyscallKind::Protect, pages.len()) {
            self.apply_injected_delay(eid);
        }
        for &vpn in pages {
            let pt = self.machine.page_table_mut(eid)?;
            if let Some(pte) = pt.get_mut(vpn) {
                pte.perms = perms;
                // A/D stay preset, per the Autarky driver contract.
                pte.accessed = true;
                pte.dirty = true;
            }
            self.machine.tlb_shootdown(eid, vpn);
        }
        Ok(())
    }

    /// `ay_remove_pages`: complete the SGXv2 trim handshake for pages the
    /// enclave has already `EACCEPT`ed as trimmed, freeing their frames.
    pub fn ay_remove_pages(&mut self, eid: EnclaveId, pages: &[Vpn]) -> Result<(), OsError> {
        self.charge_syscall();
        self.resume_injected_suspend()?;
        if let Some(FaultKind::Delay) = self.inject_decide(eid, SyscallKind::Remove, pages.len()) {
            self.apply_injected_delay(eid);
        }
        for &vpn in pages {
            self.machine.eremove(eid, vpn)?;
            self.machine.page_table_mut(eid)?.unmap(vpn);
            let proc = self.proc_mut(eid)?;
            proc.eviction.forget(vpn);
        }
        Ok(())
    }

    /// Untrusted-memory write on behalf of the enclave (SGXv2 software
    /// eviction path, ORAM bucket store). The key, the size, and the
    /// access itself are all adversary-visible.
    pub fn sys_untrusted_write(&mut self, key: u64, data: Vec<u8>) {
        self.charge_syscall();
        // Untrusted accesses are not attributable to an enclave at this
        // layer; EnclaveId(0) stands in, so targeted plans skip them.
        if let Some(FaultKind::Delay) = self.inject_decide(EnclaveId(0), SyscallKind::Untrusted, 0)
        {
            self.apply_injected_delay(EnclaveId(0));
        }
        self.observe(Observation::UntrustedAccess { key, write: true });
        self.backing.put_blob(key, data);
    }

    /// Untrusted-memory read on behalf of the enclave.
    pub fn sys_untrusted_read(&mut self, key: u64) -> Option<Vec<u8>> {
        self.charge_syscall();
        // Untrusted accesses are not attributable to an enclave at this
        // layer; EnclaveId(0) stands in, so targeted plans skip them.
        if let Some(FaultKind::Delay) = self.inject_decide(EnclaveId(0), SyscallKind::Untrusted, 0)
        {
            self.apply_injected_delay(EnclaveId(0));
        }
        self.observe(Observation::UntrustedAccess { key, write: false });
        self.backing.get_blob(key).map(|b| b.to_vec())
    }
}
