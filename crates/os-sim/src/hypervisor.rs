//! Virtualized EPC management (paper §5.4).
//!
//! In virtualized deployments both the guest OS and the hypervisor manage
//! enclave memory. Autarky supports:
//!
//! * **static partitioning** — each VM gets a fixed EPC share (what Azure
//!   does; "will require no modification");
//! * **ballooning** — the hypervisor asks a guest to shrink; the guest
//!   evicts OS-managed pages and, cooperatively, asks enclaves to reduce
//!   their self-paging budgets (the paper sketches this and defers the
//!   full design; this module implements the simple cooperative version);
//! * **whole-enclave swap** as the non-cooperative fallback: transparent
//!   hypervisor demand paging of individual enclave pages is exactly what
//!   Autarky forbids.
//!
//! A VM here is a group of enclaves hosted by the (single) guest OS; the
//! hypervisor accounts their aggregate EPC frames against the partition.

use std::collections::{BTreeSet, HashMap};

use autarky_sgx_sim::EnclaveId;

use crate::kernel::{Os, OsError};

/// Identifier of a guest VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

#[derive(Debug, Default)]
struct Partition {
    enclaves: BTreeSet<EnclaveId>,
    frame_cap: usize,
}

/// Outcome of a balloon request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalloonOutcome {
    /// The guest reached the target by evicting OS-managed pages.
    Satisfied {
        /// Frames in use after ballooning.
        usage: usize,
    },
    /// Pinned enclave-managed pages prevent reaching the target without
    /// enclave cooperation; the hypervisor must either accept the usage,
    /// ask enclaves to shrink their budgets, or suspend whole enclaves.
    NeedsEnclaveCooperation {
        /// Frames in use after evicting everything evictable.
        usage: usize,
        /// The requested target.
        target: usize,
    },
}

/// The hypervisor's EPC view.
#[derive(Debug, Default)]
pub struct Hypervisor {
    partitions: HashMap<VmId, Partition>,
}

impl Hypervisor {
    /// Create a hypervisor with no partitions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or resize) a VM's static EPC partition.
    pub fn set_partition(&mut self, vm: VmId, frame_cap: usize) {
        self.partitions.entry(vm).or_default().frame_cap = frame_cap;
    }

    /// Assign an enclave to a VM's partition.
    pub fn assign(&mut self, vm: VmId, eid: EnclaveId) {
        self.partitions.entry(vm).or_default().enclaves.insert(eid);
    }

    /// The VM's configured cap.
    pub fn partition_cap(&self, vm: VmId) -> usize {
        self.partitions.get(&vm).map(|p| p.frame_cap).unwrap_or(0)
    }

    /// Frames the VM's enclaves currently occupy.
    pub fn usage(&self, os: &Os, vm: VmId) -> usize {
        self.partitions
            .get(&vm)
            .map(|p| {
                p.enclaves
                    .iter()
                    .map(|&e| os.machine.epc_frames_of(e))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Enforce the static partition: cap each enclave's OS quota so the
    /// group can never exceed its share. (Static partitioning needs no
    /// Autarky-specific changes — §5.4.)
    pub fn enforce_partition(&self, os: &mut Os, vm: VmId) -> Result<(), OsError> {
        let partition = match self.partitions.get(&vm) {
            Some(p) => p,
            None => return Ok(()),
        };
        let per_enclave = partition.frame_cap / partition.enclaves.len().max(1);
        for &eid in &partition.enclaves {
            os.set_epc_quota(eid, per_enclave)?;
        }
        Ok(())
    }

    /// Balloon request: drive the VM's usage down to `target` frames by
    /// evicting OS-managed pages. Pinned enclave-managed pages are never
    /// touched — reclaiming them needs enclave cooperation (budget
    /// shrinking via the runtime) or whole-enclave suspension.
    pub fn balloon(&self, os: &mut Os, vm: VmId, target: usize) -> Result<BalloonOutcome, OsError> {
        let enclaves: Vec<EnclaveId> = self
            .partitions
            .get(&vm)
            .map(|p| p.enclaves.iter().copied().collect())
            .unwrap_or_default();
        loop {
            let usage = self.usage(os, vm);
            if usage <= target {
                return Ok(BalloonOutcome::Satisfied { usage });
            }
            // Evict one OS-managed page from the enclave with the largest
            // footprint; stop when nothing is evictable.
            let victim = enclaves
                .iter()
                .copied()
                .max_by_key(|&e| os.machine.epc_frames_of(e))
                .ok_or(OsError::NoMemory)?;
            match os.evict_one_os_managed(victim) {
                Ok(_) => {}
                Err(OsError::NoMemory) => {
                    // Try the others before giving up.
                    let mut any = false;
                    for &eid in &enclaves {
                        if eid != victim && os.evict_one_os_managed(eid).is_ok() {
                            any = true;
                            break;
                        }
                    }
                    if !any {
                        return Ok(BalloonOutcome::NeedsEnclaveCooperation {
                            usage: self.usage(os, vm),
                            target,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::EnclaveImage;
    use autarky_sgx_sim::machine::MachineConfig;
    use autarky_sgx_sim::Va;

    fn os() -> Os {
        Os::new(MachineConfig {
            epc_frames: 512,
            ..Default::default()
        })
    }

    fn image(name: &str, base: u64, self_paging: bool) -> EnclaveImage {
        let mut img = EnclaveImage::named(name);
        img.base = Va(base);
        img.self_paging = self_paging;
        img.heap_pages = 32;
        img
    }

    #[test]
    fn static_partitioning_caps_each_vm() {
        let mut os = os();
        let mut hv = Hypervisor::new();
        let e1 = os
            .load_enclave(&image("vm1-a", 0x1000_0000, false))
            .expect("load");
        let e2 = os
            .load_enclave(&image("vm2-a", 0x2000_0000, false))
            .expect("load");
        hv.set_partition(VmId(1), 48);
        hv.set_partition(VmId(2), 64);
        hv.assign(VmId(1), e1);
        hv.assign(VmId(2), e2);
        hv.enforce_partition(&mut os, VmId(1)).expect("enforce");
        hv.enforce_partition(&mut os, VmId(2)).expect("enforce");
        assert!(hv.usage(&os, VmId(1)) <= 48);
        assert!(hv.usage(&os, VmId(2)) <= 64);
    }

    #[test]
    fn balloon_reclaims_os_managed_pages() {
        let mut os = os();
        let mut hv = Hypervisor::new();
        let eid = os
            .load_enclave(&image("guest", 0x1000_0000, false))
            .expect("load");
        hv.set_partition(VmId(1), 512);
        hv.assign(VmId(1), eid);
        let before = hv.usage(&os, VmId(1));
        assert!(before > 20);
        let outcome = hv.balloon(&mut os, VmId(1), 16).expect("balloon");
        assert_eq!(
            outcome,
            BalloonOutcome::Satisfied {
                usage: hv.usage(&os, VmId(1))
            }
        );
        assert!(
            hv.usage(&os, VmId(1)) <= 16,
            "usage {}",
            hv.usage(&os, VmId(1))
        );
    }

    #[test]
    fn balloon_respects_pinned_pages() {
        // A self-paging enclave pins its image; the balloon cannot force
        // those pages out and must report that cooperation is needed.
        let mut os = os();
        let mut hv = Hypervisor::new();
        let eid = os
            .load_enclave(&image("pinned", 0x1000_0000, true))
            .expect("load");
        // Pin everything the image mapped.
        let pages: Vec<_> = {
            let img = os.image(eid).expect("image").clone();
            (img.code_start().0..img.heap_start().0)
                .map(autarky_sgx_sim::Vpn)
                .collect()
        };
        os.ay_set_enclave_managed(eid, &pages).expect("pin");
        hv.set_partition(VmId(1), 512);
        hv.assign(VmId(1), eid);
        let outcome = hv.balloon(&mut os, VmId(1), 4).expect("balloon");
        match outcome {
            BalloonOutcome::NeedsEnclaveCooperation { usage, target } => {
                assert!(usage > target, "pinned pages kept usage at {usage}");
                // Every remaining page is enclave-managed (pinned).
                for &vpn in &pages {
                    assert!(os.machine.is_resident(eid, vpn), "{vpn} must stay pinned");
                }
            }
            other => panic!("expected cooperation request, got {other:?}"),
        }
        // The non-cooperative fallback: suspend the whole enclave.
        os.suspend_enclave(eid).expect("suspend");
        assert_eq!(hv.usage(&os, VmId(1)), 0);
        os.resume_enclave(eid).expect("resume");
        assert!(hv.usage(&os, VmId(1)) > 0);
    }
}
