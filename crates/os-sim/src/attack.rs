//! The controlled-channel adversary.
//!
//! Implements the published attack variants as OS-resident machinery:
//!
//! * [`FaultTracer`] — Xu et al.'s original attack: unmap target pages,
//!   intercept the induced faults, restore the mapping, and record the
//!   page-granular access trace. Against a legacy enclave this yields a
//!   noise-free, deterministic trace; against an Autarky enclave every
//!   fault report is masked to the enclave base, so the trace is
//!   degenerate (and the enclave's handler detects the attack).
//! * [`AdMonitor`] — Wang et al. / Van Bulck et al.'s stealthy variant:
//!   clear PTE accessed/dirty bits, shoot down the TLB, and poll for bits
//!   the hardware sets back. Needs no faults at all on legacy SGX; under
//!   Autarky the A/D-bit precondition turns the cleared bit itself into a
//!   detectable fault.
//!
//! The attacker is part of [`Os`]; it has exactly the powers the threat
//! model grants (page tables, fault reports, IPIs) and nothing more.

use std::collections::BTreeSet;

use autarky_sgx_sim::{AccessKind, EnclaveId, FaultEvent, Vpn};

use crate::kernel::{Observation, Os};

/// How the fault tracer induces its faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Clear the present bit (Xu et al.'s original attack [76]).
    Unmap,
    /// Strip a permission instead — e.g. write-protect data pages or make
    /// code pages non-executable (the AsyncShock-style variant [74]).
    /// Stealthier on real systems because the page stays mapped.
    StripPermission {
        /// Remove write permission.
        write: bool,
        /// Remove execute permission.
        execute: bool,
    },
}

/// Fault-tracing attack state (Xu et al. [76] and permission variants).
#[derive(Debug, Clone)]
pub struct FaultTracer {
    /// Victim enclave.
    pub eid: EnclaveId,
    /// Pages whose accesses the attacker wants to trace.
    pub targets: BTreeSet<Vpn>,
    /// How faults are induced.
    pub mode: TraceMode,
    /// Recovered page-granular access trace (legacy victims only).
    pub trace: Vec<Vpn>,
    /// Faults that arrived masked (self-paging victims): the attacker
    /// learns only that *some* fault happened.
    pub masked_faults: u64,
    /// The target page currently left accessible (at most one, so every
    /// transition between target pages faults).
    current: Option<Vpn>,
    /// The target page most recently re-protected (straddle detection:
    /// an access spanning two armed pages re-faults here immediately).
    last_protected: Option<Vpn>,
    /// An adjacent pair both left open so a straddling access can replay
    /// through; re-protected when the next unrelated fault arrives.
    open_pair: Option<(Vpn, Vpn)>,
}

impl FaultTracer {
    /// Create a tracer for `targets` of `eid`.
    pub fn new(eid: EnclaveId, targets: impl IntoIterator<Item = Vpn>) -> Self {
        Self::with_mode(eid, targets, TraceMode::Unmap)
    }

    /// Create a tracer using a specific fault-induction mode.
    pub fn with_mode(
        eid: EnclaveId,
        targets: impl IntoIterator<Item = Vpn>,
        mode: TraceMode,
    ) -> Self {
        Self {
            eid,
            targets: targets.into_iter().collect(),
            mode,
            trace: Vec::new(),
            masked_faults: 0,
            current: None,
            last_protected: None,
            open_pair: None,
        }
    }
}

/// Accessed/dirty-bit monitoring attack state (Wang et al. [72]).
#[derive(Debug, Clone)]
pub struct AdMonitor {
    /// Victim enclave.
    pub eid: EnclaveId,
    /// Pages monitored.
    pub targets: BTreeSet<Vpn>,
    /// Recovered access trace with a dirty flag per hit.
    pub trace: Vec<(Vpn, bool)>,
}

impl AdMonitor {
    /// Create a monitor for `targets` of `eid`.
    pub fn new(eid: EnclaveId, targets: impl IntoIterator<Item = Vpn>) -> Self {
        Self {
            eid,
            targets: targets.into_iter().collect(),
            trace: Vec::new(),
        }
    }
}

/// The OS's attack personality.
#[derive(Debug, Clone)]
pub enum Attacker {
    /// Benign OS (no attack armed).
    None,
    /// Page-fault tracing attack.
    FaultTracer(FaultTracer),
    /// A/D-bit monitoring attack.
    AdMonitor(AdMonitor),
}

impl Attacker {
    /// Whether an attack is armed.
    pub fn is_armed(&self) -> bool {
        !matches!(self, Attacker::None)
    }
}

fn protect(os: &mut Os, eid: EnclaveId, vpn: Vpn, mode: TraceMode) {
    if let Ok(pt) = os.machine.page_table_mut(eid) {
        match mode {
            TraceMode::Unmap => {
                pt.clear_present(vpn);
            }
            TraceMode::StripPermission { write, execute } => {
                if let Some(pte) = pt.get_mut(vpn) {
                    if write {
                        pte.perms.w = false;
                    }
                    if execute {
                        pte.perms.x = false;
                    }
                }
            }
        }
    }
    os.machine.tlb_shootdown(eid, vpn);
}

fn unprotect(os: &mut Os, eid: EnclaveId, vpn: Vpn, mode: TraceMode) {
    if let Ok(pt) = os.machine.page_table_mut(eid) {
        match mode {
            TraceMode::Unmap => {
                pt.set_present(vpn);
            }
            TraceMode::StripPermission { write, execute } => {
                if let Some(pte) = pt.get_mut(vpn) {
                    if write {
                        pte.perms.w = true;
                    }
                    if execute {
                        pte.perms.x = true;
                    }
                }
            }
        }
    }
}

impl Os {
    /// Arm a fault-tracing attack: unmap all target pages so the next
    /// access to each faults.
    ///
    /// The tracer is transition-granular: on a fault it restores the
    /// faulting page and re-protects the previously restored one. A data
    /// access that *straddles* two armed pages would make the replayed
    /// access ping-pong between the pair forever (the simulator replays
    /// whole accesses where real attacks single-step across the straddle,
    /// Xu et al., S&P 2015). The tracer detects that pattern — the
    /// faulting page is the one it just re-protected and the open page is
    /// its neighbour — and models the single-stepped outcome: both pages
    /// stay open until the next unrelated fault re-arms them, and no
    /// spurious transition enters the trace. Targets may therefore be
    /// armed at full density, data and code alike. Execute faults are
    /// exempt (an instruction fetch touches exactly one page), so code
    /// ping-pong traces at full fidelity. Tradeoff: a genuine immediate
    /// *data* ping-pong between two adjacent armed pages is
    /// indistinguishable from a straddle and collapses to one recorded
    /// transition.
    pub fn arm_fault_tracer(
        &mut self,
        eid: EnclaveId,
        targets: impl IntoIterator<Item = Vpn>,
    ) -> Result<(), crate::kernel::OsError> {
        self.arm_fault_tracer_mode(eid, targets, TraceMode::Unmap)
    }

    /// Arm a fault tracer with an explicit induction mode (unmap or
    /// permission stripping).
    pub fn arm_fault_tracer_mode(
        &mut self,
        eid: EnclaveId,
        targets: impl IntoIterator<Item = Vpn>,
        mode: TraceMode,
    ) -> Result<(), crate::kernel::OsError> {
        let tracer = FaultTracer::with_mode(eid, targets, mode);
        for &vpn in &tracer.targets {
            protect(self, eid, vpn, mode);
        }
        self.attacker = Attacker::FaultTracer(tracer);
        Ok(())
    }

    /// Arm an A/D-bit monitoring attack: clear the bits on all targets.
    pub fn arm_ad_monitor(
        &mut self,
        eid: EnclaveId,
        targets: impl IntoIterator<Item = Vpn>,
    ) -> Result<(), crate::kernel::OsError> {
        let monitor = AdMonitor::new(eid, targets);
        for &vpn in &monitor.targets {
            self.machine.page_table_mut(eid)?.clear_accessed_dirty(vpn);
            self.machine.tlb_shootdown(eid, vpn);
        }
        self.attacker = Attacker::AdMonitor(monitor);
        Ok(())
    }

    /// Disarm any attack, restoring target mappings so the victim can
    /// continue (used when a test wants the trace without a kill).
    pub fn disarm_attacker(&mut self) -> Attacker {
        let attacker = std::mem::replace(&mut self.attacker, Attacker::None);
        match &attacker {
            Attacker::FaultTracer(t) => {
                for &vpn in &t.targets {
                    unprotect(self, t.eid, vpn, t.mode);
                }
            }
            Attacker::AdMonitor(m) => {
                for &vpn in &m.targets {
                    if let Ok(pt) = self.machine.page_table_mut(m.eid) {
                        if let Some(pte) = pt.get_mut(vpn) {
                            pte.accessed = true;
                            pte.dirty = true;
                        }
                    }
                }
            }
            Attacker::None => {}
        }
        attacker
    }

    /// Attacker hook run on every fault delivered to the OS (called from
    /// `on_fault`, before benign handling).
    pub(crate) fn run_attacker_on_fault(&mut self, ev: FaultEvent) {
        let mut attacker = std::mem::replace(&mut self.attacker, Attacker::None);
        if let Attacker::FaultTracer(tracer) = &mut attacker {
            if tracer.eid == ev.eid {
                let vpn = ev.reported_va.vpn();
                let self_paging = self
                    .machine
                    .secs(ev.eid)
                    .map(|s| s.attributes.self_paging)
                    .unwrap_or(false);
                if self_paging {
                    // Masked report: the attacker cannot tell which page
                    // faulted, so the trace gains nothing.
                    tracer.masked_faults += 1;
                } else if tracer.targets.contains(&vpn) {
                    let mode = tracer.mode;
                    // Instruction fetches touch exactly one page, so an
                    // execute fault is always a genuine transition; only
                    // data accesses can straddle an adjacent pair.
                    let straddle = ev.reported_kind != AccessKind::Execute
                        && tracer.last_protected == Some(vpn)
                        && tracer.current.is_some_and(|cur| cur.0.abs_diff(vpn.0) == 1);
                    if straddle {
                        // One access is straddling an adjacent armed pair:
                        // we just re-protected this page and its neighbour
                        // is the open one. Leave both open so the replay
                        // completes (the single-stepped resolution), and
                        // record no spurious transition — the pair already
                        // entered the trace when it first faulted.
                        unprotect(self, ev.eid, vpn, mode);
                        if let Some(cur) = tracer.current {
                            tracer.open_pair = Some((vpn, cur));
                        }
                        tracer.last_protected = None;
                    } else {
                        tracer.trace.push(vpn);
                        // Restore the faulting page, re-protect the
                        // previously restored target(s) so the next
                        // transition faults too.
                        unprotect(self, ev.eid, vpn, mode);
                        if let Some((a, b)) = tracer.open_pair.take() {
                            for p in [a, b] {
                                if p != vpn {
                                    protect(self, ev.eid, p, mode);
                                    tracer.last_protected = Some(p);
                                }
                            }
                            tracer.current = Some(vpn);
                        } else if let Some(prev) = tracer.current.replace(vpn) {
                            if prev != vpn {
                                protect(self, ev.eid, prev, mode);
                                tracer.last_protected = Some(prev);
                            }
                        }
                    }
                }
            }
        }
        self.attacker = attacker;
    }

    /// Attacker poll (models the sibling-thread scanning PTEs): harvest
    /// freshly set A/D bits and re-clear them.
    ///
    /// Against an Autarky victim the bits never become set (the hardware
    /// faults instead of setting them), so the poll harvests nothing.
    pub fn attacker_poll(&mut self) {
        let mut attacker = std::mem::replace(&mut self.attacker, Attacker::None);
        if let Attacker::AdMonitor(monitor) = &mut attacker {
            let eid = monitor.eid;
            for &vpn in &monitor.targets {
                let hit = self
                    .machine
                    .page_table(eid)
                    .ok()
                    .and_then(|pt| pt.get(vpn))
                    .filter(|pte| pte.accessed || pte.dirty)
                    .map(|pte| pte.dirty);
                if let Some(dirty) = hit {
                    monitor.trace.push((vpn, dirty));
                    self.observe(Observation::AdBitObserved { eid, vpn, dirty });
                    if let Ok(pt) = self.machine.page_table_mut(eid) {
                        pt.clear_accessed_dirty(vpn);
                    }
                    self.machine.tlb_shootdown(eid, vpn);
                }
            }
        }
        self.attacker = attacker;
    }
}
