//! Cryptographic primitives for the Autarky SGX simulator.
//!
//! The real SGX memory-encryption engine and sealing machinery are opaque
//! hardware; the simulator replaces them with well-known software
//! constructions implemented from scratch in this crate:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, used for enclave measurement
//!   (`EEXTEND`) and as the compression core for [`hmac`].
//! * [`hmac`] — RFC 2104 HMAC-SHA256, used for report MACs and key
//!   derivation.
//! * [`chacha20`] — RFC 7539 ChaCha20 stream cipher, the simulator's
//!   stand-in for the AES-based memory-encryption engine.
//! * [`poly1305`] — RFC 7539 Poly1305 one-time authenticator.
//! * [`aead`] — ChaCha20-Poly1305 AEAD, used by `EWB`/`ELDU` page sealing
//!   and by the ORAM block store. The associated data carries the page's
//!   virtual address and anti-replay version counter, which is exactly the
//!   integrity contract SGX's paging instructions provide.
//!
//! All implementations are pure safe Rust, deterministic, and validated
//! against the relevant RFC/NIST test vectors in the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod constant_time;
pub mod hmac;
pub mod poly1305;
pub mod sha256;

pub use aead::{open, seal, AeadError, KEY_LEN, NONCE_LEN, TAG_LEN};
pub use chacha20::ChaCha20;
pub use constant_time::ct_eq;
pub use hmac::{hmac_sha256, HmacSha256};
pub use poly1305::Poly1305;
pub use sha256::{sha256, Sha256};
