//! RFC 7539 ChaCha20 stream cipher.
//!
//! The simulator's stand-in for the SGX memory-encryption engine: page
//! contents evicted by `EWB` (or by the SGXv2 software path) are encrypted
//! with a per-platform key and a nonce derived from the page's eviction
//! version, so ciphertexts never repeat.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// ChaCha20 cipher instance bound to a key and nonce.
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Create a cipher with the given key, nonce, and initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Self { state }
    }

    /// Produce the keystream block for the current counter and advance it.
    fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// XOR the keystream into `data` in place (encrypts or decrypts).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (byte, k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }

    /// Generate `out.len()` bytes of raw keystream (used to derive the
    /// Poly1305 one-time key in the AEAD construction).
    pub fn keystream(&mut self, out: &mut [u8]) {
        out.fill(0);
        self.apply_keystream(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    // RFC 7539 §2.4.2 test vector.
    #[test]
    fn rfc7539_encryption() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().expect("32");
        let nonce = [0u8, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    // RFC 7539 §2.3.2 block function vector (first keystream block).
    #[test]
    fn rfc7539_block_function() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().expect("32");
        let nonce = [0u8, 0, 0, 0x09, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let mut ks = [0u8; 64];
        cipher.keystream(&mut ks);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(ks.to_vec(), expected);
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let mut data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let orig = data.clone();
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut data);
        assert_ne!(data, orig);
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn counter_advances_across_chunks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut a = vec![0u8; 200];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut a);
        let mut b = vec![0u8; 200];
        let mut cipher = ChaCha20::new(&key, &nonce, 0);
        cipher.apply_keystream(&mut b[..64]);
        cipher.apply_keystream(&mut b[64..128]);
        cipher.apply_keystream(&mut b[128..]);
        assert_eq!(a, b);
    }
}
