//! RFC 2104 HMAC instantiated with SHA-256.
//!
//! Used by the simulator for attestation report MACs (the analogue of the
//! CMAC over `REPORT` computed by `EREPORT`) and for deriving per-enclave
//! sealing keys (the analogue of `EGETKEY`).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA256 context.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Create a MAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Finish and return the 32-byte tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }
}

/// One-shot HMAC-SHA256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"some key";
        let data: Vec<u8> = (0..500u32).map(|i| (i % 253) as u8).collect();
        let mut mac = HmacSha256::new(key);
        mac.update(&data[..123]);
        mac.update(&data[123..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, &data));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }
}
