//! Constant-time helpers.
//!
//! The Autarky paper's ORAM implementation hides metadata accesses with
//! `CMOVZ`-style conditional moves; these helpers are the software analogue
//! and are also used for MAC comparison to avoid timing oracles.

/// Constant-time byte-slice equality. Returns `false` for length mismatch.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional select of `u64`: returns `a` if `cond` is
/// true, `b` otherwise, without a data-dependent branch.
pub fn ct_select_u64(cond: bool, a: u64, b: u64) -> u64 {
    let mask = (cond as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Constant-time conditional copy: overwrites `dst` with `src` when `cond`
/// is true, leaves it unchanged otherwise. Both slices must have equal
/// length.
///
/// # Panics
/// Panics if the slice lengths differ (a logic error at the call site).
pub fn ct_copy(cond: bool, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "ct_copy length mismatch");
    let mask = (cond as u8).wrapping_neg();
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*s & mask) | (*d & !mask);
    }
}

/// Constant-time swap of two equal-length slices when `cond` is true.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn ct_swap(cond: bool, a: &mut [u8], b: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "ct_swap length mismatch");
    let mask = (cond as u8).wrapping_neg();
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let t = (*x ^ *y) & mask;
        *x ^= t;
        *y ^= t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"hello", b"hello"));
        assert!(!ct_eq(b"hello", b"hellp"));
        assert!(!ct_eq(b"hello", b"hell"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(true, 1, 2), 1);
        assert_eq!(ct_select_u64(false, 1, 2), 2);
        assert_eq!(ct_select_u64(true, u64::MAX, 0), u64::MAX);
    }

    #[test]
    fn copy() {
        let mut dst = [1u8, 2, 3];
        ct_copy(false, &mut dst, &[9, 9, 9]);
        assert_eq!(dst, [1, 2, 3]);
        ct_copy(true, &mut dst, &[9, 8, 7]);
        assert_eq!(dst, [9, 8, 7]);
    }

    #[test]
    fn swap() {
        let mut a = [1u8, 2];
        let mut b = [3u8, 4];
        ct_swap(false, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2], [3, 4]));
        ct_swap(true, &mut a, &mut b);
        assert_eq!((a, b), ([3, 4], [1, 2]));
    }
}
