//! RFC 7539 ChaCha20-Poly1305 AEAD.
//!
//! This is the sealing primitive used by the simulated `EWB`/`ELDU`
//! instructions and by the SGXv2 software eviction path: page contents are
//! encrypted, and the tag covers both the ciphertext and the caller's
//! associated data (virtual address, enclave id, and anti-replay version),
//! matching the integrity guarantees of SGX's paging metadata (`PCMD` and
//! the Version Array).

use crate::chacha20::ChaCha20;
use crate::constant_time::ct_eq;
use crate::poly1305::Poly1305;

/// AEAD key length in bytes.
pub const KEY_LEN: usize = 32;

/// AEAD nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// AEAD tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Errors returned by [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The authentication tag did not verify; the ciphertext or the
    /// associated data was tampered with (or replayed under a different
    /// version).
    TagMismatch,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::TagMismatch => write!(f, "AEAD tag verification failed"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let mut otk = [0u8; 64];
    ChaCha20::new(key, nonce, 0).keystream(&mut otk);
    let mut out = [0u8; 32];
    out.copy_from_slice(&otk[..32]);
    out
}

fn compute_tag(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; TAG_LEN] {
    let otk = poly_key(key, nonce);
    let mut mac = Poly1305::new(&otk);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Encrypt `plaintext` in place and return the authentication tag.
///
/// `aad` is authenticated but not encrypted.
pub fn seal(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
) -> [u8; TAG_LEN] {
    ChaCha20::new(key, nonce, 1).apply_keystream(data);
    compute_tag(key, nonce, aad, data)
}

/// Verify `tag` and decrypt `data` in place.
///
/// On tag mismatch the ciphertext is left untouched and
/// [`AeadError::TagMismatch`] is returned.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
    tag: &[u8; TAG_LEN],
) -> Result<(), AeadError> {
    let expected = compute_tag(key, nonce, aad, data);
    if !ct_eq(&expected, tag) {
        return Err(AeadError::TagMismatch);
    }
    ChaCha20::new(key, nonce, 1).apply_keystream(data);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    // RFC 7539 §2.8.2 AEAD test vector.
    #[test]
    fn rfc7539_aead_vector() {
        let key: [u8; 32] = (0x80u8..0xa0).collect::<Vec<_>>().try_into().expect("32");
        let nonce: [u8; 12] = hex_to_bytes("070000004041424344454647")
            .try_into()
            .expect("12");
        let aad = hex_to_bytes("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let tag = seal(&key, &nonce, &aad, &mut data);
        assert_eq!(
            data[..16].to_vec(),
            hex_to_bytes("d31a8d34648e60db7b86afbc53ef7ec2")
        );
        assert_eq!(
            tag.to_vec(),
            hex_to_bytes("1ae10b594f09e26a7e902ecbd0600691")
        );
        open(&key, &nonce, &aad, &mut data, &tag).expect("tag verifies");
        assert_eq!(data, plaintext.to_vec());
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let mut data = b"page contents".to_vec();
        let tag = seal(&key, &nonce, b"va=0x1000", &mut data);
        data[0] ^= 1;
        assert_eq!(
            open(&key, &nonce, b"va=0x1000", &mut data, &tag),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn tamper_aad_detected() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        let mut data = b"page contents".to_vec();
        let tag = seal(&key, &nonce, b"version=1", &mut data);
        assert_eq!(
            open(&key, &nonce, b"version=2", &mut data, &tag),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn empty_aad_and_data() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut data = Vec::new();
        let tag = seal(&key, &nonce, b"", &mut data);
        open(&key, &nonce, b"", &mut data, &tag).expect("empty message round-trips");
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [9u8; 32];
        let nonce = [7u8; 12];
        for len in [1usize, 15, 16, 17, 63, 64, 65, 4096] {
            let original: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let mut data = original.clone();
            let tag = seal(&key, &nonce, b"aad", &mut data);
            assert_ne!(data, original, "len {len} must be encrypted");
            open(&key, &nonce, b"aad", &mut data, &tag).expect("round-trip");
            assert_eq!(data, original, "len {len}");
        }
    }
}
