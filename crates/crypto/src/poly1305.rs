//! RFC 7539 Poly1305 one-time authenticator.
//!
//! Implemented with five 26-bit limbs (the classic "donna" representation),
//! which keeps all intermediate products within `u64` range.

/// Key length in bytes (16-byte `r` + 16-byte `s`).
pub const KEY_LEN: usize = 32;

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Streaming Poly1305 context.
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Create an authenticator from the 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // r is clamped per the RFC: clear the top 4 bits of bytes 3/7/11/15
        // and the bottom 2 bits of bytes 4/8/12, then split into 26-bit limbs.
        let t0 = u32::from_le_bytes(key[0..4].try_into().expect("4")) & 0x0fff_ffff;
        let t1 = u32::from_le_bytes(key[4..8].try_into().expect("4")) & 0x0fff_fffc;
        let t2 = u32::from_le_bytes(key[8..12].try_into().expect("4")) & 0x0fff_fffc;
        let t3 = u32::from_le_bytes(key[12..16].try_into().expect("4")) & 0x0fff_fffc;
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff,
            ((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff,
            t3 >> 8,
        ];
        let pad = [
            u32::from_le_bytes(key[16..20].try_into().expect("4")),
            u32::from_le_bytes(key[20..24].try_into().expect("4")),
            u32::from_le_bytes(key[24..28].try_into().expect("4")),
            u32::from_le_bytes(key[28..32].try_into().expect("4")),
        ];
        Self {
            r,
            h: [0; 5],
            pad,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    fn block(&mut self, block: &[u8; 16], final_bit: bool) {
        let hibit: u32 = if final_bit { 0 } else { 1 << 24 };
        let t0 = u32::from_le_bytes(block[0..4].try_into().expect("4"));
        let t1 = u32::from_le_bytes(block[4..8].try_into().expect("4"));
        let t2 = u32::from_le_bytes(block[8..12].try_into().expect("4"));
        let t3 = u32::from_le_bytes(block[12..16].try_into().expect("4"));

        let mut h = self.h;
        h[0] = h[0].wrapping_add(t0 & 0x03ff_ffff);
        h[1] = h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        h[2] = h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        h[3] = h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        h[4] = h[4].wrapping_add((t3 >> 8) | hibit);

        let r = self.r;
        let s1 = r[1] * 5;
        let s2 = r[2] * 5;
        let s3 = r[3] * 5;
        let s4 = r[4] * 5;

        let d0 = h[0] as u64 * r[0] as u64
            + h[1] as u64 * s4 as u64
            + h[2] as u64 * s3 as u64
            + h[3] as u64 * s2 as u64
            + h[4] as u64 * s1 as u64;
        let d1 = h[0] as u64 * r[1] as u64
            + h[1] as u64 * r[0] as u64
            + h[2] as u64 * s4 as u64
            + h[3] as u64 * s3 as u64
            + h[4] as u64 * s2 as u64;
        let d2 = h[0] as u64 * r[2] as u64
            + h[1] as u64 * r[1] as u64
            + h[2] as u64 * r[0] as u64
            + h[3] as u64 * s4 as u64
            + h[4] as u64 * s3 as u64;
        let d3 = h[0] as u64 * r[3] as u64
            + h[1] as u64 * r[2] as u64
            + h[2] as u64 * r[1] as u64
            + h[3] as u64 * r[0] as u64
            + h[4] as u64 * s4 as u64;
        let d4 = h[0] as u64 * r[4] as u64
            + h[1] as u64 * r[3] as u64
            + h[2] as u64 * r[2] as u64
            + h[3] as u64 * r[1] as u64
            + h[4] as u64 * r[0] as u64;

        // Carry propagation.
        let mut c: u64;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        h[0] = (d0 & 0x03ff_ffff) as u32;
        d1 += c;
        c = d1 >> 26;
        h[1] = (d1 & 0x03ff_ffff) as u32;
        d2 += c;
        c = d2 >> 26;
        h[2] = (d2 & 0x03ff_ffff) as u32;
        d3 += c;
        c = d3 >> 26;
        h[3] = (d3 & 0x03ff_ffff) as u32;
        d4 += c;
        c = d4 >> 26;
        h[4] = (d4 & 0x03ff_ffff) as u32;
        h[0] = h[0].wrapping_add((c * 5) as u32);
        let c2 = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] = h[1].wrapping_add(c2);

        self.h = h;
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut data = data;
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (blk, rest) = data.split_at(16);
            let mut b = [0u8; 16];
            b.copy_from_slice(blk);
            self.block(&b, false);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finish and return the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, true);
        }
        let mut h = self.h;

        // Full carry.
        let mut c: u32;
        c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] = h[2].wrapping_add(c);
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] = h[3].wrapping_add(c);
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] = h[4].wrapping_add(c);
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] = h[0].wrapping_add(c * 5);
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] = h[1].wrapping_add(c);

        // Compute h + -p.
        let mut g = [0u32; 5];
        let mut carry: u32 = 5;
        for i in 0..5 {
            let t = h[i].wrapping_add(carry);
            carry = t >> 26;
            g[i] = t & 0x03ff_ffff;
        }
        g[4] = g[4].wrapping_sub(1 << 26);

        // Select h if h < p, else g (constant-time-style select).
        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones if g >= 0 (i.e. h >= p)
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // h %= 2^128, then add pad.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        let mut f: u64;
        let mut out = [0u8; TAG_LEN];
        f = h0 as u64 + self.pad[0] as u64;
        out[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = h1 as u64 + self.pad[1] as u64 + (f >> 32);
        out[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = h2 as u64 + self.pad[2] as u64 + (f >> 32);
        out[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = h3 as u64 + self.pad[3] as u64 + (f >> 32);
        out[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        out
    }
}

/// One-shot Poly1305 tag of `data` under `key`.
pub fn poly1305(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    // RFC 7539 §2.5.2 test vector.
    #[test]
    fn rfc7539_tag() {
        let key: [u8; 32] =
            hex_to_bytes("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .expect("32");
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        assert_eq!(
            tag.to_vec(),
            hex_to_bytes("a8061dc1305136c6c22b8baf0c0127a9")
        );
    }

    // RFC 7539 §A.3 vector #1: all-zero key, all-zero message.
    #[test]
    fn zero_key_zero_msg() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(poly1305(&key, &msg), [0u8; 16]);
    }

    // RFC 7539 §A.3 vector #2.
    #[test]
    fn rfc7539_a3_vector2() {
        let mut key = [0u8; 32];
        let s = hex_to_bytes("36e5f6b5c5e06070f0efca96227a863e");
        key[16..].copy_from_slice(&s);
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            poly1305(&key, msg.as_slice()).to_vec(),
            hex_to_bytes("36e5f6b5c5e06070f0efca96227a863e")
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().expect("32");
        let data: Vec<u8> = (0..259u32).map(|i| (i * 3 % 256) as u8).collect();
        for split in [0usize, 1, 15, 16, 17, 100, 259] {
            let mut mac = Poly1305::new(&key);
            mac.update(&data[..split]);
            mac.update(&data[split..]);
            assert_eq!(mac.finalize(), poly1305(&key, &data), "split {split}");
        }
    }
}
