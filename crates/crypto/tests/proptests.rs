//! Property-based tests for the crypto primitives: streaming/one-shot
//! agreement under arbitrary chunkings, AEAD round-trips and tamper
//! rejection for arbitrary inputs.

use autarky_crypto::{aead, hmac_sha256, sha256, ChaCha20, HmacSha256, Sha256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn sha256_streaming_agrees_with_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let mut hasher = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            hasher.update(&data[prev..cut]);
            prev = cut;
        }
        hasher.update(&data[prev..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_streaming_agrees_with_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..200),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        cut in 0usize..1024,
    ) {
        let cut = cut % (data.len() + 1);
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..cut]);
        mac.update(&data[cut..]);
        prop_assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    }

    #[test]
    fn chacha20_is_an_involution(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let mut buf = data.clone();
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aead_roundtrip_and_tamper(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        flip in any::<usize>(),
    ) {
        let original = data.clone();
        let mut buf = data;
        let tag = aead::seal(&key, &nonce, &aad, &mut buf);
        // Round-trips.
        let mut plain = buf.clone();
        aead::open(&key, &nonce, &aad, &mut plain, &tag).expect("authentic");
        prop_assert_eq!(&plain, &original);
        // A single flipped ciphertext bit must be rejected.
        let mut corrupt = buf.clone();
        let idx = flip % corrupt.len();
        corrupt[idx] ^= 1;
        prop_assert!(aead::open(&key, &nonce, &aad, &mut corrupt, &tag).is_err());
        // A flipped AAD byte must be rejected.
        if !aad.is_empty() {
            let mut bad_aad = aad.clone();
            bad_aad[flip % aad.len()] ^= 1;
            let mut ct = buf.clone();
            prop_assert!(aead::open(&key, &nonce, &bad_aad, &mut ct, &tag).is_err());
        }
    }

    #[test]
    fn distinct_keys_give_distinct_digests(
        a in proptest::collection::vec(any::<u8>(), 1..128),
        b in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }
}
