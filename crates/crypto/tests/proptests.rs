//! Randomized property tests for the crypto primitives: streaming/one-shot
//! agreement under arbitrary chunkings, AEAD round-trips and tamper
//! rejection for arbitrary inputs.
//!
//! Inputs are drawn from the deterministic [`SimRng`] (seeded per test),
//! so every run exercises the same cases and failures are reproducible.

use autarky_crypto::{aead, hmac_sha256, sha256, ChaCha20, HmacSha256, Sha256};
use autarky_prng::SimRng;

const CASES: usize = 64;

fn random_vec(rng: &mut SimRng, range: core::ops::Range<usize>) -> Vec<u8> {
    let len = rng.gen_range_usize(range);
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

#[test]
fn sha256_streaming_agrees_with_oneshot() {
    let mut rng = SimRng::seed_from_u64(0x5a01);
    for _ in 0..CASES {
        let data = random_vec(&mut rng, 0..2048);
        let n_splits = rng.gen_range_usize(0..8);
        let mut cuts: Vec<usize> = (0..n_splits)
            .map(|_| rng.gen_range_usize(0..data.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut hasher = Sha256::new();
        let mut prev = 0;
        for cut in cuts {
            hasher.update(&data[prev..cut]);
            prev = cut;
        }
        hasher.update(&data[prev..]);
        assert_eq!(hasher.finalize(), sha256(&data));
    }
}

#[test]
fn hmac_streaming_agrees_with_oneshot() {
    let mut rng = SimRng::seed_from_u64(0x5a02);
    for _ in 0..CASES {
        let key = random_vec(&mut rng, 0..200);
        let data = random_vec(&mut rng, 0..1024);
        let cut = rng.gen_range_usize(0..data.len() + 1);
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..cut]);
        mac.update(&data[cut..]);
        assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    }
}

#[test]
fn chacha20_is_an_involution() {
    let mut rng = SimRng::seed_from_u64(0x5a03);
    for _ in 0..CASES {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let counter = rng.next_u32();
        let data = random_vec(&mut rng, 0..1024);
        let mut buf = data.clone();
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        assert_eq!(buf, data);
    }
}

#[test]
fn aead_roundtrip_and_tamper() {
    let mut rng = SimRng::seed_from_u64(0x5a04);
    for _ in 0..CASES {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let aad = random_vec(&mut rng, 0..64);
        let data = random_vec(&mut rng, 1..1024);
        let flip = rng.next_u64() as usize;

        let original = data.clone();
        let mut buf = data;
        let tag = aead::seal(&key, &nonce, &aad, &mut buf);
        // Round-trips.
        let mut plain = buf.clone();
        aead::open(&key, &nonce, &aad, &mut plain, &tag).expect("authentic");
        assert_eq!(&plain, &original);
        // A single flipped ciphertext bit must be rejected.
        let mut corrupt = buf.clone();
        let idx = flip % corrupt.len();
        corrupt[idx] ^= 1;
        assert!(aead::open(&key, &nonce, &aad, &mut corrupt, &tag).is_err());
        // A flipped AAD byte must be rejected.
        if !aad.is_empty() {
            let mut bad_aad = aad.clone();
            bad_aad[flip % aad.len()] ^= 1;
            let mut ct = buf.clone();
            assert!(aead::open(&key, &nonce, &bad_aad, &mut ct, &tag).is_err());
        }
    }
}

#[test]
fn distinct_inputs_give_distinct_digests() {
    let mut rng = SimRng::seed_from_u64(0x5a05);
    for _ in 0..CASES {
        let a = random_vec(&mut rng, 1..128);
        let b = random_vec(&mut rng, 1..128);
        if a == b {
            continue;
        }
        assert_ne!(sha256(&a), sha256(&b));
    }
}
