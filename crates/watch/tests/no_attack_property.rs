//! False-positive property gate: 100 seeds of synthetic benign
//! traffic, zero alerts. The default `WatchConfig` must stay quiet on
//! honest workloads — jittery arrival gaps, mixed per-member load,
//! occasional bursts, drifting fault pages — or the supervisor would
//! escalate healthy enclaves. Any seed that alerts fails the suite
//! and prints the offending alert lines.

use autarky_prng::SimRng;
use autarky_sgx_sim::{EnclaveId, Vpn};
use autarky_watch::{WatchConfig, Watchtower};

const SEEDS: u64 = 100;
const MEMBERS: usize = 3;
const WINDOWS: u64 = 40;

/// Drive one benign run: every member faults at a modest, jittery
/// rate across a spread of pages, serves requests with latencies well
/// inside budget, and EPC stays roughly balanced.
fn benign_run(seed: u64) -> (u64, Vec<String>) {
    let mut rng = SimRng::seed_from_u64(seed);
    // Exercise every detector: benign latency sits far below budget,
    // benign EPC skew far below threshold.
    let cfg = WatchConfig {
        p99_budget_cycles: 2_000_000,
        epc_skew_threshold_milli: 2_500,
        ..Default::default()
    };
    let epoch = cfg.epoch_cycles;
    let mut tower = Watchtower::new(cfg, 0);
    for m in 0..MEMBERS {
        tower.add_member(EnclaveId(m as u32 + 1), &format!("member-{m}"));
    }

    let mut alerts: Vec<String> = Vec::new();
    let mut now = 0u64;
    for _window in 0..WINDOWS {
        let window_end = now + epoch;
        // Benign fault traffic: 2..=10 faults per member per window,
        // pages drifting over a working set of 64 vpns.
        for m in 0..MEMBERS {
            let eid = EnclaveId(m as u32 + 1);
            let faults = 2 + rng.gen_below(9);
            for _ in 0..faults {
                let at = now + rng.gen_below(epoch);
                let vpn = Vpn(rng.gen_below(64));
                tower.observe_fault(eid, vpn, at);
            }
            // Benign requests: latency 50k..250k cycles, well under
            // the 2M budget.
            let requests = 4 + rng.gen_below(8);
            for _ in 0..requests {
                let at = now + rng.gen_below(epoch);
                let latency = 50_000 + rng.gen_below(200_000);
                tower.observe_request(m, latency, at);
            }
        }
        // Roughly balanced EPC occupancy with jitter.
        let frames: Vec<u64> = (0..MEMBERS).map(|_| 300 + rng.gen_below(80)).collect();
        tower.sample_epc(&frames);
        now = window_end;
        tower.advance(now);
        for alert in tower.take_alerts() {
            alerts.push(format!("seed={seed} {}", alert.log_line("?")));
        }
    }
    (tower.alert_total(), alerts)
}

#[test]
fn benign_traffic_never_alerts_across_100_seeds() {
    let mut firings: Vec<String> = Vec::new();
    for seed in 0..SEEDS {
        let (total, lines) = benign_run(seed);
        assert_eq!(total as usize, lines.len());
        firings.extend(lines);
    }
    assert!(
        firings.is_empty(),
        "false positives on benign traffic:\n{}",
        firings.join("\n")
    );
}

#[test]
fn benign_run_is_deterministic_per_seed() {
    let (a_total, a_lines) = benign_run(7);
    let (b_total, b_lines) = benign_run(7);
    assert_eq!(a_total, b_total);
    assert_eq!(a_lines, b_lines);
}
