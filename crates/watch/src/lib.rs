//! Live fleet watchtower: deterministic streaming detectors over the
//! telemetry/flight stream, causal alerts, and a unified Perfetto
//! trace export.
//!
//! The watchtower consumes the same adversary-visible signals the
//! untrusted host already sees — per-enclave fault counters, request
//! latencies, EPC occupancy, and the causal flight ring — in
//! epoch-sized windows, and runs online detectors over them:
//!
//! * **`fault_cusum`** — EWMA-baselined CUSUM on the per-enclave
//!   fault rate (a `SpuriousEvict` storm shifts it upward long before
//!   a watchdog budget runs dry);
//! * **`entropy_cusum`** — two-sided CUSUM on the Shannon entropy of
//!   fault page addresses (a single-page probe collapses entropy; a
//!   scan inflates it);
//! * **`slo_burn`** — error-budget burn rate against a p99 latency
//!   budget;
//! * **`epc_skew`** — cross-member EPC-pressure skew naming the hog.
//!
//! Everything on the alerting path is integer milli fixed-point
//! ([`detect`]), all timing is simulated cycles, and alert/trace
//! artifacts are pure functions of the window stream — byte-identical
//! across reruns, `--jobs` levels, and host platforms. Detector
//! firings are recorded into the flight ring as
//! `FlightEvent::WatchAlert`, so `causal_root_of_attack` can name the
//! injected fault that provoked an alert, and the fleet supervisor
//! can escalate on them ahead of its watchdog.
//!
//! [`trace::export_trace`] renders the merged flight log as
//! Chrome-trace-event JSON for `ui.perfetto.dev`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detect;
pub mod tower;
pub mod trace;

pub use detect::{burn_rate_milli, entropy_milli_bits, epc_skew_milli, Cusum, Ewma, MILLI};
pub use tower::{
    render_alert_log, Alert, WatchConfig, Watchtower, WATCH_COUNTERS, WATCH_GAUGES, WATCH_HISTS,
};
pub use trace::{export_trace, parse_trace, TraceEvent};
