//! The watchtower: epoch-windowed streaming detection over a live fleet.
//!
//! A [`Watchtower`] consumes three host-visible signal streams —
//! kernel fault observations (drained incrementally from the shared
//! flight ring), request completions (latency samples from the
//! supervisor), and EPC occupancy samples — buckets them into
//! fixed-length **epoch windows** of simulated cycles, and evaluates
//! the online detectors of [`crate::detect`] at every window close:
//!
//! * `fault_cusum` — one-sided CUSUM on per-member fault count per
//!   window, against an EWMA baseline learned during warmup;
//! * `entropy_cusum` — two-sided CUSUM on the Shannon entropy of the
//!   window's fault-address distribution (probing concentrates or
//!   scatters addresses; both directions are suspicious);
//! * `slo_burn` — burn rate of a configured p99 latency budget;
//! * `epc_skew` — cross-member EPC-pressure imbalance.
//!
//! Everything is integer milli fixed-point; windows close at cycle
//! boundaries that depend only on the simulated clock. Alert streams
//! and the rendered alert log are therefore byte-identical across
//! reruns and `--jobs` levels — the same contract every other artifact
//! in this workspace honors.
//!
//! The watchtower watches the watchers, too: the flight ring drops its
//! oldest record on overflow, and a consumer that falls behind would
//! silently lose fault observations. The tower tracks the ring's drop
//! counter as a first-class telemetry metric (`watch_ring_dropped`)
//! and **taints** any window that lost data instead of evaluating
//! detectors over a hole.

use std::collections::BTreeMap;

use autarky_os_sim::FlightEvent;
use autarky_sgx_sim::{EnclaveId, Vpn};
use autarky_telemetry::Telemetry;

use crate::detect::{burn_rate_milli, entropy_milli_bits, epc_skew_milli, Cusum, Ewma};

/// Counter names registered on the watchtower's telemetry surface.
pub const WATCH_COUNTERS: [&str; 6] = [
    "watch_windows",
    "watch_alerts",
    "watch_faults",
    "watch_requests",
    "watch_ring_dropped",
    "watch_tainted_windows",
];

/// Gauge names registered on the watchtower's telemetry surface.
pub const WATCH_GAUGES: [&str; 1] = ["watch_epc_skew_milli"];

/// Histogram names registered on the watchtower's telemetry surface.
pub const WATCH_HISTS: [&str; 1] = ["watch_window_faults"];

/// Watchtower configuration. All thresholds are milli fixed-point
/// (1000 = 1.0); a threshold of 0 disables that detector.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Window length in simulated cycles.
    pub epoch_cycles: u64,
    /// Windows a member must observe before its detectors may fire
    /// (the baseline-learning period).
    pub warmup_windows: u64,
    /// EWMA smoothing factor for baselines, in milli (200 = 0.2).
    pub ewma_alpha_milli: u64,
    /// Fault-rate CUSUM slack `k`, in milli-faults per window.
    pub fault_k_milli: u64,
    /// Fault-rate CUSUM decision threshold `h` (0 disables).
    pub fault_h_milli: u64,
    /// Entropy CUSUM slack `k`, in milli-bits.
    pub entropy_k_milli: u64,
    /// Entropy CUSUM decision threshold `h` (0 disables).
    pub entropy_h_milli: u64,
    /// Minimum faults in a window for its entropy to be meaningful.
    pub entropy_min_faults: u64,
    /// p99 latency budget in cycles for the SLO detector (0 disables).
    pub p99_budget_cycles: u64,
    /// Allowed over-budget fraction, in milli (10 = 1%).
    pub slo_error_budget_milli: u64,
    /// Burn-rate alert threshold, in milli (4000 = burning 4× too fast).
    pub burn_threshold_milli: u64,
    /// Minimum completions in a window for the SLO detector to judge it.
    pub min_window_requests: u64,
    /// EPC skew alert threshold, in milli of fair share (0 disables).
    pub epc_skew_threshold_milli: u64,
    /// Skip the skew detector while the fleet holds fewer total frames.
    pub epc_min_total_frames: u64,
    /// Windows a member stays quiet after one of its detectors fires.
    pub cooldown_windows: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            epoch_cycles: 5_000_000,
            warmup_windows: 6,
            ewma_alpha_milli: 200,
            fault_k_milli: 4_000,
            fault_h_milli: 16_000,
            entropy_k_milli: 800,
            entropy_h_milli: 6_000,
            entropy_min_faults: 4,
            p99_budget_cycles: 0,
            slo_error_budget_milli: 10,
            burn_threshold_milli: 4_000,
            min_window_requests: 4,
            epc_skew_threshold_milli: 0,
            epc_min_total_frames: 64,
            cooldown_windows: 4,
        }
    }
}

/// One detector firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Member index in registration order.
    pub member: usize,
    /// Enclave id of the member.
    pub eid: EnclaveId,
    /// Detector that fired (`fault_cusum`, `entropy_cusum`, `slo_burn`,
    /// `epc_skew`).
    pub detector: &'static str,
    /// Index of the window that tripped the detector.
    pub window: u64,
    /// Simulated-cycle timestamp of the window close.
    pub cycles: u64,
    /// Detector score at firing, milli-units.
    pub score_milli: u64,
    /// Decision threshold the score exceeded, milli-units.
    pub threshold_milli: u64,
    /// Most-recently faulted page in the tripping window, if the
    /// detector tracks addresses.
    pub vpn: Option<Vpn>,
    /// Firing reason (integer-valued, so the log stays byte-stable).
    pub why: String,
}

impl Alert {
    /// The flight-ring event announcing this alert.
    pub fn to_flight_event(&self) -> FlightEvent {
        FlightEvent::WatchAlert {
            eid: self.eid,
            detector: self.detector.to_owned(),
            window: self.window,
            score_milli: self.score_milli,
            vpn: self.vpn,
            why: self.why.clone(),
        }
    }

    /// One deterministic log line (the alert-log artifact row).
    pub fn log_line(&self, member_name: &str) -> String {
        let vpn = match self.vpn {
            Some(v) => v.0.to_string(),
            None => "-".to_owned(),
        };
        format!(
            "window={} cycles={} member={} eid={} detector={} score={}m threshold={}m vpn={} why={}",
            self.window,
            self.cycles,
            member_name,
            self.eid.0,
            self.detector,
            self.score_milli,
            self.threshold_milli,
            vpn,
            self.why,
        )
    }
}

/// Render the alert-log artifact: a header plus one line per alert.
pub fn render_alert_log(alerts: &[Alert], member_names: &[String]) -> String {
    let mut out = String::from("# watch alert log\n");
    out.push_str(&format!("alerts={}\n", alerts.len()));
    for a in alerts {
        let name = member_names
            .get(a.member)
            .map(String::as_str)
            .unwrap_or("?");
        out.push_str(&a.log_line(name));
        out.push('\n');
    }
    out
}

/// Per-member detector state plus the current window's accumulators.
#[derive(Debug, Clone)]
struct MemberLens {
    eid: EnclaveId,
    name: String,
    // Current-window accumulators.
    faults: u64,
    fault_pages: BTreeMap<u64, u64>,
    last_fault_vpn: Option<Vpn>,
    served: u64,
    slo_bad: u64,
    // Detector state.
    windows_seen: u64,
    fault_ewma: Ewma,
    fault_cusum: Cusum,
    entropy_ewma: Ewma,
    entropy_cusum: Cusum,
    cooldown_until_window: u64,
}

impl MemberLens {
    fn new(eid: EnclaveId, name: String, cfg: &WatchConfig) -> Self {
        Self {
            eid,
            name,
            faults: 0,
            fault_pages: BTreeMap::new(),
            last_fault_vpn: None,
            served: 0,
            slo_bad: 0,
            windows_seen: 0,
            fault_ewma: Ewma::new(cfg.ewma_alpha_milli),
            fault_cusum: Cusum::upward(cfg.fault_k_milli, cfg.fault_h_milli),
            entropy_ewma: Ewma::new(cfg.ewma_alpha_milli),
            entropy_cusum: Cusum::two_sided(cfg.entropy_k_milli, cfg.entropy_h_milli),
            cooldown_until_window: 0,
        }
    }

    fn clear_window(&mut self) {
        self.faults = 0;
        self.fault_pages.clear();
        self.last_fault_vpn = None;
        self.served = 0;
        self.slo_bad = 0;
    }
}

/// The streaming watchtower. See the module docs for the signal model.
#[derive(Debug, Clone)]
pub struct Watchtower {
    cfg: WatchConfig,
    window_start: u64,
    window_index: u64,
    members: Vec<MemberLens>,
    epc_frames: Vec<u64>,
    telemetry: Telemetry,
    ring_dropped_seen: u64,
    window_tainted: bool,
    pending: Vec<Alert>,
    alert_total: u64,
}

impl Watchtower {
    /// Create a tower whose first window opens at `start_cycles`.
    pub fn new(cfg: WatchConfig, start_cycles: u64) -> Self {
        Self {
            cfg,
            window_start: start_cycles,
            window_index: 0,
            members: Vec::new(),
            epc_frames: Vec::new(),
            telemetry: Telemetry::new(16, &WATCH_COUNTERS, &WATCH_GAUGES, &WATCH_HISTS),
            ring_dropped_seen: 0,
            window_tainted: false,
            pending: Vec::new(),
            alert_total: 0,
        }
    }

    /// Register a fleet member (in boot order); returns its index.
    pub fn add_member(&mut self, eid: EnclaveId, name: &str) -> usize {
        self.members
            .push(MemberLens::new(eid, name.to_owned(), &self.cfg));
        self.epc_frames.push(0);
        self.members.len() - 1
    }

    /// Member names in registration order (for the alert-log artifact).
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.name.clone()).collect()
    }

    /// The tower's own metric surface.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.window_index
    }

    /// Alerts fired over the tower's lifetime.
    pub fn alert_total(&self) -> u64 {
        self.alert_total
    }

    /// Flight-ring records lost to overflow, as seen by this consumer.
    pub fn ring_dropped(&self) -> u64 {
        self.ring_dropped_seen
    }

    /// A kernel fault observation for `eid`'s page `vpn` at `cycles`.
    pub fn observe_fault(&mut self, eid: EnclaveId, vpn: Vpn, cycles: u64) {
        self.roll_to(cycles);
        self.telemetry.incr("watch_faults");
        if let Some(m) = self.members.iter_mut().find(|m| m.eid == eid) {
            m.faults = m.faults.saturating_add(1);
            *m.fault_pages.entry(vpn.0).or_insert(0) += 1;
            m.last_fault_vpn = Some(vpn);
        }
    }

    /// A request for member `member` completed in `latency_cycles`,
    /// finishing at `cycles`.
    pub fn observe_request(&mut self, member: usize, latency_cycles: u64, cycles: u64) {
        self.roll_to(cycles);
        self.telemetry.incr("watch_requests");
        let budget = self.cfg.p99_budget_cycles;
        if let Some(m) = self.members.get_mut(member) {
            m.served = m.served.saturating_add(1);
            if budget > 0 && latency_cycles > budget {
                m.slo_bad = m.slo_bad.saturating_add(1);
            }
        }
    }

    /// Latest EPC occupancy sample, one frame count per member in
    /// registration order (extra entries ignored).
    pub fn sample_epc(&mut self, frames: &[u64]) {
        for (slot, &f) in self.epc_frames.iter_mut().zip(frames) {
            *slot = f;
        }
    }

    /// Report the flight ring's cumulative drop-oldest count. Any
    /// increase is surfaced as telemetry and taints the current window:
    /// detectors refuse to judge a window with a hole in its evidence.
    pub fn note_ring_dropped(&mut self, total_dropped: u64) {
        if total_dropped > self.ring_dropped_seen {
            let delta = total_dropped - self.ring_dropped_seen;
            self.ring_dropped_seen = total_dropped;
            self.telemetry.add("watch_ring_dropped", delta);
            self.window_tainted = true;
        }
    }

    /// Advance the tower's clock, closing every elapsed window.
    pub fn advance(&mut self, now_cycles: u64) {
        self.roll_to(now_cycles);
    }

    /// Take the alerts fired since the last call, in firing order.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending)
    }

    /// Forget member `member`'s detector state (it restarted: the fresh
    /// incarnation must re-learn its baseline) and start its cooldown.
    pub fn reset_member(&mut self, member: usize) {
        let cooldown = self.cfg.cooldown_windows;
        let window = self.window_index;
        if let Some(m) = self.members.get_mut(member) {
            m.clear_window();
            m.windows_seen = 0;
            m.fault_ewma.reset();
            m.fault_cusum.reset();
            m.entropy_ewma.reset();
            m.entropy_cusum.reset();
            m.cooldown_until_window = window.saturating_add(cooldown);
        }
    }

    fn roll_to(&mut self, now_cycles: u64) {
        while now_cycles >= self.window_start.saturating_add(self.cfg.epoch_cycles) {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let close_at = self.window_start.saturating_add(self.cfg.epoch_cycles);
        let window = self.window_index;
        let tainted = self.window_tainted;
        self.telemetry.incr("watch_windows");
        if tainted {
            self.telemetry.incr("watch_tainted_windows");
        }

        let mut fired: Vec<Alert> = Vec::new();
        for (index, m) in self.members.iter_mut().enumerate() {
            self.telemetry.hist_record("watch_window_faults", m.faults);
            m.windows_seen += 1;
            let warm = m.windows_seen > self.cfg.warmup_windows;
            let in_cooldown = window < m.cooldown_until_window;
            let judge = warm && !in_cooldown && !tainted;
            let mut member_alert = false;

            // Fault-rate CUSUM (upward only: quiet windows are fine).
            let x_fault = i64::try_from(m.faults.saturating_mul(1000)).unwrap_or(i64::MAX);
            if let (true, Some(mean), true) =
                (judge, m.fault_ewma.mean_milli(), self.cfg.fault_h_milli > 0)
            {
                if m.fault_cusum.update(x_fault, mean) {
                    let score = m.fault_cusum.score_milli().max(0) as u64;
                    fired.push(Alert {
                        member: index,
                        eid: m.eid,
                        detector: "fault_cusum",
                        window,
                        cycles: close_at,
                        score_milli: score,
                        threshold_milli: self.cfg.fault_h_milli,
                        vpn: m.last_fault_vpn,
                        why: format!(
                            "window fault count {} against baseline {}m (cusum {}m > {}m)",
                            m.faults, mean, score, self.cfg.fault_h_milli
                        ),
                    });
                    member_alert = true;
                }
            }
            // Baseline learns only outside anomalies: once the CUSUM is
            // accumulating evidence, the mean is frozen so a slow-burn
            // attack cannot drag its own baseline up behind itself.
            if m.fault_cusum.score_milli() == 0 || !warm {
                m.fault_ewma.update(x_fault);
            }

            // Fault-address entropy CUSUM (two-sided), only on windows
            // with enough faults for entropy to mean anything.
            if m.faults >= self.cfg.entropy_min_faults && self.cfg.entropy_h_milli > 0 {
                let counts: Vec<u64> = m.fault_pages.values().copied().collect();
                let x_entropy = i64::try_from(entropy_milli_bits(&counts)).unwrap_or(i64::MAX);
                if let (true, Some(mean)) = (judge, m.entropy_ewma.mean_milli()) {
                    if m.entropy_cusum.update(x_entropy, mean) && !member_alert {
                        let score = m.entropy_cusum.score_milli().max(0) as u64;
                        fired.push(Alert {
                            member: index,
                            eid: m.eid,
                            detector: "entropy_cusum",
                            window,
                            cycles: close_at,
                            score_milli: score,
                            threshold_milli: self.cfg.entropy_h_milli,
                            vpn: m.last_fault_vpn,
                            why: format!(
                                "fault-address entropy {x_entropy}m against baseline {}m (cusum {}m > {}m)",
                                mean,
                                score,
                                self.cfg.entropy_h_milli
                            ),
                        });
                        member_alert = true;
                    }
                }
                if m.entropy_cusum.score_milli() == 0 || !warm {
                    m.entropy_ewma.update(x_entropy);
                }
            }

            // SLO burn rate (stateless per window).
            if judge
                && !member_alert
                && self.cfg.p99_budget_cycles > 0
                && m.served >= self.cfg.min_window_requests
            {
                let burn = burn_rate_milli(m.slo_bad, m.served, self.cfg.slo_error_budget_milli);
                if burn > self.cfg.burn_threshold_milli {
                    fired.push(Alert {
                        member: index,
                        eid: m.eid,
                        detector: "slo_burn",
                        window,
                        cycles: close_at,
                        score_milli: burn,
                        threshold_milli: self.cfg.burn_threshold_milli,
                        vpn: None,
                        why: format!(
                            "{} of {} requests blew the {}-cycle p99 budget (burn {}m > {}m)",
                            m.slo_bad,
                            m.served,
                            self.cfg.p99_budget_cycles,
                            burn,
                            self.cfg.burn_threshold_milli
                        ),
                    });
                    member_alert = true;
                }
            }

            if member_alert {
                m.cooldown_until_window = window
                    .saturating_add(1)
                    .saturating_add(self.cfg.cooldown_windows);
                m.fault_cusum.reset();
                m.entropy_cusum.reset();
            }
            m.clear_window();
        }

        // Fleet-level EPC-pressure skew (after the per-member pass so
        // the alert order is deterministic: members first, fleet last).
        if self.cfg.epc_skew_threshold_milli > 0 && window >= self.cfg.warmup_windows && !tainted {
            let total: u64 = self.epc_frames.iter().sum();
            if total >= self.cfg.epc_min_total_frames {
                let (skew, idx) = epc_skew_milli(&self.epc_frames);
                self.telemetry.gauge_set("watch_epc_skew_milli", skew);
                if skew > self.cfg.epc_skew_threshold_milli {
                    if let Some(m) = self.members.get_mut(idx) {
                        if window >= m.cooldown_until_window {
                            fired.push(Alert {
                                member: idx,
                                eid: m.eid,
                                detector: "epc_skew",
                                window,
                                cycles: close_at,
                                score_milli: skew,
                                threshold_milli: self.cfg.epc_skew_threshold_milli,
                                vpn: None,
                                why: format!(
                                    "member holds {} of {} fleet frames (skew {}m > {}m)",
                                    self.epc_frames[idx],
                                    total,
                                    skew,
                                    self.cfg.epc_skew_threshold_milli
                                ),
                            });
                            m.cooldown_until_window = window
                                .saturating_add(1)
                                .saturating_add(self.cfg.cooldown_windows);
                        }
                    }
                }
            }
        }

        self.alert_total += fired.len() as u64;
        self.telemetry.add("watch_alerts", fired.len() as u64);
        self.pending.extend(fired);
        self.window_tainted = false;
        self.window_start = close_at;
        self.window_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchConfig {
        WatchConfig {
            epoch_cycles: 1_000,
            warmup_windows: 3,
            fault_k_milli: 1_000,
            fault_h_milli: 3_000,
            entropy_h_milli: 0,
            cooldown_windows: 2,
            ..Default::default()
        }
    }

    fn feed_window(t: &mut Watchtower, eid: EnclaveId, faults: u64, upto: u64) {
        for i in 0..faults {
            t.observe_fault(eid, Vpn(100 + i), upto.saturating_sub(faults) + i);
        }
        t.advance(upto);
    }

    #[test]
    fn quiet_traffic_never_alerts() {
        let mut t = Watchtower::new(cfg(), 0);
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..50 {
            feed_window(&mut t, eid, 2, upto);
            upto += 1_000;
        }
        assert_eq!(t.alert_total(), 0);
        assert!(t.take_alerts().is_empty());
        assert_eq!(t.windows_closed(), 50);
    }

    #[test]
    fn fault_burst_after_warmup_alerts_once_then_cools_down() {
        let mut t = Watchtower::new(cfg(), 0);
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..6 {
            feed_window(&mut t, eid, 2, upto);
            upto += 1_000;
        }
        assert_eq!(t.alert_total(), 0, "baseline learned, no alert yet");
        // Sustained 5× fault burst: the CUSUM fires on the first burst
        // window; the remaining burst windows land inside the cooldown.
        for _ in 0..3 {
            feed_window(&mut t, eid, 10, upto);
            upto += 1_000;
        }
        let alerts = t.take_alerts();
        assert_eq!(alerts.len(), 1, "one alert, then cooldown silence");
        assert_eq!(alerts[0].detector, "fault_cusum");
        assert_eq!(alerts[0].eid, eid);
        assert!(alerts[0].vpn.is_some(), "fault detector names a page");
        assert!(alerts[0].score_milli > alerts[0].threshold_milli);
    }

    #[test]
    fn alerts_during_warmup_are_suppressed() {
        let mut t = Watchtower::new(cfg(), 0);
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..3 {
            feed_window(&mut t, eid, 50, upto);
            upto += 1_000;
        }
        assert_eq!(t.alert_total(), 0, "warmup windows never alert");
    }

    #[test]
    fn tainted_window_is_not_judged() {
        let mut t = Watchtower::new(cfg(), 0);
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..6 {
            feed_window(&mut t, eid, 2, upto);
            upto += 1_000;
        }
        // A ring overflow taints the windows while the burst lands.
        for _ in 0..4 {
            t.note_ring_dropped(t.ring_dropped() + 5);
            feed_window(&mut t, eid, 10, upto);
            upto += 1_000;
        }
        assert_eq!(t.alert_total(), 0, "holes in evidence suppress verdicts");
        assert_eq!(t.telemetry().counter("watch_ring_dropped"), 20);
        assert_eq!(t.telemetry().counter("watch_tainted_windows"), 4);
    }

    #[test]
    fn reset_member_relearns_baseline() {
        let mut t = Watchtower::new(cfg(), 0);
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..6 {
            feed_window(&mut t, eid, 2, upto);
            upto += 1_000;
        }
        for _ in 0..3 {
            feed_window(&mut t, eid, 10, upto);
            upto += 1_000;
        }
        assert_eq!(t.take_alerts().len(), 1);
        t.reset_member(0);
        // Post-restart traffic at the old "attack" level: the fresh
        // incarnation learns it as its baseline, no immediate re-alert.
        for _ in 0..6 {
            feed_window(&mut t, eid, 10, upto);
            upto += 1_000;
        }
        assert!(t.take_alerts().is_empty(), "baseline relearned after reset");
    }

    #[test]
    fn slo_burn_detector_fires_on_latency_regression() {
        let mut t = Watchtower::new(
            WatchConfig {
                p99_budget_cycles: 500,
                burn_threshold_milli: 4_000,
                slo_error_budget_milli: 10,
                min_window_requests: 4,
                fault_h_milli: 0,
                entropy_h_milli: 0,
                ..cfg()
            },
            0,
        );
        let eid = EnclaveId(1);
        t.add_member(eid, "kv-a");
        let mut upto = 1_000;
        for _ in 0..5 {
            for r in 0..8u64 {
                t.observe_request(0, 100, upto - 8 + r);
            }
            t.advance(upto);
            upto += 1_000;
        }
        assert_eq!(t.alert_total(), 0);
        // Every request now blows the budget: burn = 100× allowed.
        for r in 0..8u64 {
            t.observe_request(0, 5_000, upto - 8 + r);
        }
        t.advance(upto);
        let alerts = t.take_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].detector, "slo_burn");
        assert_eq!(alerts[0].vpn, None);
    }

    #[test]
    fn epc_skew_detector_names_the_hog() {
        let mut t = Watchtower::new(
            WatchConfig {
                epc_skew_threshold_milli: 2_000,
                epc_min_total_frames: 10,
                fault_h_milli: 0,
                entropy_h_milli: 0,
                warmup_windows: 1,
                ..cfg()
            },
            0,
        );
        t.add_member(EnclaveId(1), "kv-a");
        t.add_member(EnclaveId(2), "kv-b");
        t.add_member(EnclaveId(3), "kv-c");
        t.sample_epc(&[30, 2, 2]);
        t.advance(3_000);
        let alerts = t.take_alerts();
        assert_eq!(alerts.len(), 1, "skew alert after warmup window");
        assert_eq!(alerts[0].detector, "epc_skew");
        assert_eq!(alerts[0].eid, EnclaveId(1));
        assert!(alerts[0].score_milli > 2_000);
    }

    #[test]
    fn alert_log_renders_deterministically() {
        let alerts = vec![Alert {
            member: 0,
            eid: EnclaveId(1),
            detector: "fault_cusum",
            window: 9,
            cycles: 10_000,
            score_milli: 5_120,
            threshold_milli: 3_000,
            vpn: Some(Vpn(17)),
            why: "window fault count 12 against baseline 2000m".to_owned(),
        }];
        let log = render_alert_log(&alerts, &["kv-a".to_owned()]);
        assert!(log.starts_with("# watch alert log\nalerts=1\n"));
        assert!(log.contains(
            "window=9 cycles=10000 member=kv-a eid=1 detector=fault_cusum score=5120m threshold=3000m vpn=17"
        ));
        let log2 = render_alert_log(&alerts, &["kv-a".to_owned()]);
        assert_eq!(log, log2);
    }

    #[test]
    fn empty_window_stream_closes_windows_without_panic() {
        let mut t = Watchtower::new(cfg(), 0);
        t.add_member(EnclaveId(1), "kv-a");
        t.advance(100_000);
        assert_eq!(t.windows_closed(), 100);
        assert_eq!(t.alert_total(), 0);
    }
}
