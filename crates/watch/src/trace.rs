//! Chrome-trace-event (Perfetto-compatible) export of a flight log.
//!
//! [`export_trace`] merges everything the flight ring knows about a
//! fleet run onto one cross-enclave timeline, in the Trace Event JSON
//! format `ui.perfetto.dev` and `chrome://tracing` load directly:
//!
//! * telemetry span closures become `"X"` complete events (per-member
//!   process rows, `tid` 1);
//! * kernel faults, injected faults, runtime decisions, verdicts,
//!   supervisor actions, and watch alerts become `"i"` instants;
//! * every correlation chain becomes an `"X"` slice on a dedicated
//!   `tid` 2 track spanning the chain's first to last record, so the
//!   fault→handler→decision round trips read as bars under the spans
//!   they explain.
//!
//! Timestamps are **simulated cycles, verbatim** (one `ts` unit = one
//! cycle; `otherData.ts_unit` says so). No wall time, no floats, no
//! host state: the writer is line-oriented and fully deterministic, so
//! the artifact is byte-identical across reruns and `--jobs` levels.
//! [`parse_trace`] reads the writer's exact format back (the schema
//! round-trip gate in CI).

use autarky_os_sim::kernel::Observation;
use autarky_os_sim::{FlightEvent, FlightRecord};
use autarky_sgx_sim::EnclaveId;
use std::collections::BTreeMap;

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The enclave a flight event is about, when it names one.
fn event_eid(event: &FlightEvent) -> Option<EnclaveId> {
    match event {
        FlightEvent::Transition { eid, .. }
        | FlightEvent::HandlerEntry { eid, .. }
        | FlightEvent::Supervisor { eid, .. }
        | FlightEvent::WatchAlert { eid, .. } => Some(*eid),
        FlightEvent::Kernel(obs) => match obs {
            Observation::Fault { eid, .. }
            | Observation::FetchSyscall { eid, .. }
            | Observation::EvictSyscall { eid, .. }
            | Observation::AllocSyscall { eid, .. }
            | Observation::SetEnclaveManaged { eid, .. }
            | Observation::SetOsManaged { eid, .. }
            | Observation::DemandPaging { eid, .. }
            | Observation::AdBitObserved { eid, .. }
            | Observation::FaultInjected { eid, .. } => Some(*eid),
            Observation::UntrustedAccess { .. } => None,
        },
        _ => None,
    }
}

/// `(name, cat, global_scope)` of the instant a record renders as, or
/// `None` for record kinds the trace omits (raw transitions and the
/// per-page syscall chatter, which would drown the timeline).
fn instant_of(event: &FlightEvent) -> Option<(String, &'static str, bool)> {
    match event {
        FlightEvent::Kernel(Observation::Fault { .. }) => {
            Some(("page_fault".to_owned(), "fault", false))
        }
        FlightEvent::Kernel(Observation::FaultInjected { .. }) => {
            Some(("injected_fault".to_owned(), "injection", false))
        }
        FlightEvent::Misbehavior { .. } => Some(("misbehavior".to_owned(), "decision", false)),
        FlightEvent::Retry { .. } => Some(("retry".to_owned(), "decision", false)),
        FlightEvent::Degrade { .. } => Some(("degrade".to_owned(), "decision", false)),
        FlightEvent::AttackDetected { .. } => Some(("attack_detected".to_owned(), "verdict", true)),
        FlightEvent::RateLimitKill => Some(("rate_limit_kill".to_owned(), "verdict", true)),
        FlightEvent::SnapshotCapture { .. } => {
            Some(("snapshot_capture".to_owned(), "snapshot", false))
        }
        FlightEvent::SnapshotRestore { .. } => {
            Some(("snapshot_restore".to_owned(), "snapshot", false))
        }
        FlightEvent::Supervisor { action, .. } => {
            Some((format!("supervisor:{action}"), "supervisor", false))
        }
        FlightEvent::WatchAlert { detector, .. } => {
            Some((format!("alert:{detector}"), "alert", true))
        }
        _ => None,
    }
}

/// Export a flight log as Chrome-trace-event JSON. `members` maps each
/// fleet member's enclave id to its display name (pid = raw enclave
/// id; pid 0 is the untrusted host). Deterministic: the output is a
/// pure function of `records` and `members`.
pub fn export_trace(records: &[FlightRecord], members: &[(EnclaveId, String)]) -> String {
    // Chain attribution: a chain belongs to the first enclave named in
    // it, so eid-less records (span closures, decisions) inherit the
    // pid of the fault round trip they were recorded under.
    let mut chain_eid: BTreeMap<u64, EnclaveId> = BTreeMap::new();
    let mut chain_span: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new(); // corr -> (first, last, count)
    for r in records {
        if r.corr == 0 {
            continue;
        }
        if let Some(eid) = event_eid(&r.event) {
            chain_eid.entry(r.corr).or_insert(eid);
        }
        let span = chain_span.entry(r.corr).or_insert((r.cycles, r.cycles, 0));
        span.1 = span.1.max(r.cycles);
        span.2 += 1;
    }
    let pid_of = |r: &FlightRecord| -> u32 {
        event_eid(&r.event)
            .or_else(|| chain_eid.get(&r.corr).copied())
            .map(|eid| eid.0)
            .unwrap_or(0)
    };

    let mut lines: Vec<String> = Vec::new();
    // Process/thread metadata rows, members in registration order.
    lines.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"host\"}}"
            .to_owned(),
    );
    for (eid, name) in members {
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{} (eid {})\"}}}}",
            eid.0,
            esc(name),
            eid.0
        ));
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":1,\"name\":\"thread_name\",\"args\":{{\"name\":\"events\"}}}}",
            eid.0
        ));
        lines.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":2,\"name\":\"thread_name\",\"args\":{{\"name\":\"chains\"}}}}",
            eid.0
        ));
    }

    // Event rows, in flight-log order.
    for r in records {
        let pid = pid_of(r);
        match &r.event {
            FlightEvent::SpanClose {
                kind,
                start_cycles,
                end_cycles,
            } => {
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"span\",\"args\":{{\"seq\":{},\"corr\":{}}}}}",
                    start_cycles,
                    end_cycles.saturating_sub(*start_cycles).max(1),
                    esc(kind),
                    r.seq,
                    r.corr
                ));
            }
            event => {
                if let Some((name, cat, global)) = instant_of(event) {
                    let scope = if global { "g" } else { "t" };
                    lines.push(format!(
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"ts\":{},\"s\":\"{scope}\",\"name\":\"{}\",\"cat\":\"{cat}\",\"args\":{{\"seq\":{},\"corr\":{},\"detail\":\"{}\"}}}}",
                        r.cycles,
                        esc(&name),
                        r.seq,
                        r.corr,
                        esc(&event.describe())
                    ));
                }
            }
        }
    }

    // Correlation chains as slices on each member's chain track.
    for (corr, (first, last, count)) in &chain_span {
        let pid = chain_eid.get(corr).map(|eid| eid.0).unwrap_or(0);
        lines.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":2,\"ts\":{first},\"dur\":{},\"name\":\"chain {corr}\",\"cat\":\"chain\",\"args\":{{\"corr\":{corr},\"events\":{count}}}}}",
            last.saturating_sub(*first).max(1)
        ));
    }

    let mut out = String::from("{\n\"displayTimeUnit\": \"ns\",\n");
    out.push_str(
        "\"otherData\": {\"generator\": \"autarky-watch\", \"ts_unit\": \"simulated-cycles\"},\n",
    );
    out.push_str("\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

/// One event row as read back by [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event phase (`M`, `X`, or `i`).
    pub ph: char,
    /// Process id (raw enclave id; 0 = host).
    pub pid: u32,
    /// Thread id (0 metadata, 1 events, 2 chains).
    pub tid: u32,
    /// Timestamp in simulated cycles (0 for metadata rows).
    pub ts: u64,
    /// Duration in simulated cycles (`X` rows only).
    pub dur: u64,
    /// Event name.
    pub name: String,
    /// Event category (empty for metadata rows).
    pub cat: String,
}

/// Scan `"key":<u64>` out of one event line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scan `"key":"value"` out of one event line, unescaping.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Parse [`export_trace`] output back into event rows. Line-oriented —
/// exactly the writer's format, not general JSON. Errors name the
/// offending line so a CI schema break is diagnosable from the log.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    let mut in_events = false;
    let mut seen_close = false;
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        if t == "\"traceEvents\": [" {
            in_events = true;
            continue;
        }
        if !in_events {
            continue;
        }
        if t == "]" {
            seen_close = true;
            in_events = false;
            continue;
        }
        if !t.starts_with('{') || !t.ends_with('}') {
            return Err(format!("not an event object: {t}"));
        }
        let ph = field_str(t, "ph")
            .and_then(|s| s.chars().next())
            .ok_or_else(|| format!("missing ph: {t}"))?;
        let pid = field_u64(t, "pid").ok_or_else(|| format!("missing pid: {t}"))? as u32;
        let tid = field_u64(t, "tid").ok_or_else(|| format!("missing tid: {t}"))? as u32;
        let name = field_str(t, "name").ok_or_else(|| format!("missing name: {t}"))?;
        let ts = field_u64(t, "ts").unwrap_or(0);
        let dur = field_u64(t, "dur").unwrap_or(0);
        let cat = field_str(t, "cat").unwrap_or_default();
        match ph {
            'M' => {}
            'X' => {
                if field_u64(t, "dur").is_none() {
                    return Err(format!("X event without dur: {t}"));
                }
            }
            'i' => {
                if field_str(t, "s").is_none() {
                    return Err(format!("instant without scope: {t}"));
                }
            }
            other => return Err(format!("unknown phase {other:?}: {t}")),
        }
        events.push(TraceEvent {
            ph,
            pid,
            tid,
            ts,
            dur,
            name,
            cat,
        });
    }
    if !seen_close {
        return Err("traceEvents array never closed".to_owned());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_os_sim::flight::FlightRecorder;
    use autarky_sgx_sim::{AccessKind, Va, Vpn};

    fn sample_records() -> Vec<FlightRecord> {
        let mut rec = FlightRecorder::new(64);
        rec.begin_chain();
        rec.record(
            100,
            FlightEvent::Kernel(Observation::Fault {
                eid: EnclaveId(1),
                va: Va(0x5000),
                kind: AccessKind::Read,
            }),
        );
        rec.record(
            150,
            FlightEvent::SpanClose {
                kind: "fault_handler".to_owned(),
                start_cycles: 100,
                end_cycles: 150,
            },
        );
        rec.end_chain();
        rec.record(
            200,
            FlightEvent::Supervisor {
                eid: EnclaveId(2),
                action: "restart".to_owned(),
                why: "watchdog \"budget\"".to_owned(),
            },
        );
        rec.record(
            250,
            FlightEvent::WatchAlert {
                eid: EnclaveId(1),
                detector: "fault_cusum".to_owned(),
                window: 3,
                score_milli: 5000,
                vpn: Some(Vpn(5)),
                why: "rate shift".to_owned(),
            },
        );
        rec.snapshot()
    }

    fn members() -> Vec<(EnclaveId, String)> {
        vec![
            (EnclaveId(1), "kv-a".to_owned()),
            (EnclaveId(2), "kv-b".to_owned()),
        ]
    }

    #[test]
    fn export_is_deterministic() {
        let records = sample_records();
        let a = export_trace(&records, &members());
        let b = export_trace(&records, &members());
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_preserves_every_event() {
        let records = sample_records();
        let json = export_trace(&records, &members());
        let events = parse_trace(&json).expect("parse");
        // 1 host metadata + 3 per member, then the data rows.
        let meta = events.iter().filter(|e| e.ph == 'M').count();
        assert_eq!(meta, 1 + 3 * 2);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.ph == 'X' && e.cat == "span")
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "fault_handler");
        assert_eq!(spans[0].pid, 1, "span inherits its chain's enclave");
        assert_eq!(spans[0].ts, 100);
        assert_eq!(spans[0].dur, 50);
        let instants: Vec<_> = events.iter().filter(|e| e.ph == 'i').collect();
        assert_eq!(instants.len(), 3, "fault, supervisor, alert");
        assert!(instants.iter().any(|e| e.name == "alert:fault_cusum"));
        assert!(instants.iter().any(|e| e.name == "supervisor:restart"));
        let chains: Vec<_> = events
            .iter()
            .filter(|e| e.ph == 'X' && e.cat == "chain")
            .collect();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].pid, 1);
        assert_eq!(chains[0].ts, 100);
    }

    #[test]
    fn escaping_survives_quotes_in_reasons() {
        let records = sample_records();
        let json = export_trace(&records, &members());
        let events = parse_trace(&json).expect("parse despite embedded quotes");
        assert!(events.iter().any(|e| e.name == "supervisor:restart"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_trace("{\n\"traceEvents\": [\nnot json\n]\n}\n").is_err());
        let missing_close = "{\n\"traceEvents\": [\n";
        assert!(parse_trace(missing_close).is_err());
        let bad_phase =
            "{\n\"traceEvents\": [\n{\"ph\":\"Q\",\"pid\":0,\"tid\":0,\"name\":\"x\"}\n]\n}\n";
        assert!(parse_trace(bad_phase).is_err());
    }

    #[test]
    fn empty_log_still_renders_valid_trace() {
        let json = export_trace(&[], &members());
        let events = parse_trace(&json).expect("parse");
        assert!(events.iter().all(|e| e.ph == 'M'));
        assert_eq!(events.len(), 7);
    }
}
