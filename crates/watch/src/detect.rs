//! Online detector math in integer milli fixed-point.
//!
//! Every detector here operates on **milli-units** (`x_milli = x ×
//! 1000`) with pure integer arithmetic — no floating point anywhere on
//! the alerting path. That is the teeth behind the watchtower's
//! determinism contract: alert logs and trace artifacts must be
//! byte-identical across reruns, `--jobs` levels, and platforms, and
//! integer math cannot pick up libm or rounding-mode skew. All updates
//! saturate instead of wrapping, so a hostile counter (or a synthetic
//! saturation test) degrades a score rather than corrupting state.

/// One fixed-point unit: detector inputs and scores carry 1/1000ths.
pub const MILLI: i64 = 1000;

/// Exponentially-weighted moving average over milli-unit samples.
///
/// `m ← m + α·(x − m)` with `α` itself in milli-units. The state is
/// unset until the first sample, so an empty stream has no mean to
/// compare against (callers treat that as "still warming up").
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha_milli: i64,
    mean_milli: Option<i64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha_milli`/1000
    /// (clamped to `0..=1000`).
    pub fn new(alpha_milli: u64) -> Self {
        Self {
            alpha_milli: (alpha_milli as i64).clamp(0, MILLI),
            mean_milli: None,
        }
    }

    /// Current mean in milli-units; `None` before any sample.
    pub fn mean_milli(&self) -> Option<i64> {
        self.mean_milli
    }

    /// Absorb one milli-unit sample and return the updated mean.
    pub fn update(&mut self, x_milli: i64) -> i64 {
        let m = match self.mean_milli {
            // First sample seeds the mean exactly (no bias toward 0).
            None => x_milli,
            Some(m) => {
                let delta = x_milli.saturating_sub(m);
                m.saturating_add(self.alpha_milli.saturating_mul(delta) / MILLI)
            }
        };
        self.mean_milli = Some(m);
        m
    }

    /// Forget all state (member restarted: the fresh incarnation must
    /// not inherit the compromised one's baseline).
    pub fn reset(&mut self) {
        self.mean_milli = None;
    }
}

/// Two-sided CUSUM change-point detector over milli-unit samples.
///
/// Classic tabular CUSUM against a reference mean `m` (supplied per
/// sample, usually an [`Ewma`] of the same stream):
///
/// ```text
/// s_hi ← max(0, s_hi + (x − m) − k)     upward shifts
/// s_lo ← max(0, s_lo + (m − x) − k)     downward shifts
/// ```
///
/// with slack `k` and decision threshold `h`, all in milli-units. The
/// detector fires when either sum *strictly exceeds* `h` — a score of
/// exactly `h` does not alert, which the boundary tests pin down.
#[derive(Debug, Clone)]
pub struct Cusum {
    k_milli: i64,
    h_milli: i64,
    s_hi_milli: i64,
    s_lo_milli: i64,
    two_sided: bool,
}

impl Cusum {
    /// One-sided (upward shifts only) CUSUM with slack `k` and
    /// threshold `h`, both in milli-units.
    pub fn upward(k_milli: u64, h_milli: u64) -> Self {
        Self {
            k_milli: k_milli as i64,
            h_milli: h_milli as i64,
            s_hi_milli: 0,
            s_lo_milli: 0,
            two_sided: false,
        }
    }

    /// Two-sided CUSUM (fires on shifts in either direction).
    pub fn two_sided(k_milli: u64, h_milli: u64) -> Self {
        Self {
            two_sided: true,
            ..Self::upward(k_milli, h_milli)
        }
    }

    /// Decision threshold in milli-units.
    pub fn threshold_milli(&self) -> i64 {
        self.h_milli
    }

    /// Current score: the larger cumulative sum, in milli-units.
    pub fn score_milli(&self) -> i64 {
        self.s_hi_milli.max(self.s_lo_milli)
    }

    /// Absorb one sample against reference mean `mean_milli`; returns
    /// `true` when the score strictly exceeds the threshold.
    pub fn update(&mut self, x_milli: i64, mean_milli: i64) -> bool {
        let dev = x_milli.saturating_sub(mean_milli);
        self.s_hi_milli = self
            .s_hi_milli
            .saturating_add(dev.saturating_sub(self.k_milli))
            .max(0);
        if self.two_sided {
            self.s_lo_milli = self
                .s_lo_milli
                .saturating_add(dev.saturating_neg().saturating_sub(self.k_milli))
                .max(0);
        }
        self.fired()
    }

    /// Whether the current score strictly exceeds the threshold.
    pub fn fired(&self) -> bool {
        self.score_milli() > self.h_milli
    }

    /// Zero both cumulative sums (after an alert or a member restart).
    pub fn reset(&mut self) {
        self.s_hi_milli = 0;
        self.s_lo_milli = 0;
    }
}

/// Integer `log2(v)` in milli-bits (`log2(v) × 1000`, rounded down).
///
/// Fixed-point square-and-extract: normalize `v` to `[1, 2)` in Q32,
/// then square ten times, each squaring yielding one bit of the
/// fraction — the textbook integer log algorithm. Deterministic on any
/// platform because it never leaves `u64`/`u128`. `log2_milli(0) = 0`
/// by convention (callers never pass 0 for a counted symbol).
pub fn log2_milli(v: u64) -> u64 {
    if v <= 1 {
        return 0;
    }
    let int_part = 63 - v.leading_zeros() as u64;
    // Normalize the mantissa to Q32 in [1, 2).
    let mut frac: u128 = ((v as u128) << 32) >> int_part;
    let mut frac_bits: u64 = 0;
    for _ in 0..10 {
        frac_bits <<= 1;
        frac = (frac * frac) >> 32;
        if frac >= 2u128 << 32 {
            frac_bits |= 1;
            frac >>= 1;
        }
    }
    // frac_bits holds 10 fractional bits of log2; scale 1024ths → milli.
    int_part * 1000 + frac_bits * 1000 / 1024
}

/// Shannon entropy of a count distribution, in milli-bits.
///
/// For counts `c_i` summing to `n`: `H = Σ (c_i/n)·log2(n/c_i)`,
/// computed as `Σ c_i·(log2(n) − log2(c_i)) / n` entirely in integers.
/// Empty input (or a single symbol) has zero entropy. Saturates rather
/// than overflowing on absurd counts.
pub fn entropy_milli_bits(counts: &[u64]) -> u64 {
    let n: u64 = counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
    if n == 0 {
        return 0;
    }
    let log_n = log2_milli(n);
    let mut acc: u128 = 0;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let term = log_n.saturating_sub(log2_milli(c));
        acc = acc.saturating_add(c as u128 * term as u128);
    }
    u64::try_from(acc / n as u128).unwrap_or(u64::MAX)
}

/// SLO burn rate in milli-units.
///
/// `bad` of `total` requests in the window blew the latency budget;
/// the SLO allows `error_budget_milli`/1000 of them to. The burn rate
/// is the ratio of observed bad fraction to allowed bad fraction — a
/// burn of 1000 means "consuming the error budget exactly as fast as
/// allowed", 4000 means "4× too fast". Returns 0 for an empty window.
pub fn burn_rate_milli(bad: u64, total: u64, error_budget_milli: u64) -> u64 {
    if total == 0 || error_budget_milli == 0 {
        return 0;
    }
    let bad_milli = (bad as u128).saturating_mul(1000) / total as u128;
    u64::try_from(bad_milli.saturating_mul(1000) / error_budget_milli as u128).unwrap_or(u64::MAX)
}

/// Cross-member EPC-pressure skew in milli-units.
///
/// Given each member's resident EPC frame count, returns
/// `max_share / mean_share × 1000` — 1000 means perfectly balanced,
/// 2000 means the hottest member holds twice its fair share. Returns
/// `(skew_milli, index_of_max)`; `(0, 0)` when no member holds frames.
pub fn epc_skew_milli(frames: &[u64]) -> (u64, usize) {
    let n = frames.len() as u64;
    let total: u64 = frames.iter().fold(0u64, |acc, &f| acc.saturating_add(f));
    if n == 0 || total == 0 {
        return (0, 0);
    }
    let (max_idx, max) = frames
        .iter()
        .enumerate()
        .max_by_key(|&(i, f)| (*f, std::cmp::Reverse(i)))
        .map(|(i, f)| (i, *f))
        .unwrap_or((0, 0));
    // max/mean = max·n/total.
    let skew = (max as u128).saturating_mul(n as u128).saturating_mul(1000) / total as u128;
    (u64::try_from(skew).unwrap_or(u64::MAX), max_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- EWMA ----

    #[test]
    fn ewma_empty_has_no_mean() {
        let e = Ewma::new(200);
        assert_eq!(e.mean_milli(), None, "no samples, no baseline");
    }

    #[test]
    fn ewma_single_sample_seeds_exactly() {
        let mut e = Ewma::new(200);
        assert_eq!(e.update(5_000), 5_000);
        assert_eq!(e.mean_milli(), Some(5_000));
    }

    #[test]
    fn ewma_converges_toward_level() {
        let mut e = Ewma::new(500);
        e.update(0);
        for _ in 0..30 {
            e.update(10_000);
        }
        let m = e.mean_milli().unwrap();
        assert!(m > 9_900, "converged near the level, got {m}");
    }

    #[test]
    fn ewma_saturates_instead_of_wrapping() {
        let mut e = Ewma::new(1000);
        e.update(i64::MAX - 1);
        e.update(i64::MAX - 1);
        assert!(e.mean_milli().unwrap() > 0, "no wraparound to negative");
    }

    #[test]
    fn ewma_reset_forgets() {
        let mut e = Ewma::new(200);
        e.update(42);
        e.reset();
        assert_eq!(e.mean_milli(), None);
    }

    // ---- CUSUM ----

    #[test]
    fn cusum_empty_window_score_is_zero() {
        let c = Cusum::upward(500, 3_000);
        assert_eq!(c.score_milli(), 0);
        assert!(!c.fired());
    }

    #[test]
    fn cusum_single_benign_sample_does_not_fire() {
        let mut c = Cusum::upward(500, 3_000);
        assert!(
            !c.update(1_000, 1_000),
            "on-mean sample accumulates nothing"
        );
        assert_eq!(c.score_milli(), 0);
    }

    #[test]
    fn cusum_threshold_boundary_is_strict() {
        // One sample that lands the score exactly on h: must NOT fire.
        let mut c = Cusum::upward(0, 3_000);
        assert!(!c.update(4_000, 1_000), "score == h is not an alert");
        assert_eq!(c.score_milli(), 3_000);
        // One more milli-unit strictly exceeds h: fires.
        assert!(c.update(1, 0), "score > h fires");
    }

    #[test]
    fn cusum_accumulates_persistent_shift() {
        let mut c = Cusum::upward(500, 3_000);
        let mut fired = false;
        for _ in 0..4 {
            fired = c.update(2_500, 1_000); // +1000 over slack per step
        }
        assert!(fired, "persistent +1.5 shift fires within 4 windows");
    }

    #[test]
    fn cusum_decays_back_after_transient() {
        let mut c = Cusum::upward(500, 10_000);
        c.update(3_000, 1_000); // transient spike: s = 1500
        for _ in 0..3 {
            c.update(0, 1_000); // below mean: drains s
        }
        assert_eq!(c.score_milli(), 0, "one-off spike drains away");
    }

    #[test]
    fn cusum_two_sided_catches_downward_shift() {
        let mut c = Cusum::two_sided(200, 2_000);
        let mut fired = false;
        for _ in 0..4 {
            fired = c.update(0, 1_000);
        }
        assert!(fired, "collapse to zero fires the low side");
        let mut one_sided = Cusum::upward(200, 2_000);
        for _ in 0..4 {
            assert!(!one_sided.update(0, 1_000), "upward-only ignores it");
        }
    }

    #[test]
    fn cusum_saturation_does_not_wrap() {
        let mut c = Cusum::upward(0, i64::MAX as u64);
        c.update(i64::MAX - 1, 0);
        c.update(i64::MAX - 1, 0);
        assert!(c.score_milli() > 0, "saturating add, no wrap to negative");
        c.reset();
        assert_eq!(c.score_milli(), 0);
    }

    // ---- entropy ----

    #[test]
    fn log2_milli_anchors() {
        assert_eq!(log2_milli(0), 0);
        assert_eq!(log2_milli(1), 0);
        assert_eq!(log2_milli(2), 1000);
        assert_eq!(log2_milli(4), 2000);
        assert_eq!(log2_milli(1024), 10_000);
        // log2(3) = 1.58496...; 10-bit fraction lands within 2 milli.
        let l3 = log2_milli(3);
        assert!((1583..=1585).contains(&l3), "log2(3) ≈ 1.585, got {l3}");
    }

    #[test]
    fn entropy_empty_and_single_symbol_are_zero() {
        assert_eq!(entropy_milli_bits(&[]), 0);
        assert_eq!(entropy_milli_bits(&[7]), 0, "one symbol carries no bits");
    }

    #[test]
    fn entropy_uniform_distribution_is_log2_n() {
        let h = entropy_milli_bits(&[5, 5, 5, 5]);
        assert!(
            (1995..=2000).contains(&h),
            "uniform over 4 ≈ 2 bits, got {h}"
        );
        let h8 = entropy_milli_bits(&[1; 8]);
        assert!(
            (2993..=3000).contains(&h8),
            "uniform over 8 ≈ 3 bits, got {h8}"
        );
    }

    #[test]
    fn entropy_skewed_is_below_uniform() {
        let uniform = entropy_milli_bits(&[10, 10, 10, 10]);
        let skewed = entropy_milli_bits(&[37, 1, 1, 1]);
        assert!(skewed < uniform, "{skewed} < {uniform}");
    }

    #[test]
    fn entropy_saturating_counts_do_not_panic() {
        let h = entropy_milli_bits(&[u64::MAX / 2, u64::MAX / 2, 3]);
        assert!(h <= 64_000, "entropy of any u64 distribution ≤ 64 bits");
    }

    // ---- SLO burn / EPC skew ----

    #[test]
    fn burn_rate_empty_window_is_zero() {
        assert_eq!(burn_rate_milli(0, 0, 10), 0);
    }

    #[test]
    fn burn_rate_at_budget_is_exactly_1000() {
        // 1% bad with a 1% budget: burning exactly at the allowed rate.
        assert_eq!(burn_rate_milli(1, 100, 10), 1000);
        // 4% bad with a 1% budget: 4× burn.
        assert_eq!(burn_rate_milli(4, 100, 10), 4000);
    }

    #[test]
    fn burn_rate_saturates() {
        assert!(burn_rate_milli(u64::MAX, 1, 1) >= 1_000_000);
    }

    #[test]
    fn epc_skew_balanced_is_1000() {
        let (skew, _) = epc_skew_milli(&[8, 8, 8, 8]);
        assert_eq!(skew, 1000);
    }

    #[test]
    fn epc_skew_names_the_hog() {
        let (skew, idx) = epc_skew_milli(&[4, 20, 4, 4]);
        assert_eq!(idx, 1);
        assert_eq!(skew, 2500, "20 frames of 32, 4 members: 2.5× fair share");
    }

    #[test]
    fn epc_skew_empty_fleet_is_zero() {
        assert_eq!(epc_skew_milli(&[]), (0, 0));
        assert_eq!(epc_skew_milli(&[0, 0]), (0, 0));
    }

    #[test]
    fn epc_skew_tie_prefers_first_member() {
        let (_, idx) = epc_skew_milli(&[9, 9, 3]);
        assert_eq!(idx, 0, "deterministic tie-break: lowest index");
    }
}
