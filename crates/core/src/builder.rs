//! The high-level system builder: one call from "I want an Autarky
//! enclave with policy X" to a runnable [`World`].
//!
//! The five [`Profile`]s correspond to the configurations the paper
//! evaluates against each other:
//!
//! | Profile | Paper configuration |
//! |---|---|
//! | [`Profile::Unprotected`] | vanilla SGX baseline (OS demand paging, clock eviction) |
//! | [`Profile::PinAll`] | everything resident; any fault is an attack |
//! | [`Profile::Clusters`] | secure self-paging with page clusters (§5.2.3) |
//! | [`Profile::RateLimited`] | bounded-leakage demand paging for unmodified binaries (§5.2.4) |
//! | [`Profile::CachedOram`] / [`Profile::UncachedOram`] | ORAM paging (§5.2.2 / pre-Autarky) |

use autarky_os_sim::EnclaveImage;
use autarky_runtime::{PagingMechanism, PolicyMode, RateLimit, RtError, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{CostModel, PAGE_SIZE};
use autarky_workloads::{EncHeap, World};

/// Protection profile for the enclave under construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profile {
    /// Legacy SGX enclave: no Autarky, OS pages at will, fully exposed to
    /// the controlled channel.
    Unprotected,
    /// Self-paging enclave with everything pinned (working set must fit
    /// the budget); any fault on a tracked page kills the enclave.
    PinAll,
    /// Self-paging with page clusters of the given size for data pages
    /// (code pages are always clustered per library).
    Clusters {
        /// Pages per automatic data cluster.
        pages_per_cluster: usize,
    },
    /// Demand paging with a fault-rate bound; runs unmodified binaries.
    RateLimited {
        /// Maximum faults per unit of forward progress.
        max_faults_per_progress: f64,
        /// Faults tolerated before the ratio applies (cold start).
        burst: u64,
    },
    /// ORAM data path with an enclave-managed cache (§5.2.2).
    CachedOram {
        /// ORAM block space in pages.
        capacity_pages: u64,
        /// Enclave-managed cache size in pages.
        cache_pages: usize,
    },
    /// ORAM data path without the cache (pre-Autarky; very slow).
    UncachedOram {
        /// ORAM block space in pages.
        capacity_pages: u64,
    },
}

/// Builder for a complete simulated system.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    name: String,
    profile: Profile,
    epc_pages: usize,
    heap_pages: usize,
    code_pages: usize,
    data_pages: usize,
    budget_pages: usize,
    mechanism: PagingMechanism,
    elide_aex: bool,
    elide_handler_invocation: bool,
    costs: CostModel,
    seed: u64,
}

impl SystemBuilder {
    /// Start building a system named `name` with the given profile.
    pub fn new(name: &str, profile: Profile) -> Self {
        Self {
            name: name.to_owned(),
            profile,
            epc_pages: 8192,
            heap_pages: 4096,
            code_pages: 16,
            data_pages: 16,
            budget_pages: 0,
            mechanism: PagingMechanism::Sgx1,
            elide_aex: false,
            elide_handler_invocation: false,
            costs: CostModel::default(),
            seed: 42,
        }
    }

    /// EPC size in 4 KiB pages (paper hardware: ~190 MB usable).
    pub fn epc_pages(mut self, pages: usize) -> Self {
        self.epc_pages = pages;
        self
    }

    /// EPC size in MiB.
    pub fn epc_mib(self, mib: usize) -> Self {
        let pages = mib * (1 << 20) / PAGE_SIZE;
        self.epc_pages(pages)
    }

    /// Enclave heap size in pages.
    pub fn heap_pages(mut self, pages: usize) -> Self {
        self.heap_pages = pages;
        self
    }

    /// Enclave code region size in pages.
    pub fn code_pages(mut self, pages: usize) -> Self {
        self.code_pages = pages;
        self
    }

    /// Enclave initialized-data region size in pages.
    pub fn data_pages(mut self, pages: usize) -> Self {
        self.data_pages = pages;
        self
    }

    /// Resident-page budget for self-paging (0 = unlimited).
    pub fn budget_pages(mut self, pages: usize) -> Self {
        self.budget_pages = pages;
        self
    }

    /// Choose the paging mechanism (SGXv1 `EWB`/`ELDU` or SGXv2 software).
    pub fn mechanism(mut self, mechanism: PagingMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Enable the proposed AEX-elision hardware optimization.
    pub fn elide_aex(mut self, on: bool) -> Self {
        self.elide_aex = on;
        self
    }

    /// Enable the "no upcall" (in-enclave resume) variant.
    pub fn elide_handler_invocation(mut self, on: bool) -> Self {
        self.elide_handler_invocation = on;
        self
    }

    /// Override the cycle cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Seed for the ORAM randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assemble the world and its data heap.
    pub fn build(self) -> Result<(World, EncHeap), RtError> {
        let machine = MachineConfig {
            epc_frames: self.epc_pages,
            costs: self.costs,
            elide_aex: self.elide_aex,
            elide_handler_invocation: self.elide_handler_invocation,
        };
        let mut image = EnclaveImage::named(&self.name);
        image.self_paging = !matches!(self.profile, Profile::Unprotected);
        image.heap_pages = self.heap_pages;
        image.code_pages = self.code_pages;
        image.data_pages = self.data_pages;

        let runtime = match self.profile {
            Profile::Unprotected => RuntimeConfig::default(),
            Profile::PinAll => RuntimeConfig {
                mode: PolicyMode::PinAll,
                budget: 0,
                mechanism: self.mechanism,
                ..Default::default()
            },
            Profile::Clusters { pages_per_cluster } => RuntimeConfig {
                mode: PolicyMode::SelfPaging,
                auto_cluster_size: pages_per_cluster,
                budget: self.budget_pages,
                mechanism: self.mechanism,
                ..Default::default()
            },
            Profile::RateLimited {
                max_faults_per_progress,
                burst,
            } => RuntimeConfig {
                mode: PolicyMode::SelfPaging,
                rate_limit: Some(RateLimit {
                    max_faults_per_progress,
                    burst,
                }),
                budget: self.budget_pages,
                mechanism: self.mechanism,
                ..Default::default()
            },
            Profile::CachedOram { .. } | Profile::UncachedOram { .. } => RuntimeConfig {
                mode: PolicyMode::PinAll, // ORAM cache + metadata stay pinned
                budget: 0,
                mechanism: self.mechanism,
                ..Default::default()
            },
        };

        let heap = match self.profile {
            Profile::CachedOram {
                capacity_pages,
                cache_pages,
            } => EncHeap::cached_oram(capacity_pages, cache_pages, self.seed),
            Profile::UncachedOram { capacity_pages } => {
                EncHeap::uncached_oram(capacity_pages, self.seed)
            }
            _ => EncHeap::direct(),
        };

        let world = World::new(machine, image, runtime)?;
        Ok((world, heap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_profile() {
        let profiles = [
            Profile::Unprotected,
            Profile::PinAll,
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            Profile::RateLimited {
                max_faults_per_progress: 16.0,
                burst: 512,
            },
            Profile::CachedOram {
                capacity_pages: 128,
                cache_pages: 32,
            },
            Profile::UncachedOram {
                capacity_pages: 128,
            },
        ];
        for profile in profiles {
            let (mut world, mut heap) = SystemBuilder::new("builder-test", profile)
                .epc_pages(2048)
                .heap_pages(512)
                .build()
                .unwrap_or_else(|e| panic!("{profile:?}: {e}"));
            let ptr = heap.alloc(&mut world, 64).expect("alloc");
            heap.write(&mut world, ptr, &[9u8; 64]).expect("write");
            let mut buf = [0u8; 64];
            heap.read(&mut world, ptr, &mut buf).expect("read");
            assert_eq!(buf, [9u8; 64], "{profile:?}");
        }
    }

    #[test]
    fn unprotected_profile_is_legacy_enclave() {
        let (world, _) = SystemBuilder::new("legacy", Profile::Unprotected)
            .build()
            .expect("build");
        let secs = world.os.machine.secs(world.eid).expect("secs");
        assert!(!secs.attributes.self_paging);
    }

    #[test]
    fn protected_profiles_attest_self_paging() {
        let (world, _) = SystemBuilder::new("protected", Profile::PinAll)
            .build()
            .expect("build");
        let report = world
            .os
            .machine
            .ereport(world.eid, [0; 64])
            .expect("report");
        assert!(report.attributes.self_paging, "the bit is attested");
    }

    #[test]
    fn epc_mib_conversion() {
        let (world, _) = SystemBuilder::new("sz", Profile::PinAll)
            .epc_mib(16)
            .heap_pages(64)
            .build()
            .expect("build");
        assert_eq!(world.os.machine.epc_total_frames(), 16 * 256);
    }
}
