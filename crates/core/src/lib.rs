//! **Autarky** — closing controlled channels with self-paging enclaves.
//!
//! A full-system reproduction of *Orenbach, Baumann, Silberstein: "Autarky:
//! Closing controlled channels with self-paging enclaves" (EuroSys 2020)*,
//! built on a deterministic SGX machine simulator.
//!
//! ## What's here
//!
//! * [`sgx`] — the SGX architecture model with Autarky's ISA extensions
//!   (fault masking, the pending-exception flag, the accessed/dirty-bit
//!   precondition, AEX elision);
//! * [`os`] — the untrusted OS: loader, demand paging, the Autarky driver
//!   syscalls, and the controlled-channel attacker;
//! * [`rt`] — the trusted self-paging runtime: the fault handler with
//!   attack detection, page clusters (Table 1), rate limiting, and both
//!   SGXv1/SGXv2 paging mechanisms;
//! * [`oram`] — PathORAM with the enclave-managed cache front-end;
//! * [`workloads`] — every workload the paper evaluates;
//! * [`SystemBuilder`] — one-call assembly of a protected system.
//!
//! ## Quickstart
//!
//! ```
//! use autarky::{Profile, SystemBuilder};
//!
//! // A self-paging enclave with 10-page data clusters.
//! let (mut world, mut heap) =
//!     SystemBuilder::new("demo", Profile::Clusters { pages_per_cluster: 10 })
//!         .epc_mib(8)
//!         .heap_pages(512)
//!         .build()
//!         .expect("system assembles");
//!
//! // Allocate and touch enclave memory; faults, paging, and policy all
//! // happen behind this call.
//! let ptr = heap.alloc(&mut world, 4096).expect("alloc");
//! heap.write(&mut world, ptr, &[7u8; 4096]).expect("write");
//! let mut buf = [0u8; 4096];
//! heap.read(&mut world, ptr, &mut buf).expect("read");
//! assert_eq!(buf[0], 7);
//!
//! // The runtime detected no attacks and the OS saw no usable trace.
//! assert!(!world.rt.is_terminated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;

pub use builder::{Profile, SystemBuilder};

/// The SGX machine model (re-export of `autarky-sgx-sim`).
pub use autarky_sgx_sim as sgx;

/// The untrusted OS and attacker (re-export of `autarky-os-sim`).
pub use autarky_os_sim as os;

/// The trusted self-paging runtime (re-export of `autarky-runtime`).
pub use autarky_runtime as rt;

/// PathORAM (re-export of `autarky-oram`).
pub use autarky_oram as oram;

/// Evaluation workloads (re-export of `autarky-workloads`).
pub use autarky_workloads as workloads;

/// Cryptographic primitives (re-export of `autarky-crypto`).
pub use autarky_crypto as crypto;

/// Enclave-side telemetry (re-export of `autarky-telemetry`).
pub use autarky_telemetry as telemetry;

/// Commonly used types in one import.
pub mod prelude {
    pub use crate::builder::{Profile, SystemBuilder};
    pub use autarky_os_sim::{EnclaveImage, Observation, Os, OsError};
    pub use autarky_runtime::{
        PagingMechanism, PolicyMode, RateLimit, RtError, Runtime, RuntimeConfig,
    };
    pub use autarky_sgx_sim::machine::MachineConfig;
    pub use autarky_sgx_sim::{AccessKind, CostModel, EnclaveId, Va, Vpn, CLOCK_HZ, PAGE_SIZE};
    pub use autarky_workloads::{EncHeap, Ptr, World};
}
