//! Causal cycle-attribution profiler for the Autarky simulator.
//!
//! Joins three existing observability streams — the tagged cost ledger
//! in `sgx-sim` (via its charge journal), the telemetry span ring, and
//! the flight recorder's correlation chains — into one hierarchical
//! attribution: every simulated cycle of a measured phase lands on a
//! `workload → chain → span… → tag` path, with per-fault latency
//! histograms, per-page-cluster breakdowns, and a gated unattributed
//! residual.
//!
//! Outputs are deterministic byte-for-byte: collapsed-stack folded
//! text, a self-contained SVG flamegraph, and a line-oriented JSON
//! profile with a differential mode (`profile-diff a.json b.json`).
//!
//! The profiler is strictly **host-side** tooling: it reads only
//! simulator state the host already owns (the simulated clock, the OS
//! flight recorder, the runtime telemetry it instruments) and never
//! widens the enclave's sealed export surface. Host wall-clock numbers
//! exist only in [`collect::Collected::wall`] and CLI stdout — never in
//! the byte-compared artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod attr;
pub mod collect;
pub mod diff;
pub mod flame;
pub mod profile;
pub mod tree;

pub use collect::{collect, CollectSpec, Collected, PROFILE_POLICIES, PROFILE_WORKLOADS};
pub use diff::ProfileDiff;
pub use flame::{diff_flamegraph, flamegraph};
pub use profile::{baseline_hot_path, ClusterRow, CycleProfile};
pub use tree::ProfileNode;
