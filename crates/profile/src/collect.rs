//! Profile collection: run a policy × workload cell with the charge
//! journal, span ring, and flight recorder armed, and attribute every
//! simulated cycle of the measured phase.
//!
//! Collection is *harvest-batched*: every few operations the three
//! streams are drained and joined ([`crate::attr`]), then re-armed.
//! Harvest windows are independent — every correlation chain and
//! telemetry span closes between operations — so batching bounds
//! buffer sizes without losing attribution at the seams.
//!
//! The workload setup phase (allocation, dictionary/store loading) runs
//! *before* arming: the profile covers exactly the measured phase, the
//! same phase `bench::perf` times. Host wall-clock is measured around
//! the whole collection but kept out of [`CycleProfile`] — it rides
//! alongside in [`Collected`], so deterministic artifacts stay
//! byte-stable while the CLI can still report simulator ops/sec.

use autarky::prelude::*;
use autarky::workloads::kvstore::{ItemClustering, KvStore};
use autarky::workloads::spell::{synth_wordlist, Dictionary};
use autarky::{Profile, SystemBuilder};
use autarky_bench::fig5::BATCH;
use autarky_bench::harness::{WallAccount, WallTimer};
use autarky_sgx_sim::CostTag;
use autarky_telemetry::{SpanKind, SpanRecord};

use crate::attr::Attributor;
use crate::profile::{ClusterRow, CycleProfile, CLUSTER_ROWS};

/// Workloads the profiler knows how to drive (the fault-free pinned
/// font workload is deliberately absent — it has no paging hot path).
pub const PROFILE_WORKLOADS: [&str; 3] = ["paging", "spell", "kvstore"];

/// Paging-policy variants, the profile diff axis:
/// `clusters` = the perf-suite defaults, `single` = degraded to
/// single-page fetching (smaller clusters / colder cache), `elided` =
/// defaults plus AEX elision.
pub const PROFILE_POLICIES: [&str; 3] = ["clusters", "single", "elided"];

/// Operations per harvest window.
const HARVEST_EVERY: u64 = 8;
/// Charge-journal capacity per window.
const JOURNAL_CAP: usize = 1 << 18;
/// Flight-recorder capacity per window.
const FLIGHT_CAP: usize = 1 << 15;

/// One profile request: which cell to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectSpec {
    /// Workload name (see [`PROFILE_WORKLOADS`]).
    pub workload: String,
    /// Policy variant (see [`PROFILE_POLICIES`]).
    pub policy: String,
    /// Scale factor (multiplies operation counts).
    pub scale: u32,
}

/// A collected profile plus its host-side wall-clock account. Only
/// `profile` is deterministic; `wall` is real host time and must never
/// enter byte-compared artifacts.
#[derive(Debug, Clone)]
pub struct Collected {
    /// The deterministic cycle-attribution profile.
    pub profile: CycleProfile,
    /// Host wall-clock accounting for the collection run.
    pub wall: WallAccount,
}

/// Run one profile cell.
pub fn collect(spec: &CollectSpec) -> Result<Collected, String> {
    collect_impl(spec, false)
}

/// Collection seam: `drop_fault_spans` discards `fault_handler` span
/// records before attribution, simulating lost instrumentation — the
/// residual-gate tests use it to prove orphaned cycles are detected
/// rather than silently re-attributed. Not for production callers; use
/// [`collect`].
pub fn collect_impl(spec: &CollectSpec, drop_fault_spans: bool) -> Result<Collected, String> {
    if !PROFILE_POLICIES.contains(&spec.policy.as_str()) {
        return Err(format!(
            "unknown policy {:?} (valid: {})",
            spec.policy,
            PROFILE_POLICIES.join(", ")
        ));
    }
    let scale = spec.scale.max(1);
    let timer = WallTimer::new();
    let (ops, profile) = match spec.workload.as_str() {
        "paging" => collect_paging(&spec.policy, scale, drop_fault_spans)?,
        "spell" => collect_spell(&spec.policy, scale, drop_fault_spans)?,
        "kvstore" => collect_kvstore(&spec.policy, scale, drop_fault_spans)?,
        other => {
            return Err(format!(
                "unknown workload {other:?} (valid: {})",
                PROFILE_WORKLOADS.join(", ")
            ))
        }
    };
    let mut profile = profile;
    profile.workload = spec.workload.clone();
    profile.policy = spec.policy.clone();
    profile.scale = scale;
    profile.ops = ops;
    let wall = timer.finish(ops, profile.total_cycles);
    Ok(Collected { profile, wall })
}

/// Armed-collection state across one measured phase.
struct Session {
    attr: Attributor,
    drop_fault_spans: bool,
    t0: u64,
    tags0: [u64; autarky_sgx_sim::COST_TAGS],
    span_dropped0: u64,
    journal_dropped: u64,
    flight_dropped: u64,
}

impl Session {
    /// Arm all three streams. Call after workload setup, immediately
    /// before the measured phase.
    fn arm(world: &mut World, drop_fault_spans: bool) -> Session {
        world.rt.telemetry.clear_ring();
        let span_dropped0 = world.rt.telemetry.ring().dropped();
        world.os.machine.clock.arm_charge_journal(JOURNAL_CAP);
        world.os.arm_flight_recorder(FLIGHT_CAP);
        Session {
            attr: Attributor::new(),
            drop_fault_spans,
            t0: world.os.machine.clock.now(),
            tags0: world.os.machine.clock.tag_totals(),
            span_dropped0,
            journal_dropped: 0,
            flight_dropped: 0,
        }
    }

    /// Drain and attribute one harvest window; re-arm unless this is the
    /// final harvest. The flight recorder is drained *before* the charge
    /// journal so its sync-time recorder charges stay journaled.
    fn harvest(&mut self, world: &mut World, rearm: bool) {
        let mut spans: Vec<SpanRecord> = world.rt.telemetry.ring().records().to_vec();
        if self.drop_fault_spans {
            spans.retain(|s| s.kind != SpanKind::FaultHandler);
        }
        world.rt.telemetry.clear_ring();

        let flights = match world.os.disarm_flight_recorder() {
            Some(rec) => {
                self.flight_dropped += rec.dropped();
                rec.snapshot()
            }
            None => Vec::new(),
        };
        let (charges, dropped) = world
            .os
            .machine
            .clock
            .disarm_charge_journal()
            .unwrap_or_default();
        self.journal_dropped += dropped;
        if rearm {
            world.os.machine.clock.arm_charge_journal(JOURNAL_CAP);
            world.os.arm_flight_recorder(FLIGHT_CAP);
        }
        self.attr.ingest(&spans, &flights, &charges);
    }

    /// Final harvest + profile assembly. Workload/policy/scale/ops are
    /// stamped by the caller.
    fn finish(mut self, world: &mut World) -> CycleProfile {
        self.harvest(world, false);
        let clock = &world.os.machine.clock;
        let total_cycles = clock.now() - self.t0;
        let tags1 = clock.tag_totals();
        let tags: Vec<(String, u64)> = CostTag::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, tag)| {
                let delta = tags1[i] - self.tags0[i];
                (delta > 0).then(|| (tag.name().to_owned(), delta))
            })
            .collect();
        let span_dropped = world.rt.telemetry.ring().dropped() - self.span_dropped0;

        let unjournaled = total_cycles.saturating_sub(self.attr.journaled_cycles);
        let residual_cycles = unjournaled + self.attr.orphan_cycles;

        let mut clusters: Vec<ClusterRow> = self
            .attr
            .clusters
            .iter()
            .map(|(&page, &(faults, cycles))| ClusterRow {
                page,
                faults,
                cycles,
            })
            .collect();
        clusters.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.page.cmp(&b.page)));
        clusters.truncate(CLUSTER_ROWS);

        CycleProfile {
            workload: String::new(),
            policy: String::new(),
            scale: 0,
            ops: 0,
            total_cycles,
            residual_cycles,
            orphan_cycles: self.attr.orphan_cycles,
            journal_dropped: self.journal_dropped,
            span_dropped,
            flight_dropped: self.flight_dropped,
            faults: self.attr.faults,
            fault_latency: self.attr.fault_hist.summary(),
            tags,
            clusters,
            root: self.attr.root,
        }
    }
}

fn build_err(workload: &str, e: impl std::fmt::Debug) -> String {
    format!("{workload}: build failed: {e:?}")
}

/// Fig-5-shaped paging cell: batch evictions, per-page fault refetches.
/// Mirrors `bench::perf::measure_paging`.
fn collect_paging(
    policy: &str,
    scale: u32,
    drop_fault_spans: bool,
) -> Result<(u64, CycleProfile), String> {
    let iters = 20 * scale as u64;
    let (mut world, mut heap) = SystemBuilder::new(
        "profile-paging",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    )
    .epc_pages(4096)
    .heap_pages(256)
    .elide_aex(policy == "elided")
    .build()
    .map_err(|e| build_err("paging", e))?;
    let ptr = heap
        .alloc(&mut world, (BATCH as usize) * PAGE_SIZE)
        .map_err(|e| format!("paging: alloc: {e:?}"))?;
    heap.write(&mut world, ptr, &[0xA5u8; PAGE_SIZE])
        .map_err(|e| format!("paging: touch: {e:?}"))?;
    let first = Vpn(ptr.0 >> 12);
    let pages: Vec<Vpn> = (0..BATCH).map(|i| Vpn(first.0 + i)).collect();

    let mut session = Session::arm(&mut world, drop_fault_spans);
    for iter in 0..iters {
        world
            .rt
            .evict_pages(&mut world.os, &pages)
            .map_err(|e| format!("paging: evict: {e:?}"))?;
        for &vpn in &pages {
            let p = autarky::workloads::Ptr(vpn.0 << 12);
            heap.read(&mut world, p, &mut [0u8; 1])
                .map_err(|e| format!("paging: fetch: {e:?}"))?;
        }
        if (iter + 1) % HARVEST_EVERY == 0 {
            session.harvest(&mut world, true);
        }
    }
    Ok((iters * BATCH, session.finish(&mut world)))
}

/// Table-2-shaped spell cell: dictionary lookups under a paging budget.
/// Mirrors `bench::perf::measure_spell`; the `single` policy degrades
/// cluster prefetching to one page per fault.
fn collect_spell(
    policy: &str,
    scale: u32,
    drop_fault_spans: bool,
) -> Result<(u64, CycleProfile), String> {
    const DICT_WORDS: usize = 1500;
    let queries = 120 * scale as u64;
    let pages_per_cluster = if policy == "single" { 1 } else { 10 };
    let (mut world, mut heap) =
        SystemBuilder::new("profile-spell", Profile::Clusters { pages_per_cluster })
            .epc_pages(4096)
            .heap_pages(1024)
            .budget_pages(16)
            .elide_aex(policy == "elided")
            .build()
            .map_err(|e| build_err("spell", e))?;
    let dictionary = Dictionary::load(&mut world, &mut heap, "en", DICT_WORDS)
        .map_err(|e| format!("spell: dict: {e:?}"))?;
    let words = synth_wordlist("en", DICT_WORDS);

    let mut session = Session::arm(&mut world, drop_fault_spans);
    for i in 0..queries {
        let word = &words[(i as usize * 7) % words.len()];
        dictionary
            .check(&mut world, &mut heap, word)
            .map_err(|e| format!("spell: check: {e:?}"))?;
        if (i + 1) % HARVEST_EVERY == 0 {
            session.harvest(&mut world, true);
        }
    }
    Ok((queries, session.finish(&mut world)))
}

/// Fig-8-shaped kvstore cell: GETs on the cached-ORAM backend. Mirrors
/// `bench::perf::measure_kvstore`; the `single` policy shrinks the ORAM
/// position cache.
fn collect_kvstore(
    policy: &str,
    scale: u32,
    drop_fault_spans: bool,
) -> Result<(u64, CycleProfile), String> {
    const ITEMS: u64 = 128;
    const VALUE_SIZE: usize = 512;
    let gets = 96 * scale as u64;
    let cache_pages = if policy == "single" { 8 } else { 24 };
    let (mut world, mut heap) = SystemBuilder::new(
        "profile-kvstore",
        Profile::CachedOram {
            capacity_pages: 512,
            cache_pages,
        },
    )
    .epc_pages(4096)
    .heap_pages(1024)
    .elide_aex(policy == "elided")
    .build()
    .map_err(|e| build_err("kvstore", e))?;
    let mut store = KvStore::new(
        &mut world,
        &mut heap,
        ITEMS,
        VALUE_SIZE,
        ItemClustering::None,
    )
    .map_err(|e| format!("kvstore: new: {e:?}"))?;
    store
        .load(&mut world, &mut heap, ITEMS)
        .map_err(|e| format!("kvstore: load: {e:?}"))?;

    let mut session = Session::arm(&mut world, drop_fault_spans);
    for i in 0..gets {
        let key = (i * 7) % ITEMS;
        store
            .get(&mut world, &mut heap, key)
            .map_err(|e| format!("kvstore: get: {e:?}"))?
            .ok_or_else(|| format!("kvstore: key {key} missing"))?;
        if (i + 1) % HARVEST_EVERY == 0 {
            session.harvest(&mut world, true);
        }
    }
    Ok((gets, session.finish(&mut world)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_axes_are_rejected() {
        let bad_policy = CollectSpec {
            workload: "paging".into(),
            policy: "nope".into(),
            scale: 1,
        };
        assert!(collect(&bad_policy).unwrap_err().contains("unknown policy"));
        let bad_workload = CollectSpec {
            workload: "font".into(),
            policy: "clusters".into(),
            scale: 1,
        };
        assert!(collect(&bad_workload)
            .unwrap_err()
            .contains("unknown workload"));
    }

    #[test]
    fn paging_profile_accounts_for_nearly_all_cycles() {
        let spec = CollectSpec {
            workload: "paging".into(),
            policy: "clusters".into(),
            scale: 1,
        };
        let got = collect(&spec).expect("collect");
        let p = &got.profile;
        assert_eq!(p.name(), "clusters/paging");
        assert_eq!(p.ops, 20 * BATCH);
        assert!(p.faults > 0, "the paging cell must fault");
        assert!(p.total_cycles > 0);
        assert_eq!(p.journal_dropped, 0, "journal sized for the window");
        assert_eq!(p.span_dropped, 0, "span ring sized for the window");
        assert_eq!(p.flight_dropped, 0, "flight ring sized for the window");
        assert!(
            p.attributed_pct() >= 95.0,
            "attributed only {:.2}% (residual {} of {})",
            p.attributed_pct(),
            p.residual_cycles,
            p.total_cycles
        );
        assert!(p.hot_path_cycles() > 0, "fault chains in the tree");
        assert_eq!(p.fault_latency.count, p.faults);
        assert!(!p.clusters.is_empty());
        // The tree carries exactly the journaled cycles.
        let journaled = p.total_cycles - (p.residual_cycles - p.orphan_cycles);
        assert_eq!(p.root.total(), journaled);
    }

    #[test]
    fn wall_account_covers_the_run() {
        let spec = CollectSpec {
            workload: "paging".into(),
            policy: "clusters".into(),
            scale: 1,
        };
        let got = collect(&spec).expect("collect");
        assert_eq!(got.wall.ops, got.profile.ops);
        assert_eq!(got.wall.sim_cycles, got.profile.total_cycles);
        assert!(got.wall.wall_nanos > 0);
    }
}
