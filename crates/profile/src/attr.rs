//! The causal join: one harvest window's charge journal, span records,
//! and flight-recorder correlation chains merged into call paths.
//!
//! Attribution rules, in order:
//!
//! 1. Every journaled charge `(at, tag, amount)` covers the half-open
//!    interval `(at - amount, at]`; it is attributed at the instant
//!    `at`.
//! 2. The charge's *chain frame* is the correlation chain whose
//!    inclusive cycle window `[min, max]` contains `at`. Crossing
//!    charges (`preemption`, `handler_invocation`, `os_kernel`) that
//!    land *between* chains attach to the next chain — an AEX or EENTER
//!    belongs to the round trip it sets up.
//! 3. The charge's *span frames* are the telemetry spans containing
//!    `at` (`start < at <= end`), outermost first. Spans measure the
//!    same simulated clock the ledger charges, so containment is exact.
//! 4. The leaf frame is the cost tag itself.
//!
//! A charge inside a chain with **no** covering span whose tag is
//! enclave-side work (`runtime`, `crypto`, `oram`) is *orphaned*:
//! instrumentation lost its causal parent. Orphans count toward the
//! residual the profile gate enforces.

use std::collections::BTreeMap;

use autarky_os_sim::{FlightEvent, FlightRecord, CORR_NONE};
use autarky_sgx_sim::{ChargeRecord, CostTag};
use autarky_telemetry::{Histogram, SpanRecord};

use crate::tree::ProfileNode;

/// One correlation chain's reconstructed window.
#[derive(Debug, Clone)]
struct Chain {
    /// Earliest record cycle stamp in the chain (folded AEX transitions
    /// carry pre-chain stamps, so this covers the whole round trip).
    start: u64,
    /// Latest record cycle stamp in the chain.
    end: u64,
    /// Chain frame name (e.g. `fault_round_trip`).
    label: &'static str,
    /// Page-cluster key: min fetched vpn, falling back to the fault vpn.
    cluster_key: Option<u64>,
    /// Whether the chain contains a handler entry (a real fault).
    is_fault: bool,
}

/// Tags charged by world transitions that legitimately happen outside
/// any span or chain window and belong to the *next* round trip.
fn is_crossing(tag: CostTag) -> bool {
    matches!(
        tag,
        CostTag::Preemption | CostTag::HandlerInvocation | CostTag::OsKernel
    )
}

/// Enclave-side work that must always run under a telemetry span when it
/// happens inside a fault chain.
fn expects_span(tag: CostTag) -> bool {
    matches!(tag, CostTag::Runtime | CostTag::Crypto | CostTag::Oram)
}

/// Streaming attribution state across harvest windows.
#[derive(Debug)]
pub(crate) struct Attributor {
    /// The call-path tree (below the workload root frame).
    pub root: ProfileNode,
    /// Per-fault round-trip latency (chain window widths).
    pub fault_hist: Histogram,
    /// Fault round trips seen.
    pub faults: u64,
    /// Per-cluster-key `(faults, round-trip cycles)`.
    pub clusters: BTreeMap<u64, (u64, u64)>,
    /// In-chain, span-less enclave-work cycles (lost instrumentation).
    pub orphan_cycles: u64,
    /// Sum of all journaled charge amounts.
    pub journaled_cycles: u64,
}

impl Attributor {
    pub(crate) fn new() -> Self {
        Self {
            root: ProfileNode::new(),
            fault_hist: Histogram::new(),
            faults: 0,
            clusters: BTreeMap::new(),
            orphan_cycles: 0,
            journaled_cycles: 0,
        }
    }

    /// Attribute one harvest window. Windows are independent: every
    /// chain and span closes between operations, so per-window joins
    /// lose nothing at the seams.
    pub(crate) fn ingest(
        &mut self,
        spans: &[SpanRecord],
        flights: &[FlightRecord],
        charges: &[ChargeRecord],
    ) {
        let chains = build_chains(flights);
        for chain in &chains {
            if chain.is_fault {
                self.faults += 1;
                let cycles = chain.end - chain.start;
                self.fault_hist.record(cycles);
                if let Some(key) = chain.cluster_key {
                    let entry = self.clusters.entry(key).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += cycles;
                }
            }
        }

        // Both sweeps ride on sorted orders: spans by (start asc, end
        // desc) so outer frames precede the inner frames they contain,
        // charges by time. Proper nesting then makes the active-span
        // stack maintainable with pushes and pops only.
        let mut spans: Vec<&SpanRecord> = spans.iter().collect();
        spans.sort_by(|a, b| {
            a.start_cycles
                .cmp(&b.start_cycles)
                .then(b.end_cycles.cmp(&a.end_cycles))
        });
        let mut charges: Vec<&ChargeRecord> = charges.iter().collect();
        charges.sort_by_key(|c| c.at);

        let mut span_i = 0;
        let mut stack: Vec<&SpanRecord> = Vec::new();
        let mut chain_i = 0;
        for charge in charges {
            self.journaled_cycles += charge.amount;
            while span_i < spans.len() && spans[span_i].start_cycles < charge.at {
                let next = spans[span_i];
                while let Some(top) = stack.last() {
                    if top.end_cycles <= next.start_cycles {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(next);
                span_i += 1;
            }
            while let Some(top) = stack.last() {
                if top.end_cycles < charge.at {
                    stack.pop();
                } else {
                    break;
                }
            }

            while chain_i < chains.len() && chains[chain_i].end < charge.at {
                chain_i += 1;
            }
            let in_chain = chain_i < chains.len() && chains[chain_i].start <= charge.at;
            let chain = if in_chain || (is_crossing(charge.tag) && chain_i < chains.len()) {
                Some(&chains[chain_i])
            } else {
                None
            };

            let mut path: Vec<&str> = Vec::with_capacity(2 + stack.len());
            if let Some(chain) = chain {
                path.push(chain.label);
            }
            for span in &stack {
                path.push(span.kind.name());
            }
            path.push(charge.tag.name());
            self.root.add(&path, charge.amount);

            if in_chain && stack.is_empty() && expects_span(charge.tag) {
                self.orphan_cycles += charge.amount;
            }
        }
    }
}

/// Group flight records into chain windows, classify each chain by its
/// events, and return them sorted by start.
fn build_chains(flights: &[FlightRecord]) -> Vec<Chain> {
    #[derive(Default)]
    struct Acc {
        start: u64,
        end: u64,
        fault_vpn: Option<u64>,
        cluster: Option<u64>,
        evict: bool,
        fetch: bool,
        heap: bool,
    }
    let mut map: BTreeMap<u64, Acc> = BTreeMap::new();
    for record in flights {
        if record.corr == CORR_NONE {
            continue;
        }
        let acc = map.entry(record.corr).or_insert_with(|| Acc {
            start: record.cycles,
            end: record.cycles,
            ..Acc::default()
        });
        acc.start = acc.start.min(record.cycles);
        acc.end = acc.end.max(record.cycles);
        match &record.event {
            FlightEvent::HandlerEntry { vpn, .. } => {
                acc.fault_vpn.get_or_insert(vpn.0);
            }
            FlightEvent::DecisionClusterFetch { pages, .. } => {
                acc.fetch = true;
                if acc.cluster.is_none() {
                    acc.cluster = pages.iter().map(|p| p.0).min();
                }
            }
            FlightEvent::DecisionForward { .. } => acc.fetch = true,
            FlightEvent::DecisionEvict { .. } => acc.evict = true,
            FlightEvent::SpanClose { kind, .. } => match kind.as_str() {
                "ay_evict_pages" => acc.evict = true,
                "ay_fetch_pages" => acc.fetch = true,
                "heap_alloc" => acc.heap = true,
                _ => {}
            },
            _ => {}
        }
    }
    let mut chains: Vec<Chain> = map
        .into_values()
        .map(|acc| Chain {
            start: acc.start,
            end: acc.end,
            label: if acc.fault_vpn.is_some() {
                "fault_round_trip"
            } else if acc.evict {
                "evict_batch"
            } else if acc.fetch {
                "fetch_batch"
            } else if acc.heap {
                "heap_grow"
            } else {
                "host_chain"
            },
            cluster_key: acc.cluster.or(acc.fault_vpn),
            is_fault: acc.fault_vpn.is_some(),
        })
        .collect();
    chains.sort_by_key(|c| (c.start, c.end));
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_sgx_sim::{EnclaveId, Vpn};
    use autarky_telemetry::SpanKind;

    fn span(kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            kind,
            start_cycles: start,
            end_cycles: end,
        }
    }

    fn charge(at: u64, tag: CostTag, amount: u64) -> ChargeRecord {
        ChargeRecord { at, tag, amount }
    }

    fn flight(seq: u64, cycles: u64, corr: u64, event: FlightEvent) -> FlightRecord {
        FlightRecord {
            seq,
            cycles,
            corr,
            event,
        }
    }

    fn fault_window() -> (Vec<SpanRecord>, Vec<FlightRecord>, Vec<ChargeRecord>) {
        let spans = vec![
            span(SpanKind::FaultHandler, 110, 190),
            span(SpanKind::AyFetchPages, 120, 160),
            span(SpanKind::OramAccess, 240, 260),
        ];
        let flights = vec![
            flight(
                0,
                100,
                7,
                FlightEvent::HandlerEntry {
                    eid: EnclaveId(1),
                    vpn: Vpn(5),
                },
            ),
            flight(
                1,
                150,
                7,
                FlightEvent::DecisionClusterFetch {
                    vpn: Vpn(5),
                    pages: vec![Vpn(5), Vpn(4)],
                },
            ),
            flight(2, 200, 7, FlightEvent::RateLimitKill),
        ];
        let charges = vec![
            charge(90, CostTag::HandlerInvocation, 12), // crossing, pre-chain
            charge(105, CostTag::Preemption, 10),       // in chain, pre-span
            charge(130, CostTag::Paging, 50),           // inside both spans
            charge(185, CostTag::Runtime, 20),          // handler only
            charge(195, CostTag::Runtime, 5),           // in chain, span-less: orphan
            charge(250, CostTag::Oram, 30),             // outside chain, in oram span
            charge(300, CostTag::Other, 3),             // bare
        ];
        (spans, flights, charges)
    }

    fn path_cycles(root: &ProfileNode, path: &[&str]) -> u64 {
        let mut node = root;
        for seg in path {
            match node.child(seg) {
                Some(child) => node = child,
                None => return 0,
            }
        }
        node.self_cycles
    }

    #[test]
    fn charges_land_on_their_causal_paths() {
        let (spans, flights, charges) = fault_window();
        let mut attr = Attributor::new();
        attr.ingest(&spans, &flights, &charges);

        let root = &attr.root;
        assert_eq!(
            path_cycles(root, &["fault_round_trip", "handler_invocation"]),
            12,
            "crossing charge attaches to the next chain"
        );
        assert_eq!(path_cycles(root, &["fault_round_trip", "preemption"]), 10);
        assert_eq!(
            path_cycles(
                root,
                &[
                    "fault_round_trip",
                    "fault_handler",
                    "ay_fetch_pages",
                    "paging"
                ]
            ),
            50
        );
        assert_eq!(
            path_cycles(root, &["fault_round_trip", "fault_handler", "runtime"]),
            20
        );
        assert_eq!(
            path_cycles(root, &["fault_round_trip", "runtime"]),
            5,
            "span-less in-chain runtime work stays visible"
        );
        assert_eq!(path_cycles(root, &["oram_access", "oram"]), 30);
        assert_eq!(path_cycles(root, &["other"]), 3);
        assert_eq!(root.total(), 130, "every journaled cycle lands somewhere");
        assert_eq!(attr.journaled_cycles, 130);
        assert_eq!(attr.orphan_cycles, 5, "only the span-less runtime charge");
    }

    #[test]
    fn fault_chains_feed_latency_and_cluster_stats() {
        let (spans, flights, charges) = fault_window();
        let mut attr = Attributor::new();
        attr.ingest(&spans, &flights, &charges);
        assert_eq!(attr.faults, 1);
        assert_eq!(attr.fault_hist.summary().count, 1);
        // Chain window is [100, 200] -> 100 cycles; cluster key is the
        // min fetched page (4), not the fault page.
        assert_eq!(attr.clusters.get(&4), Some(&(1, 100)));
    }

    #[test]
    fn non_fault_chains_are_classified_by_their_events() {
        let flights = vec![
            flight(
                0,
                10,
                1,
                FlightEvent::DecisionEvict {
                    pages: vec![Vpn(9)],
                },
            ),
            flight(
                1,
                50,
                2,
                FlightEvent::SpanClose {
                    kind: "heap_alloc".into(),
                    start_cycles: 40,
                    end_cycles: 50,
                },
            ),
        ];
        let chains = build_chains(&flights);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].label, "evict_batch");
        assert!(!chains[0].is_fault);
        assert_eq!(chains[1].label, "heap_grow");
    }

    #[test]
    fn sibling_spans_do_not_shadow_each_other() {
        // A charge after an earlier sibling span closed must see only
        // the live span, even though the dead sibling started earlier.
        let spans = vec![span(SpanKind::Seal, 10, 20), span(SpanKind::Open, 30, 40)];
        let charges = vec![charge(35, CostTag::Crypto, 7)];
        let mut attr = Attributor::new();
        attr.ingest(&spans, &[], &charges);
        assert_eq!(path_cycles(&attr.root, &["open", "crypto"]), 7);
        assert_eq!(path_cycles(&attr.root, &["seal", "crypto"]), 0);
    }
}
