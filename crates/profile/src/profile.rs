//! The assembled profile: attribution tree + residual accounting +
//! per-fault latency + per-cluster breakdown, with deterministic folded
//! and JSON renderings.
//!
//! The JSON is hand-rolled and line-oriented (the offline build has no
//! serde): [`CycleProfile::to_json`] writes one key per line and
//! [`CycleProfile::from_json`] reads exactly that format back — the
//! same convention the bench baseline parser uses, so committed
//! profile baselines are greppable and diff-friendly.

use autarky_telemetry::LatencySummary;

use crate::tree::ProfileNode;

/// One page cluster's share of the fault traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterRow {
    /// Cluster key: the smallest virtual page number the round trip
    /// fetched (the fault page itself when no cluster decision fired).
    pub page: u64,
    /// Fault round trips attributed to this cluster.
    pub faults: u64,
    /// Round-trip cycles spent on this cluster.
    pub cycles: u64,
}

/// A complete cycle-attribution profile of one measured phase.
///
/// Everything here is a pure function of the simulated execution —
/// host wall-clock numbers deliberately live *outside* this type (see
/// `collect::Collected`), so folded/JSON/SVG artifacts are byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleProfile {
    /// Workload name (also the root frame of every stack).
    pub workload: String,
    /// Policy variant the workload ran under.
    pub policy: String,
    /// Scale factor of the run.
    pub scale: u32,
    /// Operations retired in the measured phase.
    pub ops: u64,
    /// Simulated cycles the measured phase took (clock delta).
    pub total_cycles: u64,
    /// Cycles the profiler could not attribute: unjournaled clock
    /// movement plus orphaned in-chain enclave work.
    pub residual_cycles: u64,
    /// The orphan component of the residual (in-chain `runtime` /
    /// `crypto` / `oram` charges with no covering span).
    pub orphan_cycles: u64,
    /// Charge-journal records lost to overflow.
    pub journal_dropped: u64,
    /// Span-ring records lost to overflow during the phase.
    pub span_dropped: u64,
    /// Flight-recorder records lost to overflow during the phase.
    pub flight_dropped: u64,
    /// Fault round trips observed.
    pub faults: u64,
    /// Per-fault round-trip latency digest.
    pub fault_latency: LatencySummary,
    /// Ledger tag totals over the phase (nonzero tags, tag order).
    pub tags: Vec<(String, u64)>,
    /// Hottest page clusters (by round-trip cycles, capped).
    pub clusters: Vec<ClusterRow>,
    /// The attribution tree below the workload root frame.
    pub root: ProfileNode,
}

/// Cap on the per-cluster breakdown (the tail adds noise, not insight).
pub const CLUSTER_ROWS: usize = 16;

impl CycleProfile {
    /// Cycles successfully attributed to a call path.
    pub fn attributed_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(self.residual_cycles)
    }

    /// Attributed share of the phase, percent.
    pub fn attributed_pct(&self) -> f64 {
        if self.total_cycles == 0 {
            return 100.0;
        }
        self.attributed_cycles() as f64 * 100.0 / self.total_cycles as f64
    }

    /// Unattributed share of the phase, percent.
    pub fn residual_pct(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.residual_cycles as f64 * 100.0 / self.total_cycles as f64
    }

    /// Whether the residual stays under `max_pct` percent.
    pub fn passes_residual_gate(&self, max_pct: f64) -> bool {
        self.residual_pct() <= max_pct
    }

    /// One ledger tag's cycles over the phase (0 when absent).
    pub fn tag(&self, name: &str) -> u64 {
        self.tags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Cycles under the `fault_round_trip` chain frame — the hot path
    /// the baseline gate watches.
    pub fn hot_path_cycles(&self) -> u64 {
        self.root
            .child("fault_round_trip")
            .map(ProfileNode::total)
            .unwrap_or(0)
    }

    /// Hot-path cycles per fault round trip (0.0 for fault-free runs).
    pub fn hot_path_cycles_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.hot_path_cycles() as f64 / self.faults as f64
    }

    /// `policy/workload` — the name baselines key on.
    pub fn name(&self) -> String {
        format!("{}/{}", self.policy, self.workload)
    }

    /// Collapsed-stack rendering: `stack cycles` lines sorted by stack,
    /// every frame rooted at the workload name.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, cycles) in self.root.frames(&self.workload) {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Serialize as JSON (stable key order, one key per line — the
    /// format [`CycleProfile::from_json`] and the baseline parser read).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", self.name()));
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!("  \"policy\": \"{}\",\n", self.policy));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"ops\": {},\n", self.ops));
        out.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles));
        out.push_str(&format!(
            "  \"attributed_cycles\": {},\n",
            self.attributed_cycles()
        ));
        out.push_str(&format!(
            "  \"residual_cycles\": {},\n",
            self.residual_cycles
        ));
        out.push_str(&format!("  \"orphan_cycles\": {},\n", self.orphan_cycles));
        out.push_str(&format!(
            "  \"residual_pct\": {:.4},\n",
            self.residual_pct()
        ));
        out.push_str(&format!(
            "  \"journal_dropped\": {},\n",
            self.journal_dropped
        ));
        out.push_str(&format!("  \"span_dropped\": {},\n", self.span_dropped));
        out.push_str(&format!("  \"flight_dropped\": {},\n", self.flight_dropped));
        out.push_str(&format!("  \"faults\": {},\n", self.faults));
        out.push_str(&format!(
            "  \"fault_p50_cycles\": {},\n",
            self.fault_latency.p50
        ));
        out.push_str(&format!(
            "  \"fault_p99_cycles\": {},\n",
            self.fault_latency.p99
        ));
        out.push_str(&format!(
            "  \"fault_p999_cycles\": {},\n",
            self.fault_latency.p999
        ));
        out.push_str(&format!(
            "  \"fault_mean_cycles\": {:.3},\n",
            self.fault_latency.mean
        ));
        out.push_str(&format!(
            "  \"hot_path_cycles_per_fault\": {:.3},\n",
            self.hot_path_cycles_per_fault()
        ));
        out.push_str("  \"tags\": [\n");
        for (i, (name, cycles)) in self.tags.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tag\": \"{name}\", \"cycles\": {cycles}}}{}\n",
                if i + 1 < self.tags.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"clusters\": [\n");
        for (i, row) in self.clusters.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"page\": {}, \"cluster_faults\": {}, \"cluster_cycles\": {}}}{}\n",
                row.page,
                row.faults,
                row.cycles,
                if i + 1 < self.clusters.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"frames\": [\n");
        let frames = self.root.frames(&self.workload);
        for (i, (stack, cycles)) in frames.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stack\": \"{stack}\", \"cycles\": {cycles}}}{}\n",
                if i + 1 < frames.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a profile back from [`CycleProfile::to_json`] output.
    /// Line-oriented — exactly the writer's format, not general JSON.
    pub fn from_json(json: &str) -> Option<CycleProfile> {
        enum Section {
            Scalars,
            Tags,
            Clusters,
            Frames,
        }
        let mut section = Section::Scalars;
        let mut workload = None;
        let mut policy = None;
        let mut scale = None;
        let mut ops = None;
        let mut total_cycles = None;
        let mut residual_cycles = None;
        let mut orphan_cycles = 0u64;
        let mut journal_dropped = 0u64;
        let mut span_dropped = 0u64;
        let mut flight_dropped = 0u64;
        let mut faults = None;
        let mut p50 = 0u64;
        let mut p99 = 0u64;
        let mut p999 = 0u64;
        let mut mean = 0f64;
        let mut tags: Vec<(String, u64)> = Vec::new();
        let mut clusters: Vec<ClusterRow> = Vec::new();
        let mut frames: Vec<(String, u64)> = Vec::new();

        let str_field = |t: &str, key: &str| -> Option<String> {
            t.strip_prefix(&format!("\"{key}\": \""))
                .and_then(|r| r.strip_suffix('"'))
                .map(str::to_owned)
        };
        let u64_field = |t: &str, key: &str| -> Option<u64> {
            t.strip_prefix(&format!("\"{key}\": "))
                .and_then(|r| r.parse().ok())
        };
        let f64_field = |t: &str, key: &str| -> Option<f64> {
            t.strip_prefix(&format!("\"{key}\": "))
                .and_then(|r| r.parse().ok())
        };

        for line in json.lines() {
            let t = line.trim().trim_end_matches(',');
            match t {
                "\"tags\": [" => {
                    section = Section::Tags;
                    continue;
                }
                "\"clusters\": [" => {
                    section = Section::Clusters;
                    continue;
                }
                "\"frames\": [" => {
                    section = Section::Frames;
                    continue;
                }
                _ => {}
            }
            match section {
                Section::Scalars => {
                    if let Some(v) = str_field(t, "workload") {
                        workload = Some(v);
                    } else if let Some(v) = str_field(t, "policy") {
                        policy = Some(v);
                    } else if let Some(v) = u64_field(t, "scale") {
                        scale = Some(v as u32);
                    } else if let Some(v) = u64_field(t, "ops") {
                        ops = Some(v);
                    } else if let Some(v) = u64_field(t, "total_cycles") {
                        total_cycles = Some(v);
                    } else if let Some(v) = u64_field(t, "residual_cycles") {
                        residual_cycles = Some(v);
                    } else if let Some(v) = u64_field(t, "orphan_cycles") {
                        orphan_cycles = v;
                    } else if let Some(v) = u64_field(t, "journal_dropped") {
                        journal_dropped = v;
                    } else if let Some(v) = u64_field(t, "span_dropped") {
                        span_dropped = v;
                    } else if let Some(v) = u64_field(t, "flight_dropped") {
                        flight_dropped = v;
                    } else if let Some(v) = u64_field(t, "faults") {
                        faults = Some(v);
                    } else if let Some(v) = u64_field(t, "fault_p50_cycles") {
                        p50 = v;
                    } else if let Some(v) = u64_field(t, "fault_p99_cycles") {
                        p99 = v;
                    } else if let Some(v) = u64_field(t, "fault_p999_cycles") {
                        p999 = v;
                    } else if let Some(v) = f64_field(t, "fault_mean_cycles") {
                        mean = v;
                    }
                }
                Section::Tags => {
                    let item = t.strip_prefix('{').and_then(|s| s.strip_suffix('}'));
                    if let Some(item) = item {
                        let mut name = None;
                        let mut cycles = None;
                        for part in item.split(", ") {
                            if let Some(v) = str_field(part, "tag") {
                                name = Some(v);
                            } else if let Some(v) = u64_field(part, "cycles") {
                                cycles = Some(v);
                            }
                        }
                        if let (Some(n), Some(c)) = (name, cycles) {
                            tags.push((n, c));
                        }
                    }
                }
                Section::Clusters => {
                    let item = t.strip_prefix('{').and_then(|s| s.strip_suffix('}'));
                    if let Some(item) = item {
                        let mut page = None;
                        let mut cf = None;
                        let mut cc = None;
                        for part in item.split(", ") {
                            if let Some(v) = u64_field(part, "page") {
                                page = Some(v);
                            } else if let Some(v) = u64_field(part, "cluster_faults") {
                                cf = Some(v);
                            } else if let Some(v) = u64_field(part, "cluster_cycles") {
                                cc = Some(v);
                            }
                        }
                        if let (Some(page), Some(faults), Some(cycles)) = (page, cf, cc) {
                            clusters.push(ClusterRow {
                                page,
                                faults,
                                cycles,
                            });
                        }
                    }
                }
                Section::Frames => {
                    let item = t.strip_prefix('{').and_then(|s| s.strip_suffix('}'));
                    if let Some(item) = item {
                        let mut stack = None;
                        let mut cycles = None;
                        for part in item.split(", ") {
                            if let Some(v) = str_field(part, "stack") {
                                stack = Some(v);
                            } else if let Some(v) = u64_field(part, "cycles") {
                                cycles = Some(v);
                            }
                        }
                        if let (Some(s), Some(c)) = (stack, cycles) {
                            frames.push((s, c));
                        }
                    }
                }
            }
        }

        let workload = workload?;
        let faults = faults?;
        let root = if frames.is_empty() {
            ProfileNode::new()
        } else {
            let (root_name, root) = ProfileNode::from_frames(&frames)?;
            if root_name != workload {
                return None;
            }
            root
        };
        Some(CycleProfile {
            workload,
            policy: policy?,
            scale: scale?,
            ops: ops?,
            total_cycles: total_cycles?,
            residual_cycles: residual_cycles?,
            orphan_cycles,
            journal_dropped,
            span_dropped,
            flight_dropped,
            faults,
            fault_latency: LatencySummary {
                count: faults,
                p50,
                p99,
                p999,
                mean,
            },
            tags,
            clusters,
            root,
        })
    }
}

/// Look up one profile's committed hot-path cycles/fault in a baseline
/// file: `(name, hot_path_cycles_per_fault)` pairs in the same
/// line-oriented format [`CycleProfile::to_json`] writes, so a baseline
/// can be a concatenation of profile JSONs or a hand-trimmed digest.
pub fn baseline_hot_path(baseline_json: &str, name: &str) -> Option<f64> {
    let mut current: Option<String> = None;
    for line in baseline_json.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            current = rest.strip_suffix('"').map(str::to_owned);
        } else if let Some(rest) = t.strip_prefix("\"hot_path_cycles_per_fault\": ") {
            if current.as_deref() == Some(name) {
                return rest.parse().ok();
            }
            current = None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleProfile {
        let mut root = ProfileNode::new();
        root.add(&["fault_round_trip", "fault_handler", "runtime"], 700);
        root.add(&["fault_round_trip", "preemption"], 4200);
        root.add(&["oram_access", "oram"], 90);
        CycleProfile {
            workload: "spell".into(),
            policy: "clusters".into(),
            scale: 1,
            ops: 120,
            total_cycles: 5000,
            residual_cycles: 10,
            orphan_cycles: 4,
            journal_dropped: 0,
            span_dropped: 0,
            flight_dropped: 0,
            faults: 2,
            fault_latency: LatencySummary {
                count: 2,
                p50: 2400,
                p99: 2600,
                p999: 2600,
                mean: 2450.5,
            },
            tags: vec![("preemption".into(), 4200), ("runtime".into(), 700)],
            clusters: vec![ClusterRow {
                page: 16,
                faults: 2,
                cycles: 4900,
            }],
            root,
        }
    }

    #[test]
    fn accounting_identities_hold() {
        let p = sample();
        assert_eq!(p.attributed_cycles(), 4990);
        assert!((p.attributed_pct() - 99.8).abs() < 1e-9);
        assert!((p.residual_pct() - 0.2).abs() < 1e-9);
        assert!(p.passes_residual_gate(5.0));
        assert!(!p.passes_residual_gate(0.1));
        assert_eq!(p.hot_path_cycles(), 4900);
        assert!((p.hot_path_cycles_per_fault() - 2450.0).abs() < 1e-9);
        assert_eq!(p.tag("preemption"), 4200);
        assert_eq!(p.tag("missing"), 0);
        assert_eq!(p.name(), "clusters/spell");
    }

    #[test]
    fn folded_output_is_sorted_and_rooted() {
        let folded = sample().folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "spell;fault_round_trip;fault_handler;runtime 700",
                "spell;fault_round_trip;preemption 4200",
                "spell;oram_access;oram 90",
            ]
        );
    }

    #[test]
    fn json_roundtrips_exactly() {
        let p = sample();
        let json = p.to_json();
        let back = CycleProfile::from_json(&json).expect("parses");
        assert_eq!(back, p);
        assert_eq!(back.to_json(), json, "re-encoding is byte-stable");
    }

    #[test]
    fn baseline_lookup_matches_by_name() {
        let json = sample().to_json();
        let hot = baseline_hot_path(&json, "clusters/spell").expect("found");
        assert!((hot - 2450.0).abs() < 1e-6);
        assert!(baseline_hot_path(&json, "elided/spell").is_none());
    }
}
