//! Compare two profile JSON files frame-by-frame.
//!
//! ```text
//! profile-diff A.json B.json [--svg PATH] [--top N]
//! ```
//!
//! Prints the top frame deltas (B minus A, largest magnitude first) and
//! optionally writes a red/blue differential flamegraph. Prints
//! `(no differences)` and exits 0 when the profiles agree frame-for-
//! frame; the SVG (when requested) is still written.

use std::process::ExitCode;

use autarky_profile::{diff_flamegraph, CycleProfile, ProfileDiff};

fn die(msg: &str) -> ! {
    eprintln!("profile-diff: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> CycleProfile {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    CycleProfile::from_json(&json).unwrap_or_else(|| die(&format!("{path}: not a profile JSON")))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut svg: Option<String> = None;
    let mut top = 20usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--svg" => {
                i += 1;
                svg = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--svg needs a path")),
                );
            }
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--top needs a positive integer"));
            }
            "--help" | "-h" => {
                println!("usage: profile-diff A.json B.json [--svg PATH] [--top N]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => die(&format!("unknown argument: {other}")),
            other => paths.push(other.to_owned()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        die("expected exactly two profile JSON paths");
    }

    let a = load(&paths[0]);
    let b = load(&paths[1]);
    let diff = ProfileDiff::between(&a, &b);
    print!("{}", diff.render_text(top));

    if let Some(path) = &svg {
        std::fs::write(path, diff_flamegraph(&a, &b))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
