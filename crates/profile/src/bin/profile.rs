//! Collect a cycle-attribution profile and emit its artifacts.
//!
//! ```text
//! profile [--workload W] [--policy P] [--scale N] [--out DIR]
//!         [--residual-max PCT] [--baseline PATH] [--max-growth-pct PCT]
//! ```
//!
//! Writes `profile-{workload}-{policy}.folded`, `.svg`, and `.json`
//! into `--out` (default `.`). Prints a summary plus host wall-clock
//! simulator throughput (stdout only — the artifacts are deterministic
//! simulated-cycle data and stay byte-stable across machines).
//!
//! Exit codes: 0 = ok, 1 = a gate failed (residual over `--residual-max`,
//! or hot-path cycles/fault grew more than `--max-growth-pct` over the
//! `--baseline` entry), 2 = usage/environment error.

use std::process::ExitCode;

use autarky_profile::{baseline_hot_path, collect, flamegraph, CollectSpec};

fn die(msg: &str) -> ! {
    eprintln!("profile: {msg}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "spell".to_owned();
    let mut policy = "clusters".to_owned();
    let mut scale = 1u32;
    let mut out_dir = ".".to_owned();
    let mut residual_max = 5.0f64;
    let mut baseline: Option<String> = None;
    let mut max_growth_pct = 10.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workload = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--workload needs a name"));
            }
            "--policy" => {
                i += 1;
                policy = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--policy needs a name"));
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"))
                    .max(1);
            }
            "--out" => {
                i += 1;
                out_dir = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--residual-max" => {
                i += 1;
                residual_max = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--residual-max needs a percentage"));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                );
            }
            "--max-growth-pct" => {
                i += 1;
                max_growth_pct = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--max-growth-pct needs a percentage"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: profile [--workload W] [--policy P] [--scale N] [--out DIR] \
                     [--residual-max PCT] [--baseline PATH] [--max-growth-pct PCT]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let spec = CollectSpec {
        workload: workload.clone(),
        policy: policy.clone(),
        scale,
    };
    let got = collect(&spec).unwrap_or_else(|e| die(&e));
    let profile = &got.profile;

    let stem = format!("{out_dir}/profile-{workload}-{policy}");
    for (ext, data) in [
        ("folded", profile.folded()),
        ("svg", flamegraph(profile)),
        ("json", profile.to_json()),
    ] {
        let path = format!("{stem}.{ext}");
        std::fs::write(&path, data).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }

    println!(
        "{}: {} cycles over {} ops, {} faults (p50 {} / p99 {} cycles), \
         {:.2}% attributed ({} residual cycles, {} orphaned)",
        profile.name(),
        profile.total_cycles,
        profile.ops,
        profile.faults,
        profile.fault_latency.p50,
        profile.fault_latency.p99,
        profile.attributed_pct(),
        profile.residual_cycles,
        profile.orphan_cycles,
    );
    println!("wall clock: {}", got.wall.render());

    let mut failed = false;
    if !profile.passes_residual_gate(residual_max) {
        eprintln!(
            "RESIDUAL GATE: {:.2}% unattributed > {residual_max:.2}% allowed",
            profile.residual_pct()
        );
        failed = true;
    }
    if let Some(path) = &baseline {
        let base =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        match baseline_hot_path(&base, &profile.name()) {
            Some(base_hot) if base_hot > 0.0 => {
                let cur = profile.hot_path_cycles_per_fault();
                let delta_pct = (cur / base_hot - 1.0) * 100.0;
                println!("hot path: {base_hot:.1} -> {cur:.1} cycles/fault ({delta_pct:+.2}%)");
                if delta_pct > max_growth_pct {
                    eprintln!("HOT PATH GATE: +{delta_pct:.2}% > {max_growth_pct:.1}% allowed");
                    failed = true;
                }
            }
            Some(_) => println!("hot path baseline is zero, skipped"),
            None => die(&format!("baseline {path} has no entry {}", profile.name())),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
