//! Differential profiles: frame-by-frame comparison of two profiles,
//! for the `profile-diff` CLI and for regression digging ("where did
//! the policy change spend its extra cycles?").

use std::collections::BTreeMap;

use crate::profile::CycleProfile;

/// Frame-level comparison of two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Name (`policy/workload`) of profile A.
    pub a_name: String,
    /// Name of profile B.
    pub b_name: String,
    /// Total attributed cycles in A's tree.
    pub a_total: u64,
    /// Total attributed cycles in B's tree.
    pub b_total: u64,
    /// Per-stack `(a_cycles, b_cycles)` over the union of both frame
    /// sets, keyed by the root-stripped stack.
    pub frames: BTreeMap<String, (u64, u64)>,
}

impl ProfileDiff {
    /// Compare two profiles frame-by-frame. Stacks are compared with
    /// the workload root segment stripped, so `clusters/spell` vs
    /// `single/spell` line up frame-for-frame.
    pub fn between(a: &CycleProfile, b: &CycleProfile) -> ProfileDiff {
        let mut frames: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let strip = |stack: &str| -> String {
            stack
                .split_once(';')
                .map(|(_, r)| r.to_owned())
                .unwrap_or_default()
        };
        for (stack, cycles) in a.root.frames(&a.workload) {
            frames.entry(strip(&stack)).or_default().0 += cycles;
        }
        for (stack, cycles) in b.root.frames(&b.workload) {
            frames.entry(strip(&stack)).or_default().1 += cycles;
        }
        frames.remove("");
        ProfileDiff {
            a_name: a.name(),
            b_name: b.name(),
            a_total: a.root.total(),
            b_total: b.root.total(),
            frames,
        }
    }

    /// Whether every frame carries identical cycles on both sides.
    pub fn is_empty(&self) -> bool {
        self.frames.values().all(|&(a, b)| a == b)
    }

    /// The `n` frames with the largest absolute cycle delta, descending;
    /// ties break by stack name so output is deterministic.
    pub fn top_deltas(&self, n: usize) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<(String, u64, u64)> = self
            .frames
            .iter()
            .filter(|(_, &(a, b))| a != b)
            .map(|(stack, &(a, b))| (stack.clone(), a, b))
            .collect();
        rows.sort_by(|x, y| {
            let dx = x.1.abs_diff(x.2);
            let dy = y.1.abs_diff(y.2);
            dy.cmp(&dx).then(x.0.cmp(&y.0))
        });
        rows.truncate(n);
        rows
    }

    /// Human-readable digest: totals line plus the top deltas.
    pub fn render_text(&self, n: usize) -> String {
        let mut out = format!(
            "{} ({} cycles) vs {} ({} cycles)\n",
            self.a_name, self.a_total, self.b_name, self.b_total
        );
        let top = self.top_deltas(n);
        if top.is_empty() {
            out.push_str("(no differences)\n");
            return out;
        }
        for (stack, a, b) in top {
            let delta = b as i128 - a as i128;
            out.push_str(&format!("{delta:+12}  {a:>12} -> {b:<12}  {stack}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ProfileNode;
    use autarky_telemetry::LatencySummary;

    fn profile(policy: &str, hot: u64, oram: u64) -> CycleProfile {
        let mut root = ProfileNode::new();
        root.add(&["fault_round_trip", "runtime"], hot);
        root.add(&["oram_access", "oram"], oram);
        CycleProfile {
            workload: "spell".into(),
            policy: policy.into(),
            scale: 1,
            ops: 10,
            total_cycles: hot + oram,
            residual_cycles: 0,
            orphan_cycles: 0,
            journal_dropped: 0,
            span_dropped: 0,
            flight_dropped: 0,
            faults: 1,
            fault_latency: LatencySummary {
                count: 1,
                p50: hot,
                p99: hot,
                p999: hot,
                mean: hot as f64,
            },
            tags: vec![],
            clusters: vec![],
            root,
        }
    }

    #[test]
    fn self_diff_is_empty() {
        let p = profile("clusters", 700, 300);
        let diff = ProfileDiff::between(&p, &p);
        assert!(diff.is_empty());
        assert!(diff.top_deltas(10).is_empty());
        assert!(diff.render_text(10).contains("(no differences)"));
    }

    #[test]
    fn deltas_rank_by_magnitude() {
        let a = profile("clusters", 700, 300);
        let b = profile("single", 900, 250);
        let diff = ProfileDiff::between(&a, &b);
        assert!(!diff.is_empty());
        let top = diff.top_deltas(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], ("fault_round_trip;runtime".into(), 700, 900));
        assert_eq!(top[1], ("oram_access;oram".into(), 300, 250));
        let text = diff.render_text(10);
        assert!(text.contains("clusters/spell"));
        assert!(text.contains("+200"));
        assert!(text.contains("-50"));
    }
}
