//! The attribution tree: every journaled cycle lands at exactly one
//! node, and the folded/flamegraph/JSON renderings are pure functions
//! of the tree.
//!
//! Children live in a `BTreeMap`, so iteration order — and therefore
//! every rendering — is deterministic regardless of attribution order.

use std::collections::BTreeMap;

/// One node of the call-path tree. `self_cycles` is what was attributed
/// to exactly this path; descendants hold their own cycles, so the tree
/// partitions the attributed total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Cycles attributed to this path itself (not descendants).
    pub self_cycles: u64,
    /// Child frames by name.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// An empty node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` at `path` below this node, creating frames as
    /// needed. An empty path charges this node's own `self_cycles`.
    pub fn add(&mut self, path: &[&str], cycles: u64) {
        let mut node = self;
        for seg in path {
            node = node.children.entry((*seg).to_owned()).or_default();
        }
        node.self_cycles += cycles;
    }

    /// Total cycles in this subtree.
    pub fn total(&self) -> u64 {
        self.self_cycles + self.children.values().map(ProfileNode::total).sum::<u64>()
    }

    /// Child by frame name.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.get(name)
    }

    /// Depth of the deepest frame below (and including) this node.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(ProfileNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Flatten into collapsed-stack frames: `(stack, self_cycles)` for
    /// every node with nonzero self cycles, stack segments joined by
    /// `;` under `root_name`. Output is sorted by stack, so it is
    /// byte-deterministic and diff-friendly.
    pub fn frames(&self, root_name: &str) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.walk(root_name, &mut out);
        out.sort();
        out
    }

    fn walk(&self, prefix: &str, out: &mut Vec<(String, u64)>) {
        if self.self_cycles > 0 {
            out.push((prefix.to_owned(), self.self_cycles));
        }
        for (name, child) in &self.children {
            child.walk(&format!("{prefix};{name}"), out);
        }
    }

    /// Rebuild a tree from collapsed-stack frames. Every stack must
    /// start with the same root segment, which becomes the returned
    /// `(root_name, tree)`; returns `None` on empty input or
    /// mismatched roots.
    pub fn from_frames(frames: &[(String, u64)]) -> Option<(String, ProfileNode)> {
        let mut root_name: Option<&str> = None;
        let mut root = ProfileNode::new();
        for (stack, cycles) in frames {
            let mut segs = stack.split(';');
            let head = segs.next()?;
            match root_name {
                None => root_name = Some(head),
                Some(existing) if existing != head => return None,
                Some(_) => {}
            }
            let path: Vec<&str> = segs.collect();
            root.add(&path, *cycles);
        }
        Some((root_name?.to_owned(), root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total_partition_cycles() {
        let mut root = ProfileNode::new();
        root.add(&["fault_round_trip", "fault_handler", "runtime"], 700);
        root.add(&["fault_round_trip", "fault_handler"], 50);
        root.add(&["oram_access", "oram"], 300);
        root.add(&[], 8);
        assert_eq!(root.total(), 1058);
        let frt = root.child("fault_round_trip").unwrap();
        assert_eq!(frt.total(), 750);
        assert_eq!(frt.child("fault_handler").unwrap().self_cycles, 50);
        assert_eq!(root.depth(), 4);
    }

    #[test]
    fn frames_roundtrip_through_from_frames() {
        let mut root = ProfileNode::new();
        root.add(&["b", "leaf"], 10);
        root.add(&["a"], 5);
        root.add(&[], 1);
        let frames = root.frames("work");
        assert_eq!(
            frames,
            vec![
                ("work".to_owned(), 1),
                ("work;a".to_owned(), 5),
                ("work;b;leaf".to_owned(), 10),
            ]
        );
        let (name, rebuilt) = ProfileNode::from_frames(&frames).unwrap();
        assert_eq!(name, "work");
        assert_eq!(rebuilt, root);
    }

    #[test]
    fn from_frames_rejects_mismatched_roots() {
        let frames = vec![("a;x".to_owned(), 1), ("b;x".to_owned(), 2)];
        assert!(ProfileNode::from_frames(&frames).is_none());
        assert!(ProfileNode::from_frames(&[]).is_none());
    }
}
