//! Deterministic self-contained SVG flamegraphs (icicle layout: root on
//! top, callees below).
//!
//! No timestamps, no randomness, no external assets: frame colors are
//! an FNV-1a hash of the frame name, layout is a pure function of the
//! tree, and child iteration rides `BTreeMap` order — the same profile
//! always renders byte-identical SVG, so CI can diff artifacts.

use std::collections::BTreeMap;

use crate::profile::CycleProfile;
use crate::tree::ProfileNode;

/// Canvas width, pixels.
const WIDTH: f64 = 1200.0;
/// Frame row height, pixels.
const FRAME_H: f64 = 17.0;
/// Top margin for the title rows, pixels.
const TOP: f64 = 40.0;
/// Minimum frame width worth emitting, pixels.
const MIN_W: f64 = 0.2;
/// Minimum frame width that gets a text label, pixels.
const MIN_LABEL_W: f64 = 35.0;
/// Approximate label glyph width at font-size 11, pixels.
const GLYPH_W: f64 = 6.6;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Warm flamegraph palette keyed by frame name, so the same frame is
/// the same color in every graph.
fn warm_color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50) as u32;
    let g = ((h >> 8) % 180) as u32;
    let b = ((h >> 16) % 55) as u32;
    format!("rgb({r},{g},{b})")
}

fn label_for(name: &str, w: f64) -> Option<String> {
    if w < MIN_LABEL_W {
        return None;
    }
    let fit = ((w - 6.0) / GLYPH_W) as usize;
    if name.len() <= fit {
        Some(name.to_owned())
    } else if fit > 2 {
        Some(format!("{}..", &name[..fit - 2]))
    } else {
        None
    }
}

fn frame_svg(out: &mut String, name: &str, tip: &str, x: f64, y: f64, w: f64, color: &str) {
    out.push_str(&format!(
        "<g><title>{}</title><rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" \
         height=\"{:.1}\" fill=\"{color}\" rx=\"1\"/>",
        esc(tip),
        FRAME_H - 1.0,
    ));
    if let Some(label) = label_for(name, w) {
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\" \
             fill=\"#000\">{}</text>",
            x + 3.0,
            y + FRAME_H - 5.0,
            esc(&label)
        ));
    }
    out.push_str("</g>\n");
}

fn svg_open(out: &mut String, title: &str, subtitle: &str, height: f64) {
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\">\n"
    ));
    out.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n"
    ));
    out.push_str(&format!(
        "<text x=\"{:.1}\" y=\"17\" text-anchor=\"middle\" font-size=\"14\" \
         font-family=\"monospace\" fill=\"#222\">{}</text>\n",
        WIDTH / 2.0,
        esc(title)
    ));
    out.push_str(&format!(
        "<text x=\"{:.1}\" y=\"33\" text-anchor=\"middle\" font-size=\"11\" \
         font-family=\"monospace\" fill=\"#555\">{}</text>\n",
        WIDTH / 2.0,
        esc(subtitle)
    ));
}

fn render_node(out: &mut String, name: &str, node: &ProfileNode, total: u64, x: f64, depth: usize) {
    let node_total = node.total();
    let w = node_total as f64 / total as f64 * WIDTH;
    if w < MIN_W {
        return;
    }
    let y = TOP + depth as f64 * FRAME_H;
    let tip = format!(
        "{name}: {node_total} cycles ({:.2}%)",
        node_total as f64 * 100.0 / total as f64
    );
    frame_svg(out, name, &tip, x, y, w - 0.5, &warm_color(name));
    // Children pack left-to-right in name order; self cycles occupy the
    // rightmost remainder implicitly (no frame of their own).
    let mut cx = x;
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, total, cx, depth + 1);
        cx += child.total() as f64 / total as f64 * WIDTH;
    }
}

/// Render a profile as a standalone SVG icicle flamegraph. Width is
/// proportional to subtree cycles; the root frame is the workload.
pub fn flamegraph(profile: &CycleProfile) -> String {
    let total = profile.root.total();
    let depth = profile.root.depth();
    let height = TOP + (depth as f64 + 1.0) * FRAME_H + 8.0;
    let mut out = String::new();
    svg_open(
        &mut out,
        &format!("cycle profile: {}", profile.name()),
        &format!(
            "{} ops, {} cycles, {} faults, {:.2}% attributed",
            profile.ops,
            profile.total_cycles,
            profile.faults,
            profile.attributed_pct()
        ),
        height,
    );
    if total > 0 {
        render_node(&mut out, &profile.workload, &profile.root, total, 0.0, 0);
    }
    out.push_str("</svg>\n");
    out
}

/// Union tree for differential rendering: per-node cycles in profile A
/// and profile B.
#[derive(Default)]
struct DiffNode {
    a: u64,
    b: u64,
    children: BTreeMap<String, DiffNode>,
}

impl DiffNode {
    fn add(&mut self, path: &[&str], cycles: u64, side_b: bool) {
        let mut node = self;
        for seg in path {
            node = node.children.entry((*seg).to_owned()).or_default();
        }
        if side_b {
            node.b += cycles;
        } else {
            node.a += cycles;
        }
    }

    fn total_a(&self) -> u64 {
        self.a + self.children.values().map(DiffNode::total_a).sum::<u64>()
    }

    fn total_b(&self) -> u64 {
        self.b + self.children.values().map(DiffNode::total_b).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(DiffNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Build the union tree over both profiles' frames (root segment
/// stripped — both roots align at the top frame).
fn union_tree(a: &CycleProfile, b: &CycleProfile) -> DiffNode {
    let mut root = DiffNode::default();
    for (side_b, profile) in [(false, a), (true, b)] {
        for (stack, cycles) in profile.root.frames(&profile.workload) {
            let path: Vec<&str> = stack.split(';').skip(1).collect();
            root.add(&path, cycles, side_b);
        }
    }
    root
}

/// Red-shift for growth, blue-shift for shrinkage, white for unchanged;
/// `score` in [-1, 1] is the normalized share delta.
fn diff_color(score: f64) -> String {
    let s = score.clamp(-1.0, 1.0);
    if s >= 0.0 {
        let fade = (255.0 - 195.0 * s) as u32;
        format!("rgb(255,{fade},{fade})")
    } else {
        let fade = (255.0 + 195.0 * s) as u32;
        format!("rgb({fade},{fade},255)")
    }
}

/// Grand totals of the two profiles under diff (`w = a + b` is the
/// width denominator), threaded through the recursive renderer.
#[derive(Clone, Copy)]
struct DiffTotals {
    a: u64,
    b: u64,
    w: u64,
}

fn render_diff_node(
    out: &mut String,
    name: &str,
    node: &DiffNode,
    grand: DiffTotals,
    x: f64,
    depth: usize,
) {
    let ta = node.total_a();
    let tb = node.total_b();
    let w = (ta + tb) as f64 / grand.w as f64 * WIDTH;
    if w < MIN_W {
        return;
    }
    let share_a = if grand.a > 0 {
        ta as f64 / grand.a as f64
    } else {
        0.0
    };
    let share_b = if grand.b > 0 {
        tb as f64 / grand.b as f64
    } else {
        0.0
    };
    // Normalize the share delta by the larger share so a frame that
    // doubled its share saturates regardless of its absolute size.
    let base = share_a.max(share_b);
    let score = if base > 0.0 {
        (share_b - share_a) / base
    } else {
        0.0
    };
    let y = TOP + depth as f64 * FRAME_H;
    let tip = format!(
        "{name}: {ta} -> {tb} cycles ({:.2}% -> {:.2}% of total)",
        share_a * 100.0,
        share_b * 100.0
    );
    frame_svg(out, name, &tip, x, y, w - 0.5, &diff_color(score));
    let mut cx = x;
    for (child_name, child) in &node.children {
        render_diff_node(out, child_name, child, grand, cx, depth + 1);
        cx += (child.total_a() + child.total_b()) as f64 / grand.w as f64 * WIDTH;
    }
}

/// Render a differential flamegraph of two profiles: frame width is the
/// union (A+B) cycles, color encodes the normalized change of the
/// frame's *share* of its profile — red grew from A to B, blue shrank.
pub fn diff_flamegraph(a: &CycleProfile, b: &CycleProfile) -> String {
    let union = union_tree(a, b);
    let grand_a = union.total_a();
    let grand_b = union.total_b();
    let grand_w = grand_a + grand_b;
    let depth = union.depth();
    let height = TOP + (depth as f64 + 1.0) * FRAME_H + 8.0;
    let mut out = String::new();
    svg_open(
        &mut out,
        &format!("differential profile: {} -> {}", a.name(), b.name()),
        &format!(
            "A: {} cycles, B: {} cycles (red = share grew, blue = shrank)",
            grand_a, grand_b
        ),
        height,
    );
    if grand_w > 0 {
        let root_name = format!("{} -> {}", a.workload, b.workload);
        let grand = DiffTotals {
            a: grand_a,
            b: grand_b,
            w: grand_w,
        };
        render_diff_node(&mut out, &root_name, &union, grand, 0.0, 0);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_telemetry::LatencySummary;

    fn profile(policy: &str, hot: u64, oram: u64) -> CycleProfile {
        let mut root = ProfileNode::new();
        root.add(&["fault_round_trip", "fault_handler", "runtime"], hot);
        root.add(&["oram_access", "oram"], oram);
        CycleProfile {
            workload: "spell".into(),
            policy: policy.into(),
            scale: 1,
            ops: 10,
            total_cycles: hot + oram,
            residual_cycles: 0,
            orphan_cycles: 0,
            journal_dropped: 0,
            span_dropped: 0,
            flight_dropped: 0,
            faults: 1,
            fault_latency: LatencySummary {
                count: 1,
                p50: hot,
                p99: hot,
                p999: hot,
                mean: hot as f64,
            },
            tags: vec![],
            clusters: vec![],
            root,
        }
    }

    #[test]
    fn flamegraph_is_deterministic_and_names_frames() {
        let p = profile("clusters", 700, 300);
        let svg = flamegraph(&p);
        assert_eq!(svg, flamegraph(&p), "same profile, same bytes");
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("fault_round_trip"));
        assert!(svg.contains("fault_handler"));
        assert!(svg.contains("clusters/spell"));
    }

    #[test]
    fn same_frame_keeps_its_color_across_graphs() {
        assert_eq!(warm_color("fault_handler"), warm_color("fault_handler"));
        assert_ne!(warm_color("fault_handler"), warm_color("oram_access"));
    }

    #[test]
    fn diff_colors_growth_red_and_shrinkage_blue() {
        assert_eq!(diff_color(1.0), "rgb(255,60,60)");
        assert_eq!(diff_color(-1.0), "rgb(60,60,255)");
        assert_eq!(diff_color(0.0), "rgb(255,255,255)");
    }

    #[test]
    fn diff_flamegraph_reflects_the_shift() {
        let a = profile("clusters", 700, 300);
        let b = profile("single", 900, 100);
        let svg = diff_flamegraph(&a, &b);
        assert!(svg.contains("clusters/spell"));
        assert!(svg.contains("single/spell"));
        // fault path grew (reddish), oram shrank (bluish); tooltips are
        // XML-escaped, so the arrow reads `-&gt;`.
        assert!(svg.contains("700 -&gt; 900 cycles"));
        assert!(svg.contains("300 -&gt; 100 cycles"));
        assert_eq!(svg, diff_flamegraph(&a, &b));
    }
}
