//! End-to-end profiler acceptance tests: determinism, attribution
//! coverage, the residual gate, differential profiles, and the
//! cross-check against the fig5 tag-ledger breakdown.

use autarky::prelude::PagingMechanism;
use autarky_bench::fig5;
use autarky_profile::collect::collect_impl;
use autarky_profile::{
    collect, diff_flamegraph, flamegraph, CollectSpec, CycleProfile, ProfileDiff,
};

fn spec(workload: &str, policy: &str) -> CollectSpec {
    CollectSpec {
        workload: workload.into(),
        policy: policy.into(),
        scale: 1,
    }
}

fn profile_of(workload: &str, policy: &str) -> CycleProfile {
    collect(&spec(workload, policy)).expect("collect").profile
}

#[test]
fn spell_profile_attributes_nearly_everything_and_is_byte_stable() {
    let a = profile_of("spell", "clusters");
    let b = profile_of("spell", "clusters");

    // Identical runs produce byte-identical artifacts (folded, JSON,
    // SVG) — the determinism the campaign journal and CI rely on.
    assert_eq!(a, b);
    assert_eq!(a.folded(), b.folded());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(flamegraph(&a), flamegraph(&b));

    // ISSUE acceptance: >= 95% of spell cycles attributed.
    assert!(
        a.attributed_pct() >= 95.0,
        "attributed only {:.2}% (residual {} of {})",
        a.attributed_pct(),
        a.residual_cycles,
        a.total_cycles
    );
    assert!(a.faults > 0, "spell under a 16-page budget must fault");
    assert_eq!(a.fault_latency.count, a.faults);
    assert!(a.fault_latency.p99 >= a.fault_latency.p50);

    // The folded output names fault-path hot spots below the
    // fault_round_trip chain frame and the fault_handler span.
    let folded = a.folded();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("spell;fault_round_trip;fault_handler;")),
        "no fault-path stacks in:\n{folded}"
    );
    assert!(a.hot_path_cycles() > 0);
    assert!(a.hot_path_cycles_per_fault() > 0.0);
    assert!(!a.clusters.is_empty(), "page-cluster breakdown present");

    // Nothing overflowed, so attribution saw every record.
    assert_eq!(a.journal_dropped, 0);
    assert_eq!(a.span_dropped, 0);
    assert_eq!(a.flight_dropped, 0);

    // JSON roundtrip is stable (the mean is serialized at 3 decimals,
    // so compare re-encodings rather than raw structs).
    let back = CycleProfile::from_json(&a.to_json()).expect("parse");
    assert_eq!(back.to_json(), a.to_json());
    assert_eq!(back.root, a.root);
    assert_eq!(back.folded(), a.folded());
}

#[test]
fn residual_gate_trips_when_instrumentation_is_lost() {
    let healthy = collect_impl(&spec("spell", "clusters"), false)
        .expect("collect")
        .profile;
    let maimed = collect_impl(&spec("spell", "clusters"), true)
        .expect("collect")
        .profile;

    assert!(
        maimed.orphan_cycles > healthy.orphan_cycles,
        "dropping fault_handler spans must orphan enclave work \
         ({} vs {})",
        maimed.orphan_cycles,
        healthy.orphan_cycles
    );
    assert!(maimed.residual_pct() > healthy.residual_pct());

    // A gate threshold between the two discriminates: the healthy run
    // passes, the maimed run fails.
    let gate = (healthy.residual_pct() + maimed.residual_pct()) / 2.0;
    assert!(healthy.passes_residual_gate(gate));
    assert!(!maimed.passes_residual_gate(gate));
}

#[test]
fn self_diff_is_empty_and_policy_diff_is_not() {
    let clusters = profile_of("spell", "clusters");
    let clusters_again = profile_of("spell", "clusters");
    let single = profile_of("spell", "single");

    let self_diff = ProfileDiff::between(&clusters, &clusters_again);
    assert!(self_diff.is_empty(), "{:?}", self_diff.top_deltas(5));

    // Degrading cluster prefetch to single-page fetches changes where
    // the cycles go — the diff must see it.
    let policy_diff = ProfileDiff::between(&clusters, &single);
    assert!(!policy_diff.is_empty());
    assert!(!policy_diff.top_deltas(5).is_empty());
    assert_ne!(clusters.total_cycles, single.total_cycles);

    let svg = diff_flamegraph(&clusters, &single);
    assert!(svg.contains("clusters/spell"));
    assert!(svg.contains("single/spell"));
    assert_eq!(svg, diff_flamegraph(&clusters, &single), "diff SVG stable");
}

#[test]
fn paging_profile_cross_checks_against_fig5_breakdown() {
    // The profiler's paging cell and fig5 run the same batch-evict /
    // per-page-refault loop on the same default mechanism (SGX1), so
    // the profiler's per-page transition tags must agree with the
    // figure's measured components. Tolerance covers fig5's warm-up
    // round (the profiler has none) and its per-page integer division.
    let iters = 20u64;
    let (fault, evict) = fig5::measure(PagingMechanism::Sgx1, iters);
    let p = profile_of("paging", "clusters");
    assert_eq!(p.ops, iters * fig5::BATCH);

    let per_page = |tag: &str| p.tag(tag) as f64 / p.ops as f64;
    let close = |got: f64, want: f64, what: &str| {
        let rel = (got - want).abs() / want.max(1.0);
        assert!(
            rel < 0.10,
            "{what}: profiler {got:.1}/page vs fig5 {want:.1}/page ({:.1}% off)",
            rel * 100.0
        );
    };
    close(
        per_page("preemption"),
        (fault.preemption + evict.preemption) as f64,
        "preemption",
    );
    close(
        per_page("handler_invocation"),
        (fault.invocation + evict.invocation) as f64,
        "handler_invocation",
    );

    // The profiler's whole phase (minus its measured observer cost)
    // should be in the same ballpark as the figure's fault+evict total.
    let fig_total = (fault.total() + evict.total()) as f64;
    let prof_total = (p.total_cycles - p.tag("recorder")) as f64 / p.ops as f64;
    let rel = (prof_total - fig_total).abs() / fig_total;
    assert!(
        rel < 0.15,
        "totals diverge: profiler {prof_total:.1}/page vs fig5 {fig_total:.1}/page"
    );
}

#[test]
fn every_workload_and_policy_collects_cleanly() {
    for workload in autarky_profile::PROFILE_WORKLOADS {
        for policy in autarky_profile::PROFILE_POLICIES {
            let got = collect(&spec(workload, policy))
                .unwrap_or_else(|e| panic!("{workload}/{policy}: {e}"));
            let p = got.profile;
            assert!(p.total_cycles > 0, "{workload}/{policy}: empty phase");
            assert!(
                p.attributed_pct() >= 90.0,
                "{workload}/{policy}: attributed only {:.2}%",
                p.attributed_pct()
            );
            assert_eq!(got.wall.sim_cycles, p.total_cycles);
        }
    }
}
