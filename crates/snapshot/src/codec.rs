//! Canonical byte codec for [`EnclaveCapture`] and the snapshot payload.
//!
//! The encoding is deterministic (the capture's collections are already
//! sorted by the machine's capture path) and little-endian throughout, so
//! the same enclave state always seals to the same plaintext. Decoding is
//! strict: every enum discriminant is validated, lengths are checked, and
//! trailing bytes are rejected, because the decoder's input is untrusted
//! until the AEAD tag has verified — and even then a malformed payload
//! must surface as an error, never a panic.

use autarky_sgx_sim::enclave::SsaFrame;
use autarky_sgx_sim::tlb::TlbEntry;
use autarky_sgx_sim::{
    AccessKind, Attributes, EnclaveCapture, EnclaveId, FaultCause, Frame, MachineStats,
    PageCapture, PageType, Perms, Pte, Secs, SsaExInfo, Va, Vpn, COST_TAGS, PAGE_SIZE,
};

pub(crate) fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&byte, rest) = input.split_first()?;
    *input = rest;
    Some(byte)
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Option<u32> {
    if input.len() < 4 {
        return None;
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

fn take_bool(input: &mut &[u8]) -> Option<bool> {
    match take_u8(input)? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn perms_bits(perms: Perms) -> u8 {
    u8::from(perms.r) | u8::from(perms.w) << 1 | u8::from(perms.x) << 2
}

fn perms_from_bits(bits: u8) -> Option<Perms> {
    if bits > 0b111 {
        return None;
    }
    Some(Perms {
        r: bits & 1 != 0,
        w: bits & 2 != 0,
        x: bits & 4 != 0,
    })
}

fn page_type_tag(page_type: PageType) -> u8 {
    match page_type {
        PageType::Reg => 0,
        PageType::Tcs => 1,
        PageType::Trim => 2,
    }
}

fn page_type_from(tag: u8) -> Option<PageType> {
    match tag {
        0 => Some(PageType::Reg),
        1 => Some(PageType::Tcs),
        2 => Some(PageType::Trim),
        _ => None,
    }
}

fn access_kind_tag(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Execute => 2,
    }
}

fn access_kind_from(tag: u8) -> Option<AccessKind> {
    match tag {
        0 => Some(AccessKind::Read),
        1 => Some(AccessKind::Write),
        2 => Some(AccessKind::Execute),
        _ => None,
    }
}

fn fault_cause_tag(cause: FaultCause) -> u8 {
    match cause {
        FaultCause::NotPresent => 0,
        FaultCause::Permission => 1,
        FaultCause::EpcmMismatch => 2,
        FaultCause::EpcmBlocked => 3,
        FaultCause::AdBitsClear => 4,
    }
}

fn fault_cause_from(tag: u8) -> Option<FaultCause> {
    match tag {
        0 => Some(FaultCause::NotPresent),
        1 => Some(FaultCause::Permission),
        2 => Some(FaultCause::EpcmMismatch),
        3 => Some(FaultCause::EpcmBlocked),
        4 => Some(FaultCause::AdBitsClear),
        _ => None,
    }
}

fn encode_ssa_frame(out: &mut Vec<u8>, frame: &SsaFrame) {
    match &frame.exinfo {
        Some(info) => {
            out.push(1);
            out.extend_from_slice(&info.va.0.to_le_bytes());
            out.push(access_kind_tag(info.kind));
            out.push(fault_cause_tag(info.cause));
        }
        None => out.push(0),
    }
}

fn decode_ssa_frame(input: &mut &[u8]) -> Option<SsaFrame> {
    let exinfo = match take_u8(input)? {
        0 => None,
        1 => Some(SsaExInfo {
            va: Va(take_u64(input)?),
            kind: access_kind_from(take_u8(input)?)?,
            cause: fault_cause_from(take_u8(input)?)?,
        }),
        _ => return None,
    };
    Some(SsaFrame { exinfo })
}

fn encode_vpn_u64_list(out: &mut Vec<u8>, list: &[(Vpn, u64)]) {
    out.extend_from_slice(&(list.len() as u64).to_le_bytes());
    for &(vpn, value) in list {
        out.extend_from_slice(&vpn.0.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn decode_vpn_u64_list(input: &mut &[u8]) -> Option<Vec<(Vpn, u64)>> {
    let n = take_u64(input)? as usize;
    let mut list = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let vpn = Vpn(take_u64(input)?);
        let value = take_u64(input)?;
        list.push((vpn, value));
    }
    Some(list)
}

/// Encode a full enclave capture into canonical bytes.
pub fn encode_capture(capture: &EnclaveCapture) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&capture.eid.0.to_le_bytes());
    // SECS.
    out.extend_from_slice(&capture.secs.base.0.to_le_bytes());
    out.extend_from_slice(&capture.secs.size.to_le_bytes());
    put_bool(&mut out, capture.secs.attributes.self_paging);
    put_bool(&mut out, capture.secs.attributes.debug);
    out.extend_from_slice(&capture.secs.measurement);
    put_bool(&mut out, capture.secs.initialized);
    put_bool(&mut out, capture.secs.terminated);
    // TCS slots.
    out.extend_from_slice(&(capture.tcs.len() as u64).to_le_bytes());
    for tcs in &capture.tcs {
        out.extend_from_slice(&(tcs.nssa as u64).to_le_bytes());
        put_bool(&mut out, tcs.pending_exception);
        put_bool(&mut out, tcs.active);
        out.extend_from_slice(&(tcs.ssa.len() as u64).to_le_bytes());
        for frame in &tcs.ssa {
            encode_ssa_frame(&mut out, frame);
        }
    }
    // Anti-replay version state.
    encode_vpn_u64_list(&mut out, &capture.next_version);
    encode_vpn_u64_list(&mut out, &capture.outstanding);
    // Resident pages.
    out.extend_from_slice(&(capture.pages.len() as u64).to_le_bytes());
    for page in &capture.pages {
        out.extend_from_slice(&page.vpn.0.to_le_bytes());
        out.push(page_type_tag(page.page_type));
        out.push(perms_bits(page.perms));
        put_bool(&mut out, page.blocked);
        put_bool(&mut out, page.pending);
        put_bool(&mut out, page.modified);
        out.extend_from_slice(&page.contents);
    }
    // Page-table entries.
    out.extend_from_slice(&(capture.ptes.len() as u64).to_le_bytes());
    for &(vpn, pte) in &capture.ptes {
        out.extend_from_slice(&vpn.0.to_le_bytes());
        put_bool(&mut out, pte.present);
        out.extend_from_slice(&pte.frame.0.to_le_bytes());
        out.push(perms_bits(pte.perms));
        put_bool(&mut out, pte.accessed);
        put_bool(&mut out, pte.dirty);
    }
    // TLB entries.
    out.extend_from_slice(&(capture.tlb.len() as u64).to_le_bytes());
    for &(vpn, entry) in &capture.tlb {
        out.extend_from_slice(&vpn.0.to_le_bytes());
        out.extend_from_slice(&entry.frame.0.to_le_bytes());
        out.push(perms_bits(entry.perms));
        put_bool(&mut out, entry.dirty_ok);
    }
    // Timing and counters.
    out.extend_from_slice(&capture.clock_cycles.to_le_bytes());
    for tagged in capture.clock_tagged {
        out.extend_from_slice(&tagged.to_le_bytes());
    }
    for stat in [
        capture.stats.faults,
        capture.stats.aexs,
        capture.stats.eenters,
        capture.stats.eresumes,
        capture.stats.ewbs,
        capture.stats.eldus,
        capture.stats.eaugs,
        capture.stats.eaccepts,
    ] {
        out.extend_from_slice(&stat.to_le_bytes());
    }
    out.extend_from_slice(&capture.tlb_fills.to_le_bytes());
    out.extend_from_slice(&capture.tlb_hits.to_le_bytes());
    out.extend_from_slice(&capture.tlb_flushes.to_le_bytes());
    out
}

/// Decode an enclave capture, consuming exactly its encoding from the
/// front of `input`. Returns `None` on any structural problem.
pub fn decode_capture(input: &mut &[u8]) -> Option<EnclaveCapture> {
    let eid = EnclaveId(take_u32(input)?);
    let secs = Secs {
        base: Va(take_u64(input)?),
        size: take_u64(input)?,
        attributes: Attributes {
            self_paging: take_bool(input)?,
            debug: take_bool(input)?,
        },
        measurement: take_bytes(input, 32)?.try_into().ok()?,
        initialized: take_bool(input)?,
        terminated: take_bool(input)?,
    };
    let n = take_u64(input)? as usize;
    let mut tcs = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        let nssa = take_u64(input)? as usize;
        let pending_exception = take_bool(input)?;
        let active = take_bool(input)?;
        let frames = take_u64(input)? as usize;
        let mut ssa = Vec::with_capacity(frames.min(1 << 10));
        for _ in 0..frames {
            ssa.push(decode_ssa_frame(input)?);
        }
        tcs.push(autarky_sgx_sim::TcsCapture {
            ssa,
            nssa,
            pending_exception,
            active,
        });
    }
    let next_version = decode_vpn_u64_list(input)?;
    let outstanding = decode_vpn_u64_list(input)?;
    let n = take_u64(input)? as usize;
    let mut pages = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let vpn = Vpn(take_u64(input)?);
        let page_type = page_type_from(take_u8(input)?)?;
        let perms = perms_from_bits(take_u8(input)?)?;
        let blocked = take_bool(input)?;
        let pending = take_bool(input)?;
        let modified = take_bool(input)?;
        let contents = take_bytes(input, PAGE_SIZE)?.to_vec();
        pages.push(PageCapture {
            vpn,
            page_type,
            perms,
            blocked,
            pending,
            modified,
            contents,
        });
    }
    let n = take_u64(input)? as usize;
    let mut ptes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let vpn = Vpn(take_u64(input)?);
        let present = take_bool(input)?;
        let frame = Frame(take_u32(input)?);
        let perms = perms_from_bits(take_u8(input)?)?;
        let accessed = take_bool(input)?;
        let dirty = take_bool(input)?;
        ptes.push((
            vpn,
            Pte {
                present,
                frame,
                perms,
                accessed,
                dirty,
            },
        ));
    }
    let n = take_u64(input)? as usize;
    let mut tlb = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let vpn = Vpn(take_u64(input)?);
        let frame = Frame(take_u32(input)?);
        let perms = perms_from_bits(take_u8(input)?)?;
        let dirty_ok = take_bool(input)?;
        tlb.push((
            vpn,
            TlbEntry {
                frame,
                perms,
                dirty_ok,
            },
        ));
    }
    let clock_cycles = take_u64(input)?;
    let mut clock_tagged = [0u64; COST_TAGS];
    for slot in &mut clock_tagged {
        *slot = take_u64(input)?;
    }
    let stats = MachineStats {
        faults: take_u64(input)?,
        aexs: take_u64(input)?,
        eenters: take_u64(input)?,
        eresumes: take_u64(input)?,
        ewbs: take_u64(input)?,
        eldus: take_u64(input)?,
        eaugs: take_u64(input)?,
        eaccepts: take_u64(input)?,
    };
    let tlb_fills = take_u64(input)?;
    let tlb_hits = take_u64(input)?;
    let tlb_flushes = take_u64(input)?;
    Some(EnclaveCapture {
        eid,
        secs,
        tcs,
        next_version,
        outstanding,
        pages,
        ptes,
        tlb,
        clock_cycles,
        clock_tagged,
        stats,
        tlb_fills,
        tlb_hits,
        tlb_flushes,
    })
}
