//! Sealed enclave checkpoint/restore with rollback-resistant failover.
//!
//! A self-paging enclave owns all the state that matters for its paging
//! decisions, which makes it checkpointable without trusting the OS: the
//! runtime serialises its hardening state ([`Runtime::capture_bytes`]),
//! the simulated hardware serialises resident pages, EPCM metadata and
//! timing ([`Machine::capture_enclave`]), and this crate binds the two
//! into a single sealed blob that only the platform that produced it can
//! open — and only once.
//!
//! # Rollback resistance
//!
//! The seal alone is not enough: a hostile OS keeps every snapshot it
//! ever transported and can offer an old (but authentically sealed) one
//! after a crash, or restore the same snapshot on two hosts to fork the
//! enclave. The defense is a monotonic-counter discipline backed by the
//! platform's simulated sealed counter ([`MonotonicCounter`]):
//!
//! 1. **Snapshot** bumps the counter and seals the post-bump value into
//!    the blob's authenticated header. The newest blob always carries
//!    the counter's current value; every older blob is behind it.
//! 2. **Restore** reads the counter (verifying its MAC) and requires the
//!    sealed value to equal the live value *exactly* — a stale blob is
//!    behind, a counter rollback is detected by the MAC check.
//! 3. On success, restore bumps the counter again, so restoring the same
//!    blob a second time (a fork) fails the equality check.
//!
//! Every failure path is treated as a host attack: it is recorded in the
//! flight recorder as a [`FlightEvent::SnapshotRestore`] followed by a
//! [`FlightEvent::AttackDetected`], so post-mortem forensics can name
//! the stale restore as the causal root. A *successful* restore records
//! nothing and charges no simulated cycles — power-off and resume are
//! architecturally invisible, which is what makes byte-identical
//! continuation (and its regression tests) possible.
//!
//! # The size channel
//!
//! The ciphertext hides the checkpoint's *contents* but not its
//! *length*, and the length is a function of the resident-set size and
//! the touched-page count — both secret-dependent under a paging
//! adversary. The payload is therefore zero-padded to a multiple of
//! [`PAD_QUANTUM`] before sealing, so every blob the OS transports has
//! one of a small number of quantised sizes independent of which pages
//! the secret touched. The leakage audit's restore-path cell gates this
//! claim empirically (see [`snapshot_transport_key`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;

use autarky_crypto::aead;
use autarky_os_sim::{FlightEvent, Os, OsError};
use autarky_runtime::{RtError, Runtime};
use autarky_sgx_sim::{
    snapshot_seal_key, EnclaveCapture, EnclaveId, MonotonicCounter, SgxError, Vpn,
};

pub use codec::{decode_capture, encode_capture};

/// Magic + version prefix of the sealed snapshot wire format.
pub const MAGIC: &[u8; 8] = b"AYSNAP01";

/// Length of the authenticated (plaintext) header: magic ‖ eid ‖ counter.
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Sealed payloads are zero-padded to a multiple of this many bytes so
/// the blob length the OS observes is quantised, closing the snapshot
/// size channel (see the module docs).
pub const PAD_QUANTUM: usize = 1 << 16;

/// Page-sized unit in which the untrusted OS transports a sealed blob;
/// the leakage audit models one adversary-visible event per chunk.
pub const TRANSPORT_CHUNK: usize = 4096;

/// Bit 62 marks an untrusted-store key as sealed-snapshot transport.
/// Telemetry exports use bit 63 and page blobs use `eid << 40 | vpn`
/// (never bits 62/63), so the three key spaces are disjoint.
pub const SNAPSHOT_TRANSPORT_KEY_BIT: u64 = 1 << 62;

/// Untrusted-store key for one transported chunk of a sealed snapshot.
/// The chunk index is the only variable part, so the key sequence the
/// adversary observes depends only on the (quantised) blob length.
pub fn snapshot_transport_key(chunk: u64) -> u64 {
    SNAPSHOT_TRANSPORT_KEY_BIT | chunk
}

/// Whether an untrusted-store key names sealed-snapshot transport (used
/// by the leakage audit to isolate the restore-path channel).
pub fn is_snapshot_transport_key(key: u64) -> bool {
    key & autarky_runtime::TELEMETRY_EXPORT_KEY_BIT == 0 && key & SNAPSHOT_TRANSPORT_KEY_BIT != 0
}

/// Number of transport chunks a blob of `len` bytes occupies.
pub fn transport_chunks(len: usize) -> u64 {
    (len.div_ceil(TRANSPORT_CHUNK)) as u64
}

/// Errors from snapshot capture, sealing, or restore.
#[derive(Debug)]
pub enum SnapError {
    /// The simulated hardware rejected the operation (capture of an
    /// uninitialised enclave, counter tampering, restore collision...).
    Sgx(SgxError),
    /// The OS layer rejected the operation.
    Os(OsError),
    /// The runtime's restore-time self-check failed (e.g. a sealed page
    /// version was downgraded while the enclave was down).
    Rt(RtError),
    /// The blob's authenticated seal did not verify: truncated, bit-
    /// flipped, wrong platform, or wrong enclave.
    SealBroken,
    /// The seal verified but the payload inside did not decode. This is
    /// unreachable for blobs we produced; it indicates a codec bug or a
    /// forged key.
    Malformed,
    /// Freshness check failed: the sealed counter does not match the
    /// live platform counter. A stale snapshot is behind the counter; a
    /// forked (already-restored) snapshot is too.
    Stale {
        /// Counter value sealed inside the blob.
        sealed: u64,
        /// Live platform counter value at restore time.
        current: u64,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Sgx(e) => write!(f, "sgx: {e}"),
            SnapError::Os(e) => write!(f, "os: {e}"),
            SnapError::Rt(e) => write!(f, "runtime: {e}"),
            SnapError::SealBroken => write!(f, "snapshot seal failed verification"),
            SnapError::Malformed => write!(f, "snapshot payload malformed"),
            SnapError::Stale { sealed, current } => write!(
                f,
                "snapshot is stale or forked: sealed counter {sealed}, platform counter {current}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<SgxError> for SnapError {
    fn from(e: SgxError) -> Self {
        SnapError::Sgx(e)
    }
}

impl From<OsError> for SnapError {
    fn from(e: OsError) -> Self {
        SnapError::Os(e)
    }
}

impl From<RtError> for SnapError {
    fn from(e: RtError) -> Self {
        SnapError::Rt(e)
    }
}

/// An unsealed checkpoint: the hardware-side capture plus the runtime's
/// serialised hardening state.
///
/// This is the plaintext form; it contains page contents and the
/// telemetry ring, so it must never leave the trust boundary unsealed.
/// Use [`seal_checkpoint`] before handing it to the OS.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Resident pages, EPCM metadata, page tables, TLB, and clocks.
    pub machine: EnclaveCapture,
    /// The runtime's `capture_bytes` blob: policy config, retry and
    /// misbehavior counters, version mirrors, heap, telemetry.
    pub runtime: Vec<u8>,
}

fn nonce_for(counter: u64) -> [u8; aead::NONCE_LEN] {
    // The counter value is sealed into exactly one blob ever (it is
    // bumped before sealing and never reused), so it is a safe nonce.
    let mut nonce = [0u8; aead::NONCE_LEN];
    nonce[..8].copy_from_slice(&counter.to_le_bytes());
    nonce[8..].copy_from_slice(b"SNAP");
    nonce
}

fn header_for(eid: EnclaveId, counter: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(MAGIC);
    header[8..12].copy_from_slice(&eid.0.to_le_bytes());
    header[12..20].copy_from_slice(&counter.to_le_bytes());
    header
}

fn encode_payload(checkpoint: &Checkpoint) -> Vec<u8> {
    let machine = encode_capture(&checkpoint.machine);
    let mut payload = Vec::with_capacity(16 + machine.len() + checkpoint.runtime.len());
    payload.extend_from_slice(&(machine.len() as u64).to_le_bytes());
    payload.extend_from_slice(&machine);
    payload.extend_from_slice(&(checkpoint.runtime.len() as u64).to_le_bytes());
    payload.extend_from_slice(&checkpoint.runtime);
    // Quantise the sealed length: AEAD hides contents, not size, and the
    // unpadded size is a function of the (secret-dependent) resident set.
    payload.resize(payload.len().div_ceil(PAD_QUANTUM) * PAD_QUANTUM, 0);
    payload
}

fn decode_payload(mut input: &[u8]) -> Option<(EnclaveCapture, Vec<u8>)> {
    let machine_len = codec::take_u64(&mut input)? as usize;
    if input.len() < machine_len {
        return None;
    }
    let (mut machine_bytes, rest) = input.split_at(machine_len);
    let capture = decode_capture(&mut machine_bytes)?;
    if !machine_bytes.is_empty() {
        return None;
    }
    input = rest;
    let runtime_len = codec::take_u64(&mut input)? as usize;
    if input.len() < runtime_len {
        return None;
    }
    let (runtime, padding) = input.split_at(runtime_len);
    // Anything past the runtime blob must be canonical zero padding.
    if padding.iter().any(|&b| b != 0) {
        return None;
    }
    Some((capture, runtime.to_vec()))
}

/// Capture a running enclave into an unsealed [`Checkpoint`].
///
/// Call this at an operation boundary (no chain of transitions mid-
/// flight); the capture is a pure read and perturbs nothing.
pub fn capture_checkpoint(os: &Os, rt: &Runtime) -> Result<Checkpoint, SnapError> {
    Ok(Checkpoint {
        machine: os.machine.capture_enclave(rt.eid)?,
        runtime: rt.capture_bytes(),
    })
}

/// Seal a checkpoint under the platform's snapshot key, bumping the
/// monotonic counter so this blob supersedes every earlier one.
///
/// Blob layout: `MAGIC ‖ eid u32 ‖ counter u64` (authenticated header)
/// ‖ 16-byte tag ‖ ciphertext, with the plaintext zero-padded to a
/// multiple of [`PAD_QUANTUM`] so the blob length is quantised.
pub fn seal_checkpoint(
    os: &Os,
    counter: &mut MonotonicCounter,
    checkpoint: &Checkpoint,
) -> Result<Vec<u8>, SnapError> {
    let platform_key = *os.machine.platform_key();
    let eid = checkpoint.machine.eid;
    let value = counter.bump(&platform_key)?;
    let key = snapshot_seal_key(&platform_key, eid);
    let header = header_for(eid, value);
    let mut data = encode_payload(checkpoint);
    let tag = aead::seal(&key, &nonce_for(value), &header, &mut data);
    let mut blob = Vec::with_capacity(HEADER_LEN + aead::TAG_LEN + data.len());
    blob.extend_from_slice(&header);
    blob.extend_from_slice(&tag);
    blob.extend_from_slice(&data);
    Ok(blob)
}

/// Capture and seal in one step. Records nothing and charges no cycles:
/// a successful snapshot is architecturally invisible, which is what
/// byte-identical continuation tests rely on.
pub fn snapshot(
    os: &Os,
    rt: &Runtime,
    counter: &mut MonotonicCounter,
) -> Result<Vec<u8>, SnapError> {
    let checkpoint = capture_checkpoint(os, rt)?;
    seal_checkpoint(os, counter, &checkpoint)
}

/// Record a failed restore in the flight recorder as a host attack so
/// forensics can name the stale/forged blob as the causal root. Joins
/// the caller's open chain if one exists (so an explicitly staged
/// injection lands in the same chain as the verdict).
fn record_restore_attack(os: &mut Os, sealed_counter: u64, why: &str) {
    if !os.flight_armed() {
        return;
    }
    let opened = os.flight_begin_chain_if_idle();
    os.flight_record(FlightEvent::SnapshotRestore {
        counter: sealed_counter,
    });
    os.flight_record(FlightEvent::AttackDetected {
        vpn: Vpn(0),
        why: why.to_string(),
    });
    if opened {
        os.flight_end_chain();
    }
}

/// Restore a sealed snapshot onto `os`, returning the reattached
/// [`Runtime`].
///
/// The caller is responsible for having moved the enclave's OS-side
/// process state (backing store, observations, flight recorder) onto
/// `os` first — see `Os::adopt_untrusted_state` — since that state is
/// untrusted and travels outside the seal by design.
///
/// Verification order matters and is part of the threat model:
/// header sanity → counter MAC → freshness equality → AEAD open →
/// counter bump (consuming this blob) → decode → hardware restore →
/// runtime restore → runtime self-check (`verify_restore`). Every
/// failure before the bump leaves the counter untouched so a *good*
/// blob can still be restored afterwards.
pub fn restore(
    os: &mut Os,
    counter: &mut MonotonicCounter,
    blob: &[u8],
) -> Result<Runtime, SnapError> {
    restore_inner(os, counter, blob, false)
}

/// Restore a sealed snapshot onto an `os` whose machine *kept running*
/// (fleet in-place restart: the enclave's neighbors never stopped, so
/// the shared clock, stats and TLB counters must not be rewound to the
/// capture's values).
///
/// Same verification order and counter discipline as [`restore`]; the
/// only difference is the hardware restore uses
/// [`Machine::restore_enclave_shared`], which preserves live machine
/// timing. The restored enclave's own contents are still byte-identical
/// to the capture. The caller must have retired the crashed incarnation
/// first (`Os::retire_enclave`) and reinstated its untrusted state
/// (`Os::reinstate_untrusted_state`).
///
/// [`Machine::restore_enclave_shared`]: autarky_sgx_sim::Machine::restore_enclave_shared
pub fn restore_in_place(
    os: &mut Os,
    counter: &mut MonotonicCounter,
    blob: &[u8],
) -> Result<Runtime, SnapError> {
    restore_inner(os, counter, blob, true)
}

fn restore_inner(
    os: &mut Os,
    counter: &mut MonotonicCounter,
    blob: &[u8],
    shared_machine: bool,
) -> Result<Runtime, SnapError> {
    let platform_key = *os.machine.platform_key();
    if blob.len() < HEADER_LEN + aead::TAG_LEN || &blob[..8] != MAGIC {
        record_restore_attack(os, 0, "snapshot blob truncated or not a sealed snapshot");
        return Err(SnapError::SealBroken);
    }
    let eid = EnclaveId(u32::from_le_bytes(
        blob[8..12].try_into().map_err(|_| SnapError::SealBroken)?,
    ));
    let sealed = u64::from_le_bytes(
        blob[12..HEADER_LEN]
            .try_into()
            .map_err(|_| SnapError::SealBroken)?,
    );
    let current = match counter.read(&platform_key) {
        Ok(value) => value,
        Err(e) => {
            record_restore_attack(os, sealed, "platform monotonic counter failed verification");
            return Err(SnapError::Sgx(e));
        }
    };
    if sealed != current {
        record_restore_attack(
            os,
            sealed,
            "snapshot freshness check failed: stale or already-restored snapshot",
        );
        return Err(SnapError::Stale { sealed, current });
    }
    let key = snapshot_seal_key(&platform_key, eid);
    let tag: [u8; aead::TAG_LEN] = blob[HEADER_LEN..HEADER_LEN + aead::TAG_LEN]
        .try_into()
        .map_err(|_| SnapError::SealBroken)?;
    let mut payload = blob[HEADER_LEN + aead::TAG_LEN..].to_vec();
    if aead::open(
        &key,
        &nonce_for(sealed),
        &blob[..HEADER_LEN],
        &mut payload,
        &tag,
    )
    .is_err()
    {
        record_restore_attack(os, sealed, "snapshot seal failed verification");
        return Err(SnapError::SealBroken);
    }
    // The blob is authentic and fresh: consume the counter value so this
    // blob can never restore again (fork defense). From here on, any
    // failure burns the snapshot — deliberately, since a decode or
    // restore failure past the seal means the platform is compromised.
    counter.bump(&platform_key)?;
    let (capture, runtime_bytes) = decode_payload(&payload).ok_or(SnapError::Malformed)?;
    if capture.eid != eid {
        return Err(SnapError::Malformed);
    }
    if shared_machine {
        os.machine.restore_enclave_shared(&capture)?;
    } else {
        os.machine.restore_enclave(&capture)?;
    }
    let mut rt = Runtime::restore_from_bytes(&runtime_bytes).ok_or(SnapError::Malformed)?;
    if rt.eid != eid {
        return Err(SnapError::Malformed);
    }
    if let Err(e) = rt.verify_restore(os) {
        record_restore_attack(
            os,
            sealed,
            "restored enclave failed its freshness self-check",
        );
        return Err(SnapError::Rt(e));
    }
    Ok(rt)
}
