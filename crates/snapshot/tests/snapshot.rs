//! End-to-end tests of sealed checkpoint/restore: byte-identical
//! continuation on a failover host, rollback/fork/truncation attacks
//! tripping `AttackDetected` with correct forensics attribution, and the
//! hardening-state carryover semantics.

use autarky_os_sim::flight::causal_root_of_attack;
use autarky_os_sim::{EnclaveImage, FaultPlan, FlightEvent, InjectedFault, Observation, Os};
use autarky_runtime::{HardenConfig, PagingMechanism, RateLimit, RtError, Runtime, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{EnclaveId, MonotonicCounter, SgxError};
use autarky_snapshot::{
    capture_checkpoint, encode_capture, restore, seal_checkpoint, snapshot, SnapError,
};

fn image(name: &str) -> EnclaveImage {
    let mut img = EnclaveImage::named(name);
    img.self_paging = true;
    img.code_pages = 4;
    img.data_pages = 8;
    img.stack_pages = 2;
    img.heap_pages = 64;
    img
}

fn mconfig() -> MachineConfig {
    MachineConfig {
        epc_frames: 512,
        ..Default::default()
    }
}

fn setup(config: RuntimeConfig) -> (Os, EnclaveId, Runtime) {
    let mut os = Os::new(mconfig());
    let eid = os.load_enclave(&image("snap-test")).expect("load");
    let rt = Runtime::attach(&mut os, eid, config).expect("attach");
    (os, eid, rt)
}

fn counter_for(os: &Os, eid: EnclaveId) -> MonotonicCounter {
    MonotonicCounter::new(os.machine.platform_key(), eid)
}

/// `Result::expect_err` needs `Debug` on the success type; `Runtime`
/// deliberately has none (it holds key material).
fn must_fail(result: Result<Runtime, SnapError>, msg: &str) -> SnapError {
    match result {
        Ok(_) => panic!("{msg}: restore unexpectedly succeeded"),
        Err(e) => e,
    }
}

/// Mutate enough state to make a trivial restore fail: dirty pages,
/// evictions, a heap allocation, rate-limiter history.
fn exercise(os: &mut Os, rt: &mut Runtime) {
    let img = image("snap-test");
    let data = img.data_start();
    rt.write(os, data.base(), &[0xAB; 64]).expect("write");
    rt.evict_pages(os, &[data]).expect("evict");
    let mut buf = [0u8; 64];
    rt.read(os, data.base(), &mut buf).expect("fault back");
    assert_eq!(buf, [0xAB; 64]);
    let heap = rt
        .malloc(os, 3 * autarky_sgx_sim::PAGE_SIZE)
        .expect("malloc");
    rt.write(os, heap, &[0x5A; 32]).expect("heap write");
}

/// Crash the origin host and boot a failover host that adopts the
/// enclave's untrusted OS-side state (backing store, observations,
/// flight recorder) — everything but the sealed snapshot itself.
fn failover(donor: &mut Os, eid: EnclaveId) -> Os {
    let mut host = Os::new(mconfig());
    host.adopt_untrusted_state(donor, eid).expect("adopt");
    host
}

#[test]
fn sealed_roundtrip_restores_byte_identical_state() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig {
        mechanism: PagingMechanism::Sgx2,
        rate_limit: Some(RateLimit {
            max_faults_per_progress: 8.0,
            burst: 32,
        }),
        budget: 24,
        ..Default::default()
    });
    exercise(&mut os, &mut rt);
    let mut counter = counter_for(&os, eid);
    let blob = snapshot(&os, &rt, &mut counter).expect("snapshot");
    let rt_bytes = rt.capture_bytes();
    let machine_bytes = encode_capture(&os.machine.capture_enclave(eid).expect("capture"));

    let mut host = failover(&mut os, eid);
    let mut restored = restore(&mut host, &mut counter, &blob).expect("restore");

    // Byte-identical state on both halves of the seal.
    assert_eq!(restored.capture_bytes(), rt_bytes, "runtime state differs");
    assert_eq!(
        encode_capture(&host.machine.capture_enclave(eid).expect("re-capture")),
        machine_bytes,
        "machine state differs"
    );

    // The restored enclave continues the workload where it left off.
    let img = image("snap-test");
    let data = img.data_start();
    let mut buf = [0u8; 64];
    restored
        .read(&mut host, data.base(), &mut buf)
        .expect("read on failover host");
    assert_eq!(buf, [0xAB; 64], "page contents survived the seal");
    restored
        .evict_pages(&mut host, &[data])
        .expect("evict on failover host");
    restored
        .read(&mut host, data.base(), &mut buf)
        .expect("fault back on failover host");
    assert_eq!(buf, [0xAB; 64]);
}

#[test]
fn stale_snapshot_restore_trips_attack_with_forensics() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    exercise(&mut os, &mut rt);
    let mut counter = counter_for(&os, eid);
    let stale = snapshot(&os, &rt, &mut counter).expect("snapshot v1");
    // More work, then a fresh snapshot: the stale blob is now behind.
    let img = image("snap-test");
    rt.write(&mut os, img.data_start().base(), &[0xCC; 8])
        .expect("write v2");
    let _fresh = snapshot(&os, &rt, &mut counter).expect("snapshot v2");

    let mut host = failover(&mut os, eid);
    host.arm_flight_recorder(256);
    // The hostile host offers the stale blob; the harness stages the
    // injection so forensics has a root to attribute.
    host.record_snapshot_attack(eid, InjectedFault::StaleSnapshot { counter: 1 });
    let err = must_fail(restore(&mut host, &mut counter, &stale), "stale");
    assert!(
        matches!(
            err,
            SnapError::Stale {
                sealed: 1,
                current: 2
            }
        ),
        "got {err}"
    );

    let records = host.flight_snapshot();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, FlightEvent::SnapshotRestore { counter: 1 })),
        "restore attempt not recorded"
    );
    let (attack, root) = causal_root_of_attack(&records).expect("causal root");
    assert!(
        matches!(attack.event, FlightEvent::AttackDetected { .. }),
        "verdict missing"
    );
    assert!(
        matches!(
            root.event,
            FlightEvent::Kernel(Observation::FaultInjected {
                fault: InjectedFault::StaleSnapshot { counter: 1 },
                ..
            })
        ),
        "forensics did not name the stale restore: {:?}",
        root.event
    );
}

#[test]
fn forked_snapshot_cannot_restore_twice() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    exercise(&mut os, &mut rt);
    let mut counter = counter_for(&os, eid);
    let blob = snapshot(&os, &rt, &mut counter).expect("snapshot");

    let mut host = failover(&mut os, eid);
    let _rt1 = restore(&mut host, &mut counter, &blob).expect("first restore");

    // A second host (the fork) presents the same authentic blob. The
    // counter moved when the first restore consumed it.
    let mut fork = failover(&mut host, eid);
    fork.arm_flight_recorder(256);
    fork.record_snapshot_attack(eid, InjectedFault::ForkedSnapshot { counter: 1 });
    let err = must_fail(restore(&mut fork, &mut counter, &blob), "fork");
    assert!(
        matches!(
            err,
            SnapError::Stale {
                sealed: 1,
                current: 2
            }
        ),
        "got {err}"
    );
    let records = fork.flight_snapshot();
    let (_, root) = causal_root_of_attack(&records).expect("causal root");
    assert!(matches!(
        root.event,
        FlightEvent::Kernel(Observation::FaultInjected {
            fault: InjectedFault::ForkedSnapshot { .. },
            ..
        })
    ));
}

#[test]
fn truncated_or_corrupt_blob_is_seal_broken_and_burns_nothing() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    exercise(&mut os, &mut rt);
    let mut counter = counter_for(&os, eid);
    let blob = snapshot(&os, &rt, &mut counter).expect("snapshot");
    let mut host = failover(&mut os, eid);
    host.record_snapshot_attack(
        eid,
        InjectedFault::TruncatedSnapshot {
            len: blob.len() - 5,
        },
    );

    // Truncated ciphertext.
    let err = must_fail(
        restore(&mut host, &mut counter, &blob[..blob.len() - 5]),
        "truncated",
    );
    assert!(matches!(err, SnapError::SealBroken), "got {err}");
    // Truncated below the header.
    let err = must_fail(restore(&mut host, &mut counter, &blob[..10]), "short");
    assert!(matches!(err, SnapError::SealBroken), "got {err}");
    // One flipped ciphertext bit.
    let mut corrupt = blob.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 1;
    let err = must_fail(restore(&mut host, &mut counter, &corrupt), "corrupt");
    assert!(matches!(err, SnapError::SealBroken), "got {err}");
    // Wrong magic.
    let mut wrong = blob.clone();
    wrong[0] ^= 0xFF;
    let err = must_fail(restore(&mut host, &mut counter, &wrong), "magic");
    assert!(matches!(err, SnapError::SealBroken), "got {err}");

    // None of those attempts consumed the counter: the genuine blob
    // still restores.
    let restored = restore(&mut host, &mut counter, &blob).expect("good blob still valid");
    assert_eq!(restored.eid, eid);
}

#[test]
fn counter_rollback_is_detected_by_mac() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    exercise(&mut os, &mut rt);
    let mut counter = counter_for(&os, eid);
    let blob = snapshot(&os, &rt, &mut counter).expect("snapshot");
    // The OS rolls the counter back to make a stale blob look fresh —
    // but it cannot forge the counter MAC.
    counter.hostile_overwrite(0);
    let mut host = failover(&mut os, eid);
    let err = must_fail(restore(&mut host, &mut counter, &blob), "rollback");
    assert!(
        matches!(err, SnapError::Sgx(SgxError::CounterTampered)),
        "got {err}"
    );
}

#[test]
fn hw_version_downgrade_inside_seal_is_caught_on_restore() {
    // Satellite: even a blob that seals *internally inconsistent* state
    // (machine-side page versions behind the runtime's sealed mirror —
    // a forged seal or codec compromise) is caught by the runtime's
    // restore-time freshness self-check.
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default()); // Sgx1
    let img = image("snap-test");
    let data = img.data_start();
    rt.write(&mut os, data.base(), &[7; 16]).expect("write");
    rt.evict_pages(&mut os, &[data]).expect("evict");
    let mut checkpoint = capture_checkpoint(&os, &rt).expect("capture");
    let entry = checkpoint
        .machine
        .outstanding
        .iter_mut()
        .find(|(vpn, _)| *vpn == data)
        .expect("evicted page has an outstanding version");
    assert!(entry.1 > 0);
    entry.1 -= 1;
    let mut counter = counter_for(&os, eid);
    let blob = seal_checkpoint(&os, &mut counter, &checkpoint).expect("seal");
    let mut host = failover(&mut os, eid);
    host.arm_flight_recorder(256);
    let err = must_fail(restore(&mut host, &mut counter, &blob), "downgrade");
    assert!(
        matches!(err, SnapError::Rt(RtError::AttackDetected { .. })),
        "got {err}"
    );
    let records = host.flight_snapshot();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, FlightEvent::AttackDetected { .. })),
        "verdict not in flight log"
    );
}

#[test]
fn misbehavior_budget_persists_across_restore() {
    // Satellite: misbehavior debits are part of the sealed state. A
    // restore that reset them would let the OS launder attack evidence
    // by crashing the host every few anomalies.
    let (mut os, eid, mut rt) = setup(RuntimeConfig {
        harden: HardenConfig {
            misbehavior_budget: 4,
            ..Default::default()
        },
        ..Default::default()
    });
    let img = image("snap-test");
    let data = img.data_start();
    rt.write(&mut os, data.base(), &[1; 8]).expect("write");
    rt.evict_pages(&mut os, &[data]).expect("evict");
    os.arm_fault_plan(FaultPlan {
        drop_page: 1.0,
        max_injections: Some(3),
        ..FaultPlan::quiescent(7)
    });
    let mut buf = [0u8; 8];
    rt.read(&mut os, data.base(), &mut buf)
        .expect("read survives 3 drops");
    os.disarm_fault_plan();
    assert_eq!(rt.stats.misbehavior, 3, "three debits accumulated");

    let mut counter = counter_for(&os, eid);
    let blob = snapshot(&os, &rt, &mut counter).expect("snapshot");
    let mut host = failover(&mut os, eid);
    let mut restored = restore(&mut host, &mut counter, &blob).expect("restore");
    assert_eq!(restored.stats.misbehavior, 3, "debits survived the seal");

    // Two more anomalies push the lifetime total past the budget of 4 —
    // only because the restore did not reset the count.
    restored
        .evict_pages(&mut host, &[data])
        .expect("evict again");
    host.arm_fault_plan(FaultPlan {
        drop_page: 1.0,
        max_injections: Some(2),
        ..FaultPlan::quiescent(11)
    });
    let err = restored
        .read(&mut host, data.base(), &mut buf)
        .expect_err("budget exhausted across the restore boundary");
    assert!(matches!(err, RtError::AttackDetected { .. }), "got {err}");
}

#[test]
fn sealed_blob_length_is_quantized() {
    const TAG_LEN: usize = 16;
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    let mut counter = counter_for(&os, eid);
    let before = snapshot(&os, &rt, &mut counter).expect("snapshot before");
    exercise(&mut os, &mut rt);
    let after = snapshot(&os, &rt, &mut counter).expect("snapshot after");
    for blob in [&before, &after] {
        assert_eq!(
            (blob.len() - autarky_snapshot::HEADER_LEN - TAG_LEN) % autarky_snapshot::PAD_QUANTUM,
            0,
            "sealed payload is not padded to the quantum"
        );
    }
    // The exercise dirtied a handful of pages — well inside one quantum —
    // so the transported size must not move.
    assert_eq!(
        before.len(),
        after.len(),
        "blob length leaked the working-set delta"
    );
    // And the padded blob still restores byte-identically.
    let rt_bytes = rt.capture_bytes();
    let mut host = failover(&mut os, eid);
    let restored = restore(&mut host, &mut counter, &after).expect("restore padded blob");
    assert_eq!(restored.capture_bytes(), rt_bytes);
}
