//! Table 2: end-to-end performance of real applications using page
//! clusters — libjpeg, Hunspell, and FreeType — in four variants:
//! unprotected, Autarky as measured, Autarky without the handler upcall
//! ("no upcall"), and Autarky without the upcall or the AEX ("no
//! upcall/AEX", the full hardware optimization).
//!
//! Paper numbers to match in shape: libjpeg 38.7 MB/s → −18% / −6% / +3%;
//! Hunspell 16 kwd/s → −25% / −16% / −9%; FreeType 149 kop/s with no
//! change in any variant (everything pinned, zero faults).

use autarky::prelude::*;
use autarky::workloads::font::FontRenderer;
use autarky::workloads::jpeg;
use autarky::workloads::spell::{synth_text, SpellServer};
use autarky::{Profile, SystemBuilder};

use crate::util::secs;

/// Protection variant of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Legacy enclave, OS paging, no defense.
    Unprotected,
    /// Autarky exactly as implementable on proposed minimal hardware.
    Measured,
    /// Plus the in-enclave resume ("no upcall").
    NoUpcall,
    /// Plus AEX elision ("no upcall/AEX").
    NoUpcallNoAex,
}

impl Variant {
    /// All four, in table order.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Unprotected,
            Variant::Measured,
            Variant::NoUpcall,
            Variant::NoUpcallNoAex,
        ]
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Unprotected => "unprotected",
            Variant::Measured => "autarky",
            Variant::NoUpcall => "no-upcall",
            Variant::NoUpcallNoAex => "no-upcall/AEX",
        }
    }
}

/// One workload row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: &'static str,
    /// Unit of the throughput numbers.
    pub unit: &'static str,
    /// Throughput per variant (same order as [`Variant::all`]).
    pub throughput: [f64; 4],
    /// Page faults in the Measured variant.
    pub page_faults: u64,
    /// Enclave-managed pages in the Measured variant.
    pub enclave_managed_pages: u64,
}

/// Experiment sizes.
#[derive(Debug, Clone)]
pub struct Table2Params {
    /// Decoded-image side in pixels (must be a multiple of 8). The paper
    /// decodes a 13632×10224 image (398 MB); scaled down here.
    pub image_side: usize,
    /// Dictionaries for the spell server (paper: 15).
    pub dictionaries: usize,
    /// Words per dictionary.
    pub words_per_dictionary: usize,
    /// Words spell-checked (paper: 39,588 — The Wonderful Wizard of Oz).
    pub text_words: usize,
    /// Glyph-render operations.
    pub glyph_ops: usize,
    /// EPC pages available.
    pub epc_pages: usize,
    /// Runtime budget (pages) for the spell server.
    pub spell_budget_pages: usize,
}

impl Table2Params {
    /// Scale 1 ≈ 1/64 of the paper's sizes.
    pub fn scaled(scale: u32) -> Self {
        let s = scale as usize;
        Self {
            image_side: 1024 * s.min(4),
            dictionaries: 15,
            words_per_dictionary: 600 * s,
            text_words: 2500 * s,
            glyph_ops: 4000 * s,
            epc_pages: 4096 * s,
            spell_budget_pages: 48 + 64 * s,
        }
    }
}

fn builder(name: &str, variant: Variant, profile_protected: Profile) -> SystemBuilder {
    let profile = if variant == Variant::Unprotected {
        Profile::Unprotected
    } else {
        profile_protected
    };
    SystemBuilder::new(name, profile)
        .elide_handler_invocation(matches!(
            variant,
            Variant::NoUpcall | Variant::NoUpcallNoAex
        ))
        .elide_aex(matches!(variant, Variant::NoUpcallNoAex))
}

/// libjpeg: decode a large image, invert it, and read it back out. The
/// decoder's working set is enclave-managed; the decoded framebuffer is
/// insensitive (content-independent filter) and handed to the OS, which
/// pages it freely — under Autarky those faults round-trip through the
/// enclave handler, which is the entire overhead.
pub fn run_libjpeg(params: &Table2Params) -> Row {
    let side = params.image_side;
    let pixels = jpeg::synth_image(side, side, 1234);
    let compressed = jpeg::encode(side, side, &pixels);
    let image_pages = (side * side).div_ceil(PAGE_SIZE);

    let mut throughput = [0.0f64; 4];
    let mut page_faults = 0u64;
    let mut enclave_managed = 0u64;
    for (i, variant) in Variant::all().into_iter().enumerate() {
        let (mut world, mut heap) = builder("table2-jpeg", variant, Profile::PinAll)
            .epc_pages(params.epc_pages)
            .heap_pages(image_pages + 1)
            .build()
            .expect("system");
        let mut decoder = jpeg::Decoder::new(&mut world, &mut heap, side, side).expect("decoder");
        if variant != Variant::Unprotected {
            // Framebuffer pages are insensitive: hand them to the OS.
            let first = Vpn(framebuffer_vpn(&decoder));
            let pages: Vec<Vpn> = (0..image_pages as u64).map(|k| Vpn(first.0 + k)).collect();
            world
                .rt
                .release_to_os(&mut world.os, &pages)
                .expect("release");
        }
        // Keep EPC scarce so only half the framebuffer fits, mirroring
        // the paper's 398 MB image against ~190 MB EPC. The legacy run's
        // unused image pages get evicted by the clock policy and stop
        // consuming quota, so its quota counts only the hot set (the two
        // IDCT code pages plus slack); the protected run's quota must
        // additionally cover its pinned enclave-managed set.
        let resident = world.os.resident_frames(world.eid);
        let quota = if variant == Variant::Unprotected {
            image_pages / 2 + 12
        } else {
            resident.saturating_sub(image_pages / 2)
        };
        world.os.set_epc_quota(world.eid, quota).expect("quota");
        let t0 = world.now();
        decoder
            .decode(&mut world, &mut heap, &compressed)
            .expect("decode");
        decoder.invert(&mut world, &mut heap).expect("invert");
        let out = decoder.read_image(&mut world, &mut heap).expect("read");
        let cycles = world.now() - t0;
        assert_eq!(out.len(), side * side);
        let megabytes = (side * side) as f64 / (1024.0 * 1024.0);
        throughput[i] = megabytes / secs(cycles);
        if variant == Variant::Measured {
            page_faults = world.os.machine.stats().faults;
            enclave_managed = world.rt.resident_pages() as u64;
        }
    }
    Row {
        workload: "libjpeg",
        unit: "MB/s",
        throughput,
        page_faults,
        enclave_managed_pages: enclave_managed,
    }
}

fn framebuffer_vpn(decoder: &jpeg::Decoder) -> u64 {
    decoder.framebuffer.0 >> 12
}

/// Hunspell: load 15 dictionaries (together exceeding the budget) with
/// one cluster per dictionary, then spell-check a text against one of
/// them. Timing pessimistically includes dictionary load, as the paper's
/// does; English loads first so it has been evicted by check time.
pub fn run_hunspell(params: &Table2Params) -> Row {
    let langs: Vec<String> = (0..params.dictionaries)
        .map(|i| format!("lang{i:02}"))
        .collect();
    let lang_refs: Vec<&str> = langs.iter().map(|s| s.as_str()).collect();
    let text = synth_text(
        &langs[0],
        params.words_per_dictionary,
        params.text_words,
        77,
    );

    let mut throughput = [0.0f64; 4];
    let mut page_faults = 0u64;
    let mut enclave_managed = 0u64;
    // Sizing pass: learn how many heap pages the dictionaries occupy, so
    // the legacy baseline's pre-added heap is tight (no phantom pages
    // distorting its paging behaviour).
    let used_pages = {
        let (mut world, mut heap) = builder(
            "table2-spell-size",
            Variant::Measured,
            Profile::Clusters {
                pages_per_cluster: 0,
            },
        )
        .epc_pages(params.epc_pages)
        .heap_pages(params.spell_budget_pages * 4)
        .build()
        .expect("system");
        SpellServer::start(
            &mut world,
            &mut heap,
            &lang_refs,
            params.words_per_dictionary,
            false,
        )
        .expect("sizing server");
        world.rt.stats.pages_allocated as usize + 2
    };
    for (i, variant) in Variant::all().into_iter().enumerate() {
        let (mut world, mut heap) = builder(
            "table2-spell",
            variant,
            Profile::Clusters {
                pages_per_cluster: 0,
            },
        )
        .epc_pages(params.epc_pages)
        .heap_pages(used_pages + 4)
        .budget_pages(params.spell_budget_pages)
        .build()
        .expect("system");
        if variant == Variant::Unprotected {
            // Same memory share as the protected budget: the budget covers
            // the image plus dictionary pages for the self-paging runtime,
            // so the OS quota grants the baseline the same frame count
            // (plus the TCS page the runtime never tracks).
            let untracked = 1 + 4; // TCS + slack
            world
                .os
                .set_epc_quota(world.eid, params.spell_budget_pages + untracked)
                .expect("quota");
        }
        let t0 = world.now();
        let server = SpellServer::start(
            &mut world,
            &mut heap,
            &lang_refs,
            params.words_per_dictionary,
            variant != Variant::Unprotected,
        )
        .expect("server");
        let correct = server
            .check_text(&mut world, &mut heap, &langs[0], &text)
            .expect("check");
        let cycles = world.now() - t0;
        assert_eq!(
            correct as usize, params.text_words,
            "all sampled words spelled right"
        );
        throughput[i] = params.text_words as f64 / 1000.0 / secs(cycles);
        if variant == Variant::Measured {
            page_faults = world.os.machine.stats().faults;
            enclave_managed = world.rt.resident_pages() as u64;
        }
    }
    Row {
        workload: "Hunspell",
        unit: "kwd/s",
        throughput,
        page_faults,
        enclave_managed_pages: enclave_managed,
    }
}

/// FreeType: render text with all code pages pinned — zero faults, zero
/// overhead in every variant.
pub fn run_freetype(params: &Table2Params) -> Row {
    let mut throughput = [0.0f64; 4];
    let mut page_faults = 0u64;
    let mut enclave_managed = 0u64;
    for (i, variant) in Variant::all().into_iter().enumerate() {
        let (mut world, mut heap) = builder("table2-font", variant, Profile::PinAll)
            .epc_pages(params.epc_pages)
            .heap_pages(256)
            .code_pages(24)
            .build()
            .expect("system");
        let mut font = FontRenderer::new(&mut world, &mut heap, 64).expect("font");
        let text: String = (0..params.glyph_ops)
            .map(|k| (b'a' + (k % 26) as u8) as char)
            .collect();
        let t0 = world.now();
        font.render_text(&mut world, &mut heap, &text)
            .expect("render");
        let cycles = world.now() - t0;
        throughput[i] = params.glyph_ops as f64 / 1000.0 / secs(cycles);
        if variant == Variant::Measured {
            page_faults = world.os.machine.stats().faults;
            enclave_managed = world.rt.resident_pages() as u64;
        }
    }
    Row {
        workload: "FreeType",
        unit: "kop/s",
        throughput,
        page_faults,
        enclave_managed_pages: enclave_managed,
    }
}

/// All three rows.
pub fn run_all(params: &Table2Params) -> Vec<Row> {
    vec![
        run_libjpeg(params),
        run_hunspell(params),
        run_freetype(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table2Params {
        Table2Params {
            image_side: 512,
            dictionaries: 4,
            words_per_dictionary: 800,
            text_words: 200,
            glyph_ops: 200,
            epc_pages: 4096,
            spell_budget_pages: 36,
        }
    }

    #[test]
    fn libjpeg_variant_ordering() {
        let row = run_libjpeg(&tiny());
        let [base, measured, no_upcall, no_aex] = row.throughput;
        assert!(
            measured < base,
            "measured {measured} must trail baseline {base}"
        );
        assert!(no_upcall > measured, "no-upcall recovers some cost");
        assert!(no_aex > no_upcall, "full optimization recovers more");
        assert!(row.page_faults > 0, "the framebuffer must page");
    }

    #[test]
    fn freetype_has_no_overhead_or_faults() {
        let row = run_freetype(&tiny());
        let [base, measured, ..] = row.throughput;
        let delta = (base - measured).abs() / base;
        assert!(delta < 0.02, "FreeType overhead {delta} should be ~0");
        assert_eq!(row.page_faults, 0, "everything pinned");
    }

    #[test]
    fn hunspell_protected_trails_baseline() {
        let row = run_hunspell(&tiny());
        let [base, measured, no_upcall, no_aex] = row.throughput;
        assert!(measured < base);
        assert!(no_upcall >= measured);
        assert!(no_aex >= no_upcall);
        assert!(row.page_faults > 0, "dictionary clusters page");
    }
}
