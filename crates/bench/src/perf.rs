//! The perf-regression pipeline: figure-shaped smoke workloads measured
//! through the telemetry layer, serialized as `BENCH_PR4.json`, and
//! diffed against a committed baseline with a tolerance gate.
//!
//! Every number here is *simulated* cycles, so a run is bit-stable across
//! machines: the CI `bench-smoke` job regenerates the report and fails if
//! any workload's cycles/op regressed by more than the tolerance against
//! the committed `baselines/bench-v1.json`.
//!
//! The JSON is hand-rolled (the offline build has no serde); the baseline
//! parser below reads exactly the format [`PerfReport::to_json`] writes —
//! one key per line — and is not a general JSON parser.
//!
//! Besides the whole-suite pipeline, single workloads are addressable by
//! name ([`measure_one`]) so external matrix drivers (the campaign
//! runner) can gate one `workload × baseline` cell at a time.

use autarky::prelude::*;
use autarky::telemetry::SpanKind;
use autarky::workloads::font::FontRenderer;
use autarky::workloads::kvstore::{ItemClustering, KvStore};
use autarky::workloads::spell::{synth_wordlist, Dictionary};
use autarky::{Profile, SystemBuilder};

use crate::fig5::BATCH;

/// One span kind's contribution to a measured phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanLine {
    /// Span registry name (e.g. `fault_handler`).
    pub name: &'static str,
    /// Spans completed during the measured phase.
    pub count: u64,
    /// Simulated cycles spent inside the span kind.
    pub cycles: u64,
}

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPerf {
    /// Workload label (stable across baselines).
    pub name: &'static str,
    /// Operations performed in the measured phase.
    pub ops: u64,
    /// Simulated cycles the measured phase took.
    pub cycles: u64,
    /// Page faults raised during the measured phase.
    pub faults: u64,
    /// Span breakdown of the measured phase (kinds with activity only).
    pub spans: Vec<SpanLine>,
}

impl WorkloadPerf {
    /// Cycles per operation.
    pub fn cycles_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.ops as f64
    }

    /// Faults per operation.
    pub fn fault_rate(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.faults as f64 / self.ops as f64
    }
}

/// The full report (`BENCH_PR4.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Scale the suite ran at.
    pub scale: u32,
    /// All workloads, fixed order.
    pub workloads: Vec<WorkloadPerf>,
}

/// Snapshot of the per-kind span aggregates, for measuring deltas around
/// a timed phase.
type SpanSnap = [(u64, u64); autarky::telemetry::SPAN_KINDS];

fn span_snap(world: &World) -> SpanSnap {
    let mut snap = [(0u64, 0u64); autarky::telemetry::SPAN_KINDS];
    for (i, &kind) in SpanKind::ALL.iter().enumerate() {
        let agg = world.rt.telemetry.span_agg(kind);
        snap[i] = (agg.count, agg.total_cycles);
    }
    snap
}

fn span_delta(world: &World, before: &SpanSnap) -> Vec<SpanLine> {
    SpanKind::ALL
        .iter()
        .enumerate()
        .filter_map(|(i, &kind)| {
            let agg = world.rt.telemetry.span_agg(kind);
            let count = agg.count - before[i].0;
            let cycles = agg.total_cycles - before[i].1;
            (count > 0).then_some(SpanLine {
                name: kind.name(),
                count,
                cycles,
            })
        })
        .collect()
}

/// Measure one timed phase: runs `phase`, returns the workload record.
fn measure_phase(
    name: &'static str,
    ops: u64,
    world: &mut World,
    phase: impl FnOnce(&mut World),
) -> WorkloadPerf {
    let faults0 = world.os.machine.stats().faults;
    let spans0 = span_snap(world);
    let t0 = world.now();
    phase(world);
    let cycles = world.now() - t0;
    let faults = world.os.machine.stats().faults - faults0;
    let spans = span_delta(world, &spans0);
    WorkloadPerf {
        name,
        ops,
        cycles,
        faults,
        spans,
    }
}

/// Fig-5-shaped paging microbenchmark: batch-16 evictions, each page
/// refetched by an individual fault (cycles per fault round-trip).
pub fn measure_paging(scale: u32) -> WorkloadPerf {
    let iters = 20 * scale as u64;
    let (mut world, mut heap) = SystemBuilder::new(
        "perf-paging",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    )
    .epc_pages(4096)
    .heap_pages(256)
    .build()
    .expect("paging system");
    let ptr = heap
        .alloc(&mut world, (BATCH as usize) * PAGE_SIZE)
        .expect("alloc");
    heap.write(&mut world, ptr, &[0xA5u8; PAGE_SIZE])
        .expect("touch");
    let first = Vpn(ptr.0 >> 12);
    let pages: Vec<Vpn> = (0..BATCH).map(|i| Vpn(first.0 + i)).collect();
    measure_phase("paging", iters * BATCH, &mut world, |world| {
        for _ in 0..iters {
            world.rt.evict_pages(&mut world.os, &pages).expect("evict");
            for &vpn in &pages {
                let p = autarky::workloads::Ptr(vpn.0 << 12);
                heap.read(world, p, &mut [0u8; 1]).expect("fetch");
            }
        }
    })
}

/// Table-2-shaped spell check: dictionary lookups under a self-paging
/// budget (cycles per checked word).
pub fn measure_spell(scale: u32) -> WorkloadPerf {
    // Sized so the dictionary overflows the resident budget, so
    // lookups actually page (a zero-fault spell run would gate nothing).
    const DICT_WORDS: usize = 1500;
    let queries = 120 * scale as usize;
    let (mut world, mut heap) = SystemBuilder::new(
        "perf-spell",
        Profile::Clusters {
            pages_per_cluster: 10,
        },
    )
    .epc_pages(4096)
    .heap_pages(1024)
    .budget_pages(16)
    .build()
    .expect("spell system");
    let dictionary = Dictionary::load(&mut world, &mut heap, "en", DICT_WORDS).expect("dict");
    let words = synth_wordlist("en", DICT_WORDS);
    measure_phase("spell", queries as u64, &mut world, |world| {
        for i in 0..queries {
            let word = &words[(i * 7) % words.len()];
            dictionary.check(world, &mut heap, word).expect("check");
        }
    })
}

/// Fig-8-shaped key-value store on the cached-ORAM backend (cycles per
/// GET).
pub fn measure_kvstore(scale: u32) -> WorkloadPerf {
    const ITEMS: u64 = 128;
    const VALUE_SIZE: usize = 512;
    let gets = 96 * scale as u64;
    let (mut world, mut heap) = SystemBuilder::new(
        "perf-kvstore",
        Profile::CachedOram {
            capacity_pages: 512,
            cache_pages: 24,
        },
    )
    .epc_pages(4096)
    .heap_pages(1024)
    .build()
    .expect("kvstore system");
    let mut store = KvStore::new(
        &mut world,
        &mut heap,
        ITEMS,
        VALUE_SIZE,
        ItemClustering::None,
    )
    .expect("store");
    store.load(&mut world, &mut heap, ITEMS).expect("load");
    measure_phase("kvstore", gets, &mut world, |world| {
        for i in 0..gets {
            let key = (i * 7) % ITEMS;
            store
                .get(world, &mut heap, key)
                .expect("get")
                .expect("present");
        }
    })
}

/// FreeType-shaped glyph rendering with everything pinned: the zero-fault
/// reference point (cycles per glyph).
pub fn measure_font(scale: u32) -> WorkloadPerf {
    let glyphs = 400 * scale as usize;
    let (mut world, mut heap) = SystemBuilder::new("perf-font", Profile::PinAll)
        .epc_pages(4096)
        .heap_pages(256)
        .code_pages(24)
        .build()
        .expect("font system");
    let mut font = FontRenderer::new(&mut world, &mut heap, 64).expect("font");
    let text: String = (0..glyphs)
        .map(|k| (b'a' + (k % 26) as u8) as char)
        .collect();
    measure_phase("font", glyphs as u64, &mut world, |world| {
        font.render_text(world, &mut heap, &text).expect("render");
    })
}

/// Stable names of the perf-suite workloads, in suite order (the
/// campaign runner's bench axis vocabulary).
pub const WORKLOAD_NAMES: [&str; 4] = ["paging", "spell", "kvstore", "font"];

/// Measure one suite workload by name; `None` for names outside
/// [`WORKLOAD_NAMES`].
pub fn measure_one(name: &str, scale: u32) -> Option<WorkloadPerf> {
    match name {
        "paging" => Some(measure_paging(scale)),
        "spell" => Some(measure_spell(scale)),
        "kvstore" => Some(measure_kvstore(scale)),
        "font" => Some(measure_font(scale)),
        _ => None,
    }
}

/// Look up one workload's committed cycles/op in a baseline written by
/// [`PerfReport::to_json`].
pub fn baseline_cycles_per_op(baseline_json: &str, name: &str) -> Option<f64> {
    parse_baseline(baseline_json)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
}

/// Run the whole suite.
pub fn run_suite(scale: u32) -> PerfReport {
    PerfReport {
        scale,
        workloads: vec![
            measure_paging(scale),
            measure_spell(scale),
            measure_kvstore(scale),
            measure_font(scale),
        ],
    }
}

impl PerfReport {
    /// Serialize as JSON (stable key order, one key per line — the format
    /// [`parse_baseline`] reads).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
            out.push_str(&format!("      \"ops\": {},\n", w.ops));
            out.push_str(&format!("      \"cycles\": {},\n", w.cycles));
            out.push_str(&format!(
                "      \"cycles_per_op\": {:.3},\n",
                w.cycles_per_op()
            ));
            out.push_str(&format!("      \"faults\": {},\n", w.faults));
            out.push_str(&format!("      \"fault_rate\": {:.6},\n", w.fault_rate()));
            out.push_str("      \"spans\": [\n");
            for (j, s) in w.spans.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"name\": \"{}\", \"count\": {}, \"cycles\": {}}}{}\n",
                    s.name,
                    s.count,
                    s.cycles,
                    if j + 1 < w.spans.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.workloads.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render as a markdown table (the CI artifact).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# PR4 perf report\n\n");
        out.push_str(&format!("Scale: {}\n\n", self.scale));
        out.push_str("| workload | ops | cycles/op | fault rate | top span (count, cycles) |\n");
        out.push_str("|---|---|---|---|---|\n");
        for w in &self.workloads {
            let top = w
                .spans
                .iter()
                .max_by_key(|s| s.cycles)
                .map(|s| format!("{} ({}, {})", s.name, s.count, s.cycles))
                .unwrap_or_else(|| "-".to_owned());
            out.push_str(&format!(
                "| {} | {} | {:.1} | {:.4} | {} |\n",
                w.name,
                w.ops,
                w.cycles_per_op(),
                w.fault_rate(),
                top
            ));
        }
        out
    }
}

/// Parse `(name, cycles_per_op)` pairs out of a baseline file written by
/// [`PerfReport::to_json`]. Line-oriented: exactly the writer's format.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in json.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix('"').map(|s| s.to_owned());
        } else if let Some(rest) = t.strip_prefix("\"cycles_per_op\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.parse::<f64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One human-readable line per compared workload.
    pub lines: Vec<String>,
    /// Workloads over tolerance (empty = gate passes).
    pub regressions: Vec<String>,
}

/// Compare a fresh report against a committed baseline. `tolerance` is a
/// fraction (0.10 = fail on >10% cycles/op growth). Improvements and new
/// workloads never fail; a workload that *disappeared* does.
pub fn compare(current: &PerfReport, baseline_json: &str, tolerance: f64) -> Comparison {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (name, base) in parse_baseline(baseline_json) {
        match current.workloads.iter().find(|w| w.name == name) {
            Some(w) if base > 0.0 => {
                let cur = w.cycles_per_op();
                let delta = cur / base - 1.0;
                lines.push(format!(
                    "{name}: {base:.1} -> {cur:.1} cycles/op ({:+.2}%)",
                    delta * 100.0
                ));
                if delta > tolerance {
                    regressions.push(format!(
                        "{name}: +{:.2}% > {:.1}% tolerance",
                        delta * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
            Some(_) => lines.push(format!("{name}: baseline is zero, skipped")),
            None => regressions.push(format!("{name}: present in baseline, missing from run")),
        }
    }
    Comparison { lines, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_reports_and_self_compares_clean() {
        let report = run_suite(1);
        assert_eq!(report.workloads.len(), 4);
        let paging = &report.workloads[0];
        assert_eq!(paging.name, "paging");
        assert!(paging.faults > 0, "the paging workload must fault");
        assert!(
            paging.spans.iter().any(|s| s.name == "fault_handler"),
            "fault handler spans recorded: {:?}",
            paging.spans
        );
        let font = report.workloads.iter().find(|w| w.name == "font").unwrap();
        assert_eq!(font.faults, 0, "pinned font run is fault-free");

        let json = report.to_json();
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 4);
        let cmp = compare(&report, &json, 0.10);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert_eq!(cmp.lines.len(), 4);

        let md = report.to_markdown();
        assert!(md.contains("| paging |"));
    }

    #[test]
    fn compare_flags_regressions_and_missing_workloads() {
        let report = PerfReport {
            scale: 1,
            workloads: vec![WorkloadPerf {
                name: "paging",
                ops: 10,
                cycles: 2000,
                faults: 10,
                spans: Vec::new(),
            }],
        };
        // Baseline has paging at 100 cycles/op (current is 200) and a
        // workload the current run no longer produces.
        let baseline = "{\n  \"workloads\": [\n    {\n      \"name\": \"paging\",\n      \
                        \"cycles_per_op\": 100.000,\n    },\n    {\n      \"name\": \"gone\",\n      \
                        \"cycles_per_op\": 5.000,\n    }\n  ]\n}\n";
        let cmp = compare(&report, baseline, 0.10);
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("paging"));
        assert!(cmp.regressions[1].contains("gone"));

        // Within tolerance passes.
        let ok = compare(
            &report,
            "{\n\"name\": \"paging\",\n\"cycles_per_op\": 195.0,\n}",
            0.10,
        );
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
    }
}
