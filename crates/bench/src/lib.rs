//! Benchmark harness regenerating every table and figure of the Autarky
//! paper's evaluation (§7).
//!
//! Each experiment is a library module (so unit tests can pin the shapes)
//! plus a binary that prints the paper-style rows:
//!
//! | Module / binary | Paper artifact |
//! |---|---|
//! | [`fig5`] / `fig5` | Figure 5 — paging latency breakdown, SGXv1 vs SGXv2 |
//! | [`fig6`] / `fig6` | Figure 6 — cluster size vs ORAM on uthash |
//! | [`fig7`] / `fig7` | Figure 7 — rate-limited paging, 14 Phoenix/PARSEC apps |
//! | [`fig8`] / `fig8` | Figure 8 — Memcached under four paging policies |
//! | [`table2`] / `table2` | Table 2 — libjpeg / Hunspell / FreeType end-to-end |
//! | [`nbench_ov`] / `nbench_overhead` | §7 — TLB-fill check overhead on nbench |
//! | [`perf`] / `telemetry-report` | PR4 perf pipeline — `BENCH_PR4.json` + baseline gate |
//!
//! All binaries accept `--scale N` to run sizes closer to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod nbench_ov;
pub mod perf;
pub mod table2;
pub mod util;
