//! Figure 6: effect of cluster size on hash-table performance, vs cached
//! and uncached ORAM.
//!
//! The paper populates a uthash table (431 MB of 256-byte items, ≤10 per
//! bucket), then measures random-read throughput as a function of pages
//! per cluster (1–100), before and after rehashing, and compares against
//! the cached-ORAM paging scheme (128 MB EPC cache) and the pre-Autarky
//! uncached ORAM (232× slower; did not finish the full run in 24 h, so
//! the paper measured 100 random entries — we do the same).
//!
//! Shapes to reproduce: throughput inversely proportional to cluster
//! size; clusters and cached ORAM break even around 10 pages/cluster;
//! rehashing improves cluster throughput ≈1.5×; 1-page clusters ≈1.9×
//! slower than unprotected.

use autarky::prelude::*;
use autarky::workloads::uthash::EncHashTable;
use autarky::workloads::ycsb::{Distribution, KeyGenerator};
use autarky::{Profile, SystemBuilder};

use crate::util::ops_per_sec;

/// Scaled experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig6Params {
    /// Items loaded into the table.
    pub items: u64,
    /// Item payload size (paper: 256 B).
    pub item_size: usize,
    /// Max items per bucket before rehash (paper: 10).
    pub max_chain: u64,
    /// Resident-page budget for self-paging (the scaled "EPC share").
    pub budget_pages: usize,
    /// Random reads measured per configuration.
    pub reads: u64,
    /// Reads for the uncached-ORAM point (the paper used 100).
    pub uncached_reads: u64,
}

impl Fig6Params {
    /// Parameters scaled by `scale` (scale 1 ≈ 1/64 of the paper's sizes).
    pub fn scaled(scale: u32) -> Self {
        let s = scale as u64;
        Self {
            items: 12_000 * s,
            item_size: 256,
            max_chain: 10,
            // ~30% of the data fits, like the paper's 128 MB cache / 431 MB
            // table configuration.
            budget_pages: (280 * s) as usize,
            reads: 1_500 * s,
            uncached_reads: 100,
        }
    }

    /// Pages the table data will roughly occupy.
    pub fn data_pages(&self) -> usize {
        ((self.items * (16 + self.item_size as u64)) as usize / PAGE_SIZE) * 2
    }
}

/// One measured series point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label.
    pub series: String,
    /// Pages per cluster (0 for non-cluster series).
    pub cluster_pages: usize,
    /// Requests per (simulated) second.
    pub throughput: f64,
}

fn populate(world: &mut World, heap: &mut EncHeap, params: &Fig6Params) -> EncHashTable {
    let nbuckets = (params.items / params.max_chain)
        .next_power_of_two()
        .max(64);
    let mut table = EncHashTable::new(world, heap, nbuckets, params.item_size, params.max_chain)
        .expect("table");
    let value = vec![0x5Au8; params.item_size];
    for key in 0..params.items {
        table.insert(world, heap, key, &value).expect("insert");
    }
    table
}

fn measure_reads(
    world: &mut World,
    heap: &mut EncHeap,
    table: &EncHashTable,
    params: &Fig6Params,
    reads: u64,
) -> f64 {
    let mut generator = KeyGenerator::new(params.items, Distribution::Uniform, 7);
    let t0 = world.now();
    for _ in 0..reads {
        let key = generator.next_key();
        let hit = table.get(world, heap, key).expect("get");
        assert!(hit.is_some(), "loaded key must be present");
        world.progress(1);
    }
    ops_per_sec(reads, world.now() - t0)
}

/// Cluster-size series (optionally measuring again after a rehash).
pub fn run_clusters(params: &Fig6Params, cluster_sizes: &[usize]) -> Vec<(Point, Point)> {
    let mut out = Vec::new();
    for &pages in cluster_sizes {
        let (mut world, mut heap) = SystemBuilder::new(
            "fig6-clusters",
            Profile::Clusters {
                pages_per_cluster: pages,
            },
        )
        .epc_pages(params.data_pages() * 2 + 4096)
        .heap_pages(params.data_pages() * 3)
        .budget_pages(params.budget_pages)
        .build()
        .expect("system");
        let mut table = populate(&mut world, &mut heap, params);
        let before = Point {
            series: "clusters".into(),
            cluster_pages: pages,
            throughput: measure_reads(&mut world, &mut heap, &table, params, params.reads),
        };
        // Rehash shortens chains; throughput should improve ≈1.5×.
        table.rehash(&mut world, &mut heap).expect("rehash");
        let after = Point {
            series: "clusters-rehashed".into(),
            cluster_pages: pages,
            throughput: measure_reads(&mut world, &mut heap, &table, params, params.reads),
        };
        out.push((before, after));
    }
    out
}

/// Cached-ORAM point (constant across the cluster-size axis).
pub fn run_cached_oram(params: &Fig6Params) -> Point {
    let capacity = (params.data_pages() * 4) as u64;
    let (mut world, mut heap) = SystemBuilder::new(
        "fig6-oram",
        Profile::CachedOram {
            capacity_pages: capacity,
            cache_pages: params.budget_pages,
        },
    )
    .epc_pages(params.budget_pages + 4096)
    .heap_pages(64)
    .build()
    .expect("system");
    let table = populate(&mut world, &mut heap, params);
    Point {
        series: "cached-oram".into(),
        cluster_pages: 0,
        throughput: measure_reads(&mut world, &mut heap, &table, params, params.reads),
    }
}

/// Uncached-ORAM point (the pre-Autarky best case: few random reads on a
/// pre-populated, contention-free table).
pub fn run_uncached_oram(params: &Fig6Params) -> Point {
    let capacity = (params.data_pages() * 4) as u64;
    let (mut world, mut heap) = SystemBuilder::new(
        "fig6-uncached",
        Profile::UncachedOram {
            capacity_pages: capacity,
        },
    )
    .epc_pages(params.budget_pages + 4096)
    .heap_pages(64)
    .build()
    .expect("system");
    let table = populate(&mut world, &mut heap, params);
    Point {
        series: "uncached-oram".into(),
        cluster_pages: 0,
        throughput: measure_reads(&mut world, &mut heap, &table, params, params.uncached_reads),
    }
}

/// Unprotected baseline (for the 1.9× comparison against 1-page clusters).
pub fn run_unprotected(params: &Fig6Params) -> Point {
    let (mut world, mut heap) = SystemBuilder::new("fig6-base", Profile::Unprotected)
        .epc_pages(params.data_pages() * 2 + 4096)
        .heap_pages(params.data_pages() * 3)
        .build()
        .expect("system");
    world
        .os
        .set_epc_quota(world.eid, params.budget_pages + 64)
        .expect("quota");
    let table = populate(&mut world, &mut heap, params);
    Point {
        series: "unprotected".into(),
        cluster_pages: 0,
        throughput: measure_reads(&mut world, &mut heap, &table, params, params.reads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig6Params {
        Fig6Params {
            items: 1500,
            item_size: 256,
            max_chain: 10,
            budget_pages: 64,
            reads: 200,
            uncached_reads: 10,
        }
    }

    #[test]
    fn throughput_decreases_with_cluster_size() {
        let params = tiny();
        let series = run_clusters(&params, &[1, 20]);
        assert!(
            series[0].0.throughput > series[1].0.throughput,
            "1-page clusters {} must beat 20-page clusters {}",
            series[0].0.throughput,
            series[1].0.throughput
        );
    }

    #[test]
    fn rehash_improves_throughput() {
        let params = tiny();
        let series = run_clusters(&params, &[10]);
        let (before, after) = &series[0];
        assert!(
            after.throughput > before.throughput,
            "rehash {} must beat pre-rehash {}",
            after.throughput,
            before.throughput
        );
    }

    #[test]
    fn uncached_oram_is_far_slower_than_cached() {
        let params = tiny();
        let cached = run_cached_oram(&params);
        let uncached = run_uncached_oram(&params);
        assert!(
            cached.throughput > uncached.throughput * 20.0,
            "cached {} vs uncached {} (paper: 232×)",
            cached.throughput,
            uncached.throughput
        );
    }

    #[test]
    fn unprotected_beats_one_page_clusters() {
        let params = tiny();
        let base = run_unprotected(&params);
        let clusters = run_clusters(&params, &[1]);
        assert!(
            base.throughput > clusters[0].0.throughput,
            "unprotected {} vs 1-page clusters {}",
            base.throughput,
            clusters[0].0.throughput
        );
    }
}
