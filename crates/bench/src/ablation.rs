//! Ablations of Autarky's design choices (DESIGN.md §4):
//!
//! * **batched driver calls** — `ay_fetch_pages`/`ay_evict_pages` take
//!   page arrays "to minimize system calls and enclave crossing overhead"
//!   (§5.2.1); how much does batching buy?
//! * **exitless host calls** — the prototype uses exitless calls for all
//!   driver syscalls (§6); what would ring-switch syscalls cost?
//! * **FIFO vs clock eviction** — blocking A/D bits forces the runtime to
//!   FIFO (§5.1.4); how many extra faults does losing the clock policy
//!   cost on a skewed workload?

use autarky::prelude::*;
use autarky::workloads::uthash::hash64;
use autarky::{Profile, SystemBuilder};

/// Per-page cycles of a fetch+evict round as a function of batch size.
pub fn batching(batch_sizes: &[usize], rounds: u64) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for &batch in batch_sizes {
        let (mut world, mut heap) = SystemBuilder::new(
            "abl-batch",
            Profile::Clusters {
                pages_per_cluster: batch,
            },
        )
        .epc_pages(2048)
        .heap_pages(256)
        .build()
        .expect("system");
        let ptr = heap.alloc(&mut world, batch * PAGE_SIZE).expect("alloc");
        let pages: Vec<Vpn> = (0..batch as u64).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
        heap.write_u64(&mut world, ptr, 1).expect("touch");
        // Warm.
        world.rt.evict_pages(&mut world.os, &pages).expect("evict");
        heap.read_u64(&mut world, ptr).expect("fetch");
        let t0 = world.now();
        for _ in 0..rounds {
            world.rt.evict_pages(&mut world.os, &pages).expect("evict");
            heap.read_u64(&mut world, ptr).expect("fetch whole cluster");
        }
        out.push((batch, (world.now() - t0) / (rounds * batch as u64)));
    }
    out
}

/// Total cycles of a paging-heavy run with exitless calls vs ring-switch
/// syscalls.
pub fn exitless_vs_syscall(rounds: u64) -> (u64, u64) {
    let run = |exitless: bool| {
        let (mut world, mut heap) = SystemBuilder::new(
            "abl-exitless",
            Profile::Clusters {
                pages_per_cluster: 1,
            },
        )
        .epc_pages(2048)
        .heap_pages(64)
        .build()
        .expect("system");
        world.os.exitless = exitless;
        let ptr = heap.alloc(&mut world, 16 * PAGE_SIZE).expect("alloc");
        let pages: Vec<Vpn> = (0..16u64).map(|i| Vpn((ptr.0 >> 12) + i)).collect();
        heap.write_u64(&mut world, ptr, 1).expect("touch");
        let t0 = world.now();
        for _ in 0..rounds {
            world.rt.evict_pages(&mut world.os, &pages).expect("evict");
            for &vpn in &pages {
                heap.read_u64(&mut world, Ptr(vpn.0 << 12)).expect("fetch");
            }
        }
        world.now() - t0
    };
    (run(true), run(false))
}

/// Fault counts of the same skewed access sequence under the baseline's
/// clock eviction (OS-managed, uses A bits) and Autarky's FIFO
/// (self-paging, A bits unavailable). Returns `(clock_faults,
/// fifo_faults)` — the cost of §5.1.4's A/D-bit blocking.
pub fn fifo_vs_clock(accesses: u64) -> (u64, u64) {
    let data_pages = 128u64;
    let budget = 96usize;
    // 80% of accesses hit a 32-page hot set; clock should learn it.
    let page_for = |i: u64| -> u64 {
        let h = hash64(i);
        if h % 10 < 8 {
            h % 32
        } else {
            32 + h % (data_pages - 32)
        }
    };

    // Baseline: OS-managed pages, clock eviction over A bits.
    let (mut world, mut heap) = SystemBuilder::new("abl-clock", Profile::Unprotected)
        .epc_pages(2048)
        .heap_pages(data_pages as usize + 16)
        .build()
        .expect("system");
    let ptr = heap
        .alloc(&mut world, data_pages as usize * PAGE_SIZE)
        .expect("alloc");
    for i in 0..data_pages {
        heap.write_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64), i)
            .expect("touch");
    }
    world.os.set_epc_quota(world.eid, budget).expect("quota");
    let base_faults = world.os.machine.stats().faults;
    for i in 0..accesses {
        heap.read_u64(&mut world, ptr.offset(page_for(i) * PAGE_SIZE as u64))
            .expect("read");
    }
    let clock_faults = world.os.machine.stats().faults - base_faults;

    // Autarky: enclave-managed pages, FIFO.
    let (mut world, mut heap) = SystemBuilder::new(
        "abl-fifo",
        Profile::Clusters {
            pages_per_cluster: 1,
        },
    )
    .epc_pages(2048)
    .heap_pages(data_pages as usize + 16)
    .budget_pages(budget)
    .build()
    .expect("system");
    let ptr = heap
        .alloc(&mut world, data_pages as usize * PAGE_SIZE)
        .expect("alloc");
    for i in 0..data_pages {
        heap.write_u64(&mut world, ptr.offset(i * PAGE_SIZE as u64), i)
            .expect("touch");
    }
    let base_faults = world.os.machine.stats().faults;
    for i in 0..accesses {
        heap.read_u64(&mut world, ptr.offset(page_for(i) * PAGE_SIZE as u64))
            .expect("read");
    }
    let fifo_faults = world.os.machine.stats().faults - base_faults;
    (clock_faults, fifo_faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_per_page_cost() {
        let results = batching(&[1, 16], 8);
        let (_, single) = results[0];
        let (_, batched) = results[1];
        assert!(
            batched < single,
            "batch-16 per-page {batched} must beat single-page {single}"
        );
    }

    #[test]
    fn exitless_calls_are_cheaper() {
        let (exitless, syscall) = exitless_vs_syscall(8);
        assert!(
            exitless < syscall,
            "exitless {exitless} vs syscall {syscall}"
        );
    }

    #[test]
    fn clock_beats_fifo_on_skewed_access() {
        let (clock, fifo) = fifo_vs_clock(2000);
        assert!(
            fifo >= clock,
            "losing A/D bits cannot *reduce* faults: clock {clock}, fifo {fifo}"
        );
    }
}
