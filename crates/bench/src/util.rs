//! Shared helpers for the figure/table harnesses.

use autarky::prelude::CLOCK_HZ;

/// Convert a cycle count into seconds at the simulated clock rate.
pub fn secs(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ as f64
}

/// Operations per second given total cycles.
pub fn ops_per_sec(ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    ops as f64 / secs(cycles)
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Parse `--scale N` from argv (default 1, minimum 1). Larger scales run
/// bigger workloads closer to the paper's absolute sizes.
pub fn parse_scale() -> u32 {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            return window[1].parse().unwrap_or(1).max(1);
        }
    }
    1
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_never_zero() {
        // `--scale 0` must not produce a zero that divides iteration
        // counts (regression: fig5 panicked on division by zero).
        assert_eq!("0".parse::<u32>().unwrap_or(1).max(1), 1);
        assert_eq!("abc".parse::<u32>().unwrap_or(1).max(1), 1);
        assert_eq!("3".parse::<u32>().unwrap_or(1).max(1), 3);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ops_per_sec_matches_clock() {
        assert!((ops_per_sec(3_000_000_000, CLOCK_HZ) - 3_000_000_000.0).abs() < 1.0);
        assert_eq!(ops_per_sec(5, 0), 0.0);
    }
}
