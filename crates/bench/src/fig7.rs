//! Figure 7: rate-limited demand paging on 14 Phoenix + PARSEC
//! applications.
//!
//! The paper reduces EPC to ~100 MB so the applications page, enables the
//! bounded-leakage policy with a limit tuned to avoid false positives,
//! and reports per-app slowdown relative to the vanilla-SGX baseline plus
//! the page-fault rate. Expected shape: ~6% mean slowdown, strongly
//! correlated with fault rate (canneal/dedup/x264 highest); ~2% with the
//! AEX-elision hardware variant.

use autarky::workloads::apps::{fig7_apps, App};
use autarky::{Profile, SystemBuilder};

use crate::util::secs;

/// One application's measurement.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application name.
    pub name: &'static str,
    /// Protected-over-baseline run-time ratio.
    pub slowdown: f64,
    /// Page faults per simulated second under the protected run.
    pub pf_rate: f64,
    /// Checksum equality between runs (sanity).
    pub checksums_match: bool,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig7Params {
    /// Pages of EPC available to the app's data ("~100 MB", scaled).
    pub epc_budget_pages: usize,
    /// App data footprint in pages (sized to exceed the budget).
    pub footprint_pages: usize,
}

impl Fig7Params {
    /// Scale 1 ≈ 1/64 of the paper's sizes.
    pub fn scaled(scale: u32) -> Self {
        let s = scale as usize;
        Self {
            epc_budget_pages: 400 * s,
            footprint_pages: 520 * s,
        }
    }
}

fn run_once(app: &App, params: &Fig7Params, protected: bool, elide_aex: bool) -> (u64, u64, u64) {
    let profile = if protected {
        Profile::RateLimited {
            max_faults_per_progress: 1e6,
            burst: 1 << 40,
        }
    } else {
        Profile::Unprotected
    };
    let (mut world, mut heap) = SystemBuilder::new("fig7", profile)
        .epc_pages(params.footprint_pages * 2 + 4096)
        .heap_pages(params.footprint_pages * 2)
        .budget_pages(params.epc_budget_pages)
        .elide_aex(elide_aex)
        .build()
        .expect("system");
    if !protected {
        // Baseline: cap the OS quota to the same EPC share the protected
        // run's self-paging budget grants, so both configurations page
        // the same working set.
        world
            .os
            .set_epc_quota(world.eid, params.epc_budget_pages)
            .expect("quota");
    }
    let t0 = world.now();
    let checksum = (app.run)(&mut world, &mut heap, params.footprint_pages)
        .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    let cycles = world.now() - t0;
    let faults = world.os.machine.stats().faults;
    (checksum, cycles, faults)
}

/// Measure one app.
pub fn measure_app(app: &App, params: &Fig7Params, elide_aex: bool) -> AppRow {
    let (sum_base, cycles_base, _) = run_once(app, params, false, false);
    let (sum_prot, cycles_prot, faults) = run_once(app, params, true, elide_aex);
    AppRow {
        name: app.name,
        slowdown: cycles_prot as f64 / cycles_base as f64,
        pf_rate: faults as f64 / secs(cycles_prot),
        checksums_match: sum_base == sum_prot,
    }
}

/// Measure all 14 applications.
pub fn run_all(params: &Fig7Params, elide_aex: bool) -> Vec<AppRow> {
    fig7_apps()
        .iter()
        .map(|app| measure_app(app, params, elide_aex))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::geomean;

    fn tiny() -> Fig7Params {
        Fig7Params {
            epc_budget_pages: 96,
            footprint_pages: 128,
        }
    }

    #[test]
    fn slowdowns_are_modest_and_results_match() {
        let params = tiny();
        let apps = fig7_apps();
        // A representative subset keeps the test fast.
        let subset: Vec<&App> = apps
            .iter()
            .filter(|a| ["linreg", "canneal", "bscholes"].contains(&a.name))
            .collect();
        let rows: Vec<AppRow> = subset
            .iter()
            .map(|app| measure_app(app, &params, false))
            .collect();
        for row in &rows {
            assert!(
                row.checksums_match,
                "{}: protected run changed the result",
                row.name
            );
            assert!(
                row.slowdown < 2.0,
                "{}: slowdown {} out of range",
                row.name,
                row.slowdown
            );
        }
        let mean = geomean(&rows.iter().map(|r| r.slowdown).collect::<Vec<_>>());
        assert!(mean < 1.6, "geomean slowdown {mean}");
    }

    #[test]
    fn canneal_pages_more_than_bscholes() {
        // The paper's fault-rate ordering: random-access canneal far above
        // streaming/compute-bound blackscholes.
        let params = tiny();
        let apps = fig7_apps();
        let canneal = apps.iter().find(|a| a.name == "canneal").expect("app");
        let bscholes = apps.iter().find(|a| a.name == "bscholes").expect("app");
        let row_c = measure_app(canneal, &params, false);
        let row_b = measure_app(bscholes, &params, false);
        assert!(
            row_c.pf_rate > row_b.pf_rate,
            "canneal {} vs bscholes {}",
            row_c.pf_rate,
            row_b.pf_rate
        );
    }
}
