//! Ablation study of Autarky's design choices: driver-call batching,
//! exitless host calls, and the FIFO-for-clock eviction trade.

use autarky_bench::ablation::{batching, exitless_vs_syscall, fifo_vs_clock};
use autarky_bench::util::{parse_scale, print_table};

fn main() {
    let scale = parse_scale() as u64;
    println!("Ablation: Autarky design choices\n");

    println!("1. Batched driver calls (per-page fetch+evict cycles):");
    let rows: Vec<Vec<String>> = batching(&[1, 2, 4, 8, 16, 32, 64], 20 * scale)
        .into_iter()
        .map(|(batch, cycles)| vec![batch.to_string(), cycles.to_string()])
        .collect();
    print_table(&["batch size", "cycles/page"], &rows);

    println!("\n2. Exitless host calls vs ring-switch syscalls:");
    let (exitless, syscall) = exitless_vs_syscall(50 * scale);
    println!("  exitless : {exitless} cycles");
    println!(
        "  syscall  : {syscall} cycles ({:+.1}%)",
        (syscall as f64 / exitless as f64 - 1.0) * 100.0
    );

    println!("\n3. FIFO (A/D bits blocked, §5.1.4) vs clock eviction, 80/20 skew:");
    let (clock, fifo) = fifo_vs_clock(5_000 * scale);
    println!("  clock (baseline OS) : {clock} faults");
    println!(
        "  FIFO (Autarky)      : {fifo} faults ({:.2}x — the price of closing the A/D channel)",
        fifo as f64 / clock.max(1) as f64
    );
}
