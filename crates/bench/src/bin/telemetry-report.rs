//! Generate `BENCH_PR4.json` (+ optional markdown) from the telemetry
//! perf suite and optionally gate against a committed baseline.
//!
//! ```text
//! telemetry-report [--scale N] [--out PATH] [--markdown PATH]
//!                  [--baseline PATH] [--tolerance PCT]
//! ```
//!
//! With `--baseline`, exits non-zero if any workload's cycles/op grew by
//! more than the tolerance (default 10%). All numbers are simulated
//! cycles, so runs are bit-stable across machines.

use std::process::ExitCode;

use autarky_bench::harness::WallTimer;
use autarky_bench::perf::{compare, run_suite};

fn die(msg: &str) -> ! {
    eprintln!("telemetry-report: {msg}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1u32;
    let mut out: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"))
                    .max(1);
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                );
            }
            "--markdown" => {
                i += 1;
                markdown = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--markdown needs a path")),
                );
            }
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                );
            }
            "--tolerance" => {
                i += 1;
                let pct: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a percentage"));
                tolerance = pct / 100.0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: telemetry-report [--scale N] [--out PATH] [--markdown PATH] \
                     [--baseline PATH] [--tolerance PCT]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let timer = WallTimer::new();
    let report = run_suite(scale);
    let total_ops: u64 = report.workloads.iter().map(|w| w.ops).sum();
    let total_cycles: u64 = report.workloads.iter().map(|w| w.cycles).sum();
    let wall = timer.finish(total_ops, total_cycles);
    // Host-side simulator speed: printed only, never written into the
    // JSON/markdown artifacts (those stay bit-stable across machines).
    println!("wall clock: {}", wall.render());
    let json = report.to_json();
    match &out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &markdown {
        std::fs::write(path, report.to_markdown())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("wrote {path}");
    }

    if let Some(path) = &baseline {
        let base =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        let cmp = compare(&report, &base, tolerance);
        for line in &cmp.lines {
            println!("  {line}");
        }
        if !cmp.regressions.is_empty() {
            eprintln!(
                "REGRESSION ({} workloads over tolerance):",
                cmp.regressions.len()
            );
            for r in &cmp.regressions {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("baseline gate: PASS (tolerance {:.1}%)", tolerance * 100.0);
    }
    ExitCode::SUCCESS
}
