//! Regenerate Figure 7: rate-limited paging across the 14 Phoenix/PARSEC
//! applications (slowdown vs baseline + page-fault rate).

use autarky_bench::fig7::{run_all, Fig7Params};
use autarky_bench::util::{geomean, parse_scale, print_table};

fn main() {
    let scale = parse_scale();
    let params = Fig7Params::scaled(scale);
    println!("Figure 7: rate-limited paging for Phoenix and PARSEC");
    println!(
        "(EPC budget {} pages, footprints ~{} pages)\n",
        params.epc_budget_pages, params.footprint_pages
    );

    let with_aex = run_all(&params, false);
    let elided = run_all(&params, true);

    let mut rows = Vec::new();
    for (row, erow) in with_aex.iter().zip(&elided) {
        rows.push(vec![
            row.name.to_string(),
            format!("{:.3}", row.slowdown),
            format!("{:.3}", erow.slowdown),
            format!("{:.0}", row.pf_rate),
            if row.checksums_match {
                "ok".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    print_table(
        &[
            "app",
            "slowdown",
            "slowdown (elide AEX)",
            "PF rate (faults/s)",
            "result",
        ],
        &rows,
    );
    let mean = geomean(&with_aex.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    let mean_elided = geomean(&elided.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    println!();
    println!("  geomean slowdown            : {mean:.3}  (paper: ~1.06)");
    println!("  geomean slowdown, elide AEX : {mean_elided:.3}  (paper: ~1.02)");
}
