//! Regenerate Figure 5: paging latency breakdown using SGXv1/v2
//! instructions (cycles per page, eviction batched by 16).

use autarky::rt::PagingMechanism;
use autarky_bench::fig5::{measure, measure_elided_fault, measure_unprotected_fault, Breakdown};
use autarky_bench::util::{parse_scale, print_table};

fn row(b: &Breakdown) -> Vec<String> {
    vec![
        b.op.to_string(),
        b.mech.to_string(),
        b.preemption.to_string(),
        b.invocation.to_string(),
        b.runtime_overhead.to_string(),
        b.sgx_paging.to_string(),
        b.total().to_string(),
    ]
}

fn main() {
    let scale = parse_scale();
    let iters = 100 * scale as u64; // paper: 100k iterations
    println!("Figure 5: paging performance using SGXv1/v2 instructions");
    println!("(cycles per page, batch = 16, {iters} iterations)\n");

    let mut rows = Vec::new();
    for mech in [PagingMechanism::Sgx1, PagingMechanism::Sgx2] {
        let (fault, evict) = measure(mech, iters);
        rows.push(row(&fault));
        rows.push(row(&evict));
    }
    print_table(
        &[
            "op",
            "mech",
            "preempt(AEX+ERESUME)",
            "invoc(EENTER+EEXIT)",
            "autarky-overhead",
            "sgx-paging",
            "total",
        ],
        &rows,
    );

    let elided = measure_elided_fault(PagingMechanism::Sgx1, iters);
    let unprotected = measure_unprotected_fault(iters);
    println!();
    println!("AEX-elision optimization (per-page fault latency, SGXv1):");
    println!("  unprotected OS paging : {unprotected} cycles");
    println!("  Autarky, elided AEX   : {elided} cycles");
    println!(
        "  => secure paging {} than today's unprotected paging (paper §7.1)",
        if elided < unprotected {
            "FASTER"
        } else {
            "slower"
        }
    );
}
