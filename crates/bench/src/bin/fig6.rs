//! Regenerate Figure 6: effect of cluster size on hash-table performance
//! (uthash), against cached and uncached ORAM.

use autarky_bench::fig6::{
    run_cached_oram, run_clusters, run_uncached_oram, run_unprotected, Fig6Params,
};
use autarky_bench::util::{parse_scale, print_table};

fn main() {
    let scale = parse_scale();
    let params = Fig6Params::scaled(scale);
    println!("Figure 6: effect of cluster size on hash table performance");
    println!(
        "(uthash, {} items x {} B, budget {} pages, {} random reads)\n",
        params.items, params.item_size, params.budget_pages, params.reads
    );

    let cluster_sizes = [1usize, 2, 5, 10, 20, 50, 100];
    let series = run_clusters(&params, &cluster_sizes);
    let cached = run_cached_oram(&params);
    let uncached = run_uncached_oram(&params);
    let unprotected = run_unprotected(&params);

    let mut rows = Vec::new();
    for (before, after) in &series {
        rows.push(vec![
            format!("{}", before.cluster_pages),
            format!("{:.0}", before.throughput),
            format!("{:.0}", after.throughput),
            format!("{:.0}", cached.throughput),
        ]);
    }
    print_table(
        &[
            "pages/cluster",
            "clusters (req/s)",
            "after rehash (req/s)",
            "cached ORAM (req/s)",
        ],
        &rows,
    );
    println!();
    println!(
        "  unprotected baseline : {:>12.0} req/s",
        unprotected.throughput
    );
    println!("  cached ORAM          : {:>12.0} req/s", cached.throughput);
    println!(
        "  uncached ORAM        : {:>12.1} req/s  ({}x slower than cached; paper: 232x)",
        uncached.throughput,
        (cached.throughput / uncached.throughput).round()
    );
    let one_page = &series[0].0;
    println!(
        "  unprotected / 1-page clusters = {:.2}x (paper: 1.9x)",
        unprotected.throughput / one_page.throughput
    );
    // Break-even point vs cached ORAM.
    let breakeven = series
        .iter()
        .find(|(before, _)| before.throughput < cached.throughput)
        .map(|(b, _)| b.cluster_pages);
    match breakeven {
        Some(pages) => {
            println!("  clusters/ORAM break-even near {pages} pages/cluster (paper: ~10)")
        }
        None => println!("  clusters beat cached ORAM at every measured size"),
    }
}
