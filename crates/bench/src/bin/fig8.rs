//! Regenerate Figure 8: Memcached with Autarky's paging policies across
//! four request distributions.

use autarky_bench::fig8::{distributions, run_all, Config, Fig8Params};
use autarky_bench::util::{parse_scale, print_table};

fn main() {
    let scale = parse_scale();
    let params = Fig8Params::scaled(scale);
    println!("Figure 8: Memcached with Autarky's paging policies");
    println!(
        "({} items x {} B, budget {} pages, {} GETs per cell)\n",
        params.items, params.value_size, params.budget_pages, params.requests
    );

    let grid = run_all(&params);
    let mut rows = Vec::new();
    for ((label, _), cells) in distributions().iter().zip(&grid) {
        let mut row = vec![label.to_string()];
        for value in cells {
            row.push(format!("{value:.0}"));
        }
        // Normalized view: ORAM relative to baseline.
        row.push(format!("{:.2}x", cells[0] / cells[3]));
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("distribution".to_string())
        .chain(
            Config::all()
                .iter()
                .map(|c| format!("{} (req/s)", c.label())),
        )
        .chain(std::iter::once("base/ORAM".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);
    println!();
    println!("  paper shapes: rate-limit closest to baseline; clusters beat ORAM on");
    println!("  uniform; the ORAM gap narrows with skew (only ~1.6x on the hottest).");
}
