//! Regenerate the §7 architecture-changes overhead analysis: nbench with
//! datasets fitting in EPC, measuring the Autarky TLB-fill check.

use autarky_bench::nbench_ov::run_all;
use autarky_bench::util::{geomean, parse_scale, print_table};

fn main() {
    let scale = parse_scale();
    println!("nbench: overhead from the SGX architecture changes (no paging)");
    println!("(10-cycle accessed/dirty check per TLB fill, pessimistic)\n");

    let rows = run_all(scale);
    let mut table = Vec::new();
    for row in &rows {
        table.push(vec![
            row.name.to_string(),
            row.base_cycles.to_string(),
            row.protected_cycles.to_string(),
            row.tlb_fills.to_string(),
            format!("{:+.3}%", (row.slowdown - 1.0) * 100.0),
            format!("{:.4}%", row.analytical_overhead * 100.0),
        ]);
    }
    print_table(
        &[
            "kernel",
            "base cycles",
            "autarky cycles",
            "TLB fills",
            "measured",
            "analytical",
        ],
        &table,
    );
    let mean = geomean(&rows.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    println!();
    println!(
        "  geomean slowdown: {:+.3}%  (paper: +0.07%; T-SGX for comparison: +50%)",
        (mean - 1.0) * 100.0
    );
}
