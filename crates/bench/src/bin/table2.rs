//! Regenerate Table 2: end-to-end performance of applications using page
//! clusters (libjpeg, Hunspell, FreeType) under four variants.

use autarky_bench::table2::{run_all, Table2Params, Variant};
use autarky_bench::util::{parse_scale, print_table};

fn main() {
    let scale = parse_scale();
    let params = Table2Params::scaled(scale);
    println!("Table 2: end-to-end performance of applications using page clusters");
    println!(
        "(image {0}x{0}, {1} dictionaries x {2} words, {3} glyph ops)\n",
        params.image_side, params.dictionaries, params.words_per_dictionary, params.glyph_ops
    );

    let rows = run_all(&params);
    let mut table = Vec::new();
    for row in &rows {
        let base = row.throughput[0];
        let mut cells = vec![row.workload.to_string(), row.unit.to_string()];
        for (i, &value) in row.throughput.iter().enumerate() {
            if i == 0 {
                cells.push(format!("{value:.1}"));
            } else {
                cells.push(format!(
                    "{value:.1} ({:+.0}%)",
                    (value / base - 1.0) * 100.0
                ));
            }
        }
        cells.push(row.page_faults.to_string());
        cells.push(row.enclave_managed_pages.to_string());
        table.push(cells);
    }
    let headers: Vec<String> = ["workload", "unit"]
        .into_iter()
        .map(str::to_string)
        .chain(Variant::all().iter().map(|v| v.label().to_string()))
        .chain([
            "page faults".to_string(),
            "enclave-managed pages".to_string(),
        ])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &table);
    println!();
    println!("  paper: libjpeg 38.7 MB/s -18%/-6%/+3%; Hunspell 16 kwd/s -25%/-16%/-9%;");
    println!("  FreeType 149 kop/s unchanged (everything pinned, zero faults).");
}
