//! §7 "Overhead from SGX architecture changes": the nbench suite with
//! datasets that fit in EPC (no paging), measuring the cost of Autarky's
//! accessed/dirty-bit check on every TLB fill.
//!
//! The paper pessimistically assumes 10 cycles per fill and reports a
//! 0.07% geometric-mean slowdown across the ten kernels; the
//! pending-exception-flag accesses are free (same cache lines as existing
//! flows). Both the analytical bound (fills × 10 cycles) and the measured
//! protected-vs-legacy ratio are reported.

use autarky::prelude::*;
use autarky::workloads::nbench::all_kernels;
use autarky::{Profile, SystemBuilder};

/// One kernel's overhead measurement.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Cycles in legacy (no check) mode.
    pub base_cycles: u64,
    /// Cycles in self-paging (checked) mode.
    pub protected_cycles: u64,
    /// TLB fills during the protected run.
    pub tlb_fills: u64,
    /// Measured slowdown (protected / base).
    pub slowdown: f64,
    /// Analytical overhead bound: fills × check cost / base cycles.
    pub analytical_overhead: f64,
}

fn run_kernel(
    run: fn(&mut World, &mut EncHeap, u32) -> Result<u64, autarky::rt::RtError>,
    protected: bool,
    scale: u32,
) -> (u64, u64, u64) {
    let profile = if protected {
        Profile::PinAll
    } else {
        Profile::Unprotected
    };
    let (mut world, mut heap) = SystemBuilder::new("nbench", profile)
        .epc_pages(32_768) // plenty: no paging by design
        .heap_pages(16_384)
        .build()
        .expect("system");
    // nbench datasets are statically allocated: back the heap up front so
    // the timed region contains only the kernel (no allocation syscalls).
    world
        .rt
        .prealloc_heap_pages(&mut world.os, 16_384)
        .expect("prealloc");
    let t0 = world.now();
    let checksum = run(&mut world, &mut heap, scale).expect("kernel");
    let cycles = world.now() - t0;
    let (fills, _, _) = world.os.machine.tlb_stats();
    (checksum, cycles, fills)
}

/// Measure every kernel at `scale`.
pub fn run_all(scale: u32) -> Vec<KernelRow> {
    let check_cost = CostModel::default().autarky_fill_check;
    all_kernels()
        .iter()
        .map(|kernel| {
            let (sum_base, base_cycles, _) = run_kernel(kernel.run, false, scale);
            let (sum_prot, protected_cycles, fills) = run_kernel(kernel.run, true, scale);
            assert_eq!(
                sum_base, sum_prot,
                "{}: result must not change",
                kernel.name
            );
            KernelRow {
                name: kernel.name,
                base_cycles,
                protected_cycles,
                tlb_fills: fills,
                slowdown: protected_cycles as f64 / base_cycles as f64,
                analytical_overhead: (fills * check_cost) as f64 / base_cycles as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::geomean;

    #[test]
    fn overhead_is_negligible_without_paging() {
        let rows = run_all(1);
        assert_eq!(rows.len(), 10);
        let slowdowns: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
        let mean = geomean(&slowdowns);
        // Paper: 0.07% geomean. Allow up to 2% in the simulator.
        assert!(
            mean < 1.02,
            "geomean slowdown {mean} must be negligible without paging"
        );
        for row in &rows {
            assert!(
                row.analytical_overhead < 0.02,
                "{}: analytical overhead {} too high",
                row.name,
                row.analytical_overhead
            );
            assert!(row.tlb_fills > 0, "{}: kernels must touch memory", row.name);
        }
    }
}
