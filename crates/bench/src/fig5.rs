//! Figure 5: paging latency breakdown, SGXv1 vs SGXv2, fetch vs evict.
//!
//! The paper measures 100k fault/evict iterations, evicting in batches of
//! 16 pages (the Intel driver's batch size) and normalizing to one page.
//! The breakdown components are:
//!
//! * enclave preemption (`AEX` + `ERESUME`),
//! * page-fault handler invocation (`EENTER` + `EEXIT`),
//! * Autarky runtime overhead (handler bookkeeping + driver call),
//! * SGX paging instructions including en/decryption.
//!
//! Key findings to reproduce: transitions account for 40–50% of the
//! latency, SGXv1 instructions beat the SGXv2 software path, and eliding
//! the AEX would make secure paging faster than today's unprotected
//! paging.
//!
//! The breakdown is *measured*, not modelled: every cycle the simulator
//! charges carries a [`CostTag`], and each component below is the delta
//! of the corresponding tag totals across the timed phase. The
//! components therefore partition the measured total exactly.

use autarky::prelude::*;
use autarky::sgx::{CostTag, COST_TAGS};
use autarky::{Profile, SystemBuilder};

/// Batch size used by the Intel driver and by this experiment.
pub const BATCH: u64 = 16;

/// Per-page latency breakdown in cycles.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Operation label ("fault" or "evict").
    pub op: &'static str,
    /// Mechanism label ("SGX1" or "SGX2").
    pub mech: &'static str,
    /// AEX + ERESUME share.
    pub preemption: u64,
    /// EENTER + EEXIT share.
    pub invocation: u64,
    /// Autarky handler + driver-call share.
    pub runtime_overhead: u64,
    /// Paging instructions + crypto share.
    pub sgx_paging: u64,
}

impl Breakdown {
    /// Total per-page cycles.
    pub fn total(&self) -> u64 {
        self.preemption + self.invocation + self.runtime_overhead + self.sgx_paging
    }
}

fn build(mechanism: PagingMechanism, elide_aex: bool) -> (World, EncHeap, Vec<Vpn>) {
    let (mut world, mut heap) = SystemBuilder::new(
        "fig5",
        Profile::Clusters {
            pages_per_cluster: 1, // faults fetch single pages, as in the paper
        },
    )
    .epc_pages(4096)
    .heap_pages(256)
    .mechanism(mechanism)
    .elide_aex(elide_aex)
    .build()
    .expect("fig5 system");
    let ptr = heap
        .alloc(&mut world, (BATCH as usize) * PAGE_SIZE)
        .expect("alloc");
    let first = Vpn(ptr.0 >> 12);
    let pages: Vec<Vpn> = (0..BATCH).map(|i| Vpn(first.0 + i)).collect();
    // Touch everything once so contents exist.
    heap.write(&mut world, ptr, &[0xA5u8; PAGE_SIZE])
        .expect("touch");
    (world, heap, pages)
}

/// Measure one mechanism with `iters` rounds of a batch-16 eviction
/// followed by 16 single-page faults; returns (fault, evict) breakdowns
/// normalized per page.
pub fn measure(mechanism: PagingMechanism, iters: u64) -> (Breakdown, Breakdown) {
    let (mut world, mut heap, pages) = build(mechanism, false);
    let mech = match mechanism {
        PagingMechanism::Sgx1 => "SGX1",
        PagingMechanism::Sgx2 => "SGX2",
    };

    // Warm up one round.
    world.rt.evict_pages(&mut world.os, &pages).expect("evict");
    for &vpn in &pages {
        heap.read(&mut world, autarky_ptr(vpn), &mut [0u8; 1])
            .expect("fetch");
    }

    let mut evict_tags = [0u64; COST_TAGS];
    let mut fault_tags = [0u64; COST_TAGS];
    for _ in 0..iters {
        // Eviction is batched (the Intel driver's batch of 16).
        let s0 = world.os.machine.clock.tag_totals();
        world.rt.evict_pages(&mut world.os, &pages).expect("evict");
        let s1 = world.os.machine.clock.tag_totals();
        // Every page faults individually on its next access.
        for &vpn in &pages {
            heap.read(&mut world, autarky_ptr(vpn), &mut [0u8; 1])
                .expect("fetch");
        }
        let s2 = world.os.machine.clock.tag_totals();
        for t in 0..COST_TAGS {
            evict_tags[t] += s1[t] - s0[t];
            fault_tags[t] += s2[t] - s1[t];
        }
    }
    let fault = breakdown_from_tags("fault", mech, &fault_tags, iters * BATCH);
    let evict = breakdown_from_tags("evict", mech, &evict_tags, iters * BATCH);
    (fault, evict)
}

/// Convert accumulated per-tag cycle deltas into the figure's four
/// components, normalized per page. The remainder after the transition
/// and runtime components is the mechanism's paging work (paging
/// instructions, crypto, and address translation).
fn breakdown_from_tags(
    op: &'static str,
    mech: &'static str,
    tags: &[u64; COST_TAGS],
    pages: u64,
) -> Breakdown {
    let preemption = tags[CostTag::Preemption as usize];
    let invocation = tags[CostTag::HandlerInvocation as usize];
    let runtime_overhead = tags[CostTag::Runtime as usize]
        + tags[CostTag::Syscall as usize]
        + tags[CostTag::OsKernel as usize];
    let total: u64 = tags.iter().sum();
    Breakdown {
        op,
        mech,
        preemption: preemption / pages,
        invocation: invocation / pages,
        runtime_overhead: runtime_overhead / pages,
        sgx_paging: total.saturating_sub(preemption + invocation + runtime_overhead) / pages,
    }
}

/// Per-page fault latency with the AEX-elision optimization, for the
/// "faster than unprotected paging" comparison.
pub fn measure_elided_fault(mechanism: PagingMechanism, iters: u64) -> u64 {
    let (mut world, mut heap, pages) = build(mechanism, true);
    world.rt.evict_pages(&mut world.os, &pages).expect("evict");
    for &vpn in &pages {
        heap.read(&mut world, autarky_ptr(vpn), &mut [0u8; 1])
            .expect("fetch");
    }
    let mut cycles = 0u64;
    for _ in 0..iters {
        world.rt.evict_pages(&mut world.os, &pages).expect("evict");
        let t0 = world.now();
        for &vpn in &pages {
            heap.read(&mut world, autarky_ptr(vpn), &mut [0u8; 1])
                .expect("fetch");
        }
        cycles += world.now() - t0;
    }
    cycles / (iters * BATCH)
}

/// Per-page fault latency of *unprotected* (OS-driven) demand paging, the
/// baseline the elided path is compared against.
pub fn measure_unprotected_fault(iters: u64) -> u64 {
    let (mut world, mut heap) = SystemBuilder::new("fig5-base", Profile::Unprotected)
        .epc_pages(4096)
        .heap_pages(256)
        .build()
        .expect("baseline system");
    let ptr = heap
        .alloc(&mut world, (BATCH as usize) * PAGE_SIZE)
        .expect("alloc");
    heap.write(&mut world, ptr, &[1u8; PAGE_SIZE])
        .expect("touch");
    let first = Vpn(ptr.0 >> 12);
    let pages: Vec<Vpn> = (0..BATCH).map(|i| Vpn(first.0 + i)).collect();
    let eid = world.eid;
    let mut cycles = 0u64;
    for _ in 0..iters {
        // The OS evicts the batch (not timed), then every page faults
        // individually on access (OS-driven paging has no batch fetch).
        for &vpn in &pages {
            world.os.evict_os_page(eid, vpn).expect("os evict");
        }
        let t0 = world.now();
        for &vpn in &pages {
            heap.read(&mut world, autarky_ptr(vpn), &mut [0u8; 1])
                .expect("fault+fetch");
        }
        cycles += world.now() - t0;
    }
    cycles / (iters * BATCH)
}

fn autarky_ptr(vpn: Vpn) -> autarky::workloads::Ptr {
    autarky::workloads::Ptr(vpn.0 << 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_dominate_fault_latency() {
        let (fault, _) = measure(PagingMechanism::Sgx1, 20);
        let frac = (fault.preemption + fault.invocation) as f64 / fault.total() as f64;
        assert!(
            (0.35..=0.65).contains(&frac),
            "transition fraction {frac} (paper: 40-50%)"
        );
    }

    #[test]
    fn sgx2_slower_than_sgx1() {
        let (f1, e1) = measure(PagingMechanism::Sgx1, 10);
        let (f2, e2) = measure(PagingMechanism::Sgx2, 10);
        assert!(
            f2.total() > f1.total(),
            "SGX2 fetch {} vs SGX1 {}",
            f2.total(),
            f1.total()
        );
        assert!(
            e2.total() > e1.total(),
            "SGX2 evict {} vs SGX1 {}",
            e2.total(),
            e1.total()
        );
    }

    #[test]
    fn elided_faults_beat_unprotected_paging() {
        let elided = measure_elided_fault(PagingMechanism::Sgx1, 10);
        let unprotected = measure_unprotected_fault(10);
        assert!(
            elided < unprotected,
            "elided {elided} must beat unprotected {unprotected} (paper §7.1)"
        );
    }
}
