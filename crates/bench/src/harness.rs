//! A minimal, dependency-free benchmark harness with a criterion-shaped
//! API surface.
//!
//! The container building this workspace has no network access, so the
//! benches cannot pull in `criterion`. The interesting output of every
//! experiment here is the *simulated-cycle* figure printed by the
//! `fig*`/`table2` binaries anyway; this harness only tracks host-side
//! wall time so simulator-speed regressions remain visible. It supports
//! exactly the subset the bench files use: `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros.

use std::time::Instant;

/// Host wall-clock accounting for one measured phase: real elapsed time
/// paired with the operations and *simulated* cycles retired during it.
///
/// This is the only place host time is allowed to leak into reports —
/// it measures the simulator (ops/sec, simulated cycles/sec of the host
/// process), never the enclave, so it must stay out of any artifact that
/// is compared byte-for-byte across runs (baselines, campaign journals,
/// folded profiles). Printing it to stdout alongside the deterministic
/// numbers is fine; persisting it next to them is not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallAccount {
    /// Host nanoseconds the phase took.
    pub wall_nanos: u128,
    /// Operations retired during the phase.
    pub ops: u64,
    /// Simulated cycles retired during the phase.
    pub sim_cycles: u64,
}

impl WallAccount {
    /// Host seconds the phase took.
    pub fn wall_secs(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Simulator throughput in operations per host second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.ops as f64 / self.wall_secs()
    }

    /// Simulator speed in simulated cycles per host second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.sim_cycles as f64 / self.wall_secs()
    }

    /// One-line human rendering (for bin stdout, not for artifacts).
    pub fn render(&self) -> String {
        format!(
            "{} ops in {:.3} s host time -> {:.0} ops/s, {:.1} M simulated cycles/s",
            self.ops,
            self.wall_secs(),
            self.ops_per_sec(),
            self.sim_cycles_per_sec() / 1e6
        )
    }
}

/// Stopwatch producing a [`WallAccount`]: start it, run the phase, then
/// close it with the op/cycle counts the phase retired.
#[derive(Debug)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Start timing now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Stop timing and account the phase.
    pub fn finish(self, ops: u64, sim_cycles: u64) -> WallAccount {
        WallAccount {
            wall_nanos: self.start.elapsed().as_nanos(),
            ops,
            sim_cycles,
        }
    }
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A named benchmark within a group (mirrors `criterion::BenchmarkId`).
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: u32,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: u32) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Run a benchmark closure and report its median sample time.
    pub fn bench_function(
        &mut self,
        name: impl core::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) {
        self.run(&name.to_string(), &mut f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Finish the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut bencher = Bencher { elapsed_ns: 0 };
            f(&mut bencher);
            samples.push(bencher.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "  {label}: median {} µs over {} samples",
            median / 1_000,
            self.samples
        );
    }
}

/// Per-sample timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Time one execution of `f` (criterion iterates adaptively; one
    /// iteration per sample is enough for these coarse simulator runs).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Collect benchmark functions under one entry point
/// (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` for a bench binary (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_account_computes_rates() {
        let account = WallAccount {
            wall_nanos: 2_000_000_000, // 2 s
            ops: 500,
            sim_cycles: 3_000_000_000,
        };
        assert!((account.wall_secs() - 2.0).abs() < 1e-9);
        assert!((account.ops_per_sec() - 250.0).abs() < 1e-6);
        assert!((account.sim_cycles_per_sec() - 1.5e9).abs() < 1.0);
        assert!(account.render().contains("ops/s"));
        // A zero-duration phase reports zero rates, not NaN/inf.
        let instant = WallAccount {
            wall_nanos: 0,
            ops: 10,
            sim_cycles: 10,
        };
        assert_eq!(instant.ops_per_sec(), 0.0);
        assert_eq!(instant.sim_cycles_per_sec(), 0.0);
    }

    #[test]
    fn wall_timer_accounts_elapsed_time() {
        let timer = WallTimer::new();
        std::hint::black_box((0..1000).sum::<u64>());
        let account = timer.finish(7, 4200);
        assert_eq!(account.ops, 7);
        assert_eq!(account.sim_cycles, 4200);
    }

    #[test]
    fn group_runs_each_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("id", 7), &21u64, |b, &x| {
            b.iter(|| {
                seen = x;
            });
        });
        assert_eq!(seen, 21);
        group.finish();
    }
}
