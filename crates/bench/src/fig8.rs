//! Figure 8: Memcached under YCSB-C with Autarky's paging policies.
//!
//! Configurations: insecure baseline, rate-limited paging, 10-page item
//! clusters, and cached ORAM, each across uniform / zipf(0.99) /
//! hotspot(0.9) / hotspot(0.99) request distributions (1 KB entries, 100%
//! GET, single-threaded, data sized to oversubscribe EPC).
//!
//! Shapes to reproduce: rate-limited closest to baseline; clusters show a
//! constant gap that beats ORAM on uniform; the gap narrows with skew and
//! ORAM can win on hot distributions; on the hottest distribution ORAM is
//! only ~60% slower than the insecure baseline.

use autarky::workloads::kvstore::{store_pages, ItemClustering, KvStore};
use autarky::workloads::ycsb::{Distribution, KeyGenerator};
use autarky::{Profile, SystemBuilder};

use crate::util::ops_per_sec;

/// Policy configurations in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Vanilla SGX, OS paging.
    Baseline,
    /// Bounded-leakage demand paging.
    RateLimit,
    /// 10-page item clusters.
    Cluster10,
    /// Cached ORAM over all items.
    Oram,
}

impl Config {
    /// All four configurations.
    pub fn all() -> [Config; 4] {
        [
            Config::Baseline,
            Config::RateLimit,
            Config::Cluster10,
            Config::Oram,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Baseline => "Baseline",
            Config::RateLimit => "Rate Limit",
            Config::Cluster10 => "10-Page Cluster",
            Config::Oram => "ORAM",
        }
    }
}

/// The four request distributions of the figure.
pub fn distributions() -> [(&'static str, Distribution); 4] {
    [
        ("Uniform", Distribution::Uniform),
        ("Zipf (0.99)", Distribution::Zipfian { theta: 0.99 }),
        (
            "Hotspot (0.9)",
            Distribution::Hotspot {
                hot_frac: 0.01,
                hot_prob: 0.9,
            },
        ),
        (
            "Hotspot (0.99)",
            Distribution::Hotspot {
                hot_frac: 0.01,
                hot_prob: 0.99,
            },
        ),
    ]
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig8Params {
    /// Items loaded (1 KB each in the paper; 400 MB total, scaled here).
    pub items: u64,
    /// Value size.
    pub value_size: usize,
    /// EPC share available for item pages.
    pub budget_pages: usize,
    /// GET requests measured per cell.
    pub requests: u64,
}

impl Fig8Params {
    /// Scale 1 ≈ 1/64 of the paper's sizes.
    pub fn scaled(scale: u32) -> Self {
        let s = scale as u64;
        Self {
            items: 6_000 * s,
            value_size: 1024,
            budget_pages: (1024 * s) as usize,
            requests: 2_000 * s,
        }
    }
}

/// Measure one (config, distribution) cell; returns requests/second.
pub fn measure(params: &Fig8Params, config: Config, dist: Distribution) -> f64 {
    let data_pages = store_pages(params.items, params.value_size) as usize;
    let profile = match config {
        Config::Baseline => Profile::Unprotected,
        Config::RateLimit => Profile::RateLimited {
            max_faults_per_progress: 1e6,
            burst: 1 << 40,
        },
        Config::Cluster10 => Profile::Clusters {
            pages_per_cluster: 10,
        },
        Config::Oram => Profile::CachedOram {
            capacity_pages: (data_pages * 4) as u64,
            cache_pages: params.budget_pages,
        },
    };
    let (mut world, mut heap) = SystemBuilder::new("fig8", profile)
        .epc_pages(data_pages * 2 + 4096)
        .heap_pages(data_pages * 2 + 64)
        .budget_pages(params.budget_pages)
        .build()
        .expect("system");
    if config == Config::Baseline {
        // Same EPC share as the protected runs' self-paging budget.
        world
            .os
            .set_epc_quota(world.eid, params.budget_pages)
            .expect("quota");
    }
    let clustering = match config {
        Config::Cluster10 => ItemClustering::Pages(10),
        _ => ItemClustering::None,
    };
    let mut store = KvStore::new(
        &mut world,
        &mut heap,
        params.items,
        params.value_size,
        clustering,
    )
    .expect("store");
    store
        .load(&mut world, &mut heap, params.items)
        .expect("load");

    let mut generator = KeyGenerator::new(params.items, dist, 11);
    // Warm the caches with a burst of requests (untimed).
    for _ in 0..params.requests / 4 {
        let key = generator.next_key();
        store.get(&mut world, &mut heap, key).expect("warm get");
    }
    let t0 = world.now();
    for _ in 0..params.requests {
        let key = generator.next_key();
        let hit = store.get(&mut world, &mut heap, key).expect("get");
        assert!(hit.is_some(), "100%-hit workload C");
    }
    ops_per_sec(params.requests, world.now() - t0)
}

/// A full grid of measurements: `rows[d][c]` for distribution `d`,
/// configuration `c`.
pub fn run_all(params: &Fig8Params) -> Vec<Vec<f64>> {
    distributions()
        .iter()
        .map(|(_, dist)| {
            Config::all()
                .iter()
                .map(|&config| measure(params, config, *dist))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig8Params {
        Fig8Params {
            items: 700,
            value_size: 1024,
            budget_pages: 96,
            requests: 300,
        }
    }

    #[test]
    fn rate_limit_close_to_baseline() {
        let params = tiny();
        let base = measure(&params, Config::Baseline, Distribution::Uniform);
        let rate = measure(&params, Config::RateLimit, Distribution::Uniform);
        assert!(
            rate > base * 0.5,
            "rate-limited {rate} too far below baseline {base}"
        );
    }

    #[test]
    fn clusters_beat_oram_on_uniform() {
        let params = tiny();
        let clusters = measure(&params, Config::Cluster10, Distribution::Uniform);
        let oram = measure(&params, Config::Oram, Distribution::Uniform);
        assert!(
            clusters > oram,
            "uniform: clusters {clusters} must beat ORAM {oram}"
        );
    }

    #[test]
    fn oram_gap_narrows_with_skew() {
        let params = tiny();
        let base_uni = measure(&params, Config::Baseline, Distribution::Uniform);
        let oram_uni = measure(&params, Config::Oram, Distribution::Uniform);
        let hot = Distribution::Hotspot {
            hot_frac: 0.01,
            hot_prob: 0.99,
        };
        let base_hot = measure(&params, Config::Baseline, hot);
        let oram_hot = measure(&params, Config::Oram, hot);
        let gap_uni = base_uni / oram_uni;
        let gap_hot = base_hot / oram_hot;
        assert!(
            gap_hot < gap_uni,
            "ORAM gap must narrow with skew: uniform {gap_uni:.2}x vs hot {gap_hot:.2}x"
        );
    }
}
