//! Bench-harness wrapper for the Figure 5 experiment: per-page fault and
//! eviction latency under each paging mechanism.
//!
//! The interesting output is the *simulated-cycle* breakdown printed by
//! `cargo run --bin fig5`; this bench additionally tracks host-side cost
//! of the simulation so regressions in the simulator itself show up.

use autarky::rt::PagingMechanism;
use autarky_bench::fig5::{measure, measure_elided_fault};
use autarky_bench::harness::Criterion;
use autarky_bench::{criterion_group, criterion_main};

fn bench_paging_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_paging_latency");
    group.sample_size(10);
    group.bench_function("sgx1_fault_evict_round", |b| {
        b.iter(|| std::hint::black_box(measure(PagingMechanism::Sgx1, 2)));
    });
    group.bench_function("sgx2_fault_evict_round", |b| {
        b.iter(|| std::hint::black_box(measure(PagingMechanism::Sgx2, 2)));
    });
    group.bench_function("sgx1_elided_fault", |b| {
        b.iter(|| std::hint::black_box(measure_elided_fault(PagingMechanism::Sgx1, 2)));
    });
    group.finish();
}

criterion_group!(benches, bench_paging_latency);
criterion_main!(benches);
