//! Bench-harness wrapper for the Figure 8 experiment: Memcached GET
//! throughput per paging policy (uniform distribution, small store).

use autarky::workloads::ycsb::Distribution;
use autarky_bench::fig8::{measure, Config, Fig8Params};
use autarky_bench::harness::{BenchmarkId, Criterion};
use autarky_bench::{criterion_group, criterion_main};

fn bench_memcached(c: &mut Criterion) {
    let params = Fig8Params {
        items: 500,
        value_size: 1024,
        budget_pages: 80,
        requests: 150,
    };
    let mut group = c.benchmark_group("fig8_memcached");
    group.sample_size(10);
    for config in Config::all() {
        group.bench_with_input(
            BenchmarkId::new("uniform", config.label()),
            &config,
            |b, &config| {
                b.iter(|| std::hint::black_box(measure(&params, config, Distribution::Uniform)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_memcached);
criterion_main!(benches);
