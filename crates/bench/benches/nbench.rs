//! Bench-harness wrapper for the nbench overhead experiment (§7,
//! architecture-changes overhead): each kernel under the legacy and
//! self-paging configurations.

use autarky::workloads::nbench::all_kernels;
use autarky::workloads::EncHeap;
use autarky::{Profile, SystemBuilder};
use autarky_bench::harness::{BenchmarkId, Criterion};
use autarky_bench::{criterion_group, criterion_main};

fn run_kernel(name: &str, protected: bool) -> u64 {
    let kernel = all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .expect("known kernel");
    let profile = if protected {
        Profile::PinAll
    } else {
        Profile::Unprotected
    };
    let (mut world, mut heap) = SystemBuilder::new("nbench-bench", profile)
        .epc_pages(16_384)
        .heap_pages(8_192)
        .build()
        .expect("system");
    let mut heap: EncHeap = std::mem::replace(&mut heap, EncHeap::direct());
    (kernel.run)(&mut world, &mut heap, 1).expect("kernel")
}

fn bench_nbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbench_overhead");
    group.sample_size(10);
    for name in ["numeric sort", "bitfield", "idea"] {
        group.bench_with_input(BenchmarkId::new("legacy", name), &name, |b, name| {
            b.iter(|| std::hint::black_box(run_kernel(name, false)));
        });
        group.bench_with_input(BenchmarkId::new("autarky", name), &name, |b, name| {
            b.iter(|| std::hint::black_box(run_kernel(name, true)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nbench);
criterion_main!(benches);
