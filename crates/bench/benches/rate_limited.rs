//! Bench-harness wrapper for the Figure 7 experiment: rate-limited paging on
//! a representative subset of the Phoenix/PARSEC applications.

use autarky::workloads::apps::fig7_apps;
use autarky_bench::fig7::{measure_app, Fig7Params};
use autarky_bench::harness::{BenchmarkId, Criterion};
use autarky_bench::{criterion_group, criterion_main};

fn bench_rate_limited(c: &mut Criterion) {
    let params = Fig7Params {
        epc_budget_pages: 80,
        footprint_pages: 104,
    };
    let apps = fig7_apps();
    let mut group = c.benchmark_group("fig7_rate_limited");
    group.sample_size(10);
    for name in ["linreg", "canneal", "bscholes"] {
        let app = apps.iter().find(|a| a.name == name).expect("known app");
        group.bench_with_input(BenchmarkId::new("app", name), &app, |b, app| {
            b.iter(|| std::hint::black_box(measure_app(app, &params, false)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rate_limited);
criterion_main!(benches);
