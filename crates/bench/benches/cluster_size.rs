//! Bench-harness wrapper for the Figure 6 experiment: uthash throughput
//! under cluster sizes and the ORAM paging schemes (small inputs).

use autarky_bench::fig6::{run_cached_oram, run_clusters, run_uncached_oram, Fig6Params};
use autarky_bench::harness::{BenchmarkId, Criterion};
use autarky_bench::{criterion_group, criterion_main};

fn tiny_params() -> Fig6Params {
    Fig6Params {
        items: 1200,
        item_size: 256,
        max_chain: 10,
        budget_pages: 56,
        reads: 150,
        uncached_reads: 5,
    }
}

fn bench_cluster_size(c: &mut Criterion) {
    let params = tiny_params();
    let mut group = c.benchmark_group("fig6_cluster_size");
    group.sample_size(10);
    for pages in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("clusters", pages), &pages, |b, &pages| {
            b.iter(|| std::hint::black_box(run_clusters(&params, &[pages])));
        });
    }
    group.bench_function("cached_oram", |b| {
        b.iter(|| std::hint::black_box(run_cached_oram(&params)));
    });
    group.bench_function("uncached_oram", |b| {
        b.iter(|| std::hint::black_box(run_uncached_oram(&params)));
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_size);
criterion_main!(benches);
