//! Bench-harness wrapper for the Table 2 experiments: end-to-end application
//! pipelines (small inputs).

use autarky_bench::harness::Criterion;
use autarky_bench::table2::{run_freetype, run_hunspell, run_libjpeg, Table2Params};
use autarky_bench::{criterion_group, criterion_main};

fn tiny_params() -> Table2Params {
    Table2Params {
        image_side: 256,
        dictionaries: 3,
        words_per_dictionary: 400,
        text_words: 100,
        glyph_ops: 100,
        epc_pages: 4096,
        spell_budget_pages: 32,
    }
}

fn bench_apps(c: &mut Criterion) {
    let params = tiny_params();
    let mut group = c.benchmark_group("table2_apps");
    group.sample_size(10);
    group.bench_function("libjpeg_pipeline", |b| {
        b.iter(|| std::hint::black_box(run_libjpeg(&params)));
    });
    group.bench_function("hunspell_server", |b| {
        b.iter(|| std::hint::black_box(run_hunspell(&params)));
    });
    group.bench_function("freetype_render", |b| {
        b.iter(|| std::hint::black_box(run_freetype(&params)));
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
