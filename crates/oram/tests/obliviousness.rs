//! Statistical obliviousness tests: the bucket-access trace PathORAM
//! exposes to untrusted storage must be indistinguishable across logical
//! access patterns.

use autarky_oram::{buckets_for, CachedOram, MemStorage, PathOram};

fn oram(seed: u64) -> PathOram<MemStorage> {
    let storage = MemStorage::new(buckets_for(256));
    PathOram::new(256, 32, seed, [7; 32], storage)
}

/// Histogram of leaf-bucket indices touched by reads, given an access
/// pattern.
fn leaf_histogram(pattern: &[u64], seed: u64) -> std::collections::HashMap<usize, u64> {
    let mut o = oram(seed);
    for id in 0..256 {
        o.write(id, &[id as u8; 32]).expect("fill");
    }
    let mut histogram = std::collections::HashMap::new();
    for &id in pattern {
        let log_start = o.storage().log.len();
        o.read(id).expect("read");
        let leaf = o.storage().log[log_start..]
            .iter()
            .filter(|(_, w)| !w)
            .map(|(i, _)| *i)
            .max()
            .expect("path read");
        *histogram.entry(leaf).or_insert(0) += 1;
    }
    histogram
}

fn total_variation(
    a: &std::collections::HashMap<usize, u64>,
    b: &std::collections::HashMap<usize, u64>,
    n: u64,
) -> f64 {
    let keys: std::collections::HashSet<usize> = a.keys().chain(b.keys()).copied().collect();
    keys.iter()
        .map(|k| {
            let pa = *a.get(k).unwrap_or(&0) as f64 / n as f64;
            let pb = *b.get(k).unwrap_or(&0) as f64 / n as f64;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

#[test]
fn hammering_one_block_looks_like_uniform_access() {
    let n = 2000u64;
    // Pattern A: hammer block 7. Pattern B: round-robin over everything.
    let pattern_a: Vec<u64> = vec![7; n as usize];
    let pattern_b: Vec<u64> = (0..n).map(|i| i % 256).collect();
    let hist_a = leaf_histogram(&pattern_a, 1);
    let hist_b = leaf_histogram(&pattern_b, 1);
    let tv = total_variation(&hist_a, &hist_b, n);
    // Two samples of the same uniform distribution: total variation well
    // below what distinct distributions would show. (Empirically ~0.1 for
    // 2000 draws over 64 leaves; 0.5+ would indicate pattern leakage.)
    assert!(
        tv < 0.25,
        "leaf distribution differs by {tv}: pattern leaks"
    );
}

#[test]
fn sequential_and_random_patterns_indistinguishable() {
    let n = 2000u64;
    let pattern_a: Vec<u64> = (0..n).map(|i| i % 256).collect();
    let pattern_b: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56)
        .collect();
    let tv = total_variation(
        &leaf_histogram(&pattern_a, 3),
        &leaf_histogram(&pattern_b, 3),
        n,
    );
    assert!(tv < 0.25, "leaf distribution differs by {tv}");
}

#[test]
fn cache_hides_hits_entirely() {
    // With the Autarky cache in front, repeated hot accesses produce NO
    // storage traffic at all — the strongest possible statement.
    let storage = MemStorage::new(buckets_for(64));
    let oram = PathOram::new(64, 32, 9, [2; 32], storage);
    let mut cache = CachedOram::new(oram, 16);
    for id in 0..8u64 {
        cache.write(id, &[id as u8; 32]).expect("fill");
    }
    let log_len = cache.oram().storage().log.len();
    for _ in 0..500 {
        for id in 0..8u64 {
            cache.read(id).expect("hot read");
        }
    }
    assert_eq!(
        cache.oram().storage().log.len(),
        log_len,
        "4000 hot reads generated zero adversary-visible events"
    );
}

#[test]
fn trace_length_depends_only_on_access_count() {
    // The number of bucket touches is a deterministic function of the
    // access count (path length × 2), never of the addresses.
    let patterns: [Vec<u64>; 3] = [
        vec![0; 50],
        (0..50).collect(),
        (0..50).map(|i| (i * 37) % 256).collect(),
    ];
    let mut lengths = Vec::new();
    for pattern in &patterns {
        let mut o = oram(5);
        for id in 0..256 {
            o.write(id, &[1; 32]).expect("fill");
        }
        let start = o.storage().log.len();
        for &id in pattern {
            o.read(id).expect("read");
        }
        lengths.push(o.storage().log.len() - start);
    }
    assert_eq!(lengths[0], lengths[1]);
    assert_eq!(lengths[1], lengths[2]);
}
