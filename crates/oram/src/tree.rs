//! PathORAM (Stefanov et al., CCS'13).
//!
//! Untrusted storage is a complete binary tree of buckets, each holding
//! `Z` fixed-size blocks (real or dummy). A position map assigns every
//! logical block a uniformly random leaf; an access reads the whole path
//! to the block's leaf, remaps the block to a fresh random leaf, and
//! greedily writes blocks back along the path. The adversary observes one
//! random path per access — independent of the logical address.
//!
//! Metadata placement is the crux of the Autarky use case (§5.2.2):
//!
//! * **cached/enclave-managed mode** (default): the position map and stash
//!   live in enclave-managed pages that are pinned in EPC, so accessing
//!   them leaks nothing and costs nothing extra;
//! * **uncached mode** ([`PathOram::set_uncached_metadata`]): without
//!   Autarky the enclave cannot keep metadata pages pinned safely, so —
//!   like CoSMIX — every metadata touch must be a full oblivious linear
//!   scan, which is what makes pre-Autarky ORAM orders of magnitude
//!   slower. We account those scans in
//!   [`OramStats::oblivious_scan_bytes`](crate::stats::OramStats::oblivious_scan_bytes).

use autarky_prng::SimRng;

use crate::stats::OramStats;
use crate::storage::{BucketSealer, BucketStorage};

/// Blocks per bucket (the standard `Z = 4`).
pub const BUCKET_Z: usize = 4;

/// Marker id for a dummy (empty) slot.
const DUMMY: u64 = u64::MAX;

/// Errors from ORAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OramError {
    /// Block id out of the configured capacity.
    BadBlock(u64),
    /// Data length does not match the configured block size.
    BadLength {
        /// Expected block size in bytes.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// The stash exceeded its provisioned capacity (astronomically
    /// unlikely with Z=4 unless the tree is mis-sized).
    StashOverflow,
    /// A bucket failed authentication (storage tampered with).
    Tampered(usize),
}

impl core::fmt::Display for OramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OramError::BadBlock(id) => write!(f, "block id {id} out of range"),
            OramError::BadLength { expected, got } => {
                write!(f, "block length {got}, expected {expected}")
            }
            OramError::StashOverflow => write!(f, "stash overflow"),
            OramError::Tampered(idx) => write!(f, "bucket {idx} failed authentication"),
        }
    }
}

impl std::error::Error for OramError {}

/// A PathORAM instance over `S`.
pub struct PathOram<S: BucketStorage> {
    storage: S,
    sealer: BucketSealer,
    /// Tree height: leaves are at level `height`, root at level 0.
    height: u32,
    num_leaves: u64,
    block_size: usize,
    capacity: u64,
    position: Vec<u32>,
    stash: Vec<(u64, Vec<u8>)>,
    stash_capacity: usize,
    rng: SimRng,
    /// Event counters (public: read by the cycle-charging adapters).
    pub stats: OramStats,
    uncached_metadata: bool,
}

/// Number of buckets needed for `capacity` blocks.
pub fn buckets_for(capacity: u64) -> usize {
    let height = height_for(capacity);
    (1usize << (height + 1)) - 1
}

fn height_for(capacity: u64) -> u32 {
    // Leaves >= ceil(capacity / Z) keeps utilization ~Z/2 per bucket on a
    // path, comfortably below overflow risk for Z=4.
    let needed_leaves = capacity.div_ceil(BUCKET_Z as u64).max(2);
    64 - (needed_leaves - 1).leading_zeros()
}

impl<S: BucketStorage> PathOram<S> {
    /// Create an ORAM holding `capacity` blocks of `block_size` bytes.
    ///
    /// `seed` drives the (simulated) in-enclave randomness; `key` seals
    /// buckets. `storage` must hold at least [`buckets_for`]`(capacity)`
    /// buckets.
    pub fn new(capacity: u64, block_size: usize, seed: u64, key: [u8; 32], storage: S) -> Self {
        let height = height_for(capacity);
        let num_leaves = 1u64 << height;
        let mut rng = SimRng::seed_from_u64(seed);
        let position = (0..capacity)
            .map(|_| rng.gen_range(0..num_leaves) as u32)
            .collect();
        Self {
            storage,
            sealer: BucketSealer::new(key),
            height,
            num_leaves,
            block_size,
            capacity,
            position,
            stash: Vec::new(),
            stash_capacity: 256,
            rng,
            stats: OramStats::default(),
            uncached_metadata: false,
        }
    }

    /// Block capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> u64 {
        self.num_leaves
    }

    /// Current stash occupancy (diagnostics/property tests).
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Borrow the underlying storage (e.g. to inspect its access log).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Model pre-Autarky metadata handling: charge a full oblivious scan
    /// of the position map and stash for every access.
    pub fn set_uncached_metadata(&mut self, uncached: bool) {
        self.uncached_metadata = uncached;
    }

    /// Read block `id`. Unwritten blocks read as zeros.
    pub fn read(&mut self, id: u64) -> Result<Vec<u8>, OramError> {
        self.access(id, None)
    }

    /// Write block `id`, returning its previous contents.
    pub fn write(&mut self, id: u64, data: &[u8]) -> Result<Vec<u8>, OramError> {
        if data.len() != self.block_size {
            return Err(OramError::BadLength {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.access(id, Some(data))
    }

    fn access(&mut self, id: u64, write: Option<&[u8]>) -> Result<Vec<u8>, OramError> {
        if id >= self.capacity {
            return Err(OramError::BadBlock(id));
        }
        self.stats.add("accesses", 1);

        // 1. Position-map lookup + remap. In uncached mode this is a
        // linear oblivious scan; in cached mode the map is pinned in
        // enclave-managed memory and the lookup is free of leaks.
        let leaf = self.position[id as usize] as u64;
        let new_leaf = self.rng.gen_range(0..self.num_leaves);
        self.position[id as usize] = new_leaf as u32;
        if self.uncached_metadata {
            self.stats
                .add("oblivious_scan_bytes", self.position.len() as u64 * 4);
        }

        // 2. Read the whole path into the stash.
        for level in 0..=self.height {
            let bucket = self.bucket_index(leaf, level);
            let sealed = self.storage.read(bucket);
            self.stats.add("bucket_reads", 1);
            if sealed.is_empty() {
                continue; // never-written bucket: all dummies
            }
            let plaintext = self
                .sealer
                .open(&sealed)
                .ok_or(OramError::Tampered(bucket))?;
            self.stats.add("crypto_bytes", plaintext.len() as u64);
            self.parse_bucket(&plaintext);
        }

        // 3. Stash lookup. Under Autarky (cached mode) the stash lives in
        // pinned enclave-managed pages, so a direct scan leaks nothing and
        // costs almost nothing. Pre-Autarky (uncached mode) the scan must
        // be oblivious over the full stash capacity, CoSMIX-style.
        if self.uncached_metadata {
            self.stats.add(
                "oblivious_scan_bytes",
                (self.stash_capacity * (8 + self.block_size)) as u64,
            );
        }
        let pos = self.stash.iter().position(|(bid, _)| *bid == id);
        let mut data = match pos {
            Some(i) => self.stash[i].1.clone(),
            None => vec![0u8; self.block_size],
        };
        if let Some(new_data) = write {
            data = new_data.to_vec();
        }
        // (Re)insert the (possibly updated) block.
        match pos {
            Some(i) => self.stash[i].1 = data.clone(),
            None => {
                // Reads of never-written blocks need not occupy the stash;
                // writes (and updates) do.
                if write.is_some() {
                    self.stash.push((id, data.clone()));
                }
            }
        }
        if self.stash.len() > self.stash_capacity {
            return Err(OramError::StashOverflow);
        }

        // 4. Greedy write-back along the path, deepest level first.
        for level in (0..=self.height).rev() {
            let bucket = self.bucket_index(leaf, level);
            let mut chosen: Vec<(u64, Vec<u8>)> = Vec::with_capacity(BUCKET_Z);
            let mut i = 0;
            while i < self.stash.len() && chosen.len() < BUCKET_Z {
                let (bid, _) = self.stash[i];
                let block_leaf = self.position[bid as usize] as u64;
                if self.bucket_index(block_leaf, level) == bucket {
                    chosen.push(self.stash.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let plaintext = self.serialize_bucket(&chosen);
            self.stats.add("crypto_bytes", plaintext.len() as u64);
            let sealed = self.sealer.seal(plaintext);
            self.storage.write(bucket, sealed);
            self.stats.add("bucket_writes", 1);
        }
        self.stats.record_stash(self.stash.len() as u64);
        Ok(data)
    }

    /// Storage index of the level-`level` bucket on the path to `leaf`.
    fn bucket_index(&self, leaf: u64, level: u32) -> usize {
        let node = (leaf + self.num_leaves) >> (self.height - level);
        (node - 1) as usize
    }

    fn parse_bucket(&mut self, plaintext: &[u8]) {
        let slot = 8 + self.block_size;
        for chunk in plaintext.chunks_exact(slot) {
            let id = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            if id == DUMMY {
                continue;
            }
            if self.stash.iter().any(|(bid, _)| *bid == id) {
                continue; // already stashed (shouldn't happen, but harmless)
            }
            self.stash.push((id, chunk[8..].to_vec()));
        }
    }

    fn serialize_bucket(&self, blocks: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let slot = 8 + self.block_size;
        let mut out = vec![0u8; slot * BUCKET_Z];
        for (i, chunk) in out.chunks_exact_mut(slot).enumerate() {
            match blocks.get(i) {
                Some((id, data)) => {
                    chunk[..8].copy_from_slice(&id.to_le_bytes());
                    chunk[8..].copy_from_slice(data);
                }
                None => chunk[..8].copy_from_slice(&DUMMY.to_le_bytes()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use std::collections::HashMap;

    fn oram(capacity: u64, block_size: usize) -> PathOram<MemStorage> {
        let storage = MemStorage::new(buckets_for(capacity));
        PathOram::new(capacity, block_size, 42, [3; 32], storage)
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut o = oram(16, 8);
        assert_eq!(o.read(3).expect("read"), vec![0u8; 8]);
    }

    #[test]
    fn write_then_read() {
        let mut o = oram(16, 8);
        o.write(5, &[1, 2, 3, 4, 5, 6, 7, 8]).expect("write");
        assert_eq!(o.read(5).expect("read"), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn wrong_length_rejected() {
        let mut o = oram(16, 8);
        assert_eq!(
            o.write(5, &[1, 2, 3]),
            Err(OramError::BadLength {
                expected: 8,
                got: 3
            })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut o = oram(16, 8);
        assert_eq!(o.read(16), Err(OramError::BadBlock(16)));
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        let mut o = oram(64, 16);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = SimRng::seed_from_u64(7);
        for step in 0..2000u32 {
            let id = rng.gen_range(0..64);
            if rng.gen_bool(0.5) {
                let mut data = vec![0u8; 16];
                rng.fill_bytes(&mut data[..]);
                o.write(id, &data).expect("write");
                model.insert(id, data);
            } else {
                let expected = model.get(&id).cloned().unwrap_or_else(|| vec![0u8; 16]);
                assert_eq!(o.read(id).expect("read"), expected, "step {step} id {id}");
            }
        }
    }

    #[test]
    fn stash_stays_bounded() {
        let mut o = oram(256, 8);
        let mut rng = SimRng::seed_from_u64(9);
        for i in 0..256u64 {
            o.write(i, &[i as u8; 8]).expect("fill");
        }
        for _ in 0..5000 {
            let id = rng.gen_range(0..256);
            o.read(id).expect("read");
            assert!(o.stash_len() <= 60, "stash grew to {}", o.stash_len());
        }
    }

    #[test]
    fn every_access_touches_exactly_one_path() {
        let mut o = oram(64, 8);
        o.write(1, &[1; 8]).expect("seed block");
        let log_start = o.storage().log.len();
        o.read(1).expect("read");
        let log = &o.storage().log[log_start..];
        let height = {
            // capacity 64, Z=4 → 16 leaves → height 4.
            4u32
        };
        let path_len = (height + 1) as usize;
        assert_eq!(log.len(), 2 * path_len, "reads then writes of one path");
        let reads: Vec<usize> = log.iter().filter(|(_, w)| !w).map(|(i, _)| *i).collect();
        let writes: Vec<usize> = log.iter().filter(|(_, w)| *w).map(|(i, _)| *i).collect();
        assert_eq!(reads.len(), path_len);
        let mut sorted_writes = writes.clone();
        sorted_writes.sort_unstable();
        let mut sorted_reads = reads.clone();
        sorted_reads.sort_unstable();
        assert_eq!(sorted_reads, sorted_writes, "same path read and written");
        // The read sequence is root→leaf: indices strictly descend the tree.
        for pair in reads.windows(2) {
            assert!(pair[1] > pair[0], "descending path order");
        }
    }

    #[test]
    fn observed_leaves_are_spread_for_fixed_block() {
        // Accessing the SAME block repeatedly must still touch fresh
        // random paths (remap on every access) — the core obliviousness
        // property.
        let mut o = oram(64, 8);
        o.write(7, &[7; 8]).expect("seed");
        let mut leaves_seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let log_start = o.storage().log.len();
            o.read(7).expect("read");
            // The deepest read index identifies the leaf bucket.
            let leaf_bucket = o.storage().log[log_start..]
                .iter()
                .filter(|(_, w)| !w)
                .map(|(i, _)| *i)
                .max()
                .expect("nonempty path");
            leaves_seen.insert(leaf_bucket);
        }
        // 16 leaves, 200 samples: expect near-full coverage; require > half.
        assert!(
            leaves_seen.len() > 8,
            "only {} distinct leaves touched — access pattern is not oblivious",
            leaves_seen.len()
        );
    }

    #[test]
    fn uncached_metadata_charges_scans() {
        let mut o = oram(64, 8);
        o.read(1).expect("read");
        let cached_scans = o.stats.oblivious_scan_bytes();
        o.set_uncached_metadata(true);
        o.read(1).expect("read");
        let uncached_scans = o.stats.oblivious_scan_bytes() - cached_scans;
        assert!(
            uncached_scans > cached_scans,
            "uncached mode must add position-map scan cost"
        );
    }

    #[test]
    fn tampered_bucket_detected() {
        let mut o = oram(16, 8);
        o.write(0, &[1; 8]).expect("write");
        // Corrupt whichever bucket was last written.
        let (idx, _) = *o
            .storage()
            .log
            .iter()
            .rev()
            .find(|(_, w)| *w)
            .expect("some write");
        // Flip a ciphertext bit in untrusted storage.
        o.storage.corrupt(idx, 20);
        let mut saw_tamper = false;
        for id in 0..16 {
            if matches!(o.read(id), Err(OramError::Tampered(_))) {
                saw_tamper = true;
                break;
            }
        }
        assert!(saw_tamper, "corruption must be detected");
    }
}
