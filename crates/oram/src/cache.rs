//! The cached ORAM front-end (paper §5.2.2).
//!
//! Autarky makes it safe to cache recently used ORAM blocks in a large
//! *enclave-managed* buffer: because those pages are pinned and their
//! faults masked, cache hits leak nothing, and the expensive PathORAM
//! protocol runs only on misses. Without Autarky this cache is unsound —
//! the OS would observe EPC accesses — which is why pre-Autarky systems
//! (CoSMIX/ZeroTrace) must run the full protocol on every access.
//!
//! The cache is an O(1) LRU; evicted dirty blocks are written back through
//! the ORAM (an oblivious copy, accounted per byte).

use std::collections::{HashMap, VecDeque};

use crate::storage::BucketStorage;
use crate::tree::{OramError, PathOram};

struct Entry {
    data: Vec<u8>,
    stamp: u64,
    dirty: bool,
}

/// An LRU cache of decrypted blocks in front of a [`PathOram`].
pub struct CachedOram<S: BucketStorage> {
    oram: PathOram<S>,
    entries: HashMap<u64, Entry>,
    /// Recency queue with lazy invalidation: entries whose stamp is stale
    /// are skipped at eviction time.
    recency: VecDeque<(u64, u64)>,
    capacity: usize,
    next_stamp: u64,
}

impl<S: BucketStorage> CachedOram<S> {
    /// Wrap `oram` with a cache holding up to `capacity` blocks.
    pub fn new(oram: PathOram<S>, capacity: usize) -> Self {
        Self {
            oram,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            capacity: capacity.max(1),
            next_stamp: 0,
        }
    }

    /// The wrapped ORAM (for stats and storage inspection).
    pub fn oram(&self) -> &PathOram<S> {
        &self.oram
    }

    /// Mutable access to the wrapped ORAM.
    pub fn oram_mut(&mut self) -> &mut PathOram<S> {
        &mut self.oram
    }

    /// Cache capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn touch(&mut self, id: u64) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.stamp = stamp;
        }
        self.recency.push_back((id, stamp));
    }

    fn evict_one(&mut self) -> Result<(), OramError> {
        while let Some((id, stamp)) = self.recency.pop_front() {
            let is_current = self
                .entries
                .get(&id)
                .map(|e| e.stamp == stamp)
                .unwrap_or(false);
            if !is_current {
                continue; // stale recency record
            }
            let entry = self.entries.remove(&id).expect("checked above");
            if entry.dirty {
                self.oram.write(id, &entry.data)?;
            }
            return Ok(());
        }
        Ok(())
    }

    fn load(&mut self, id: u64) -> Result<(), OramError> {
        if self.entries.contains_key(&id) {
            self.oram.stats.add("cache_hits", 1);
            self.touch(id);
            return Ok(());
        }
        self.oram.stats.add("cache_misses", 1);
        if self.entries.len() >= self.capacity {
            self.evict_one()?;
        }
        let data = self.oram.read(id)?;
        // Fetching into the cache is an oblivious copy.
        self.oram
            .stats
            .add("oblivious_scan_bytes", data.len() as u64);
        self.entries.insert(
            id,
            Entry {
                data,
                stamp: 0,
                dirty: false,
            },
        );
        self.touch(id);
        Ok(())
    }

    /// Read block `id` through the cache.
    pub fn read(&mut self, id: u64) -> Result<Vec<u8>, OramError> {
        self.load(id)?;
        Ok(self.entries.get(&id).expect("just loaded").data.clone())
    }

    /// Read a sub-range of block `id` without copying the whole block out.
    pub fn read_at(&mut self, id: u64, offset: usize, buf: &mut [u8]) -> Result<(), OramError> {
        self.load(id)?;
        let data = &self.entries.get(&id).expect("just loaded").data;
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
        Ok(())
    }

    /// Write block `id` through the cache (write-back).
    pub fn write(&mut self, id: u64, data: &[u8]) -> Result<(), OramError> {
        if data.len() != self.oram.block_size() {
            return Err(OramError::BadLength {
                expected: self.oram.block_size(),
                got: data.len(),
            });
        }
        self.load(id)?;
        let entry = self.entries.get_mut(&id).expect("just loaded");
        entry.data.copy_from_slice(data);
        entry.dirty = true;
        Ok(())
    }

    /// Write a sub-range of block `id`.
    pub fn write_at(&mut self, id: u64, offset: usize, buf: &[u8]) -> Result<(), OramError> {
        self.load(id)?;
        let entry = self.entries.get_mut(&id).expect("just loaded");
        entry.data[offset..offset + buf.len()].copy_from_slice(buf);
        entry.dirty = true;
        Ok(())
    }

    /// Write every dirty block back to the ORAM.
    pub fn flush(&mut self) -> Result<(), OramError> {
        let dirty: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&id, _)| id)
            .collect();
        for id in dirty {
            let data = self.entries.get(&id).expect("listed").data.clone();
            self.oram.write(id, &data)?;
            self.entries.get_mut(&id).expect("listed").dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::tree::buckets_for;

    fn cached(capacity_blocks: u64, cache: usize) -> CachedOram<MemStorage> {
        let storage = MemStorage::new(buckets_for(capacity_blocks));
        let oram = PathOram::new(capacity_blocks, 8, 1, [2; 32], storage);
        CachedOram::new(oram, cache)
    }

    #[test]
    fn hit_avoids_oram_traffic() {
        let mut c = cached(64, 8);
        c.write(1, &[1; 8]).expect("write");
        let reads_before = c.oram().stats.bucket_reads();
        for _ in 0..10 {
            assert_eq!(c.read(1).expect("read"), vec![1; 8]);
        }
        assert_eq!(
            c.oram().stats.bucket_reads(),
            reads_before,
            "cache hits must not touch the tree"
        );
        assert!(c.oram().stats.cache_hits() >= 10);
    }

    #[test]
    fn eviction_writes_back_dirty_blocks() {
        let mut c = cached(64, 2);
        c.write(1, &[1; 8]).expect("write");
        c.write(2, &[2; 8]).expect("write");
        c.write(3, &[3; 8]).expect("write"); // evicts block 1
        assert!(c.len() <= 2);
        // Fill the cache with other blocks, then read 1 from the tree.
        c.read(4).expect("read");
        c.read(5).expect("read");
        assert_eq!(
            c.read(1).expect("read"),
            vec![1; 8],
            "write-back preserved data"
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cached(64, 2);
        c.write(1, &[1; 8]).expect("w1");
        c.write(2, &[2; 8]).expect("w2");
        c.read(1).expect("touch 1"); // 2 is now least recent
        c.write(3, &[3; 8]).expect("w3 evicts 2");
        let misses_before = c.oram().stats.cache_misses();
        c.read(1).expect("read 1");
        assert_eq!(
            c.oram().stats.cache_misses(),
            misses_before,
            "1 still cached"
        );
        c.read(2).expect("read 2");
        assert_eq!(
            c.oram().stats.cache_misses(),
            misses_before + 1,
            "2 was evicted"
        );
    }

    #[test]
    fn partial_reads_and_writes() {
        let mut c = cached(64, 4);
        c.write(9, &[0xAA; 8]).expect("write");
        c.write_at(9, 2, &[1, 2]).expect("patch");
        let mut buf = [0u8; 4];
        c.read_at(9, 1, &mut buf).expect("read_at");
        assert_eq!(buf, [0xAA, 1, 2, 0xAA]);
    }

    #[test]
    fn flush_persists_everything() {
        let mut c = cached(64, 8);
        for id in 0..8u64 {
            c.write(id, &[id as u8; 8]).expect("write");
        }
        c.flush().expect("flush");
        // Blow the cache away by reading 8 other blocks.
        for id in 8..16u64 {
            c.read(id).expect("read");
        }
        for id in 0..8u64 {
            assert_eq!(c.read(id).expect("read"), vec![id as u8; 8]);
        }
    }

    #[test]
    fn model_check_with_small_cache() {
        use autarky_prng::SimRng;
        use std::collections::HashMap;
        let mut c = cached(32, 3);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..1500 {
            let id = rng.gen_range(0..32);
            if rng.gen_bool(0.4) {
                let mut data = vec![0u8; 8];
                rng.fill_bytes(&mut data[..]);
                c.write(id, &data).expect("write");
                model.insert(id, data);
            } else {
                let expected = model.get(&id).cloned().unwrap_or_else(|| vec![0u8; 8]);
                assert_eq!(c.read(id).expect("read"), expected);
            }
        }
    }
}
