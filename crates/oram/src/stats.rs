//! Cost accounting for ORAM operations.
//!
//! The ORAM crate is pure (no dependency on the machine simulator);
//! instead of charging cycles directly it counts the events that cost
//! something, and the runtime converts them to cycles with its cost model.

/// Counters accumulated by ORAM operations.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OramStats {
    /// Logical ORAM accesses performed.
    pub accesses: u64,
    /// Buckets read from untrusted storage.
    pub bucket_reads: u64,
    /// Buckets written to untrusted storage.
    pub bucket_writes: u64,
    /// Bytes moved through bucket encryption/decryption.
    pub crypto_bytes: u64,
    /// Bytes covered by oblivious (CMOV-style) scans of the stash and,
    /// in uncached mode, the position map.
    pub oblivious_scan_bytes: u64,
    /// Cache hits (cached front-end only).
    pub cache_hits: u64,
    /// Cache misses (cached front-end only).
    pub cache_misses: u64,
}

impl OramStats {
    /// Merge another counter set into this one.
    pub fn absorb(&mut self, other: &OramStats) {
        self.accesses += other.accesses;
        self.bucket_reads += other.bucket_reads;
        self.bucket_writes += other.bucket_writes;
        self.crypto_bytes += other.crypto_bytes;
        self.oblivious_scan_bytes += other.oblivious_scan_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = OramStats {
            accesses: 1,
            bucket_reads: 2,
            ..Default::default()
        };
        let b = OramStats {
            accesses: 10,
            bucket_reads: 20,
            cache_hits: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.accesses, 11);
        assert_eq!(a.bucket_reads, 22);
        assert_eq!(a.cache_hits, 5);
    }
}
