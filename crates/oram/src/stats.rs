//! Cost accounting for ORAM operations, built on the telemetry layer.
//!
//! The ORAM crate is pure (no dependency on the machine simulator);
//! instead of charging cycles directly it counts the events that cost
//! something, and the runtime converts them to cycles with its cost
//! model. The counters are an [`autarky_telemetry::CounterSet`] with a
//! fixed schema plus a stash-occupancy [`Histogram`], so ORAM metrics
//! share the canonical fixed-size encoding of the rest of the enclave's
//! telemetry and can ride the same sealed epoch-export path.

use autarky_telemetry::{CounterSet, Histogram};

/// Counter names in the ORAM metric schema (registration order is
/// encoding order).
pub const ORAM_COUNTERS: &[&str] = &[
    "accesses",
    "bucket_reads",
    "bucket_writes",
    "crypto_bytes",
    "oblivious_scan_bytes",
    "cache_hits",
    "cache_misses",
];

/// Counters accumulated by ORAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OramStats {
    counters: CounterSet,
    stash: Histogram,
}

impl Default for OramStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OramStats {
    /// Fresh, zeroed counters over the [`ORAM_COUNTERS`] schema.
    pub fn new() -> Self {
        Self {
            counters: CounterSet::new(ORAM_COUNTERS),
            stash: Histogram::new(),
        }
    }

    /// Add `n` to a registered counter (panics on unregistered names —
    /// a schema bug, not a data bug).
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.counters.add(name, n);
    }

    /// Read a registered counter by name.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name)
    }

    /// Sample the stash occupancy after an access.
    pub fn record_stash(&mut self, occupancy: u64) {
        self.stash.record(occupancy);
    }

    /// Stash-occupancy distribution (one sample per access).
    pub fn stash_hist(&self) -> &Histogram {
        &self.stash
    }

    /// Logical ORAM accesses performed.
    pub fn accesses(&self) -> u64 {
        self.counters.get("accesses")
    }

    /// Buckets read from untrusted storage.
    pub fn bucket_reads(&self) -> u64 {
        self.counters.get("bucket_reads")
    }

    /// Buckets written to untrusted storage.
    pub fn bucket_writes(&self) -> u64 {
        self.counters.get("bucket_writes")
    }

    /// Bytes moved through bucket encryption/decryption.
    pub fn crypto_bytes(&self) -> u64 {
        self.counters.get("crypto_bytes")
    }

    /// Bytes covered by oblivious (CMOV-style) scans of the stash and,
    /// in uncached mode, the position map.
    pub fn oblivious_scan_bytes(&self) -> u64 {
        self.counters.get("oblivious_scan_bytes")
    }

    /// Cache hits (cached front-end only).
    pub fn cache_hits(&self) -> u64 {
        self.counters.get("cache_hits")
    }

    /// Cache misses (cached front-end only).
    pub fn cache_misses(&self) -> u64 {
        self.counters.get("cache_misses")
    }

    /// Merge another counter set into this one.
    pub fn absorb(&mut self, other: &OramStats) {
        self.counters.absorb(&other.counters);
        self.stash.absorb(&other.stash);
    }

    /// Append the canonical fixed-size encoding (counters, then the stash
    /// histogram) — used when embedding ORAM metrics in a telemetry
    /// export.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.counters.encode_into(out);
        self.stash.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = OramStats::new();
        a.add("accesses", 1);
        a.add("bucket_reads", 2);
        let mut b = OramStats::new();
        b.add("accesses", 10);
        b.add("bucket_reads", 20);
        b.add("cache_hits", 5);
        a.absorb(&b);
        assert_eq!(a.accesses(), 11);
        assert_eq!(a.bucket_reads(), 22);
        assert_eq!(a.cache_hits(), 5);
    }

    #[test]
    fn stash_samples_are_histogrammed() {
        let mut s = OramStats::new();
        s.record_stash(3);
        s.record_stash(7);
        assert_eq!(s.stash_hist().count(), 2);
        assert_eq!(s.stash_hist().max(), 7);
        let mut other = OramStats::new();
        other.record_stash(40);
        s.absorb(&other);
        assert_eq!(s.stash_hist().count(), 3);
        assert_eq!(s.stash_hist().max(), 40);
    }

    #[test]
    fn encoding_is_fixed_size() {
        let empty = {
            let mut out = Vec::new();
            OramStats::new().encode_into(&mut out);
            out
        };
        let busy = {
            let mut s = OramStats::new();
            s.add("crypto_bytes", 123_456);
            s.record_stash(12);
            let mut out = Vec::new();
            s.encode_into(&mut out);
            out
        };
        assert_eq!(empty.len(), busy.len());
        assert_ne!(empty, busy);
    }
}
