//! PathORAM with a cached front-end, as used by Autarky's strongest
//! self-paging policy (paper §5.2.2).
//!
//! Oblivious RAM hides *which* block a client touches: the adversary
//! watching untrusted storage sees one uniformly random root-to-leaf path
//! per access regardless of the logical address. The paper's contribution
//! on top of stock PathORAM is architectural: because Autarky pins and
//! masks enclave-managed pages, the position map, the stash, **and a large
//! block cache** can live in EPC without leaking — turning "orders of
//! magnitude too slow" (CoSMIX-style uncached ORAM, §7.2's 232×) into a
//! practical paging backend.
//!
//! * [`tree`] — the PathORAM protocol (Z=4 buckets, greedy write-back);
//! * [`storage`] — the untrusted, encrypted bucket store abstraction;
//! * [`cache`] — the enclave-managed LRU block cache front-end;
//! * [`stats`] — event counters converted to cycles by the runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod stats;
pub mod storage;
pub mod tree;

pub use cache::CachedOram;
pub use stats::{OramStats, ORAM_COUNTERS};
pub use storage::{BucketStorage, MemStorage};
pub use tree::{buckets_for, OramError, PathOram, BUCKET_Z};
