//! Untrusted bucket storage for PathORAM.
//!
//! Buckets are stored *encrypted*: every write re-encrypts the bucket
//! under a fresh nonce, so the adversary watching the storage learns only
//! which tree positions are touched — and PathORAM guarantees those are a
//! uniformly random root-to-leaf path per access.

use autarky_crypto::aead::{self, NONCE_LEN, TAG_LEN};

/// Abstract untrusted storage holding one ciphertext per tree bucket.
///
/// Implementations decide where the bytes live (host memory, the
/// simulator's observable backing store, a file, ...). The ORAM only ever
/// calls these two methods, so an implementation's access log *is* the
/// adversary's view.
pub trait BucketStorage {
    /// Read the ciphertext of bucket `index` (empty if never written).
    fn read(&mut self, index: usize) -> Vec<u8>;
    /// Replace the ciphertext of bucket `index`.
    fn write(&mut self, index: usize, ciphertext: Vec<u8>);
}

/// Plain in-memory storage with an access log, used by tests and as the
/// default backing when no simulator is attached.
#[derive(Default)]
pub struct MemStorage {
    buckets: Vec<Vec<u8>>,
    /// Sequence of `(index, was_write)` accesses, adversary-visible.
    pub log: Vec<(usize, bool)>,
}

impl MemStorage {
    /// Storage for `buckets` buckets.
    pub fn new(buckets: usize) -> Self {
        Self {
            buckets: vec![Vec::new(); buckets],
            log: Vec::new(),
        }
    }

    /// Flip one ciphertext bit (fault injection for integrity tests).
    pub fn corrupt(&mut self, index: usize, byte: usize) {
        if let Some(b) = self.buckets.get_mut(index).and_then(|v| v.get_mut(byte)) {
            *b ^= 1;
        }
    }
}

impl BucketStorage for MemStorage {
    fn read(&mut self, index: usize) -> Vec<u8> {
        self.log.push((index, false));
        self.buckets[index].clone()
    }

    fn write(&mut self, index: usize, ciphertext: Vec<u8>) {
        self.log.push((index, true));
        self.buckets[index] = ciphertext;
    }
}

/// Bucket sealing: encrypt-then-MAC with a per-write nonce counter.
pub struct BucketSealer {
    key: [u8; 32],
    counter: u64,
}

impl BucketSealer {
    /// Create a sealer under `key`.
    pub fn new(key: [u8; 32]) -> Self {
        Self { key, counter: 0 }
    }

    /// Encrypt a serialized bucket; the output embeds nonce and tag.
    pub fn seal(&mut self, mut plaintext: Vec<u8>) -> Vec<u8> {
        self.counter += 1;
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&self.counter.to_le_bytes());
        let tag = aead::seal(&self.key, &nonce, b"oram-bucket", &mut plaintext);
        let mut out = Vec::with_capacity(NONCE_LEN + TAG_LEN + plaintext.len());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&tag);
        out.extend_from_slice(&plaintext);
        out
    }

    /// Decrypt a sealed bucket. Returns `None` on tampering.
    pub fn open(&self, sealed: &[u8]) -> Option<Vec<u8>> {
        if sealed.len() < NONCE_LEN + TAG_LEN {
            return None;
        }
        let nonce: [u8; NONCE_LEN] = sealed[..NONCE_LEN].try_into().ok()?;
        let tag: [u8; TAG_LEN] = sealed[NONCE_LEN..NONCE_LEN + TAG_LEN].try_into().ok()?;
        let mut plaintext = sealed[NONCE_LEN + TAG_LEN..].to_vec();
        aead::open(&self.key, &nonce, b"oram-bucket", &mut plaintext, &tag).ok()?;
        Some(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_logs_accesses() {
        let mut storage = MemStorage::new(4);
        storage.write(2, vec![1, 2, 3]);
        assert_eq!(storage.read(2), vec![1, 2, 3]);
        assert_eq!(storage.read(0), Vec::<u8>::new());
        assert_eq!(storage.log, vec![(2, true), (2, false), (0, false)]);
    }

    #[test]
    fn sealer_roundtrip() {
        let mut sealer = BucketSealer::new([7; 32]);
        let sealed = sealer.seal(vec![9, 9, 9]);
        assert_eq!(sealer.open(&sealed), Some(vec![9, 9, 9]));
    }

    #[test]
    fn sealer_detects_tamper() {
        let mut sealer = BucketSealer::new([7; 32]);
        let mut sealed = sealer.seal(vec![9, 9, 9]);
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(sealer.open(&sealed), None);
    }

    #[test]
    fn reencryption_changes_ciphertext() {
        let mut sealer = BucketSealer::new([7; 32]);
        let a = sealer.seal(vec![1, 2, 3]);
        let b = sealer.seal(vec![1, 2, 3]);
        assert_ne!(a, b, "fresh nonce per write");
    }
}
