//! Runtime error types.

use autarky_os_sim::OsError;
use autarky_sgx_sim::{SgxError, Vpn};

/// Errors surfaced by the trusted self-paging runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// The fault handler detected a controlled-channel attack (an
    /// unexpected fault on a purportedly-resident enclave-managed page, or
    /// a cleared accessed/dirty bit). The enclave has been terminated.
    AttackDetected {
        /// Page the attack targeted (as seen by trusted code).
        vpn: Vpn,
        /// Human-readable cause.
        why: &'static str,
    },
    /// The legitimate page-fault rate exceeded the configured bound
    /// (bounded-leakage policy, §5.2.4). The enclave has been terminated.
    RateLimitExceeded,
    /// Self-paging budget too small to hold a required fetch set.
    OutOfBudget {
        /// Pages that must be resident at once.
        needed: usize,
        /// Configured budget.
        budget: usize,
    },
    /// The enclave was already terminated.
    Terminated,
    /// Allocation failure (heap region exhausted).
    OutOfMemory,
    /// Cluster API misuse.
    BadCluster(&'static str),
    /// Error from the untrusted OS (propagated; the runtime treats OS
    /// misbehaviour on sensitive paths as an attack separately).
    Os(OsError),
    /// Architectural error.
    Sgx(SgxError),
    /// Software-sealed page failed authentication on reload (the OS
    /// tampered with or replayed untrusted backing memory).
    SealBroken(Vpn),
}

impl From<OsError> for RtError {
    fn from(err: OsError) -> Self {
        RtError::Os(err)
    }
}

impl From<SgxError> for RtError {
    fn from(err: SgxError) -> Self {
        RtError::Sgx(err)
    }
}

impl core::fmt::Display for RtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtError::AttackDetected { vpn, why } => {
                write!(f, "controlled-channel attack detected on {vpn}: {why}")
            }
            RtError::RateLimitExceeded => write!(f, "page-fault rate limit exceeded"),
            RtError::OutOfBudget { needed, budget } => {
                write!(f, "fetch set of {needed} pages exceeds budget {budget}")
            }
            RtError::Terminated => write!(f, "enclave terminated"),
            RtError::OutOfMemory => write!(f, "enclave heap exhausted"),
            RtError::BadCluster(why) => write!(f, "cluster API misuse: {why}"),
            RtError::Os(e) => write!(f, "OS error: {e}"),
            RtError::Sgx(e) => write!(f, "SGX error: {e}"),
            RtError::SealBroken(vpn) => write!(f, "sealed page {vpn} failed authentication"),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_page() {
        let err = RtError::AttackDetected {
            vpn: Vpn(0x42),
            why: "unexpected fault",
        };
        let text = err.to_string();
        assert!(text.contains("0x42"));
        assert!(text.contains("unexpected fault"));
    }

    #[test]
    fn conversions() {
        let rt: RtError = SgxError::EpcFull.into();
        assert!(matches!(rt, RtError::Sgx(SgxError::EpcFull)));
        let rt: RtError = OsError::NoMemory.into();
        assert!(matches!(rt, RtError::Os(OsError::NoMemory)));
    }
}
