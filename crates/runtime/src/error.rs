//! Runtime error types.

use autarky_os_sim::OsError;
use autarky_sgx_sim::{SgxError, Vpn};

/// Errors surfaced by the trusted self-paging runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// The fault handler detected a controlled-channel attack (an
    /// unexpected fault on a purportedly-resident enclave-managed page, or
    /// a cleared accessed/dirty bit). The enclave has been terminated.
    AttackDetected {
        /// Page the attack targeted (as seen by trusted code).
        vpn: Vpn,
        /// Human-readable cause.
        why: &'static str,
    },
    /// The legitimate page-fault rate exceeded the configured bound
    /// (bounded-leakage policy, §5.2.4). The enclave has been terminated.
    RateLimitExceeded,
    /// Self-paging budget too small to hold a required fetch set.
    OutOfBudget {
        /// Pages that must be resident at once.
        needed: usize,
        /// Configured budget.
        budget: usize,
    },
    /// The enclave was already terminated.
    Terminated,
    /// Allocation failure (heap region exhausted).
    OutOfMemory,
    /// Cluster API misuse.
    BadCluster(&'static str),
    /// Error from the untrusted OS (propagated; the runtime treats OS
    /// misbehaviour on sensitive paths as an attack separately).
    Os(OsError),
    /// Architectural error.
    Sgx(SgxError),
    /// Software-sealed page failed authentication on reload (the OS
    /// tampered with or replayed untrusted backing memory).
    SealBroken(Vpn),
}

impl RtError {
    /// Whether the error is *transient*: an honest OS under memory
    /// pressure (or a scheduler suspending the enclave) produces these,
    /// and retrying after backoff is sound. Everything else is either a
    /// policy decision (`AttackDetected`, `RateLimitExceeded`, budget or
    /// heap exhaustion) or evidence of OS misbehaviour (`BadRequest`,
    /// broken seals, replays) and must not be blindly retried.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            RtError::Os(OsError::NoMemory) | RtError::Os(OsError::Suspended(_))
        )
    }

    /// Whether the error is evidence of a *hostile* OS rather than
    /// resource pressure: refused or nonsensical replies, tampered or
    /// replayed backing store contents. These feed the runtime's
    /// misbehaviour budget (DESIGN.md, "Threat model under OS
    /// misbehavior").
    #[must_use]
    pub fn is_hostile(&self) -> bool {
        matches!(
            self,
            RtError::Os(OsError::BadRequest(_))
                | RtError::Os(OsError::Sgx(SgxError::SealBroken | SgxError::Replay(_)))
                | RtError::Sgx(SgxError::SealBroken | SgxError::Replay(_))
                | RtError::SealBroken(_)
        )
    }
}

impl From<OsError> for RtError {
    fn from(err: OsError) -> Self {
        RtError::Os(err)
    }
}

impl From<SgxError> for RtError {
    fn from(err: SgxError) -> Self {
        RtError::Sgx(err)
    }
}

impl core::fmt::Display for RtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtError::AttackDetected { vpn, why } => {
                write!(f, "controlled-channel attack detected on {vpn}: {why}")
            }
            RtError::RateLimitExceeded => write!(f, "page-fault rate limit exceeded"),
            RtError::OutOfBudget { needed, budget } => {
                write!(f, "fetch set of {needed} pages exceeds budget {budget}")
            }
            RtError::Terminated => write!(f, "enclave terminated"),
            RtError::OutOfMemory => write!(f, "enclave heap exhausted"),
            RtError::BadCluster(why) => write!(f, "cluster API misuse: {why}"),
            RtError::Os(e) => write!(f, "OS error: {e}"),
            RtError::Sgx(e) => write!(f, "SGX error: {e}"),
            RtError::SealBroken(vpn) => write!(f, "sealed page {vpn} failed authentication"),
        }
    }
}

impl std::error::Error for RtError {
    /// The wrapped OS or architectural error, when one caused this error
    /// (so `anyhow`-style cause chains do not end at the wrapper).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Os(e) => Some(e),
            RtError::Sgx(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_page() {
        let err = RtError::AttackDetected {
            vpn: Vpn(0x42),
            why: "unexpected fault",
        };
        let text = err.to_string();
        assert!(text.contains("0x42"));
        assert!(text.contains("unexpected fault"));
    }

    #[test]
    fn conversions() {
        let rt: RtError = SgxError::EpcFull.into();
        assert!(matches!(rt, RtError::Sgx(SgxError::EpcFull)));
        let rt: RtError = OsError::NoMemory.into();
        assert!(matches!(rt, RtError::Os(OsError::NoMemory)));
    }

    #[test]
    fn source_exposes_cause_chain() {
        use std::error::Error as _;
        let rt = RtError::Os(OsError::Sgx(SgxError::SealBroken));
        let os = rt.source().expect("OS cause");
        assert_eq!(
            os.to_string(),
            OsError::Sgx(SgxError::SealBroken).to_string()
        );
        let sgx = os.source().expect("SGX cause");
        assert_eq!(sgx.to_string(), SgxError::SealBroken.to_string());
        assert!(RtError::OutOfMemory.source().is_none());
    }

    #[test]
    fn transient_vs_hostile_taxonomy() {
        use autarky_sgx_sim::EnclaveId;
        assert!(RtError::Os(OsError::NoMemory).is_transient());
        assert!(RtError::Os(OsError::Suspended(EnclaveId(1))).is_transient());
        assert!(!RtError::Os(OsError::NoMemory).is_hostile());
        assert!(RtError::Os(OsError::BadRequest("nonsense")).is_hostile());
        assert!(RtError::Os(OsError::Sgx(SgxError::Replay(Vpn(3)))).is_hostile());
        assert!(RtError::SealBroken(Vpn(9)).is_hostile());
        let attack = RtError::AttackDetected {
            vpn: Vpn(1),
            why: "test",
        };
        assert!(!attack.is_transient() && !attack.is_hostile());
    }
}
