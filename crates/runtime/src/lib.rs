//! The trusted self-paging enclave runtime — Autarky's software half
//! (paper §5.2).
//!
//! Autarky's ISA changes guarantee that every enclave page fault reaches
//! trusted code; this crate is that trusted code. It implements:
//!
//! * [`runtime`] — the [`Runtime`]: enclave-managed page tracking, the
//!   fault handler with attack detection, budgeted FIFO self-paging over
//!   both SGXv1 (`EWB`/`ELDU`) and SGXv2 (software-sealed) mechanisms,
//!   and the lazy heap allocator with automatic data clustering;
//! * [`cluster`] — the page-cluster abstraction (§5.2.3, Table 1) with
//!   the residency invariant and transitive fetch sets;
//! * [`ratelimit`] — the bounded-leakage fault-rate policy for
//!   unmodified binaries (§5.2.4);
//! * [`paging`] — software page sealing with anti-replay versions;
//! * [`error`] — policy-level errors, including
//!   [`RtError::AttackDetected`].
//!
//! The third paging scheme of the paper — cached ORAM (§5.2.2) — composes
//! this runtime (which pins the cache pages) with the `autarky-oram`
//! crate; the glue lives in `autarky-workloads::encmem`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Trusted code must degrade gracefully, never abort: every fallible path
// returns a typed `RtError` (see DESIGN.md, "Threat model under OS
// misbehavior").
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod error;
pub mod paging;
pub mod ratelimit;
pub mod runtime;

pub use cluster::{ClusterCapture, ClusterId, ClusterMap};
pub use error::RtError;
pub use ratelimit::{RateLimit, RateLimiter};
pub use runtime::{
    is_telemetry_export_key, telemetry_export_key, HardenConfig, PagingMechanism, PolicyMeta,
    PolicyMode, RtStats, Runtime, RuntimeConfig, RT_COUNTERS, RT_GAUGES, RT_HISTS, RT_SPAN_RING,
    TELEMETRY_EXPORT_KEY_BIT,
};
