//! The trusted self-paging runtime (the paper's library-OS layer).
//!
//! A [`Runtime`] owns an enclave's paging *policy*:
//!
//! * it claims sensitive pages as **enclave-managed** through the driver
//!   interface, pinning them in EPC;
//! * its **fault handler** is guaranteed to run on every page fault
//!   (Autarky's pending-exception flag makes silent OS resolution
//!   impossible) and classifies each fault as: legitimate self-paging,
//!   a forwardable fault on an insensitive OS-managed page, or an attack
//!   — in which case it terminates the enclave;
//! * it fetches and evicts in **cluster** units, maintaining the paper's
//!   residency invariant, with FIFO victim selection (no A/D bits exist
//!   for the OS — or the runtime — to build a clock policy from);
//! * it optionally enforces a **fault-rate bound** for unmodified
//!   binaries (§5.2.4).
//!
//! Both paging mechanisms of §6 are implemented: SGXv1 `EWB`/`ELDU`
//! through driver syscalls, and SGXv2 software sealing with
//! `EAUG`/`EACCEPTCOPY`/`EMODT`.

use std::collections::{HashMap, VecDeque};

use autarky_crypto::aead::{self, NONCE_LEN, TAG_LEN};
use autarky_os_sim::{FaultDisposition, FlightEvent, Os, OsError};
use autarky_sgx_sim::{
    AccessError, CostTag, EnclaveId, FaultCause, Perms, SgxError, Va, Vpn, PAGE_SIZE,
};
use autarky_telemetry::{SpanGuard, SpanKind, Telemetry};

use crate::cluster::{ClusterCapture, ClusterId, ClusterMap};
use crate::error::RtError;
use crate::paging::{blob_key, sw_open, sw_seal};
use crate::ratelimit::{RateLimit, RateLimiter};

/// Counter names in the runtime telemetry schema (registration order is
/// snapshot encoding order).
pub const RT_COUNTERS: &[&str] = &[
    "faults_handled",
    "forwarded",
    "pages_fetched",
    "pages_evicted",
    "retries",
    "misbehavior",
    "degradations",
    "attack_detected",
    "rate_limit_kills",
    "epochs_exported",
];

/// Gauge names in the runtime telemetry schema.
pub const RT_GAUGES: &[&str] = &["resident_pages", "stash_occupancy"];

/// Histogram names in the runtime telemetry schema.
pub const RT_HISTS: &[&str] = &["fetch_batch_pages", "evict_batch_pages", "retry_attempt"];

/// Span records retained in-enclave before the drop counter kicks in.
pub const RT_SPAN_RING: usize = 4096;

/// Which mechanism moves page contents in and out of EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingMechanism {
    /// Privileged `EWB`/`ELDU` via driver syscalls (faster; hardware
    /// sealing).
    Sgx1,
    /// SGXv2 dynamic memory: the runtime seals pages in software and uses
    /// `EAUG`/`EACCEPTCOPY`/`EMODPR`/`EMODT` (more flexible; extra
    /// crossings and in-enclave crypto).
    Sgx2,
}

/// How the fault handler treats enclave-managed pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Everything pinned; *any* fault on an enclave-managed page is an
    /// attack. The strongest setting when the working set fits in EPC
    /// (libjpeg/Hunspell/FreeType in Table 2).
    PinAll,
    /// Secure self-paging with clusters; faults on evicted pages trigger
    /// cluster-granular fetches.
    SelfPaging,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Fault-handling policy.
    pub mode: PolicyMode,
    /// Optional fault-rate bound (§5.2.4).
    pub rate_limit: Option<RateLimit>,
    /// Paging mechanism.
    pub mechanism: PagingMechanism,
    /// Maximum resident enclave-managed pages (0 = unlimited). The
    /// runtime evicts before fetching when at budget.
    pub budget: usize,
    /// Automatic data-page cluster size for the allocator (0 = off).
    pub auto_cluster_size: usize,
    /// Put all code pages into one per-library cluster at attach time.
    pub cluster_code: bool,
    /// Hostile-OS hardening knobs (retry, verification, degradation).
    pub harden: HardenConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            mode: PolicyMode::SelfPaging,
            rate_limit: None,
            mechanism: PagingMechanism::Sgx1,
            budget: 0,
            auto_cluster_size: 0,
            cluster_code: true,
            harden: HardenConfig::default(),
        }
    }
}

/// How the runtime survives an OS that fails, lies, or stalls
/// (see DESIGN.md, "Threat model under OS misbehavior & fault
/// injection").
///
/// Driver errors are split into two classes. *Transient* errors
/// (`NoMemory`, `Suspended`) are what an honest OS produces under memory
/// pressure or scheduling; the runtime absorbs them with bounded,
/// backoff-charged retries and — under sustained pressure — by shrinking
/// its own resident budget (the ballooning path, §5.4). *Hostile*
/// evidence (wrong answers, silently dropped pages, diverging batches) is
/// counted against a misbehaviour budget; exceeding it escalates to
/// `AttackDetected` and termination, exactly like a controlled-channel
/// signal.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Transient driver failures tolerated per operation before the
    /// (typed) error propagates to the caller.
    pub max_retries: u32,
    /// Base of the exponential backoff charged to the simulated clock
    /// between retries; doubles with each attempt.
    pub backoff_base_cycles: u64,
    /// Anomalies (lies, dropped pages, diverged batches) tolerated over
    /// the enclave's lifetime before the runtime terminates it with
    /// `AttackDetected`.
    pub misbehavior_budget: u32,
    /// Re-verify architectural residency after every fetch-style call,
    /// catching an OS that claims success without doing the work.
    pub verify_fetches: bool,
    /// Under sustained `NoMemory`, cooperatively shrink the resident
    /// budget (ballooning, §5.4) to relieve EPC pressure instead of
    /// failing fast. Never applied under `PolicyMode::PinAll`, where
    /// evicting would turn later legitimate faults into false attacks.
    pub degrade_on_pressure: bool,
    /// Floor below which degradation never shrinks the budget.
    pub degrade_floor: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        Self {
            max_retries: 6,
            backoff_base_cycles: 2_000,
            misbehavior_budget: 8,
            verify_fetches: true,
            degrade_on_pressure: true,
            degrade_floor: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Resident,
    Evicted,
}

/// Runtime event counters.
#[derive(Debug, Default, Clone)]
pub struct RtStats {
    /// Faults observed by the trusted handler.
    pub faults_handled: u64,
    /// Faults on OS-managed pages forwarded back to the OS.
    pub forwarded: u64,
    /// Pages fetched by self-paging.
    pub pages_fetched: u64,
    /// Pages evicted by self-paging.
    pub pages_evicted: u64,
    /// Heap pages allocated lazily.
    pub pages_allocated: u64,
    /// Allocations served.
    pub allocs: u64,
    /// Transient driver errors absorbed by bounded retry.
    pub retries: u64,
    /// OS-misbehaviour anomalies recorded (each is one step toward the
    /// misbehaviour budget and `AttackDetected`).
    pub misbehavior: u64,
    /// Times the runtime shrank its own budget under sustained pressure.
    pub degradations: u64,
}

/// A read-only snapshot of the paging policy a runtime enforces, exposed
/// for external audit tooling (the leakage subsystem checks the measured
/// fault rate of a run against `rate_limit` and sizes the per-fault
/// leakage bound by `tracked_pages`).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyMeta {
    /// Fault-handling policy.
    pub mode: PolicyMode,
    /// Configured fault-rate bound, if any (§5.2.4).
    pub rate_limit: Option<RateLimit>,
    /// Paging mechanism.
    pub mechanism: PagingMechanism,
    /// Resident-page budget (0 = unlimited).
    pub budget: usize,
    /// Automatic data-cluster size (0 = off).
    pub auto_cluster_size: usize,
    /// Pages currently under runtime management — the set a page-granular
    /// adversary could hope to distinguish between.
    pub tracked_pages: usize,
}

/// The trusted runtime instance for one enclave.
pub struct Runtime {
    /// Enclave this runtime manages.
    pub eid: EnclaveId,
    /// TCS used for execution.
    pub tcs: usize,
    config: RuntimeConfig,
    tracked: HashMap<Vpn, PageState>,
    /// Page clusters (public: applications call the Table 1 API on it).
    pub clusters: ClusterMap,
    self_paging: bool,
    /// FIFO of resident enclave-managed pages in fetch order.
    fifo: VecDeque<Vpn>,
    resident_count: usize,
    limiter: RateLimiter,
    sealing_key: [u8; 32],
    sw_versions: HashMap<Vpn, u64>,
    /// Original EPCM permissions of pages evicted via the SGXv2 software
    /// path, restored at `EACCEPTCOPY` time (the hardware path carries
    /// them in the sealed blob instead).
    sw_perms: HashMap<Vpn, Perms>,
    /// Trusted mirror of the hardware anti-replay versions for pages the
    /// runtime evicted via `EWB` (seal-freshness enforcement): the sealed
    /// blob authenticates any self-consistent `(vpn, version)` pair, so
    /// only this mirror can tell that the version the hardware is willing
    /// to accept has moved *backwards* — the signature of restored-stale
    /// state. Forward movement is benign OS churn (suspend/resume).
    hw_versions: HashMap<Vpn, u64>,
    /// Heap bump/free-list allocator state.
    heap: Heap,
    /// Event counters.
    pub stats: RtStats,
    /// Enclave-side telemetry: tracing spans, paging metrics, and the
    /// sealed epoch-export state. Raw records never leave the enclave;
    /// [`Runtime::export_epoch`] seals the aggregate snapshot.
    pub telemetry: Telemetry,
    /// AEAD key for sealed telemetry exports (domain-separated from the
    /// page sealing key).
    export_key: [u8; 32],
    /// Lifetime anomaly count toward `harden.misbehavior_budget`.
    misbehavior: u32,
    terminated: bool,
}

struct Heap {
    start: Va,
    pages: usize,
    bump: u64,
    free_lists: HashMap<usize, Vec<Va>>,
    /// One-past-the-highest page already backed by EPC.
    allocated_until: u64,
}

impl Runtime {
    /// Attach a runtime to a loaded enclave: claim its code/data/stack
    /// pages as enclave-managed (self-paging enclaves only) and set up
    /// clusters per the configuration.
    pub fn attach(os: &mut Os, eid: EnclaveId, config: RuntimeConfig) -> Result<Self, RtError> {
        let image = os.image(eid)?.clone();
        let self_paging = image.self_paging;
        let mut rt = Self {
            eid,
            tcs: 0,
            self_paging,
            tracked: HashMap::new(),
            clusters: ClusterMap::default(),
            fifo: VecDeque::new(),
            resident_count: 0,
            limiter: RateLimiter::new(config.rate_limit),
            sealing_key: derive_sealing_key(eid),
            sw_versions: HashMap::new(),
            sw_perms: HashMap::new(),
            hw_versions: HashMap::new(),
            heap: Heap {
                start: image.heap_start().base(),
                pages: image.heap_pages,
                bump: 0,
                free_lists: HashMap::new(),
                allocated_until: image.heap_start().0,
            },
            stats: RtStats::default(),
            telemetry: Telemetry::new(RT_SPAN_RING, RT_COUNTERS, RT_GAUGES, RT_HISTS),
            export_key: derive_export_key(eid),
            misbehavior: 0,
            config,
            terminated: false,
        };
        if rt.config.auto_cluster_size > 0 {
            rt.clusters.ay_init_clusters(0, rt.config.auto_cluster_size);
        }
        if self_paging {
            // Claim the measured image (code, data, stack) as
            // enclave-managed; the runtime's own state rides along.
            let pages: Vec<Vpn> = (image.code_start().0..image.heap_start().0)
                .map(Vpn)
                .collect();
            let status =
                rt.with_retries(os, false, |os, eid| os.ay_set_enclave_managed(eid, &pages))?;
            for (vpn, reported) in status {
                // The reply travels through untrusted memory; never seed
                // the tracking (which decides attack-vs-legitimate for
                // every future fault) from an unverified answer.
                let resident = os.machine.is_resident(eid, vpn);
                if reported != resident {
                    rt.note_misbehavior(os, vpn, "driver lied about residence at attach")?;
                }
                let state = if resident {
                    PageState::Resident
                } else {
                    PageState::Evicted
                };
                if resident {
                    rt.fifo.push_back(vpn);
                    rt.resident_count += 1;
                }
                rt.tracked.insert(vpn, state);
            }
            if rt.config.cluster_code {
                // One cluster per library (§5.2.3, "Clusters for code
                // pages"), created automatically by the trusted loader. A
                // library's cluster also covers the code of libraries it
                // calls into, so control flow across the dependency edge
                // never faults separately — and dependents of a shared
                // library end up sharing pages, which the transitive
                // fetch-set rule then keeps consistent.
                if image.libraries.is_empty() {
                    let lib = rt.clusters.new_cluster();
                    for vpn in image.code_range() {
                        rt.clusters.ay_add_page(lib, vpn)?;
                    }
                } else {
                    for (index, library) in image.libraries.iter().enumerate() {
                        let cluster = rt.clusters.new_cluster();
                        for vpn in image.library_pages(index) {
                            rt.clusters.ay_add_page(cluster, vpn)?;
                        }
                        for &dep in &library.uses {
                            for vpn in image.library_pages(dep) {
                                rt.clusters.ay_add_page(cluster, vpn)?;
                            }
                        }
                    }
                    // Code pages outside any declared library form one
                    // residual cluster.
                    let declared: usize = image.libraries.iter().map(|l| l.pages).sum();
                    if declared < image.code_pages {
                        let rest = rt.clusters.new_cluster();
                        for vpn in image.code_range().skip(declared) {
                            rt.clusters.ay_add_page(rest, vpn)?;
                        }
                    }
                }
            }
        }
        Ok(rt)
    }

    /// Whether the runtime terminated the enclave (attack response).
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// The configured budget (0 = unlimited).
    pub fn budget(&self) -> usize {
        self.config.budget
    }

    /// Adjust the resident-page budget at run time.
    pub fn set_budget(&mut self, budget: usize) {
        self.config.budget = budget;
    }

    /// Cooperatively shrink to `new_budget` resident pages, evicting down
    /// immediately (the enclave side of a memory-ballooning upcall, §5.2.1
    /// / §5.4 — the paper defers the upcall protocol; this is the enclave
    /// mechanism it would invoke).
    pub fn shrink_budget(&mut self, os: &mut Os, new_budget: usize) -> Result<(), RtError> {
        self.config.budget = new_budget;
        self.make_room(os, 0)
    }

    /// Resident enclave-managed pages.
    pub fn resident_pages(&self) -> usize {
        self.resident_count
    }

    /// Whether a tracked page is currently resident (`None` when the page
    /// is not enclave-managed).
    pub fn residency(&self, vpn: Vpn) -> Option<bool> {
        self.tracked.get(&vpn).map(|s| *s == PageState::Resident)
    }

    /// Record forward progress for the rate limiter (I/O, syscalls,
    /// allocations — called by the libOS layers above).
    pub fn progress(&mut self, amount: u64) {
        self.limiter.progress(amount);
    }

    /// Faults counted by the rate limiter so far.
    pub fn fault_count(&self) -> u64 {
        self.limiter.faults()
    }

    /// Forward progress recorded so far (rate-limit denominator).
    pub fn progress_total(&self) -> u64 {
        self.limiter.progress_total()
    }

    /// Snapshot of the enforced policy, for audit tooling.
    pub fn policy_meta(&self) -> PolicyMeta {
        PolicyMeta {
            mode: self.config.mode,
            rate_limit: self.config.rate_limit,
            mechanism: self.config.mechanism,
            budget: self.config.budget,
            auto_cluster_size: self.config.auto_cluster_size,
            tracked_pages: self.tracked.len(),
        }
    }

    // ----------------------------------------------------------------
    // Memory operations with full fault resolution.
    // ----------------------------------------------------------------

    /// Read enclave memory at `va`, resolving faults per policy.
    pub fn read(&mut self, os: &mut Os, va: Va, buf: &mut [u8]) -> Result<(), RtError> {
        loop {
            match os.machine.read_bytes(self.eid, self.tcs, va, buf) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    /// Write enclave memory at `va`, resolving faults per policy.
    pub fn write(&mut self, os: &mut Os, va: Va, buf: &[u8]) -> Result<(), RtError> {
        loop {
            match os.machine.write_bytes(self.eid, self.tcs, va, buf) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    /// Simulate executing code at `va` (instruction fetch), resolving
    /// faults per policy.
    pub fn exec(&mut self, os: &mut Os, va: Va) -> Result<(), RtError> {
        loop {
            match os.machine.fetch_code(self.eid, self.tcs, va) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    fn resolve(&mut self, os: &mut Os, err: AccessError) -> Result<(), RtError> {
        if self.terminated {
            return Err(RtError::Terminated);
        }
        match err {
            AccessError::Fatal(SgxError::Terminated) => Err(RtError::Terminated),
            AccessError::Fatal(e) => Err(RtError::Sgx(e)),
            AccessError::Fault(ev) if ev.elided => {
                // Proposed hardware optimization: we are already "in" the
                // handler; no AEX, no OS, no transitions. The kernel never
                // sees this fault, so open the correlation chain here.
                let began = os.flight_begin_chain_if_idle();
                let outcome = self.handle_fault(os);
                let popped = os.machine.pop_ssa(self.eid, self.tcs);
                if began {
                    os.flight_end_chain();
                }
                popped?;
                outcome
            }
            AccessError::Fault(ev) => {
                // `on_fault` opens the correlation chain before it records
                // the masked observation; close it once the full handler
                // round trip (including the resuming transitions) is done.
                let result = match os.on_fault(ev) {
                    Err(OsError::Suspended(_)) if os.has_pending_injected_resume() => {
                        // An injected whole-enclave suspend landed between
                        // the access and the fault report. The OS resumes
                        // suspended enclaves at its next convenience (the
                        // driver does so on syscall entry); model that
                        // resume here and let the access loop retry.
                        os.resume_injected_suspend().map_err(RtError::from)
                    }
                    Err(e) => Err(e.into()),
                    Ok(FaultDisposition::Resumed) => Ok(()), // legacy silent path
                    Ok(FaultDisposition::HandlerRequired) => {
                        let mut outcome = self.handle_fault(os);
                        if outcome.is_ok() {
                            let hop = if os.machine.elide_handler_invocation() {
                                // "No upcall" variant (Table 2): in-enclave
                                // resume pops the SSA without EEXIT+ERESUME.
                                os.machine.pop_ssa(self.eid, self.tcs)
                            } else {
                                os.machine
                                    .eexit(self.eid, self.tcs)
                                    .and_then(|()| os.machine.eresume(self.eid, self.tcs))
                            };
                            if let Err(e) = hop {
                                outcome = Err(e.into());
                            }
                        }
                        outcome
                    }
                };
                os.flight_end_chain();
                result
            }
        }
    }

    // ----------------------------------------------------------------
    // The fault handler (the heart of the defense).
    // ----------------------------------------------------------------

    /// The trusted page-fault handler. Runs with the real fault
    /// information from the SSA frame; the OS saw only a masked report.
    pub fn handle_fault(&mut self, os: &mut Os) -> Result<(), RtError> {
        let guard = self
            .telemetry
            .enter(SpanKind::FaultHandler, os.machine.clock.now());
        let outcome = self.handle_fault_inner(os);
        self.span_close(os, guard);
        outcome
    }

    fn handle_fault_inner(&mut self, os: &mut Os) -> Result<(), RtError> {
        self.stats.faults_handled += 1;
        self.telemetry.incr("faults_handled");
        os.machine
            .clock
            .charge_tagged(CostTag::Runtime, os.machine.costs.runtime_handler);
        let info = match os.machine.ssa_exinfo(self.eid, self.tcs)? {
            Some(info) => info,
            None => {
                // Handler invoked with no pending exception: re-entrancy
                // games by the OS (§5.3).
                return self.attack(os, Vpn(0), "handler entered with empty SSA");
            }
        };
        let vpn = info.va.vpn();
        if os.flight_armed() {
            os.flight_record(FlightEvent::HandlerEntry { eid: self.eid, vpn });
        }

        // Cleared accessed/dirty bits can only come from the OS: benign
        // mappings are always installed with them preset.
        if info.cause == FaultCause::AdBitsClear {
            return self.attack(os, vpn, "PTE accessed/dirty bits cleared by OS");
        }

        match self.tracked.get(&vpn).copied() {
            None => {
                // OS-managed page: insensitive by declaration. Forward the
                // fault so the OS can demand-page it (§7.3's libjpeg flow).
                if !self.ratelimit_admit(os) {
                    return self.kill_rate_limited(os);
                }
                if os.flight_armed() {
                    os.flight_record(FlightEvent::DecisionForward { vpn });
                }
                // A silently dropped fetch would otherwise spin
                // fault→fetch→fault forever, so verify the result.
                let mut rounds = 0u32;
                loop {
                    let guard = self
                        .telemetry
                        .enter(SpanKind::AyFetchPages, os.machine.clock.now());
                    let fetched =
                        self.with_retries(os, true, |os, eid| os.ay_fetch_pages(eid, &[vpn]));
                    self.span_close(os, guard);
                    self.telemetry.hist_record("fetch_batch_pages", 1);
                    fetched?;
                    if !self.config.harden.verify_fetches || os.machine.is_resident(self.eid, vpn) {
                        break;
                    }
                    rounds += 1;
                    if rounds > self.config.harden.max_retries {
                        return Err(RtError::Os(OsError::BadRequest(
                            "forwarded fetch never became resident",
                        )));
                    }
                    self.note_misbehavior(os, vpn, "forwarded fetch silently dropped")?;
                }
                self.stats.forwarded += 1;
                self.telemetry.incr("forwarded");
                Ok(())
            }
            Some(PageState::Resident) => {
                // The page should be mapped and accessible — the OS (or
                // an attacker) broke the mapping. This is the detection
                // path for the controlled channel.
                self.attack(os, vpn, "unexpected fault on resident enclave-managed page")
            }
            Some(PageState::Evicted) => {
                if self.config.mode == PolicyMode::PinAll {
                    return self.attack(os, vpn, "fault on pinned page under PinAll policy");
                }
                if !self.ratelimit_admit(os) {
                    return self.kill_rate_limited(os);
                }
                // Legitimate self-paging: fetch the transitive cluster set.
                let fetch: Vec<Vpn> = self
                    .clusters
                    .fetch_set(vpn)
                    .into_iter()
                    .filter(|p| self.tracked.get(p) == Some(&PageState::Evicted))
                    .collect();
                if os.flight_armed() {
                    os.flight_record(FlightEvent::DecisionClusterFetch {
                        vpn,
                        pages: fetch.clone(),
                    });
                }
                self.make_room(os, fetch.len())?;
                self.fetch_pages(os, &fetch)?;
                Ok(())
            }
        }
    }

    /// Consult the fault-rate limiter under a `ratelimit_decision` span.
    fn ratelimit_admit(&mut self, os: &mut Os) -> bool {
        let guard = self
            .telemetry
            .enter(SpanKind::RatelimitDecision, os.machine.clock.now());
        let admitted = self.limiter.on_fault();
        self.span_close(os, guard);
        admitted
    }

    /// Close a telemetry span, mirroring the closure into the flight log
    /// (when armed) so a timeline row can be linked back to the telemetry
    /// aggregate that timed the same interval.
    fn span_close(&mut self, os: &mut Os, guard: SpanGuard) {
        let now = os.machine.clock.now();
        if os.flight_armed() {
            os.flight_record(FlightEvent::SpanClose {
                kind: guard.kind().name().to_owned(),
                start_cycles: guard.start_cycles(),
                end_cycles: now,
            });
        }
        self.telemetry.exit(guard, now);
    }

    fn attack(&mut self, os: &mut Os, vpn: Vpn, why: &'static str) -> Result<(), RtError> {
        if os.flight_armed() {
            os.flight_record(FlightEvent::AttackDetected {
                vpn,
                why: why.to_owned(),
            });
        }
        self.terminated = true;
        self.telemetry.incr("attack_detected");
        os.machine.terminate(self.eid)?;
        Err(RtError::AttackDetected { vpn, why })
    }

    fn kill_rate_limited(&mut self, os: &mut Os) -> Result<(), RtError> {
        if os.flight_armed() {
            os.flight_record(FlightEvent::RateLimitKill);
        }
        self.terminated = true;
        self.telemetry.incr("rate_limit_kills");
        os.machine.terminate(self.eid)?;
        Err(RtError::RateLimitExceeded)
    }

    // ----------------------------------------------------------------
    // Self-paging mechanics.
    // ----------------------------------------------------------------

    fn make_room(&mut self, os: &mut Os, incoming: usize) -> Result<(), RtError> {
        let budget = self.config.budget;
        if budget == 0 {
            return Ok(());
        }
        if incoming > budget {
            return Err(RtError::OutOfBudget {
                needed: incoming,
                budget,
            });
        }
        while self.resident_count + incoming > budget {
            let victim = loop {
                let Some(v) = self.fifo.pop_front() else {
                    return Err(RtError::OutOfBudget {
                        needed: incoming,
                        budget,
                    });
                };
                if self.tracked.get(&v) == Some(&PageState::Resident) {
                    break v;
                }
            };
            // Evict the victim's whole cluster (safe even when shared).
            let evict: Vec<Vpn> = self
                .clusters
                .evict_set(victim)
                .into_iter()
                .filter(|p| self.tracked.get(p) == Some(&PageState::Resident))
                .collect();
            self.evict_pages(os, &evict)?;
        }
        Ok(())
    }

    /// Evict `pages` now (used by the policy and exposed for the paging
    /// microbenchmarks).
    ///
    /// Tracking is reconciled against architectural residency afterwards
    /// even on failure, so a partially-completed batch never leaves the
    /// runtime believing an evicted page is resident (which would turn
    /// the next legitimate fault on it into a false `AttackDetected`).
    pub fn evict_pages(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        if pages.is_empty() {
            return Ok(());
        }
        // Direct callers (microbenchmarks) enter outside any fault chain;
        // open one so the eviction's records still correlate.
        let began = os.flight_begin_chain_if_idle();
        if os.flight_armed() {
            os.flight_record(FlightEvent::DecisionEvict {
                pages: pages.to_vec(),
            });
        }
        let guard = self
            .telemetry
            .enter(SpanKind::AyEvictPages, os.machine.clock.now());
        let result = match self.config.mechanism {
            PagingMechanism::Sgx1 => self.hw_evict(os, pages),
            PagingMechanism::Sgx2 => self.sw_evict(os, pages),
        };
        self.span_close(os, guard);
        self.telemetry
            .hist_record("evict_batch_pages", pages.len() as u64);
        self.sync_tracking(os, pages);
        if began {
            os.flight_end_chain();
        }
        result?;
        self.stats.pages_evicted += pages.len() as u64;
        self.telemetry.add("pages_evicted", pages.len() as u64);
        self.telemetry
            .gauge_set("resident_pages", self.resident_count as u64);
        Ok(())
    }

    /// Fetch `pages` now (used by the policy and exposed for the paging
    /// microbenchmarks). Like [`Runtime::evict_pages`], tracking is
    /// reconciled against architectural residency on both success and
    /// failure.
    pub fn fetch_pages(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        if pages.is_empty() {
            return Ok(());
        }
        let began = os.flight_begin_chain_if_idle();
        let guard = self
            .telemetry
            .enter(SpanKind::AyFetchPages, os.machine.clock.now());
        let result = match self.config.mechanism {
            PagingMechanism::Sgx1 => self.hw_fetch(os, pages),
            PagingMechanism::Sgx2 => self.sw_fetch(os, pages),
        };
        self.span_close(os, guard);
        self.telemetry
            .hist_record("fetch_batch_pages", pages.len() as u64);
        self.sync_tracking(os, pages);
        if began {
            os.flight_end_chain();
        }
        result?;
        self.stats.pages_fetched += pages.len() as u64;
        self.telemetry.add("pages_fetched", pages.len() as u64);
        self.telemetry
            .gauge_set("resident_pages", self.resident_count as u64);
        Ok(())
    }

    /// SGXv1 eviction (driver `EWB` batch), hardened against prefix
    /// failures: the driver may evict only part of the batch before
    /// erroring, and an injected suspend/resume can bring evicted pages
    /// *back*, so the request is re-derived from architectural residency
    /// before every attempt. Retrying a stale list verbatim would hit
    /// `BadRequest` on its already-evicted prefix.
    fn hw_evict(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        let mut attempts = 0u32;
        loop {
            let remaining: Vec<Vpn> = pages
                .iter()
                .copied()
                .filter(|&v| os.machine.is_resident(self.eid, v))
                .collect();
            if remaining.is_empty() {
                // Record the version the hardware sealed each page under,
                // so the fetch path can detect a later downgrade.
                for &vpn in pages {
                    if let Some(version) = os.machine.outstanding_version(self.eid, vpn)? {
                        self.hw_versions.insert(vpn, version);
                    }
                }
                return Ok(());
            }
            match os.ay_evict_pages(self.eid, &remaining) {
                Ok(()) => continue, // re-check: a resume may reload pages
                Err(e @ (OsError::NoMemory | OsError::Suspended(_)))
                    if attempts < self.config.harden.max_retries =>
                {
                    let _ = e;
                    attempts += 1;
                    self.stats.retries += 1;
                    self.charge_backoff(os, attempts);
                }
                Err(OsError::BadRequest(_)) if attempts < self.config.harden.max_retries => {
                    // A page vanished between our residency check and the
                    // OS processing the batch: something is evicting our
                    // pinned pages under our feet.
                    attempts += 1;
                    self.note_misbehavior(os, remaining[0], "evict batch diverged from residency")?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// SGXv1 fetch (driver `ELDU` batch) with transient retry and result
    /// verification: the fetch list is re-derived from architectural
    /// residency each round (fetch of a resident page is an idempotent
    /// remap, so bounded retry inside a round is safe), and after an `Ok`
    /// the runtime confirms the pages actually arrived — an OS that
    /// silently drops pages is counted against the misbehaviour budget.
    fn hw_fetch(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        let mut rounds = 0u32;
        loop {
            let missing: Vec<Vpn> = pages
                .iter()
                .copied()
                .filter(|&v| !os.machine.is_resident(self.eid, v))
                .collect();
            if missing.is_empty() {
                for &vpn in pages {
                    self.hw_versions.remove(&vpn);
                }
                return Ok(());
            }
            self.check_hw_freshness(os, &missing)?;
            if rounds > self.config.harden.max_retries {
                return Err(RtError::Os(OsError::BadRequest(
                    "fetched pages never became resident",
                )));
            }
            if rounds > 0 {
                self.note_misbehavior(os, missing[0], "fetch completed but pages not resident")?;
            }
            rounds += 1;
            self.with_retries(os, true, |os, eid| os.ay_fetch_pages(eid, &missing))?;
            if !self.config.harden.verify_fetches {
                return Ok(());
            }
        }
    }

    /// SGXv2 software eviction: seal in-enclave, write the blob to
    /// untrusted memory, trim the page.
    fn sw_evict(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        for &vpn in pages {
            if !os.machine.is_resident(self.eid, vpn) {
                // Already out (e.g. a hostile eviction beat us to it);
                // the caller's tracking sync will record it as evicted.
                continue;
            }
            // Remember the page's permissions so the refetch can
            // restore them (code pages must come back executable).
            let original = os
                .machine
                .page_table(self.eid)?
                .get(vpn)
                .map(|pte| pte.perms)
                .unwrap_or(Perms::RW);
            self.sw_perms.insert(vpn, original);
            // Restrict to read-only so concurrent writes cannot race
            // the copy-out, per §6.
            os.machine.emodpr(self.eid, vpn, Perms::R)?;
            os.machine.eaccept(self.eid, vpn)?;
            let contents = os.machine.read_own_page(self.eid, vpn)?;
            let version = {
                let v = self.sw_versions.entry(vpn).or_insert(0);
                *v += 1;
                *v
            };
            let guard = self.telemetry.enter(SpanKind::Seal, os.machine.clock.now());
            os.machine.clock.charge_tagged(
                CostTag::Crypto,
                os.machine.costs.sw_crypto_per_byte * PAGE_SIZE as u64,
            );
            let blob = sw_seal(&self.sealing_key, vpn, version, &contents);
            self.span_close(os, guard);
            os.sys_untrusted_write(blob_key(self.eid.0, vpn), blob);
            os.machine.emodt_trim(self.eid, vpn)?;
            os.machine.eaccept(self.eid, vpn)?;
            os.ay_remove_pages(self.eid, &[vpn])?;
        }
        Ok(())
    }

    /// SGXv2 software fetch: read the sealed blob from untrusted memory,
    /// authenticate it in-enclave (version-bound, so replay of an older
    /// blob fails), `EAUG` a fresh page and `EACCEPTCOPY` the contents
    /// in. The allocation syscall is retried through the transient path
    /// with a residency guard, since a retried `ay_alloc_pages` of an
    /// already-allocated page is refused with `BadRequest`.
    fn sw_fetch(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        for &vpn in pages {
            if os.machine.is_resident(self.eid, vpn) {
                continue; // reconcile: e.g. a suspend/resume reloaded it
            }
            let key = blob_key(self.eid.0, vpn);
            let blob = os.sys_untrusted_read(key).ok_or(RtError::SealBroken(vpn))?;
            let version = *self.sw_versions.get(&vpn).unwrap_or(&0);
            let guard = self.telemetry.enter(SpanKind::Open, os.machine.clock.now());
            os.machine.clock.charge_tagged(
                CostTag::Crypto,
                os.machine.costs.sw_crypto_per_byte * PAGE_SIZE as u64,
            );
            let contents = sw_open(&self.sealing_key, vpn, version, &blob);
            self.span_close(os, guard);
            let contents = contents.ok_or(RtError::SealBroken(vpn))?;
            self.with_retries(os, true, |os, eid| {
                if os.machine.is_resident(eid, vpn) {
                    return Ok(());
                }
                os.ay_alloc_pages(eid, &[vpn])
            })?;
            let perms = self.sw_perms.get(&vpn).copied().unwrap_or(Perms::RW);
            os.machine.eacceptcopy(self.eid, vpn, &contents, perms)?;
            if perms != Perms::RW {
                // Restore the original mapping permissions (code
                // pages must come back executable).
                os.ay_protect_pages(self.eid, &[vpn], perms)?;
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Hostile-OS hardening: retry, verification, degradation.
    // ----------------------------------------------------------------

    /// Run a driver call, absorbing *transient* failures (`NoMemory`,
    /// `Suspended`) with bounded exponential backoff charged to the
    /// simulated clock. With `allow_degrade`, sustained `NoMemory` also
    /// triggers cooperative budget shrinking (never on eviction paths,
    /// which degradation itself uses). Any other error — and a transient
    /// one that outlives the retry budget — propagates typed.
    fn with_retries<T>(
        &mut self,
        os: &mut Os,
        allow_degrade: bool,
        mut op: impl FnMut(&mut Os, EnclaveId) -> Result<T, OsError>,
    ) -> Result<T, RtError> {
        let mut attempt = 0u32;
        loop {
            match op(os, self.eid) {
                Ok(v) => return Ok(v),
                Err(e @ (OsError::NoMemory | OsError::Suspended(_)))
                    if attempt < self.config.harden.max_retries =>
                {
                    attempt += 1;
                    self.stats.retries += 1;
                    self.charge_backoff(os, attempt);
                    if allow_degrade && matches!(e, OsError::NoMemory) && attempt >= 2 {
                        self.degrade(os)?;
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Charge the exponential retry backoff to the simulated clock,
    /// recorded under a `retry_backoff` span (the one place retries are
    /// mirrored into telemetry — both retry loops route through here).
    fn charge_backoff(&mut self, os: &mut Os, attempt: u32) {
        let guard = self
            .telemetry
            .enter(SpanKind::RetryBackoff, os.machine.clock.now());
        let shift = (attempt - 1).min(10);
        os.machine.clock.charge_tagged(
            CostTag::Runtime,
            self.config.harden.backoff_base_cycles << shift,
        );
        self.span_close(os, guard);
        if os.flight_armed() {
            os.flight_record(FlightEvent::Retry {
                attempt: u64::from(attempt),
                backoff_cycles: self.config.harden.backoff_base_cycles << shift,
            });
        }
        self.telemetry.incr("retries");
        self.telemetry.hist_record("retry_attempt", attempt as u64);
    }

    /// The degradation ladder: under sustained EPC pressure, shrink our
    /// own resident budget by a quarter (down to the configured floor)
    /// and evict down to it immediately through the ballooning path
    /// (§5.4), freeing pinned frames for whoever needs them. Disabled
    /// under `PinAll`, where evicting would make later legitimate faults
    /// indistinguishable from attacks.
    fn degrade(&mut self, os: &mut Os) -> Result<(), RtError> {
        if !self.config.harden.degrade_on_pressure || self.config.mode == PolicyMode::PinAll {
            return Ok(());
        }
        let floor = self.config.harden.degrade_floor.max(1);
        let current = if self.config.budget == 0 {
            self.resident_count
        } else {
            self.config.budget
        };
        let target = current.saturating_sub((current / 4).max(1)).max(floor);
        if current == 0 || target >= current {
            return Ok(());
        }
        self.stats.degradations += 1;
        self.telemetry.incr("degradations");
        if os.flight_armed() {
            os.flight_record(FlightEvent::Degrade {
                from: current as u64,
                to: target as u64,
            });
        }
        self.shrink_budget(os, target)
    }

    /// Record one piece of evidence of OS misbehaviour (a lie, a dropped
    /// page, a diverged batch). Within the budget the runtime heals and
    /// continues; past it, the accumulated pattern is treated exactly
    /// like a controlled-channel signal: terminate with `AttackDetected`.
    fn note_misbehavior(
        &mut self,
        os: &mut Os,
        vpn: Vpn,
        why: &'static str,
    ) -> Result<(), RtError> {
        self.misbehavior += 1;
        self.stats.misbehavior += 1;
        self.telemetry.incr("misbehavior");
        if os.flight_armed() {
            os.flight_record(FlightEvent::Misbehavior {
                vpn,
                used: u64::from(self.misbehavior),
                budget: u64::from(self.config.harden.misbehavior_budget),
                why: why.to_owned(),
            });
        }
        if self.misbehavior > self.config.harden.misbehavior_budget {
            return self.attack(os, vpn, why);
        }
        Ok(())
    }

    /// Seal-freshness enforcement (the gap `ELDU` alone leaves open): the
    /// hardware accepts any sealed blob whose version matches its
    /// outstanding slot, but only the runtime knows which version it
    /// *last sealed*. If the hardware's outstanding version has moved
    /// backwards relative to the mirror, the machine state itself was
    /// rolled back (a stale snapshot restored under us) — terminate.
    /// Forward movement is benign: an injected suspend/resume or spurious
    /// evict legitimately re-evicts pages and bumps their versions.
    fn check_hw_freshness(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        for &vpn in pages {
            let Some(&recorded) = self.hw_versions.get(&vpn) else {
                continue;
            };
            match os.machine.outstanding_version(self.eid, vpn)? {
                Some(current) if current < recorded => {
                    return self.attack(os, vpn, "sealed page version downgraded");
                }
                Some(current) if current > recorded => {
                    self.hw_versions.insert(vpn, current);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Post-restore re-verification: after the runtime's sealed state is
    /// reattached to a restored machine, confirm the two halves describe
    /// the same world. Residency tracking is checked against the
    /// architectural ground truth, and every mirrored anti-replay version
    /// is re-checked for downgrades. A hostile restore that splices stale
    /// machine state under fresh runtime state (or vice versa) trips
    /// `AttackDetected` here instead of corrupting the enclave later.
    pub fn verify_restore(&mut self, os: &mut Os) -> Result<(), RtError> {
        let mut tracked: Vec<(Vpn, bool)> = self
            .tracked
            .iter()
            .map(|(&vpn, &state)| (vpn, state == PageState::Resident))
            .collect();
        tracked.sort_by_key(|&(vpn, _)| vpn.0);
        for (vpn, resident) in tracked {
            if os.machine.is_resident(self.eid, vpn) != resident {
                return self.attack(os, vpn, "restored machine diverges from runtime tracking");
            }
        }
        let mut mirrored: Vec<Vpn> = self.hw_versions.keys().copied().collect();
        mirrored.sort_by_key(|vpn| vpn.0);
        self.check_hw_freshness(os, &mirrored)
    }

    /// Reconcile tracking for `pages` against architectural residency
    /// (the ground truth the OS cannot fake). Called after every batch
    /// operation, including failed ones, so partial completion never
    /// strands the tracking in a state where a legitimate fault looks
    /// like an attack — or an attack like a legitimate fault.
    fn sync_tracking(&mut self, os: &Os, pages: &[Vpn]) {
        for &vpn in pages {
            let actual = os.machine.is_resident(self.eid, vpn);
            if let Some(state) = self.tracked.get_mut(&vpn) {
                match (*state, actual) {
                    (PageState::Evicted, true) => {
                        *state = PageState::Resident;
                        self.resident_count += 1;
                        self.fifo.push_back(vpn);
                    }
                    (PageState::Resident, false) => {
                        *state = PageState::Evicted;
                        self.resident_count -= 1;
                        // Lazy FIFO: the stale entry is skipped at pop time.
                    }
                    _ => {}
                }
            }
        }
    }

    /// Hand pages back to OS management (the §7.3 libjpeg flow: buffers
    /// whose access pattern is insensitive can use flexible OS paging).
    /// The pages leave the runtime's tracking and any clusters.
    pub fn release_to_os(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        self.with_retries(os, false, |os, eid| os.ay_set_os_managed(eid, pages))?;
        for &vpn in pages {
            if self.tracked.remove(&vpn) == Some(PageState::Resident) {
                self.resident_count -= 1;
            }
            for id in self.clusters.ay_get_cluster_ids(vpn) {
                let _ = self.clusters.ay_remove_page(id, vpn);
            }
        }
        Ok(())
    }

    /// Verify the cluster residency invariant (§5.2.3) — used by tests.
    pub fn cluster_invariant_holds(&self) -> bool {
        self.clusters
            .invariant_holds(|vpn| self.tracked.get(&vpn) != Some(&PageState::Evicted))
    }

    // ----------------------------------------------------------------
    // Heap allocator (libOS allocator with automatic clustering, §5.2.3).
    // ----------------------------------------------------------------

    /// Allocate `size` bytes from the enclave heap (16-byte aligned).
    ///
    /// Backing pages are allocated lazily with `EAUG`+`EACCEPT`, become
    /// enclave-managed, and join the automatic data clusters when
    /// configured.
    pub fn malloc(&mut self, os: &mut Os, size: usize) -> Result<Va, RtError> {
        if self.terminated {
            return Err(RtError::Terminated);
        }
        self.stats.allocs += 1;
        let size = size.max(1).next_multiple_of(16);
        if let Some(list) = self.heap.free_lists.get_mut(&size) {
            if let Some(va) = list.pop() {
                return Ok(va);
            }
        }
        let offset = self.heap.bump;
        let end = offset + size as u64;
        if end > (self.heap.pages * PAGE_SIZE) as u64 {
            return Err(RtError::OutOfMemory);
        }
        self.heap.bump = end;
        let va = Va(self.heap.start.0 + offset);
        // Ensure every page covered by the allocation is backed.
        let first = va.vpn().0;
        let last = Va(self.heap.start.0 + end - 1).vpn().0;
        for n in first..=last {
            self.ensure_heap_page(os, Vpn(n))?;
        }
        Ok(va)
    }

    /// Eagerly back the first `n` heap pages (models statically allocated
    /// datasets, so timed regions exclude allocation costs).
    pub fn prealloc_heap_pages(&mut self, os: &mut Os, n: usize) -> Result<(), RtError> {
        let last = Vpn(self.heap.start.vpn().0 + (n.min(self.heap.pages)) as u64 - 1);
        self.ensure_heap_page(os, last)
    }

    /// One past the highest heap page the bump allocator has backed
    /// (useful for carving already-allocated structures out of the
    /// self-paging set — see [`Runtime::pin_os_managed`]).
    pub fn heap_frontier(&self) -> Vpn {
        Vpn(self.heap.allocated_until)
    }

    /// Hand `pages` back to OS management and drop them from self-paging
    /// tracking. This is the paper's Memcached-patch shape (§6): only
    /// *item* pages are registered for self-paging, while hot allocator
    /// metadata (the bucket array) stays OS-managed — it no longer
    /// occupies self-paging budget, is never an eviction candidate for
    /// [`Runtime::make_room`], and a fault on it takes the forwarding
    /// path instead of being judged against the pin contract.
    pub fn pin_os_managed(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        if pages.is_empty() {
            return Ok(());
        }
        self.with_retries(os, false, |os, eid| os.ay_set_os_managed(eid, pages))?;
        for &vpn in pages {
            // Stale FIFO entries are fine: make_room skips any popped
            // page that is no longer tracked as Resident.
            if self.tracked.remove(&vpn) == Some(PageState::Resident) {
                self.resident_count -= 1;
            }
        }
        self.telemetry
            .gauge_set("resident_pages", self.resident_count as u64);
        Ok(())
    }

    /// Return an allocation of `size` bytes at `va` to the free list.
    pub fn free(&mut self, va: Va, size: usize) {
        let size = size.max(1).next_multiple_of(16);
        self.heap.free_lists.entry(size).or_default().push(va);
    }

    fn ensure_heap_page(&mut self, os: &mut Os, vpn: Vpn) -> Result<(), RtError> {
        if vpn.0 < self.heap.allocated_until {
            return Ok(());
        }
        // Allocation happens outside any fault chain; correlate the
        // make-room evictions and retries it triggers under one chain.
        let began = os.flight_begin_chain_if_idle();
        let guard = self
            .telemetry
            .enter(SpanKind::HeapAlloc, os.machine.clock.now());
        let result = self.ensure_heap_page_inner(os, vpn);
        self.span_close(os, guard);
        if began {
            os.flight_end_chain();
        }
        result
    }

    fn ensure_heap_page_inner(&mut self, os: &mut Os, vpn: Vpn) -> Result<(), RtError> {
        // Lazy allocation: EAUG + EACCEPT, under the budget. Legacy
        // enclaves allocate the same way (Graphene-on-SGXv2 behaviour)
        // but their pages stay OS-managed and untracked.
        for n in self.heap.allocated_until..=vpn.0 {
            let page = Vpn(n);
            if self.self_paging {
                self.make_room(os, 1)?;
            }
            // Retried with a residency guard: a retry after a transient
            // failure must skip the page if the first attempt allocated
            // it (`ay_alloc_pages` refuses resident pages).
            self.with_retries(os, self.self_paging, |os, eid| {
                if os.machine.is_resident(eid, page) {
                    return Ok(());
                }
                os.ay_alloc_pages(eid, &[page])
            })?;
            os.machine.eaccept(self.eid, page)?;
            if self.self_paging {
                self.tracked.insert(page, PageState::Resident);
                self.resident_count += 1;
                self.fifo.push_back(page);
                self.clusters.auto_assign(page)?;
            }
            self.stats.pages_allocated += 1;
        }
        self.heap.allocated_until = vpn.0 + 1;
        Ok(())
    }

    // ----------------------------------------------------------------
    // Sealed telemetry export (epoch-granular, leak-audited).
    // ----------------------------------------------------------------

    /// Close the current telemetry epoch and publish its sealed aggregate
    /// snapshot to untrusted memory.
    ///
    /// The export path is designed to be indistinguishable across secrets
    /// (the leakage audit's `telemetry` case enforces this):
    ///
    /// * the plaintext is the canonical *fixed-size* aggregate snapshot —
    ///   raw span records never leave the enclave;
    /// * it is sealed with AEAD under a key domain-separated from the
    ///   page sealing key, binding the epoch number as nonce/AAD;
    /// * the untrusted-store key depends only on public values (enclave
    ///   id, epoch counter) — see [`telemetry_export_key`].
    ///
    /// The OS therefore observes only *that* an export of constant size
    /// happened at an epoch boundary the application fixes at
    /// deterministic points in its own progress.
    pub fn export_epoch(&mut self, os: &mut Os) -> Result<(), RtError> {
        let epoch = self.telemetry.epoch();
        let snapshot = self.telemetry.end_epoch();
        let guard = self.telemetry.enter(SpanKind::Seal, os.machine.clock.now());
        os.machine.clock.charge_tagged(
            CostTag::Crypto,
            os.machine.costs.sw_crypto_per_byte * snapshot.len() as u64,
        );
        let blob = seal_snapshot(&self.export_key, epoch, &snapshot);
        self.span_close(os, guard);
        os.sys_untrusted_write(telemetry_export_key(self.eid.0, epoch), blob);
        self.telemetry.incr("epochs_exported");
        Ok(())
    }

    /// Read back and authenticate a previously exported epoch snapshot
    /// (models the trusted consumer of the telemetry stream; tests use it
    /// to verify the export round-trips and that tampering is caught).
    pub fn open_exported_epoch(&self, os: &mut Os, epoch: u64) -> Option<Vec<u8>> {
        let blob = os.sys_untrusted_read(telemetry_export_key(self.eid.0, epoch))?;
        open_snapshot(&self.export_key, epoch, &blob)
    }

    // ----------------------------------------------------------------
    // Checkpoint/restore (sealed by the snapshot subsystem).
    // ----------------------------------------------------------------

    /// Serialize the runtime's complete state into a canonical
    /// little-endian blob for checkpointing.
    ///
    /// Everything rides along: configuration, page tracking and FIFO
    /// order, the rate limiter's fault/progress history, the misbehaviour
    /// count, anti-replay version mirrors, the heap allocator, cluster
    /// registry, statistics, and the full telemetry state. Carrying the
    /// *hardening* state is deliberate — a restore that reset retry
    /// counters, misbehaviour debits, or the leakage budget would let the
    /// OS launder an attack by snapshotting before each probe. Hash-map
    /// sections are emitted sorted, so identical runtimes always produce
    /// identical blobs. The blob contains key-equivalent secrets (the
    /// telemetry ring) and must only leave the enclave sealed.
    pub fn capture_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"AYRT");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.eid.0.to_le_bytes());
        out.extend_from_slice(&(self.tcs as u64).to_le_bytes());
        out.push(u8::from(self.self_paging));
        out.extend_from_slice(&self.misbehavior.to_le_bytes());
        out.push(u8::from(self.terminated));
        out.push(match self.config.mode {
            PolicyMode::PinAll => 0,
            PolicyMode::SelfPaging => 1,
        });
        out.push(match self.config.mechanism {
            PagingMechanism::Sgx1 => 0,
            PagingMechanism::Sgx2 => 1,
        });
        out.extend_from_slice(&(self.config.budget as u64).to_le_bytes());
        out.extend_from_slice(&(self.config.auto_cluster_size as u64).to_le_bytes());
        out.push(u8::from(self.config.cluster_code));
        match self.config.rate_limit {
            Some(limit) => {
                out.push(1);
                out.extend_from_slice(&limit.max_faults_per_progress.to_bits().to_le_bytes());
                out.extend_from_slice(&limit.burst.to_le_bytes());
            }
            None => out.push(0),
        }
        let harden = &self.config.harden;
        out.extend_from_slice(&harden.max_retries.to_le_bytes());
        out.extend_from_slice(&harden.backoff_base_cycles.to_le_bytes());
        out.extend_from_slice(&harden.misbehavior_budget.to_le_bytes());
        out.push(u8::from(harden.verify_fetches));
        out.push(u8::from(harden.degrade_on_pressure));
        out.extend_from_slice(&(harden.degrade_floor as u64).to_le_bytes());
        out.extend_from_slice(&self.limiter.faults().to_le_bytes());
        out.extend_from_slice(&self.limiter.progress_total().to_le_bytes());
        let mut tracked: Vec<(Vpn, PageState)> =
            self.tracked.iter().map(|(&v, &s)| (v, s)).collect();
        tracked.sort_by_key(|&(v, _)| v.0);
        out.extend_from_slice(&(tracked.len() as u64).to_le_bytes());
        for (vpn, state) in tracked {
            out.extend_from_slice(&vpn.0.to_le_bytes());
            out.push(match state {
                PageState::Resident => 0,
                PageState::Evicted => 1,
            });
        }
        out.extend_from_slice(&(self.fifo.len() as u64).to_le_bytes());
        for &vpn in &self.fifo {
            out.extend_from_slice(&vpn.0.to_le_bytes());
        }
        out.extend_from_slice(&(self.resident_count as u64).to_le_bytes());
        encode_vpn_u64_map(&mut out, &self.sw_versions);
        let mut perms: Vec<(Vpn, Perms)> = self.sw_perms.iter().map(|(&v, &p)| (v, p)).collect();
        perms.sort_by_key(|&(v, _)| v.0);
        out.extend_from_slice(&(perms.len() as u64).to_le_bytes());
        for (vpn, p) in perms {
            out.extend_from_slice(&vpn.0.to_le_bytes());
            out.push(u8::from(p.r) | u8::from(p.w) << 1 | u8::from(p.x) << 2);
        }
        encode_vpn_u64_map(&mut out, &self.hw_versions);
        out.extend_from_slice(&self.heap.start.0.to_le_bytes());
        out.extend_from_slice(&(self.heap.pages as u64).to_le_bytes());
        out.extend_from_slice(&self.heap.bump.to_le_bytes());
        out.extend_from_slice(&self.heap.allocated_until.to_le_bytes());
        let mut lists: Vec<(usize, &Vec<Va>)> = self
            .heap
            .free_lists
            .iter()
            .map(|(&size, list)| (size, list))
            .collect();
        lists.sort_by_key(|&(size, _)| size);
        out.extend_from_slice(&(lists.len() as u64).to_le_bytes());
        for (size, list) in lists {
            out.extend_from_slice(&(size as u64).to_le_bytes());
            out.extend_from_slice(&(list.len() as u64).to_le_bytes());
            for va in list {
                out.extend_from_slice(&va.0.to_le_bytes());
            }
        }
        for v in [
            self.stats.faults_handled,
            self.stats.forwarded,
            self.stats.pages_fetched,
            self.stats.pages_evicted,
            self.stats.pages_allocated,
            self.stats.allocs,
            self.stats.retries,
            self.stats.misbehavior,
            self.stats.degradations,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let clusters = self.clusters.capture();
        out.extend_from_slice(&(clusters.clusters.len() as u64).to_le_bytes());
        for (id, pages) in &clusters.clusters {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(pages.len() as u64).to_le_bytes());
            for vpn in pages {
                out.extend_from_slice(&vpn.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&clusters.next_id.to_le_bytes());
        out.extend_from_slice(&(clusters.auto_size as u64).to_le_bytes());
        match clusters.auto_current {
            Some(id) => {
                out.push(1);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
            None => out.push(0),
        }
        let telemetry = self.telemetry.state_bytes();
        out.extend_from_slice(&(telemetry.len() as u64).to_le_bytes());
        out.extend_from_slice(&telemetry);
        out
    }

    /// Rebuild a runtime from [`Runtime::capture_bytes`] output (after
    /// the snapshot subsystem has unsealed and freshness-checked it).
    ///
    /// Keys are re-derived from the enclave id, never stored. Returns
    /// `None` on any structural problem; freshness and consistency
    /// against the restored machine are checked separately by
    /// [`Runtime::verify_restore`].
    pub fn restore_from_bytes(blob: &[u8]) -> Option<Runtime> {
        let mut input = blob;
        if input.len() < 8 || &input[..4] != b"AYRT" {
            return None;
        }
        input = &input[4..];
        if take_u32(&mut input)? != 1 {
            return None;
        }
        let eid = EnclaveId(take_u32(&mut input)?);
        let tcs = take_u64(&mut input)? as usize;
        let self_paging = take_u8(&mut input)? != 0;
        let misbehavior = take_u32(&mut input)?;
        let terminated = take_u8(&mut input)? != 0;
        let mode = match take_u8(&mut input)? {
            0 => PolicyMode::PinAll,
            1 => PolicyMode::SelfPaging,
            _ => return None,
        };
        let mechanism = match take_u8(&mut input)? {
            0 => PagingMechanism::Sgx1,
            1 => PagingMechanism::Sgx2,
            _ => return None,
        };
        let budget = take_u64(&mut input)? as usize;
        let auto_cluster_size = take_u64(&mut input)? as usize;
        let cluster_code = take_u8(&mut input)? != 0;
        let rate_limit = match take_u8(&mut input)? {
            0 => None,
            1 => Some(RateLimit {
                max_faults_per_progress: f64::from_bits(take_u64(&mut input)?),
                burst: take_u64(&mut input)?,
            }),
            _ => return None,
        };
        let harden = HardenConfig {
            max_retries: take_u32(&mut input)?,
            backoff_base_cycles: take_u64(&mut input)?,
            misbehavior_budget: take_u32(&mut input)?,
            verify_fetches: take_u8(&mut input)? != 0,
            degrade_on_pressure: take_u8(&mut input)? != 0,
            degrade_floor: take_u64(&mut input)? as usize,
        };
        let limiter_faults = take_u64(&mut input)?;
        let limiter_progress = take_u64(&mut input)?;
        let n = take_u64(&mut input)? as usize;
        let mut tracked = HashMap::with_capacity(n);
        for _ in 0..n {
            let vpn = Vpn(take_u64(&mut input)?);
            let state = match take_u8(&mut input)? {
                0 => PageState::Resident,
                1 => PageState::Evicted,
                _ => return None,
            };
            tracked.insert(vpn, state);
        }
        let n = take_u64(&mut input)? as usize;
        let mut fifo = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            fifo.push_back(Vpn(take_u64(&mut input)?));
        }
        let resident_count = take_u64(&mut input)? as usize;
        let sw_versions = decode_vpn_u64_map(&mut input)?;
        let n = take_u64(&mut input)? as usize;
        let mut sw_perms = HashMap::with_capacity(n);
        for _ in 0..n {
            let vpn = Vpn(take_u64(&mut input)?);
            let bits = take_u8(&mut input)?;
            sw_perms.insert(
                vpn,
                Perms {
                    r: bits & 1 != 0,
                    w: bits & 2 != 0,
                    x: bits & 4 != 0,
                },
            );
        }
        let hw_versions = decode_vpn_u64_map(&mut input)?;
        let heap_start = Va(take_u64(&mut input)?);
        let heap_pages = take_u64(&mut input)? as usize;
        let bump = take_u64(&mut input)?;
        let allocated_until = take_u64(&mut input)?;
        let n = take_u64(&mut input)? as usize;
        let mut free_lists = HashMap::with_capacity(n);
        for _ in 0..n {
            let size = take_u64(&mut input)? as usize;
            let m = take_u64(&mut input)? as usize;
            let mut list = Vec::with_capacity(m.min(1 << 20));
            for _ in 0..m {
                list.push(Va(take_u64(&mut input)?));
            }
            free_lists.insert(size, list);
        }
        let stats = RtStats {
            faults_handled: take_u64(&mut input)?,
            forwarded: take_u64(&mut input)?,
            pages_fetched: take_u64(&mut input)?,
            pages_evicted: take_u64(&mut input)?,
            pages_allocated: take_u64(&mut input)?,
            allocs: take_u64(&mut input)?,
            retries: take_u64(&mut input)?,
            misbehavior: take_u64(&mut input)?,
            degradations: take_u64(&mut input)?,
        };
        let n = take_u64(&mut input)? as usize;
        let mut cluster_list = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = ClusterId(take_u32(&mut input)?);
            let m = take_u64(&mut input)? as usize;
            let mut pages = Vec::with_capacity(m.min(1 << 20));
            for _ in 0..m {
                pages.push(Vpn(take_u64(&mut input)?));
            }
            cluster_list.push((id, pages));
        }
        let next_id = take_u32(&mut input)?;
        let auto_size = take_u64(&mut input)? as usize;
        let auto_current = match take_u8(&mut input)? {
            0 => None,
            1 => Some(ClusterId(take_u32(&mut input)?)),
            _ => return None,
        };
        let clusters = ClusterMap::restore(&ClusterCapture {
            clusters: cluster_list,
            next_id,
            auto_size,
            auto_current,
        });
        let telemetry_len = take_u64(&mut input)? as usize;
        if input.len() != telemetry_len {
            return None;
        }
        let mut telemetry = Telemetry::new(RT_SPAN_RING, RT_COUNTERS, RT_GAUGES, RT_HISTS);
        telemetry.restore_state(input).ok()?;
        Some(Runtime {
            eid,
            tcs,
            config: RuntimeConfig {
                mode,
                rate_limit,
                mechanism,
                budget,
                auto_cluster_size,
                cluster_code,
                harden,
            },
            tracked,
            clusters,
            self_paging,
            fifo,
            resident_count,
            limiter: RateLimiter::from_parts(rate_limit, limiter_faults, limiter_progress),
            sealing_key: derive_sealing_key(eid),
            sw_versions,
            sw_perms,
            hw_versions,
            heap: Heap {
                start: heap_start,
                pages: heap_pages,
                bump,
                free_lists,
                allocated_until,
            },
            stats,
            telemetry,
            export_key: derive_export_key(eid),
            misbehavior,
            terminated,
        })
    }
}

fn derive_sealing_key(eid: EnclaveId) -> [u8; 32] {
    // Stand-in for EGETKEY: a per-enclave sealing key.
    autarky_crypto::hmac_sha256(b"autarky-runtime-sealing", &eid.0.to_le_bytes())
}

fn derive_export_key(eid: EnclaveId) -> [u8; 32] {
    // Domain-separated from the page sealing key so an export blob can
    // never be replayed as a sealed page (or vice versa).
    autarky_crypto::hmac_sha256(b"autarky-telemetry-export", &eid.0.to_le_bytes())
}

/// High bit marking an untrusted-store key as a telemetry export. Page
/// blobs use [`blob_key`] = `eid << 40 | vpn`, which never sets it, so the
/// two key spaces are disjoint by construction.
pub const TELEMETRY_EXPORT_KEY_BIT: u64 = 1 << 63;

/// Untrusted-store key for one enclave's sealed telemetry export of one
/// epoch. Both inputs are public, so the key sequence an adversary
/// observes is independent of enclave secrets.
pub fn telemetry_export_key(eid_raw: u32, epoch: u64) -> u64 {
    TELEMETRY_EXPORT_KEY_BIT | ((eid_raw as u64) << 40) | (epoch & 0xFF_FFFF_FFFF)
}

/// Whether an untrusted-store key names a telemetry export blob (used by
/// the leakage audit to isolate the export channel).
pub fn is_telemetry_export_key(key: u64) -> bool {
    key & TELEMETRY_EXPORT_KEY_BIT != 0
}

fn export_nonce(epoch: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&epoch.to_le_bytes());
    nonce
}

/// Sealed export blob: `epoch (8) || tag (16) || ciphertext`.
fn seal_snapshot(key: &[u8; 32], epoch: u64, snapshot: &[u8]) -> Vec<u8> {
    let mut ciphertext = snapshot.to_vec();
    let tag = aead::seal(
        key,
        &export_nonce(epoch),
        &epoch.to_le_bytes(),
        &mut ciphertext,
    );
    let mut out = Vec::with_capacity(8 + TAG_LEN + ciphertext.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&tag);
    out.extend_from_slice(&ciphertext);
    out
}

/// Verify and decrypt a blob produced by [`seal_snapshot`].
fn open_snapshot(key: &[u8; 32], expected_epoch: u64, blob: &[u8]) -> Option<Vec<u8>> {
    if blob.len() < 8 + TAG_LEN {
        return None;
    }
    let epoch = u64::from_le_bytes(blob[..8].try_into().ok()?);
    if epoch != expected_epoch {
        return None;
    }
    let tag: [u8; TAG_LEN] = blob[8..8 + TAG_LEN].try_into().ok()?;
    let mut ciphertext = blob[8 + TAG_LEN..].to_vec();
    aead::open(
        key,
        &export_nonce(epoch),
        &epoch.to_le_bytes(),
        &mut ciphertext,
        &tag,
    )
    .ok()?;
    Some(ciphertext)
}

// ------------------------------------------------------------------
// Checkpoint codec helpers.
// ------------------------------------------------------------------

fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&byte, rest) = input.split_first()?;
    *input = rest;
    Some(byte)
}

fn take_u32(input: &mut &[u8]) -> Option<u32> {
    if input.len() < 4 {
        return None;
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

/// Encode a vpn→u64 map sorted by vpn so identical maps always produce
/// identical bytes regardless of hash-map iteration order.
fn encode_vpn_u64_map(out: &mut Vec<u8>, map: &HashMap<Vpn, u64>) {
    let mut entries: Vec<(Vpn, u64)> = map.iter().map(|(&vpn, &value)| (vpn, value)).collect();
    entries.sort_by_key(|&(vpn, _)| vpn.0);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (vpn, value) in entries {
        out.extend_from_slice(&vpn.0.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn decode_vpn_u64_map(input: &mut &[u8]) -> Option<HashMap<Vpn, u64>> {
    let n = take_u64(input)? as usize;
    let mut map = HashMap::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let vpn = Vpn(take_u64(input)?);
        let value = take_u64(input)?;
        map.insert(vpn, value);
    }
    Some(map)
}
